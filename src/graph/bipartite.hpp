#pragma once
// Bipartite (multi)graphs. Parallel edges are kept distinct because the
// matching-decomposition of d-regular bipartite multigraphs (paper
// Lemma 7.2.1) peels one copy of an edge per round.

#include <cstddef>
#include <limits>
#include <vector>

namespace sttsv::graph {

inline constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t num_left, std::size_t num_right);

  /// Adds one (more) edge u -> v; returns its edge id.
  std::size_t add_edge(std::size_t u, std::size_t v);

  [[nodiscard]] std::size_t num_left() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_right() const { return num_right_; }
  [[nodiscard]] std::size_t num_edges() const { return edge_to_.size(); }

  /// Edge ids incident to left vertex u.
  [[nodiscard]] const std::vector<std::size_t>& edges_of(std::size_t u) const;

  /// Right endpoint of an edge id.
  [[nodiscard]] std::size_t head(std::size_t edge) const;

  /// Left endpoint of an edge id.
  [[nodiscard]] std::size_t tail(std::size_t edge) const;

  /// Degree of left vertex u (counting multiplicity).
  [[nodiscard]] std::size_t left_degree(std::size_t u) const;

  /// Degree of right vertex v (counting multiplicity).
  [[nodiscard]] std::size_t right_degree(std::size_t v) const;

  /// True iff every left and right degree equals d.
  [[nodiscard]] bool is_regular(std::size_t d) const;

 private:
  std::size_t num_right_;
  std::vector<std::vector<std::size_t>> adj_;  // left vertex -> edge ids
  std::vector<std::size_t> edge_to_;           // edge id -> right vertex
  std::vector<std::size_t> edge_from_;         // edge id -> left vertex
  std::vector<std::size_t> right_degree_;
};

}  // namespace sttsv::graph
