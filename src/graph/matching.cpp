#include "graph/matching.hpp"

#include <deque>

#include "support/check.hpp"

namespace sttsv::graph {

namespace {

/// Internal Hopcroft-Karp state; vertices are 0-based, kNone = free.
struct HkState {
  const BipartiteGraph& g;
  const std::vector<bool>& disabled;
  std::vector<std::size_t> match_left;   // left -> edge id
  std::vector<std::size_t> match_right;  // right -> edge id
  std::vector<std::size_t> dist;

  explicit HkState(const BipartiteGraph& graph,
                   const std::vector<bool>& disabled_edges)
      : g(graph),
        disabled(disabled_edges),
        match_left(graph.num_left(), kNone),
        match_right(graph.num_right(), kNone),
        dist(graph.num_left(), kNone) {}

  [[nodiscard]] bool edge_enabled(std::size_t e) const {
    return disabled.empty() || !disabled[e];
  }

  /// BFS layering from free left vertices; true if an augmenting path exists.
  bool bfs() {
    std::deque<std::size_t> queue;
    for (std::size_t u = 0; u < g.num_left(); ++u) {
      if (match_left[u] == kNone) {
        dist[u] = 0;
        queue.push_back(u);
      } else {
        dist[u] = kNone;
      }
    }
    bool found_free_right = false;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (const std::size_t e : g.edges_of(u)) {
        if (!edge_enabled(e)) continue;
        const std::size_t v = g.head(e);
        const std::size_t back = match_right[v];
        if (back == kNone) {
          found_free_right = true;
        } else {
          const std::size_t w = g.tail(back);
          if (dist[w] == kNone) {
            dist[w] = dist[u] + 1;
            queue.push_back(w);
          }
        }
      }
    }
    return found_free_right;
  }

  /// DFS along the BFS layering; true if u got matched.
  bool dfs(std::size_t u) {
    for (const std::size_t e : g.edges_of(u)) {
      if (!edge_enabled(e)) continue;
      const std::size_t v = g.head(e);
      const std::size_t back = match_right[v];
      if (back == kNone ||
          (dist[g.tail(back)] == dist[u] + 1 && dfs(g.tail(back)))) {
        match_left[u] = e;
        match_right[v] = e;
        return true;
      }
    }
    dist[u] = kNone;
    return false;
  }
};

}  // namespace

Matching hopcroft_karp(const BipartiteGraph& g,
                       const std::vector<bool>& disabled_edges) {
  STTSV_REQUIRE(disabled_edges.empty() ||
                    disabled_edges.size() == g.num_edges(),
                "disabled_edges must be empty or cover all edges");
  HkState state(g, disabled_edges);
  std::size_t size = 0;
  while (state.bfs()) {
    for (std::size_t u = 0; u < g.num_left(); ++u) {
      if (state.match_left[u] == kNone && state.dfs(u)) ++size;
    }
  }
  Matching m;
  m.left_edge = std::move(state.match_left);
  m.size = size;
  return m;
}

std::vector<Matching> matching_decomposition(const BipartiteGraph& g) {
  STTSV_REQUIRE(g.num_left() == g.num_right(),
                "decomposition needs equal sides");
  const std::size_t n = g.num_left();
  if (n == 0) return {};
  const std::size_t d = g.left_degree(0);
  STTSV_CHECK(g.is_regular(d), "graph is not d-regular");

  std::vector<Matching> rounds;
  std::vector<bool> disabled(g.num_edges(), false);
  for (std::size_t round = 0; round < d; ++round) {
    Matching m = hopcroft_karp(g, disabled);
    STTSV_CHECK(m.size == n,
                "regular bipartite graph must have a perfect matching "
                "(König/Hall violated — graph was not regular?)");
    for (std::size_t u = 0; u < n; ++u) {
      disabled[m.left_edge[u]] = true;
    }
    rounds.push_back(std::move(m));
  }
  // All edges must be used exactly once across the d matchings.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    STTSV_CHECK(disabled[e], "edge missing from decomposition");
  }
  return rounds;
}

}  // namespace sttsv::graph
