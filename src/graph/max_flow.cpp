#include "graph/max_flow.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "support/check.hpp"

namespace sttsv::graph {

MaxFlow::MaxFlow(std::size_t num_nodes)
    : adj_(num_nodes), level_(num_nodes), iter_(num_nodes) {}

std::size_t MaxFlow::add_edge(std::size_t from, std::size_t to,
                              std::int64_t cap) {
  STTSV_REQUIRE(from < adj_.size() && to < adj_.size(),
                "flow node out of range");
  STTSV_REQUIRE(cap >= 0, "capacity must be nonnegative");
  STTSV_REQUIRE(!ran_, "cannot add edges after run()");
  adj_[from].push_back(Edge{to, cap, adj_[to].size(), cap});
  adj_[to].push_back(Edge{from, 0, adj_[from].size() - 1, 0});
  handles_.emplace_back(from, adj_[from].size() - 1);
  return handles_.size() - 1;
}

bool MaxFlow::bfs(std::size_t s, std::size_t t) {
  std::fill(level_.begin(), level_.end(), kNone);
  std::deque<std::size_t> queue;
  level_[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const Edge& e : adj_[v]) {
      if (e.cap > 0 && level_[e.to] == kNone) {
        level_[e.to] = level_[v] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[t] != kNone;
}

std::int64_t MaxFlow::dfs(std::size_t v, std::size_t t, std::int64_t limit) {
  if (v == t) return limit;
  for (std::size_t& i = iter_[v]; i < adj_[v].size(); ++i) {
    Edge& e = adj_[v][i];
    if (e.cap <= 0 || level_[e.to] != level_[v] + 1) continue;
    const std::int64_t pushed = dfs(e.to, t, std::min(limit, e.cap));
    if (pushed > 0) {
      e.cap -= pushed;
      adj_[e.to][e.rev].cap += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlow::run(std::size_t s, std::size_t t) {
  STTSV_REQUIRE(s < adj_.size() && t < adj_.size() && s != t,
                "invalid source/sink");
  STTSV_REQUIRE(!ran_, "run() may be called once");
  ran_ = true;
  std::int64_t flow = 0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const std::int64_t pushed =
          dfs(s, t, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t MaxFlow::flow_on(std::size_t edge_handle) const {
  STTSV_REQUIRE(edge_handle < handles_.size(), "bad edge handle");
  STTSV_REQUIRE(ran_, "flow_on requires run() first");
  const auto [node, idx] = handles_[edge_handle];
  const Edge& e = adj_[node][idx];
  return e.orig - e.cap;
}

std::vector<std::size_t> assign_with_quotas(
    const BipartiteGraph& g, const std::vector<std::size_t>& quota) {
  STTSV_REQUIRE(quota.size() == g.num_left(),
                "quota vector must cover all bins");
  const std::size_t bins = g.num_left();
  const std::size_t items = g.num_right();

  // Node layout: 0 = source, 1..bins = bins, bins+1..bins+items = items,
  // bins+items+1 = sink.
  const std::size_t source = 0;
  const std::size_t sink = bins + items + 1;
  MaxFlow flow(bins + items + 2);

  for (std::size_t u = 0; u < bins; ++u) {
    flow.add_edge(source, 1 + u, static_cast<std::int64_t>(quota[u]));
  }
  // Remember per-item candidate edges so we can read the assignment back.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> candidates(
      items);  // item -> (bin, edge handle)
  for (std::size_t u = 0; u < bins; ++u) {
    for (const std::size_t e : g.edges_of(u)) {
      const std::size_t v = g.head(e);
      const std::size_t handle = flow.add_edge(1 + u, 1 + bins + v, 1);
      candidates[v].emplace_back(u, handle);
    }
  }
  for (std::size_t v = 0; v < items; ++v) {
    flow.add_edge(1 + bins + v, sink, 1);
  }

  const std::int64_t value = flow.run(source, sink);
  STTSV_CHECK(value == static_cast<std::int64_t>(items),
              "quota assignment infeasible (Hall condition violated)");

  std::vector<std::size_t> owner(items, kNone);
  for (std::size_t v = 0; v < items; ++v) {
    for (const auto& [bin, handle] : candidates[v]) {
      if (flow.flow_on(handle) == 1) {
        STTSV_CHECK(owner[v] == kNone, "item assigned twice");
        owner[v] = bin;
      }
    }
    STTSV_CHECK(owner[v] != kNone, "item left unassigned despite full flow");
  }
  return owner;
}

}  // namespace sttsv::graph
