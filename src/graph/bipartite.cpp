#include "graph/bipartite.hpp"

#include "support/check.hpp"

namespace sttsv::graph {

BipartiteGraph::BipartiteGraph(std::size_t num_left, std::size_t num_right)
    : num_right_(num_right), adj_(num_left), right_degree_(num_right, 0) {}

std::size_t BipartiteGraph::add_edge(std::size_t u, std::size_t v) {
  STTSV_REQUIRE(u < adj_.size(), "left vertex out of range");
  STTSV_REQUIRE(v < num_right_, "right vertex out of range");
  const std::size_t id = edge_to_.size();
  edge_to_.push_back(v);
  edge_from_.push_back(u);
  adj_[u].push_back(id);
  ++right_degree_[v];
  return id;
}

const std::vector<std::size_t>& BipartiteGraph::edges_of(
    std::size_t u) const {
  STTSV_REQUIRE(u < adj_.size(), "left vertex out of range");
  return adj_[u];
}

std::size_t BipartiteGraph::head(std::size_t edge) const {
  STTSV_REQUIRE(edge < edge_to_.size(), "edge id out of range");
  return edge_to_[edge];
}

std::size_t BipartiteGraph::tail(std::size_t edge) const {
  STTSV_REQUIRE(edge < edge_from_.size(), "edge id out of range");
  return edge_from_[edge];
}

std::size_t BipartiteGraph::left_degree(std::size_t u) const {
  return edges_of(u).size();
}

std::size_t BipartiteGraph::right_degree(std::size_t v) const {
  STTSV_REQUIRE(v < num_right_, "right vertex out of range");
  return right_degree_[v];
}

bool BipartiteGraph::is_regular(std::size_t d) const {
  for (std::size_t u = 0; u < num_left(); ++u) {
    if (left_degree(u) != d) return false;
  }
  for (std::size_t v = 0; v < num_right_; ++v) {
    if (right_degree_[v] != d) return false;
  }
  return true;
}

}  // namespace sttsv::graph
