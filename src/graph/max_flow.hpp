#pragma once
// Dinic's maximum-flow algorithm, used for the Hall-style quota
// assignments of Section 6.1.3: distributing non-central diagonal blocks
// (q per processor) and central diagonal blocks (at most 1 per processor)
// subject to the compatibility edges a,b ∈ R_p.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/bipartite.hpp"

namespace sttsv::graph {

class MaxFlow {
 public:
  explicit MaxFlow(std::size_t num_nodes);

  /// Adds a directed edge with the given capacity; returns an edge handle
  /// usable with flow_on(). A reverse residual edge is added internally.
  std::size_t add_edge(std::size_t from, std::size_t to, std::int64_t cap);

  /// Runs Dinic from s to t; returns the max-flow value. May be called once.
  std::int64_t run(std::size_t s, std::size_t t);

  /// Flow routed on a previously added edge (after run()).
  [[nodiscard]] std::int64_t flow_on(std::size_t edge_handle) const;

 private:
  struct Edge {
    std::size_t to;
    std::int64_t cap;   // remaining capacity
    std::size_t rev;    // index of reverse edge in adj_[to]
    std::int64_t orig;  // original capacity (for flow_on)
  };

  bool bfs(std::size_t s, std::size_t t);
  std::int64_t dfs(std::size_t v, std::size_t t, std::int64_t limit);

  std::vector<std::vector<Edge>> adj_;
  std::vector<std::size_t> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<std::size_t, std::size_t>> handles_;  // node, idx
  bool ran_ = false;
};

/// Assigns each right-side item of `g` to exactly one adjacent left-side
/// bin, with bin u receiving at most quota[u] items. Throws InternalError
/// if no full assignment exists (per Corollary 6.7 it always does for our
/// Steiner-derived graphs). Returns owner bin per item.
std::vector<std::size_t> assign_with_quotas(
    const BipartiteGraph& g, const std::vector<std::size_t>& quota);

}  // namespace sttsv::graph
