#pragma once
// Bipartite matching algorithms.
//
//  * hopcroft_karp: maximum matching in O(E sqrt(V)) — the algorithm the
//    paper cites for finding Hall matchings.
//  * matching_decomposition: splits a d-regular bipartite multigraph into
//    d perfect matchings (paper Lemma 7.2.1 via König's theorem), used for
//    the point-to-point communication schedule (paper Theorem 7.2.2 and
//    Figure 1).

#include <cstddef>
#include <vector>

#include "graph/bipartite.hpp"

namespace sttsv::graph {

/// Result of a maximum matching: for each left vertex, the matched *edge id*
/// (kNone if unmatched), plus the matching size.
struct Matching {
  std::vector<std::size_t> left_edge;  // left vertex -> edge id or kNone
  std::size_t size = 0;

  /// Right endpoint matched to left vertex u, or kNone.
  [[nodiscard]] std::size_t right_of(const BipartiteGraph& g,
                                     std::size_t u) const {
    return left_edge[u] == kNone ? kNone : g.head(left_edge[u]);
  }
};

/// Hopcroft-Karp maximum matching. `disabled_edges[e]` (optional, may be
/// empty) marks edges excluded from this run — used by the decomposition to
/// peel matchings without rebuilding the graph.
Matching hopcroft_karp(const BipartiteGraph& g,
                       const std::vector<bool>& disabled_edges = {});

/// Decomposes a d-regular bipartite multigraph (num_left == num_right)
/// into exactly d perfect matchings; throws InternalError if the graph is
/// not d-regular for the inferred d. Each returned matching maps every left
/// vertex to an edge id.
std::vector<Matching> matching_decomposition(const BipartiteGraph& g);

}  // namespace sttsv::graph
