#include "schedule/comm_schedule.hpp"

#include <algorithm>

#include "graph/bipartite.hpp"
#include "graph/matching.hpp"
#include "support/check.hpp"

namespace sttsv::schedule {

std::size_t pair_weight(const partition::TetraPartition& part,
                        std::size_t p, std::size_t peer) {
  if (p == peer) return 0;
  const auto& a = part.R(p);
  const auto& b = part.R(peer);
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  STTSV_CHECK(count <= 2,
              "two Steiner blocks share at most two points");
  return count;
}

PartnerProfile partner_profile(const partition::TetraPartition& part,
                               std::size_t p) {
  PartnerProfile prof;
  for (std::size_t peer = 0; peer < part.num_processors(); ++peer) {
    const std::size_t w = pair_weight(part, p, peer);
    if (w == 2) ++prof.two_block_partners;
    if (w == 1) ++prof.one_block_partners;
  }
  return prof;
}

bool Round::is_valid_step() const {
  std::vector<bool> receives(send_to.size(), false);
  for (std::size_t p = 0; p < send_to.size(); ++p) {
    const std::size_t dest = send_to[p];
    if (dest == graph::kNone) continue;
    if (dest >= send_to.size() || dest == p) return false;
    if (receives[dest]) return false;  // two messages into one rank
    receives[dest] = true;
  }
  return true;
}

namespace {

/// Decomposes the weight-w partner digraph (bipartite double cover) into
/// rounds; the graph must be regular (it is, for Steiner partitions).
void append_rounds(const partition::TetraPartition& part, std::size_t w,
                   std::vector<Round>& rounds) {
  const std::size_t P = part.num_processors();
  graph::BipartiteGraph g(P, P);
  std::size_t degree = 0;
  for (std::size_t p = 0; p < P; ++p) {
    std::size_t deg_p = 0;
    for (std::size_t peer = 0; peer < P; ++peer) {
      if (pair_weight(part, p, peer) == w) {
        g.add_edge(p, peer);
        ++deg_p;
      }
    }
    if (p == 0) {
      degree = deg_p;
    } else {
      STTSV_CHECK(deg_p == degree, "partner graph not regular");
    }
  }
  if (degree == 0) return;
  for (const graph::Matching& m : graph::matching_decomposition(g)) {
    Round round;
    round.blocks_per_message = w;
    round.send_to.assign(P, graph::kNone);
    for (std::size_t p = 0; p < P; ++p) {
      round.send_to[p] = m.right_of(g, p);
    }
    STTSV_CHECK(round.is_valid_step(), "decomposition produced bad step");
    rounds.push_back(std::move(round));
  }
}

}  // namespace

CommSchedule build_schedule(const partition::TetraPartition& part) {
  CommSchedule sched;
  const std::size_t before_two = sched.rounds_.size();
  append_rounds(part, 2, sched.rounds_);
  sched.two_rounds_ = sched.rounds_.size() - before_two;
  const std::size_t before_one = sched.rounds_.size();
  append_rounds(part, 1, sched.rounds_);
  sched.one_rounds_ = sched.rounds_.size() - before_one;
  return sched;
}

void CommSchedule::validate(const partition::TetraPartition& part) const {
  const std::size_t P = part.num_processors();
  // covered[p * P + peer] counts rounds in which p sends to peer.
  std::vector<std::size_t> covered(P * P, 0);
  for (const Round& round : rounds_) {
    STTSV_CHECK(round.send_to.size() == P, "round has wrong width");
    STTSV_CHECK(round.is_valid_step(), "invalid communication step");
    for (std::size_t p = 0; p < P; ++p) {
      const std::size_t dest = round.send_to[p];
      if (dest == graph::kNone) continue;
      STTSV_CHECK(pair_weight(part, p, dest) == round.blocks_per_message,
                  "message class does not match pair weight");
      ++covered[p * P + dest];
    }
  }
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t peer = 0; peer < P; ++peer) {
      const std::size_t w = pair_weight(part, p, peer);
      const std::size_t expected = w > 0 ? 1 : 0;
      STTSV_CHECK(covered[p * P + peer] == expected,
                  "ordered pair not scheduled exactly once");
    }
  }
}

std::size_t rounds_with_retries(std::size_t data_rounds,
                                std::size_t attempts,
                                std::size_t backoff_base_rounds,
                                std::size_t backoff_cap_rounds) {
  // Attempt 0: the full data schedule plus one ACK round. Attempt k >= 1:
  // backoff wait, at most the full data schedule again (retransmissions
  // fit in a sub-schedule of the original), one ACK round.
  std::size_t total = 0;
  std::size_t backoff = backoff_base_rounds;
  for (std::size_t k = 0; k < attempts; ++k) {
    if (k > 0) {
      total += std::min(backoff, backoff_cap_rounds);
      if (backoff < backoff_cap_rounds) backoff *= 2;
    }
    total += data_rounds + 1;
  }
  return total;
}

}  // namespace sttsv::schedule
