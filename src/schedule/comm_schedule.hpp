#pragma once
// Explicit point-to-point communication schedules (paper Section 7.2.2,
// Theorem 7.2.2, and the Figure 1 example).
//
// In Algorithm 5 every ordered processor pair (p, p') with
// |R_p ∩ R_p'| = w > 0 exchanges exactly one message per vector carrying
// w row-block shares (w ∈ {1, 2}: two Steiner blocks meet in at most two
// points). Both the "two-block" and "one-block" partner graphs are
// regular, so each decomposes into perfect matchings (rounds) by König:
// in every round each processor sends one message and receives one.
//
// Round totals: q²(q+1)/2 two-block rounds + (q²-1) one-block rounds
// = q³/2 + 3q²/2 - 1 per vector for the spherical family — fewer than the
// P-1 steps an All-to-All collective needs.

#include <cstddef>
#include <vector>

#include "partition/tetra_partition.hpp"

namespace sttsv::schedule {

/// One communication step: send_to[p] is the destination of processor p's
/// message in this round (kNone if p is idle), blocks_per_message is the
/// number of row-block shares each message in this round carries.
struct Round {
  std::vector<std::size_t> send_to;
  std::size_t blocks_per_message = 0;

  /// True iff send_to restricted to non-idle entries is injective and no
  /// processor both stays idle as sender but appears as receiver twice.
  [[nodiscard]] bool is_valid_step() const;
};

struct PartnerProfile {
  std::size_t two_block_partners = 0;
  std::size_t one_block_partners = 0;
};

/// Partner counts of processor p (paper: q²(q+1)/2 and q²-1 for the
/// spherical family).
PartnerProfile partner_profile(const partition::TetraPartition& part,
                               std::size_t p);

class CommSchedule {
 public:
  [[nodiscard]] const std::vector<Round>& rounds() const { return rounds_; }
  [[nodiscard]] std::size_t num_rounds() const { return rounds_.size(); }
  [[nodiscard]] std::size_t two_block_rounds() const { return two_rounds_; }
  [[nodiscard]] std::size_t one_block_rounds() const { return one_rounds_; }

  /// Checks that every ordered pair with weight w appears in exactly one
  /// round of message class w, and every round is a valid step.
  void validate(const partition::TetraPartition& part) const;

  friend CommSchedule build_schedule(const partition::TetraPartition& part);

 private:
  std::vector<Round> rounds_;
  std::size_t two_rounds_ = 0;
  std::size_t one_rounds_ = 0;
};

/// Builds the round schedule for one vector exchange of Algorithm 5.
CommSchedule build_schedule(const partition::TetraPartition& part);

/// |R_p ∩ R_peer| — row blocks the ordered pair exchanges (0, 1 or 2).
std::size_t pair_weight(const partition::TetraPartition& part,
                        std::size_t p, std::size_t peer);

/// Worst-case round count for one resilient exchange (DESIGN.md §10)
/// realized over a schedule whose fault-free data phase takes
/// `data_rounds` König steps: every attempt retransmits at most the full
/// data schedule and settles in one ACK round, and attempt k >= 1 first
/// waits the exponential backoff min(cap, base << (k-1)). The measured
/// ledger rounds (goodput + overhead) of a ReliableExchange run never
/// exceed this bound for the attempts it actually used.
std::size_t rounds_with_retries(std::size_t data_rounds,
                                std::size_t attempts,
                                std::size_t backoff_base_rounds,
                                std::size_t backoff_cap_rounds);

}  // namespace sttsv::schedule
