// AVX2/FMA instantiation of the panel kernels. Compiled only when
// STTSV_ENABLE_SIMD resolves, with -mavx2 -mfma -ffp-contract=off (the
// contraction ban keeps the bitwise contract with the scalar
// instantiation — see panel_kernels_impl.hpp).

#include "batch/panel_kernels_impl.hpp"

#ifndef STTSV_SIMD_TU_HAS_AVX2
#error "panel_kernels_avx2.cpp must be compiled with -mavx2"
#endif

namespace sttsv::batch::detail {

const PanelVTable& avx2_panel_vtable() {
  static const PanelVTable t = make_panel_vtable<simt::simd::VecAvx2>();
  return t;
}

}  // namespace sttsv::batch::detail
