#pragma once
// Templated bodies of the lane-blocked panel kernels (DESIGN.md §9, §13).
//
// Panels are lane-interleaved — element l of lane v lives at l*stride+v —
// so a chunk of simd::kLanes panel lanes is one contiguous vector load.
// Each kernel is a template over the 4-lane vector type V and a Full flag
// (Full = a whole lane chunk; !Full = a masked partial chunk of m < 4
// lanes), instantiated in panel_kernels.cpp (VecScalar, always built) and
// panel_kernels_avx2.cpp (VecAvx2, -mavx2 -mfma). Both TUs are compiled
// with -ffp-contract=off.
//
// Bitwise contract: lane v of the output equals running the single-vector
// core kernels on lane v alone, bit for bit. The core kernels follow the
// canonical arithmetic order of DESIGN.md §13.1 (4 k-partial sums over
// full 4-chunks combined as (p0+p1)+(p2+p3), sequential leftovers, one
// rounded mul+add per elementwise update); the panel kernels replay that
// exact per-lane scalar sequence with the k-partials held as 4 lane
// vectors — vector lane = panel lane, partial index = k position mod 4.

#include <cstddef>
#include <cstdint>

#include "simt/simd.hpp"

#ifndef STTSV_RESTRICT
#define STTSV_RESTRICT __restrict__
#endif

namespace sttsv::batch::detail {

/// Packed offset of the row (gi, gj, *): data[row + gk] is a_{gi,gj,gk}.
inline std::size_t packed_row_base(std::size_t gi, std::size_t gj) {
  return gi * (gi + 1) * (gi + 2) / 6 + gj * (gj + 1) / 2;
}

template <class V, bool Full>
inline V lane_load(const double* p, std::size_t m) {
  if constexpr (Full) {
    (void)m;
    return V::load(p);
  } else {
    return V::load_partial(p, m);
  }
}

template <class V, bool Full>
inline void lane_store(double* p, std::size_t m, V v) {
  if constexpr (Full) {
    (void)m;
    v.store(p);
  } else {
    v.store_partial(p, m);
  }
}

/// One strict row over a k-run of length kb for one lane chunk: returns
/// the per-lane dot product Σ_lk row[lk]·xk[lk] in the canonical partial
/// order and applies yk[lk] += cy·row[lk] elementwise. Per lane this is
/// exactly core::detail::strict_rows with RJ = 1.
template <class V, bool Full>
inline V panel_strict_row(const double* STTSV_RESTRICT row, std::size_t kb,
                          V cy, const double* STTSV_RESTRICT xk,
                          double* STTSV_RESTRICT yk, std::size_t stride,
                          std::size_t m) {
  V acc[simt::simd::kLanes];
  for (auto& a : acc) a = V::zero();
  std::size_t lk = 0;
  for (; lk + simt::simd::kLanes <= kb; lk += simt::simd::kLanes) {
    for (std::size_t p = 0; p < simt::simd::kLanes; ++p) {
      const V vv = V::broadcast(row[lk + p]);
      const double* xp = xk + (lk + p) * stride;
      double* yp = yk + (lk + p) * stride;
      acc[p] = acc[p] + vv * lane_load<V, Full>(xp, m);
      lane_store<V, Full>(yp, m, lane_load<V, Full>(yp, m) + cy * vv);
    }
  }
  // Canonical combine, then sequential leftovers (cf. VecScalar::reduce).
  V accv = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (; lk < kb; ++lk) {
    const V vv = V::broadcast(row[lk]);
    const double* xp = xk + lk * stride;
    double* yp = yk + lk * stride;
    accv = accv + vv * lane_load<V, Full>(xp, m);
    lane_store<V, Full>(yp, m, lane_load<V, Full>(yp, m) + cy * vv);
  }
  return accv;
}

/// One face_jk/central row: strict run of lj elements plus the gk == gj
/// tail element at row[lj]; mirrors core::detail::face_jk_row.
template <class V, bool Full>
inline void panel_face_jk_row(const double* STTSV_RESTRICT row,
                              std::size_t lj, V xiv, V xjv,
                              const double* STTSV_RESTRICT xjk,
                              double* STTSV_RESTRICT yjk, V& yi_row,
                              std::size_t stride, std::size_t m) {
  const V two = V::broadcast(2.0);
  const V cy = (two * xiv) * xjv;
  const V acc = panel_strict_row<V, Full>(row, lj, cy, xjk, yjk, stride, m);
  const V vt = V::broadcast(row[lj]);
  yi_row = yi_row + ((two * xjv) * acc + (vt * xjv) * xjv);
  double* yp = yjk + lj * stride;
  lane_store<V, Full>(
      yp, m,
      lane_load<V, Full>(yp, m) +
          ((two * xiv) * acc + ((two * vt) * xiv) * xjv));
}

template <class V, bool Full>
void interior_panel(const double* STTSV_RESTRICT data, std::size_t i0,
                    std::size_t i_end, std::size_t j0, std::size_t j_end,
                    std::size_t k0, std::size_t k_end,
                    const double* STTSV_RESTRICT xi,
                    const double* STTSV_RESTRICT xj,
                    const double* STTSV_RESTRICT xk,
                    double* STTSV_RESTRICT yi, double* STTSV_RESTRICT yj,
                    double* STTSV_RESTRICT yk, std::size_t stride,
                    std::size_t m) {
  const std::size_t kb = k_end - k0;
  const V two = V::broadcast(2.0);
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const V xiv = lane_load<V, Full>(xi + li * stride, m);
    V yi_row = V::zero();
    for (std::size_t gj = j0; gj < j_end; ++gj) {
      const std::size_t lj = gj - j0;
      const V xjv = lane_load<V, Full>(xj + lj * stride, m);
      const double* row = data + packed_row_base(gi, gj) + k0;
      const V cy = (two * xiv) * xjv;
      const V acc = panel_strict_row<V, Full>(row, kb, cy, xk, yk, stride, m);
      yi_row = yi_row + xjv * acc;
      double* yp = yj + lj * stride;
      lane_store<V, Full>(yp, m,
                          lane_load<V, Full>(yp, m) + (two * xiv) * acc);
    }
    double* yp = yi + li * stride;
    lane_store<V, Full>(yp, m, lane_load<V, Full>(yp, m) + two * yi_row);
  }
}

template <class V, bool Full>
void face_ij_panel(const double* STTSV_RESTRICT data, std::size_t i0,
                   std::size_t i_end, std::size_t k0, std::size_t k_end,
                   const double* STTSV_RESTRICT xij,
                   const double* STTSV_RESTRICT xk,
                   double* STTSV_RESTRICT yij, double* STTSV_RESTRICT yk,
                   std::size_t stride, std::size_t m) {
  const std::size_t kb = k_end - k0;
  const V two = V::broadcast(2.0);
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const V xiv = lane_load<V, Full>(xij + li * stride, m);
    V yi_row = V::zero();
    for (std::size_t gj = i0; gj < gi; ++gj) {
      const std::size_t lj = gj - i0;
      const V xjv = lane_load<V, Full>(xij + lj * stride, m);
      const double* row = data + packed_row_base(gi, gj) + k0;
      const V cy = (two * xiv) * xjv;
      const V acc = panel_strict_row<V, Full>(row, kb, cy, xk, yk, stride, m);
      yi_row = yi_row + xjv * acc;
      double* yp = yij + lj * stride;
      lane_store<V, Full>(yp, m,
                          lane_load<V, Full>(yp, m) + (two * xiv) * acc);
    }
    // gj == gi diagonal row, hoisted exactly as in the single kernel.
    const double* row = data + packed_row_base(gi, gi) + k0;
    const V cy = xiv * xiv;
    const V acc = panel_strict_row<V, Full>(row, kb, cy, xk, yk, stride, m);
    double* yp = yij + li * stride;
    lane_store<V, Full>(yp, m,
                        lane_load<V, Full>(yp, m) + two * (yi_row + xiv * acc));
  }
}

template <class V, bool Full>
void face_jk_panel(const double* STTSV_RESTRICT data, std::size_t i0,
                   std::size_t i_end, std::size_t j0, std::size_t j_end,
                   const double* STTSV_RESTRICT xi,
                   const double* STTSV_RESTRICT xjk,
                   double* STTSV_RESTRICT yi, double* STTSV_RESTRICT yjk,
                   std::size_t stride, std::size_t m) {
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    const V xiv = lane_load<V, Full>(xi + li * stride, m);
    V yi_row = V::zero();
    for (std::size_t gj = j0; gj < j_end; ++gj) {
      const std::size_t lj = gj - j0;
      panel_face_jk_row<V, Full>(data + gi_base + gj * (gj + 1) / 2 + j0, lj,
                                 xiv, lane_load<V, Full>(xjk + lj * stride, m),
                                 xjk, yjk, yi_row, stride, m);
    }
    double* yp = yi + li * stride;
    lane_store<V, Full>(yp, m, lane_load<V, Full>(yp, m) + yi_row);
  }
}

/// Central diagonal block: all three slots alias one x/y panel pair.
/// Mirrors core::detail::central_kernel (face_jk rows below the diagonal
/// row plus the central element) — replacing the seed's element-wise
/// generic panel walk so central lanes stay bitwise-tied to the core.
template <class V, bool Full>
void central_panel(const double* STTSV_RESTRICT data, std::size_t i0,
                   std::size_t i_end, const double* STTSV_RESTRICT x,
                   double* STTSV_RESTRICT y, std::size_t stride,
                   std::size_t m) {
  const V two = V::broadcast(2.0);
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    const V xiv = lane_load<V, Full>(x + li * stride, m);
    V yi_row = V::zero();
    for (std::size_t gj = i0; gj < gi; ++gj) {
      const std::size_t lj = gj - i0;
      panel_face_jk_row<V, Full>(data + gi_base + gj * (gj + 1) / 2 + i0, lj,
                                 xiv, lane_load<V, Full>(x + lj * stride, m),
                                 x, y, yi_row, stride, m);
    }
    const double* row = data + gi_base + gi * (gi + 1) / 2 + i0;
    const V cy = xiv * xiv;
    const V acc = panel_strict_row<V, Full>(row, li, cy, x, y, stride, m);
    const V vt = V::broadcast(row[li]);
    double* yp = y + li * stride;
    lane_store<V, Full>(
        yp, m,
        lane_load<V, Full>(yp, m) +
            ((yi_row + (two * xiv) * acc) + (vt * xiv) * xiv));
  }
}

/// Function-pointer table of one ISA instantiation; one full-chunk and
/// one masked partial-chunk entry point per block class.
struct PanelVTable {
  using InteriorFn = void (*)(const double*, std::size_t, std::size_t,
                              std::size_t, std::size_t, std::size_t,
                              std::size_t, const double*, const double*,
                              const double*, double*, double*, double*,
                              std::size_t, std::size_t);
  using FaceIjFn = void (*)(const double*, std::size_t, std::size_t,
                            std::size_t, std::size_t, const double*,
                            const double*, double*, double*, std::size_t,
                            std::size_t);
  using FaceJkFn = void (*)(const double*, std::size_t, std::size_t,
                            std::size_t, std::size_t, const double*,
                            const double*, double*, double*, std::size_t,
                            std::size_t);
  using CentralFn = void (*)(const double*, std::size_t, std::size_t,
                             const double*, double*, std::size_t,
                             std::size_t);
  InteriorFn interior_full, interior_part;
  FaceIjFn face_ij_full, face_ij_part;
  FaceJkFn face_jk_full, face_jk_part;
  CentralFn central_full, central_part;
};

template <class V>
PanelVTable make_panel_vtable() {
  PanelVTable t;
  t.interior_full = &interior_panel<V, true>;
  t.interior_part = &interior_panel<V, false>;
  t.face_ij_full = &face_ij_panel<V, true>;
  t.face_ij_part = &face_ij_panel<V, false>;
  t.face_jk_full = &face_jk_panel<V, true>;
  t.face_jk_part = &face_jk_panel<V, false>;
  t.central_full = &central_panel<V, true>;
  t.central_part = &central_panel<V, false>;
  return t;
}

/// Defined in panel_kernels_avx2.cpp when STTSV_HAVE_AVX2_KERNELS.
const PanelVTable& avx2_panel_vtable();

}  // namespace sttsv::batch::detail
