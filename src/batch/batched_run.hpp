#pragma once
// Batched multi-vector STTSV (DESIGN.md §9): run y_v = A ×₂ x_v ×₃ x_v
// for a panel of B vectors against one tensor in a single Algorithm-5
// pass. All B shares travelling between an ordered rank pair ride in ONE
// aggregated message per phase, so the per-rank message count is that of
// a single-vector run (independent of B) while words sent are exactly
// B × the single-vector ledger value — the per-vector word count stays
// at the paper's optimum and the per-vector latency term drops ~B×.
//
// Wire format: a phase-1 message from p to peer is the concatenation,
// over common row blocks ascending, of p's share slice of each block,
// each slice lane-interleaved (element-major, lane index innermost).
// Phase-3 messages carry the receiver's share slices in the same layout.
// Receivers replay the identical deterministic walk from the Plan.

#include <cstdint>
#include <vector>

#include "batch/plan.hpp"
#include "simt/ledger.hpp"
#include "simt/machine.hpp"
#include "simt/pipeline.hpp"
#include "simt/reliable_exchange.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::batch {

struct BatchRunResult {
  /// y[v] is the assembled output for input vector v, logical length n.
  std::vector<std::vector<double>> y;
  /// Ternary multiplications per rank, summed over the batch.
  std::vector<std::uint64_t> ternary_mults;
  /// Ledger maxima after this run (CommLedger::maxima()).
  simt::LedgerMaxima maxima;
};

/// Runs the batch {x_0..x_{B-1}} (B >= 1) through one aggregated
/// Algorithm-5 pass using `plan`'s precomputed partition, distribution
/// and exchange walk. Lane v of the result is bitwise identical to
/// core::parallel_sttsv(machine, ..., x_v, plan.key().transport).
/// Requirements: machine.num_ranks() == plan.num_processors(),
/// a.dim() == plan.key().n, every x_v of length n.
/// `pipeline` selects the phase schedule (see core::parallel_sttsv):
/// kDoubleBuffered overlaps pair-block chunks, kSerialized is the
/// historical order; lanes and ledger are identical either way.
BatchRunResult parallel_sttsv_batch(
    simt::Machine& machine, const Plan& plan, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& x,
    simt::PipelineMode pipeline = simt::PipelineMode::kDoubleBuffered);

/// Same batch, communication routed through `exchanger` (DESIGN.md §10):
/// with simt::ReliableExchange the aggregated panel exchanges survive
/// injected wire faults bitwise, goodput stays at B × the single-vector
/// optimum, and protocol cost lands on the ledger's overhead channel.
/// Phases are labeled "x-panel" and "y-panel" in any FaultReport.
BatchRunResult parallel_sttsv_batch(
    simt::Exchanger& exchanger, const Plan& plan, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& x,
    simt::PipelineMode pipeline = simt::PipelineMode::kDoubleBuffered);

}  // namespace sttsv::batch
