#pragma once
// Memoized execution plans for repeated STTSV runs against one tensor
// shape (DESIGN.md §9). Building a run's combinatorial state — the
// Steiner system, the tetrahedral partition, the vector distribution and
// the per-pair exchange walk — costs far more than a single apply once
// the tensor is resident, and none of it depends on the vector values.
// A Plan captures all of it immutably; a PlanCache memoizes Plans by
// (n, P, Steiner family, transport) with LRU eviction so serving
// workloads (batch::Engine, multi-start HOPM, CP sweeps) pay setup once.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::batch {

/// Which built-in Steiner (m, r, 3) construction backs the partition.
enum class Family : std::uint8_t {
  kSpherical,  // S(q²+1, q+1, 3), param = q (prime power)
  kBoolean,    // S(2^k, 4, 3),    param = k >= 3
  kTrivial,    // S(m, 3, 3),      param = m >= 4
};

/// Cache key: everything a plan's structure depends on. `processors` is
/// derived from (family, param) — plan_key() fills it — but stays in the
/// key so lookups are self-describing and mismatches fail loudly.
struct PlanKey {
  std::size_t n = 0;           // logical vector/tensor dimension
  std::size_t processors = 0;  // P = number of Steiner blocks
  Family family = Family::kSpherical;
  std::uint64_t param = 0;     // q / k / m, per Family
  simt::Transport transport = simt::Transport::kPointToPoint;
  /// Membership epoch the plan was built for (Machine::membership_epoch).
  /// Plans are structurally identical across epochs, but keying on the
  /// epoch invalidates cached plans after an elastic shrink: stale
  /// entries age out of the LRU instead of being served to a machine
  /// whose live set no longer matches.
  std::uint64_t epoch = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

/// Builds a key with `processors` computed from the family formulas
/// (spherical q(q²+1), boolean 2^k(2^k-1)(2^k-2)/24, trivial C(m,3)).
PlanKey plan_key(std::size_t n, Family family, std::uint64_t param,
                 simt::Transport transport);

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept;
};

/// An immutable, shareable plan: partition + distribution + the exchange
/// walk of Algorithm 5 precomputed per ordered rank pair. parallel_sttsv
/// rederives this walk (peer sets, R_p intersections, shares) on every
/// call; batched runs read it straight from the plan.
class Plan {
 public:
  /// One row-block share inside one aggregated message for the ordered
  /// pair (p, peer): `sender` is p's share of row block `block` (what a
  /// phase-1 x message carries), `receiver` is the peer's share (what a
  /// phase-3 partial-y message carries).
  struct BlockSlice {
    std::size_t block = 0;
    partition::Share sender;
    partition::Share receiver;
  };

  /// All traffic between p and one peer, slices in ascending block order
  /// (the deterministic walk both endpoints replay).
  struct PeerExchange {
    std::size_t peer = 0;
    std::vector<BlockSlice> slices;
    std::size_t x_words = 0;  // per-vector words sent p -> peer in phase 1
    std::size_t y_words = 0;  // per-vector words sent p -> peer in phase 3
  };

  /// Builds the plan for `key` (constructs the Steiner system, partition,
  /// distribution, and exchange walks). Throws PreconditionError on an
  /// inadmissible key (e.g. non-prime-power q).
  static std::shared_ptr<const Plan> build(const PlanKey& key);

  [[nodiscard]] const PlanKey& key() const { return key_; }
  [[nodiscard]] const partition::TetraPartition& partition() const {
    return *part_;
  }
  [[nodiscard]] const partition::VectorDistribution& distribution() const {
    return *dist_;
  }
  [[nodiscard]] std::size_t num_processors() const { return key_.processors; }

  /// Exchanges of rank p, ascending peer order; only peers with traffic.
  [[nodiscard]] const std::vector<PeerExchange>& exchanges(
      std::size_t p) const {
    return exchanges_[p];
  }

  /// The exchange record for the ordered pair (from, to); both ranks must
  /// actually exchange data (throws otherwise).
  [[nodiscard]] const PeerExchange& exchange_between(std::size_t from,
                                                     std::size_t to) const;

  /// Owned blocks of p (cached copy of partition().owned_blocks(p)).
  [[nodiscard]] const std::vector<partition::BlockCoord>& owned(
      std::size_t p) const {
    return owned_[p];
  }

  /// Position of row block i within R_p (p's local block numbering).
  [[nodiscard]] std::size_t local_index(std::size_t p, std::size_t i) const;

  /// A machine sized for this plan.
  [[nodiscard]] simt::Machine make_machine() const {
    return simt::Machine(key_.processors);
  }

  /// Pre-sizes a machine's BufferPool from this plan's exchange walk: for
  /// every (rank, peer) message of up to `lanes` aggregated vectors, the
  /// serving slab bucket is topped up, so the first batch — not just the
  /// second — runs the message path allocation-free (DESIGN.md §12).
  /// Also covers ReliableExchange's framed copies (header + payload).
  void prewarm_pool(simt::BufferPool& pool, std::size_t lanes) const;

 private:
  Plan(PlanKey key, std::unique_ptr<partition::TetraPartition> part,
       std::unique_ptr<partition::VectorDistribution> dist);

  PlanKey key_;
  std::unique_ptr<partition::TetraPartition> part_;
  std::unique_ptr<partition::VectorDistribution> dist_;
  std::vector<std::vector<PeerExchange>> exchanges_;
  std::vector<std::vector<partition::BlockCoord>> owned_;
  // local_index lookup: per rank, row block -> position in R_p (or npos).
  std::vector<std::vector<std::size_t>> local_index_;
};

/// LRU-memoized Plan::build. Hits return the cached shared_ptr (pointer
/// identity); misses build, insert, and evict the least recently used
/// entry beyond `capacity`. Not thread-safe: the simulated machine is
/// driven from one thread (host threads live below run_ranks only).
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 8);

  std::shared_ptr<const Plan> get(const PlanKey& key);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  void clear();

  /// Publishes hit/miss/size/capacity into `out` as "<prefix>.*" counters,
  /// set absolutely so re-export is idempotent.
  void publish_metrics(obs::MetricsRegistry& out,
                       const std::string& prefix = "plan_cache") const;

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const Plan>>;
  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sttsv::batch
