#include "batch/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "onesided/make_exchanger.hpp"
#include "support/check.hpp"

namespace sttsv::batch {

Engine::Engine(simt::Machine& machine, std::shared_ptr<const Plan> plan,
               const tensor::SymTensor3& a, EngineOptions opts)
    : machine_(machine), plan_(std::move(plan)), a_(a), opts_(opts) {
  STTSV_REQUIRE(plan_ != nullptr, "engine needs a plan");
  STTSV_REQUIRE(opts_.max_batch_size >= 1, "batch size must be >= 1");
  STTSV_REQUIRE(machine_.num_ranks() == plan_->num_processors(),
                "machine rank count must match plan");
  STTSV_REQUIRE(a_.dim() == plan_->key().n,
                "tensor dimension must match plan");
  STTSV_REQUIRE(opts_.exchanger == nullptr ||
                    &opts_.exchanger->machine() == &machine_,
                "engine exchanger must wrap the engine's machine");
  if (opts_.exchanger == nullptr &&
      (opts_.transport != simt::TransportKind::kDirect ||
       !opts_.topology.empty())) {
    // A bare topology (flat transport) still goes through the factory:
    // it installs the node map so the ledger splits by level.
    simt::ExchangerConfig config;
    config.kind = opts_.transport;
    config.node_of = opts_.topology;
    config.hier_inter = opts_.hier_inter;
    owned_exchanger_ = simt::make_exchanger(machine_, config);
    opts_.exchanger = owned_exchanger_.get();
  }
  // Size the pool for a full-width batch up front so even the first
  // batch's message path is allocation-free (DESIGN.md §12), then fault
  // the reserved slabs in from their consumer threads (DESIGN.md §17).
  plan_->prewarm_pool(machine_.pool(), opts_.max_batch_size);
  machine_.first_touch();
}

void Engine::assert_owner() const {
#ifdef STTSV_DEBUG_CHECKS
  std::thread::id expected{};
  const std::thread::id self = std::this_thread::get_id();
  if (!owner_.compare_exchange_strong(expected, self,
                                      std::memory_order_relaxed)) {
    STTSV_DCHECK(expected == self,
                 "batch::Engine is single-threaded: call from the owning "
                 "thread or rebind_owner() first");
  }
#endif
}

std::size_t Engine::submit(std::vector<double> x, Callback callback) {
  assert_owner();
  STTSV_REQUIRE(x.size() == plan_->key().n, "request vector length mismatch");
  const std::size_t id = next_id_++;
  queue_.push_back(Request{id, std::move(x), std::move(callback)});
  ++stats_.requests_submitted;
  if (queue_.size() >= opts_.max_batch_size) run_one_batch();
  return id;
}

void Engine::flush() {
  assert_owner();
  while (!queue_.empty()) run_one_batch();
}

std::vector<std::vector<double>> Engine::cancel_pending() {
  assert_owner();
  std::vector<std::vector<double>> xs;
  xs.reserve(queue_.size());
  while (!queue_.empty()) {
    xs.push_back(std::move(queue_.front().x));
    queue_.pop_front();
  }
  return xs;
}

void Engine::rebind_plan(std::shared_ptr<const Plan> plan) {
  assert_owner();
  STTSV_REQUIRE(plan != nullptr, "engine needs a plan");
  STTSV_REQUIRE(plan->key().n == plan_->key().n,
                "rebound plan must keep the tensor dimension");
  STTSV_REQUIRE(machine_.num_ranks() == plan->num_processors(),
                "machine rank count must match the rebound plan");
  plan->prewarm_pool(machine_.pool(), opts_.max_batch_size);
  machine_.first_touch();
  plan_ = std::move(plan);
}

void Engine::run_one_batch() {
  const std::size_t B = std::min(queue_.size(), opts_.max_batch_size);
  STTSV_CHECK(B >= 1, "empty batch");
  obs::Span span("engine.batch", obs::Category::kEngineFlush, B);
  std::vector<std::vector<double>> x(B);
  for (std::size_t v = 0; v < B; ++v) x[v] = queue_[v].x;

  // Requests leave the queue only after the batch succeeds: a FaultError
  // from a fail-fast resilient exchange propagates with the batch still
  // queued, so the caller can retry flush() (inputs were copied, not
  // consumed).
  BatchRunResult result =
      opts_.exchanger != nullptr
          ? parallel_sttsv_batch(*opts_.exchanger, *plan_, a_, x,
                                 opts_.pipeline)
          : parallel_sttsv_batch(machine_, *plan_, a_, x, opts_.pipeline);

  std::vector<Request> batch;
  batch.reserve(B);
  for (std::size_t v = 0; v < B; ++v) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++stats_.batches_run;
  stats_.largest_batch = std::max(stats_.largest_batch, B);
  for (std::size_t v = 0; v < B; ++v) {
    if (batch[v].callback) {
      batch[v].callback(batch[v].id, std::move(result.y[v]));
    }
    ++stats_.requests_completed;
  }
}

void Engine::publish_metrics(obs::MetricsRegistry& out,
                             const std::string& prefix) const {
  out.set_counter(prefix + ".requests_submitted", stats_.requests_submitted);
  out.set_counter(prefix + ".requests_completed", stats_.requests_completed);
  out.set_counter(prefix + ".batches_run", stats_.batches_run);
  out.set_counter(prefix + ".largest_batch", stats_.largest_batch);
  out.set_counter(prefix + ".pending", queue_.size());
}

}  // namespace sttsv::batch
