#pragma once
// Request scheduler over the batched STTSV engine (DESIGN.md §9).
// Callers submit independent (x, callback) requests against one resident
// tensor; the engine admits them into a FIFO queue and forms batches
// deterministically: a batch is cut as soon as max_batch_size requests
// are pending (auto-flush) or when flush() drains the queue. Batches
// preserve submission order, so a given request sequence always produces
// the same batch boundaries, the same aggregated messages, and bitwise
// identical outputs — the serving-path analogue of the repo's
// "host parallelism must be unobservable" rule.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "batch/batched_run.hpp"
#include "batch/plan.hpp"
#include "simt/machine.hpp"
#include "simt/reliable_exchange.hpp"
#include "simt/transport_kind.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::batch {

struct EngineOptions {
  /// Auto-flush threshold: a batch runs as soon as this many requests
  /// are pending. flush() also cuts batches of at most this size.
  std::size_t max_batch_size = 16;
  /// Optional resilience seam (DESIGN.md §10): when set, batches run
  /// through this exchanger (it must wrap the engine's machine). With a
  /// simt::ReliableExchange under kFailFast, a batch whose retry budget
  /// is exhausted raises simt::FaultError out of submit()/flush() — the
  /// batch's requests stay queued, so the caller may retry the flush;
  /// under kDegrade the batch completes and the exchanger's reports()
  /// record the degraded exchanges. Non-owning; must outlive the engine.
  simt::Exchanger* exchanger = nullptr;
  /// Transport backend when `exchanger` is unset (DESIGN.md §16): the
  /// engine builds and owns the exchanger via simt::make_exchanger, so
  /// callers pick one-sided or active-message batches with a single enum
  /// (serve::FrontendOptions and STTSV_TRANSPORT forward to this).
  /// Ignored when an explicit `exchanger` is supplied.
  simt::TransportKind transport = simt::TransportKind::kDirect;
  /// Phase schedule for every batch (see core::parallel_sttsv): outputs
  /// and ledger channels are identical under both modes (DESIGN.md §12).
  simt::PipelineMode pipeline = simt::PipelineMode::kDoubleBuffered;
  /// Rank -> node map (DESIGN.md §17). Non-empty: the engine installs it
  /// on the machine's ledger (per-level accounting) and, when `transport`
  /// is kHierarchical, builds the hierarchical backend over it. Empty
  /// with kHierarchical: the STTSV_TOPOLOGY=NxM environment override
  /// supplies the map. Ignored when an explicit `exchanger` is supplied.
  std::vector<std::uint32_t> topology;
  /// Inner backend for the inter-node traffic under kHierarchical
  /// (direct, reliable or onesided).
  simt::TransportKind hier_inter = simt::TransportKind::kDirect;
};

struct EngineStats {
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t batches_run = 0;
  std::size_t largest_batch = 0;
};

/// Threading contract: the engine is single-threaded by design — batches
/// run inline on the submitting thread and the simulated machine is
/// driven from one thread (host parallelism lives below run_ranks). The
/// first thread to call submit()/flush()/pending() becomes the owner;
/// Debug builds (STTSV_DEBUG_CHECKS) assert every later call arrives on
/// that thread. Concurrent callers — the serve front end's lanes — must
/// serialize above the engine (serve::Frontend pumps from one thread) or
/// take ownership explicitly with rebind_owner().
class Engine {
 public:
  /// Called with the request id and the finished y = A ×₂ x ×₃ x.
  using Callback =
      std::function<void(std::size_t id, std::vector<double> y)>;

  /// The machine, plan and tensor must outlive the engine; the tensor
  /// dimension must match plan.key().n.
  Engine(simt::Machine& machine, std::shared_ptr<const Plan> plan,
         const tensor::SymTensor3& a, EngineOptions opts = {});

  /// Admits one request; returns its id (dense, starting at 0). Runs a
  /// batch inline — invoking callbacks before returning — whenever the
  /// pending count reaches max_batch_size.
  std::size_t submit(std::vector<double> x, Callback callback);

  /// Drains the queue: runs pending requests in batches of at most
  /// max_batch_size, in submission order.
  void flush();

  /// Abandons every pending request without running it: returns the
  /// queued input vectors in submission order and drops the callbacks.
  /// The recovery seam (DESIGN.md §15): after a simt::FaultError escapes
  /// submit()/flush(), the caller reclaims the inputs, shrinks/rebinds,
  /// and resubmits under its own bookkeeping (serve::Frontend re-parks
  /// them under the original job handles).
  std::vector<std::vector<double>> cancel_pending();

  /// Swaps in a new plan mid-life (same n, same machine width) — the
  /// elastic-shrink hook: after a membership change the caller rebuilds
  /// the plan under a fresh PlanKey::epoch and rebinds without tearing
  /// the engine (and its queue/stats/ids) down. Prewarms the pool for
  /// the new plan's walk.
  void rebind_plan(std::shared_ptr<const Plan> plan);

  [[nodiscard]] std::size_t pending() const {
    assert_owner();
    return queue_.size();
  }

  /// Deliberate ownership handoff: the next submit/flush/pending call may
  /// come from any thread (which then becomes the new owner). The caller
  /// is responsible for the happens-before edge between the old owner's
  /// last call and the new owner's first.
  void rebind_owner() { owner_.store(std::thread::id{}, std::memory_order_relaxed); }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const Plan& plan() const { return *plan_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }

  /// Publishes EngineStats (plus the current pending count) into `out` as
  /// "<prefix>.*" counters, set absolutely so re-export is idempotent.
  void publish_metrics(obs::MetricsRegistry& out,
                       const std::string& prefix = "engine") const;

 private:
  void run_one_batch();
  /// Debug-only single-threaded-use assertion (see class comment): binds
  /// the owner on first call, then STTSV_DCHECKs every later caller.
  void assert_owner() const;

  struct Request {
    std::size_t id = 0;
    std::vector<double> x;
    Callback callback;
  };

  simt::Machine& machine_;
  std::shared_ptr<const Plan> plan_;
  const tensor::SymTensor3& a_;
  EngineOptions opts_;
  /// Backend built from opts_.transport when no explicit exchanger was
  /// supplied; opts_.exchanger aliases it for the batch path.
  std::unique_ptr<simt::Exchanger> owned_exchanger_;
  std::deque<Request> queue_;
  std::size_t next_id_ = 0;
  EngineStats stats_;
  /// Single-threaded-use witness; id{} until the first public call.
  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace sttsv::batch
