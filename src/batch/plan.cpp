#include "batch/plan.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "steiner/constructions.hpp"
#include "support/check.hpp"

namespace sttsv::batch {

namespace {

std::size_t family_processor_count(Family family, std::uint64_t param) {
  switch (family) {
    case Family::kSpherical:
      return static_cast<std::size_t>(param * (param * param + 1));
    case Family::kBoolean: {
      const std::uint64_t m = 1ULL << param;
      return static_cast<std::size_t>(m * (m - 1) * (m - 2) / 24);
    }
    case Family::kTrivial:
      return static_cast<std::size_t>(param * (param - 1) * (param - 2) / 6);
  }
  STTSV_CHECK(false, "unknown Steiner family");
  return 0;
}

steiner::SteinerSystem build_system(const PlanKey& key) {
  switch (key.family) {
    case Family::kSpherical:
      return steiner::spherical_system(key.param);
    case Family::kBoolean:
      return steiner::boolean_quadruple_system(
          static_cast<unsigned>(key.param));
    case Family::kTrivial:
      return steiner::trivial_triple_system(
          static_cast<std::size_t>(key.param));
  }
  STTSV_CHECK(false, "unknown Steiner family");
}

}  // namespace

PlanKey plan_key(std::size_t n, Family family, std::uint64_t param,
                 simt::Transport transport) {
  PlanKey key;
  key.n = n;
  key.family = family;
  key.param = param;
  key.transport = transport;
  key.processors = family_processor_count(family, param);
  return key;
}

std::size_t PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  std::size_t h = k.n;
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(k.processors);
  mix(static_cast<std::size_t>(k.family));
  mix(static_cast<std::size_t>(k.param));
  mix(static_cast<std::size_t>(k.transport));
  mix(static_cast<std::size_t>(k.epoch));
  return h;
}

Plan::Plan(PlanKey key, std::unique_ptr<partition::TetraPartition> part,
           std::unique_ptr<partition::VectorDistribution> dist)
    : key_(key), part_(std::move(part)), dist_(std::move(dist)) {
  const std::size_t P = part_->num_processors();
  const std::size_t m = part_->num_row_blocks();

  // Peers of p and the blocks shared with each: by the Steiner property
  // two distinct subsets R_p, R_peer meet in at most 2 points, so every
  // PeerExchange carries 1 or 2 slices (Section 7.2.2).
  exchanges_.resize(P);
  owned_.resize(P);
  local_index_.assign(P, std::vector<std::size_t>(m, SIZE_MAX));
  for (std::size_t p = 0; p < P; ++p) {
    owned_[p] = part_->owned_blocks(p);
    const auto& rp = part_->R(p);
    for (std::size_t pos = 0; pos < rp.size(); ++pos) {
      local_index_[p][rp[pos]] = pos;
    }
    std::vector<std::size_t> peers;
    for (const std::size_t i : rp) {
      for (const std::size_t other : part_->Q(i)) {
        if (other != p) peers.push_back(other);
      }
    }
    std::sort(peers.begin(), peers.end());
    peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
    for (const std::size_t peer : peers) {
      PeerExchange ex;
      ex.peer = peer;
      const auto& rq = part_->R(peer);
      std::vector<std::size_t> common;
      std::set_intersection(rp.begin(), rp.end(), rq.begin(), rq.end(),
                            std::back_inserter(common));
      for (const std::size_t i : common) {
        BlockSlice slice;
        slice.block = i;
        slice.sender = dist_->share(i, p);
        slice.receiver = dist_->share(i, peer);
        ex.x_words += slice.sender.length;
        ex.y_words += slice.receiver.length;
        ex.slices.push_back(slice);
      }
      if (ex.x_words > 0 || ex.y_words > 0) {
        exchanges_[p].push_back(std::move(ex));
      }
    }
  }
}

void Plan::prewarm_pool(simt::BufferPool& pool, std::size_t lanes) const {
  STTSV_REQUIRE(lanes >= 1, "prewarm needs at least one lane");
  constexpr std::size_t kRexHeaderWords = 8;  // >= data-frame header
  for (std::size_t p = 0; p < exchanges_.size(); ++p) {
    // Bucket -> simultaneous buffers rank p needs in the worst phase.
    // x and y phases never overlap, so the requirement is the per-phase
    // max, not the sum. Each message may exist twice at once under
    // ReliableExchange (retained payload + framed wire copy), and the
    // frame rides in the header bucket of payload + header words.
    std::unordered_map<std::size_t, std::size_t> x_need;
    std::unordered_map<std::size_t, std::size_t> y_need;
    for (const PeerExchange& ex : exchanges_[p]) {
      if (ex.x_words > 0) {
        ++x_need[simt::BufferPool::bucket_capacity(ex.x_words * lanes)];
        ++x_need[simt::BufferPool::bucket_capacity(ex.x_words * lanes +
                                                   kRexHeaderWords)];
      }
      if (ex.y_words > 0) {
        ++y_need[simt::BufferPool::bucket_capacity(ex.y_words * lanes)];
        ++y_need[simt::BufferPool::bucket_capacity(ex.y_words * lanes +
                                                   kRexHeaderWords)];
      }
    }
    for (auto& [capacity, count] : x_need) {
      const auto yit = y_need.find(capacity);
      const std::size_t need =
          yit == y_need.end() ? count : std::max(count, yit->second);
      pool.reserve(p, capacity, need);
    }
    for (const auto& [capacity, count] : y_need) {
      if (!x_need.contains(capacity)) pool.reserve(p, capacity, count);
    }
  }
}

const Plan::PeerExchange& Plan::exchange_between(std::size_t from,
                                                 std::size_t to) const {
  STTSV_REQUIRE(from < exchanges_.size(), "rank out of range");
  const auto& exs = exchanges_[from];
  const auto it = std::lower_bound(
      exs.begin(), exs.end(), to,
      [](const PeerExchange& e, std::size_t peer) { return e.peer < peer; });
  STTSV_REQUIRE(it != exs.end() && it->peer == to,
                "ranks do not exchange data under this plan");
  return *it;
}

std::size_t Plan::local_index(std::size_t p, std::size_t i) const {
  STTSV_REQUIRE(p < local_index_.size(), "rank out of range");
  STTSV_REQUIRE(i < local_index_[p].size(), "row block out of range");
  const std::size_t pos = local_index_[p][i];
  STTSV_REQUIRE(pos != SIZE_MAX, "row block not in R_p");
  return pos;
}

std::shared_ptr<const Plan> Plan::build(const PlanKey& key) {
  STTSV_REQUIRE(key.n >= 1, "plan needs a positive dimension");
  auto part = std::make_unique<partition::TetraPartition>(
      partition::TetraPartition::build(build_system(key)));
  STTSV_REQUIRE(key.processors == part->num_processors(),
                "plan key processor count does not match the family");
  auto dist =
      std::make_unique<partition::VectorDistribution>(*part, key.n);
  return std::shared_ptr<const Plan>(
      new Plan(key, std::move(part), std::move(dist)));
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  STTSV_REQUIRE(capacity >= 1, "plan cache needs capacity >= 1");
}

std::shared_ptr<const Plan> PlanCache::get(const PlanKey& key) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++hits_;
    obs::Span span("plan.cache-hit", obs::Category::kPlanCache,
                   key.processors);
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->second;
  }
  ++misses_;
  obs::Span span("plan.build", obs::Category::kPlanCache, key.processors);
  auto plan = Plan::build(key);
  entries_.emplace_front(key, plan);
  index_[key] = entries_.begin();
  if (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
  }
  return plan;
}

void PlanCache::clear() {
  entries_.clear();
  index_.clear();
}

void PlanCache::publish_metrics(obs::MetricsRegistry& out,
                                const std::string& prefix) const {
  out.set_counter(prefix + ".hits", hits_);
  out.set_counter(prefix + ".misses", misses_);
  out.set_counter(prefix + ".size", entries_.size());
  out.set_counter(prefix + ".capacity", capacity_);
}

}  // namespace sttsv::batch
