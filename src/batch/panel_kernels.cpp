#include "batch/panel_kernels.hpp"

#include <algorithm>
#include <type_traits>

#include "obs/trace.hpp"
#include "support/check.hpp"

#define STTSV_RESTRICT __restrict__

namespace sttsv::batch {

namespace {

/// Packed offset of the row (gi, gj, *): data[row + gk] is a_{gi,gj,gk}.
inline std::size_t row_base(std::size_t gi, std::size_t gj) {
  return gi * (gi + 1) * (gi + 2) / 6 + gj * (gj + 1) / 2;
}

// Each kernel below processes L lanes of the panel (pointers pre-offset
// to the chunk's first lane; element l of chunk-lane t is at l*stride+t)
// and performs, per lane, exactly the operation sequence of the
// corresponding single-vector kernel in core/block_kernels.cpp — the
// bitwise-identity contract of apply_block_panel. L is a compile-time
// constant so the per-lane accumulators live in registers.

template <std::size_t L>
void interior_panel(const double* STTSV_RESTRICT data, std::size_t i0,
                    std::size_t i_end, std::size_t j0, std::size_t j_end,
                    std::size_t k0, std::size_t k_end,
                    const double* STTSV_RESTRICT xi,
                    const double* STTSV_RESTRICT xj,
                    const double* STTSV_RESTRICT xk,
                    double* STTSV_RESTRICT yi, double* STTSV_RESTRICT yj,
                    double* STTSV_RESTRICT yk, std::size_t stride) {
  const std::size_t kb = k_end - k0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    double xiv[L], yi_row[L];
    for (std::size_t t = 0; t < L; ++t) {
      xiv[t] = xi[li * stride + t];
      yi_row[t] = 0.0;
    }
    for (std::size_t gj = j0; gj < j_end; ++gj) {
      const std::size_t lj = gj - j0;
      const double* STTSV_RESTRICT row = data + row_base(gi, gj) + k0;
      double xjv[L], cij[L], acc[L];
      for (std::size_t t = 0; t < L; ++t) {
        xjv[t] = xj[lj * stride + t];
        cij[t] = 2.0 * xiv[t] * xjv[t];
        acc[t] = 0.0;
      }
      for (std::size_t lk = 0; lk < kb; ++lk) {
        const double v = row[lk];
        double* STTSV_RESTRICT yk_l = yk + lk * stride;
        const double* STTSV_RESTRICT xk_l = xk + lk * stride;
        for (std::size_t t = 0; t < L; ++t) {
          acc[t] += v * xk_l[t];
          yk_l[t] += cij[t] * v;
        }
      }
      for (std::size_t t = 0; t < L; ++t) {
        yi_row[t] += xjv[t] * acc[t];
        yj[lj * stride + t] += 2.0 * xiv[t] * acc[t];
      }
    }
    for (std::size_t t = 0; t < L; ++t) {
      yi[li * stride + t] += 2.0 * yi_row[t];
    }
  }
}

template <std::size_t L>
void face_ij_panel(const double* STTSV_RESTRICT data, std::size_t i0,
                   std::size_t i_end, std::size_t k0, std::size_t k_end,
                   const double* STTSV_RESTRICT xij,
                   const double* STTSV_RESTRICT xk,
                   double* STTSV_RESTRICT yij, double* STTSV_RESTRICT yk,
                   std::size_t stride) {
  const std::size_t kb = k_end - k0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    double xiv[L], yi_row[L];
    for (std::size_t t = 0; t < L; ++t) {
      xiv[t] = xij[li * stride + t];
      yi_row[t] = 0.0;
    }
    for (std::size_t gj = i0; gj < gi; ++gj) {
      const std::size_t lj = gj - i0;
      const double* STTSV_RESTRICT row = data + row_base(gi, gj) + k0;
      double xjv[L], cij[L], acc[L];
      for (std::size_t t = 0; t < L; ++t) {
        xjv[t] = xij[lj * stride + t];
        cij[t] = 2.0 * xiv[t] * xjv[t];
        acc[t] = 0.0;
      }
      for (std::size_t lk = 0; lk < kb; ++lk) {
        const double v = row[lk];
        double* STTSV_RESTRICT yk_l = yk + lk * stride;
        const double* STTSV_RESTRICT xk_l = xk + lk * stride;
        for (std::size_t t = 0; t < L; ++t) {
          acc[t] += v * xk_l[t];
          yk_l[t] += cij[t] * v;
        }
      }
      for (std::size_t t = 0; t < L; ++t) {
        yi_row[t] += xjv[t] * acc[t];
        yij[lj * stride + t] += 2.0 * xiv[t] * acc[t];
      }
    }
    // gj == gi diagonal row, hoisted exactly as in the single kernel.
    const double* STTSV_RESTRICT row = data + row_base(gi, gi) + k0;
    double cii[L], acc[L];
    for (std::size_t t = 0; t < L; ++t) {
      cii[t] = xiv[t] * xiv[t];
      acc[t] = 0.0;
    }
    for (std::size_t lk = 0; lk < kb; ++lk) {
      const double v = row[lk];
      double* STTSV_RESTRICT yk_l = yk + lk * stride;
      const double* STTSV_RESTRICT xk_l = xk + lk * stride;
      for (std::size_t t = 0; t < L; ++t) {
        acc[t] += v * xk_l[t];
        yk_l[t] += cii[t] * v;
      }
    }
    for (std::size_t t = 0; t < L; ++t) {
      yij[li * stride + t] += 2.0 * (yi_row[t] + xiv[t] * acc[t]);
    }
  }
}

template <std::size_t L>
void face_jk_panel(const double* STTSV_RESTRICT data, std::size_t i0,
                   std::size_t i_end, std::size_t j0, std::size_t j_end,
                   const double* STTSV_RESTRICT xi,
                   const double* STTSV_RESTRICT xjk,
                   double* STTSV_RESTRICT yi, double* STTSV_RESTRICT yjk,
                   std::size_t stride) {
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    double xiv[L], yi_row[L];
    for (std::size_t t = 0; t < L; ++t) {
      xiv[t] = xi[li * stride + t];
      yi_row[t] = 0.0;
    }
    for (std::size_t gj = j0; gj < j_end; ++gj) {
      const std::size_t lj = gj - j0;
      const double* STTSV_RESTRICT row =
          data + gi_base + gj * (gj + 1) / 2 + j0;
      double xjv[L], cij[L], acc[L];
      for (std::size_t t = 0; t < L; ++t) {
        xjv[t] = xjk[lj * stride + t];
        cij[t] = 2.0 * xiv[t] * xjv[t];
        acc[t] = 0.0;
      }
      for (std::size_t lk = 0; lk < lj; ++lk) {
        const double v = row[lk];
        double* STTSV_RESTRICT yjk_l = yjk + lk * stride;
        const double* STTSV_RESTRICT xjk_l = xjk + lk * stride;
        for (std::size_t t = 0; t < L; ++t) {
          acc[t] += v * xjk_l[t];
          yjk_l[t] += cij[t] * v;
        }
      }
      // gk == gj tail, hoisted exactly as in the single kernel.
      const double vt = row[lj];
      for (std::size_t t = 0; t < L; ++t) {
        yi_row[t] += 2.0 * xjv[t] * acc[t] + vt * xjv[t] * xjv[t];
        yjk[lj * stride + t] +=
            2.0 * xiv[t] * acc[t] + 2.0 * vt * xiv[t] * xjv[t];
      }
    }
    for (std::size_t t = 0; t < L; ++t) {
      yi[li * stride + t] += yi_row[t];
    }
  }
}

/// Element-wise panel kernel for central diagonal blocks: the lane loop
/// sits inside the per-element multiplicity branches, so each lane
/// replays core::apply_block_generic exactly.
std::uint64_t generic_panel(const tensor::SymTensor3& a,
                            const partition::BlockCoord& c, std::size_t b,
                            std::size_t lanes, const PanelBuffers& buf) {
  const std::size_t n = a.dim();
  const double* data = a.data();
  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t k0 = c.k * b;
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  const std::size_t k_end = std::min(k0 + b, n);

  const bool ij_same_block = (c.i == c.j);
  const bool jk_same_block = (c.j == c.k);
  const double* xi = buf.x[0];
  const double* xj = buf.x[1];
  const double* xk = buf.x[2];
  double* yi = buf.y[0];
  double* yj = buf.y[1];
  double* yk = buf.y[2];

  std::uint64_t count = 0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const std::size_t gj_end = ij_same_block ? std::min(gi + 1, j_end) : j_end;
    for (std::size_t gj = j0; gj < gj_end; ++gj) {
      const std::size_t lj = gj - j0;
      const std::size_t row = row_base(gi, gj);
      const std::size_t gk_end =
          jk_same_block ? std::min(gj + 1, k_end) : k_end;
      if (gi != gj) {
        std::size_t gk = k0;
        const std::size_t strict_end = std::min(gk_end, gj);
        for (; gk < strict_end; ++gk) {
          const double v = data[row + gk];
          const std::size_t lk = gk - k0;
          for (std::size_t t = 0; t < lanes; ++t) {
            const double xjv = xj[lj * lanes + t];
            const double xkv = xk[lk * lanes + t];
            const double xiv = xi[li * lanes + t];
            yi[li * lanes + t] += 2.0 * v * xjv * xkv;
            yj[lj * lanes + t] += 2.0 * v * xiv * xkv;
            yk[lk * lanes + t] += 2.0 * v * xiv * xjv;
          }
          count += 3 * lanes;
        }
        if (gk < gk_end && gk == gj) {
          const double v = data[row + gk];
          const std::size_t lk = gk - k0;
          for (std::size_t t = 0; t < lanes; ++t) {
            const double xjv = xj[lj * lanes + t];
            const double xkv = xk[lk * lanes + t];
            const double xiv = xi[li * lanes + t];
            yi[li * lanes + t] += v * xjv * xkv;
            yj[lj * lanes + t] += 2.0 * v * xiv * xkv;
          }
          count += 2 * lanes;
        }
      } else {
        std::size_t gk = k0;
        const std::size_t strict_end = std::min(gk_end, gj);
        for (; gk < strict_end; ++gk) {
          const double v = data[row + gk];
          const std::size_t lk = gk - k0;
          for (std::size_t t = 0; t < lanes; ++t) {
            const double xjv = xj[lj * lanes + t];
            const double xkv = xk[lk * lanes + t];
            const double xiv = xi[li * lanes + t];
            yi[li * lanes + t] += 2.0 * v * xjv * xkv;
            yk[lk * lanes + t] += v * xiv * xjv;
          }
          count += 2 * lanes;
        }
        if (gk < gk_end && gk == gj) {
          const double v = data[row + gk];
          const std::size_t lk = gk - k0;
          for (std::size_t t = 0; t < lanes; ++t) {
            yi[li * lanes + t] += v * xj[lj * lanes + t] * xk[lk * lanes + t];
          }
          count += lanes;
        }
      }
    }
  }
  return count;
}

/// Invokes chunk(v0, L) over the lane range in register-blocked pieces.
template <typename Chunk>
void for_lane_chunks(std::size_t lanes, const Chunk& chunk) {
  std::size_t v0 = 0;
  while (v0 < lanes) {
    const std::size_t left = lanes - v0;
    if (left >= 8) {
      chunk(v0, std::integral_constant<std::size_t, 8>{});
      v0 += 8;
    } else if (left >= 4) {
      chunk(v0, std::integral_constant<std::size_t, 4>{});
      v0 += 4;
    } else if (left >= 2) {
      chunk(v0, std::integral_constant<std::size_t, 2>{});
      v0 += 2;
    } else {
      chunk(v0, std::integral_constant<std::size_t, 1>{});
      v0 += 1;
    }
  }
}

}  // namespace

std::uint64_t apply_block_panel(const tensor::SymTensor3& a,
                                const partition::BlockCoord& c,
                                std::size_t b, std::size_t lanes,
                                const PanelBuffers& buf) {
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k, "block coordinate must be sorted");
  STTSV_REQUIRE(lanes >= 1, "panel needs at least one lane");
  for (int s = 0; s < 3; ++s) {
    STTSV_REQUIRE(buf.x[s] != nullptr && buf.y[s] != nullptr,
                  "panel buffers must be bound");
  }
  const std::size_t n = a.dim();
  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t k0 = c.k * b;
  if (i0 >= n) return 0;  // fully padded block
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  const std::size_t k_end = std::min(k0 + b, n);

  obs::Span span("kernel.panel", obs::Category::kKernel);
  std::uint64_t mults = 0;
  if (c.i > c.j && c.j > c.k) {
    for_lane_chunks(lanes, [&](std::size_t v0, auto width) {
      interior_panel<decltype(width)::value>(
          a.data(), i0, i_end, j0, j_end, k0, k_end, buf.x[0] + v0,
          buf.x[1] + v0, buf.x[2] + v0, buf.y[0] + v0, buf.y[1] + v0,
          buf.y[2] + v0, lanes);
    });
    mults = 3 * static_cast<std::uint64_t>(i_end - i0) * (j_end - j0) *
            (k_end - k0) * lanes;
  } else if (c.i == c.j && c.j > c.k) {
    // Slots 0 and 1 view the same row block (aliased by contract).
    for_lane_chunks(lanes, [&](std::size_t v0, auto width) {
      face_ij_panel<decltype(width)::value>(a.data(), i0, i_end, k0, k_end,
                                            buf.x[0] + v0, buf.x[2] + v0,
                                            buf.y[0] + v0, buf.y[2] + v0,
                                            lanes);
    });
    const std::uint64_t ni = i_end - i0;
    mults = (k_end - k0) * (3 * (ni * (ni - 1) / 2) + 2 * ni) * lanes;
  } else if (c.i > c.j && c.j == c.k) {
    // Slots 1 and 2 view the same row block (aliased by contract).
    for_lane_chunks(lanes, [&](std::size_t v0, auto width) {
      face_jk_panel<decltype(width)::value>(a.data(), i0, i_end, j0, j_end,
                                            buf.x[0] + v0, buf.x[1] + v0,
                                            buf.y[0] + v0, buf.y[1] + v0,
                                            lanes);
    });
    const std::uint64_t ni = i_end - i0;
    const std::uint64_t nj = j_end - j0;
    mults = ni * (3 * (nj * (nj - 1) / 2) + 2 * nj) * lanes;
  } else {
    mults = generic_panel(a, c, b, lanes, buf);
  }
  span.set_arg(mults);
  return mults;
}

}  // namespace sttsv::batch
