#include "batch/panel_kernels.hpp"

#include <algorithm>

#include "batch/panel_kernels_impl.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

// Portable instantiation of the panel kernels (VecScalar). Compiled with
// -ffp-contract=off — see the bitwise contract in panel_kernels_impl.hpp.

namespace sttsv::batch {

namespace {

using detail::PanelVTable;

const PanelVTable& scalar_vtable() {
  static const PanelVTable t =
      detail::make_panel_vtable<simt::simd::VecScalar>();
  return t;
}

const PanelVTable& vtable_for(simt::KernelIsa isa) {
#ifdef STTSV_HAVE_AVX2_KERNELS
  if (isa == simt::KernelIsa::kAvx2 && simt::cpu_features().avx2 &&
      simt::cpu_features().fma) {
    return detail::avx2_panel_vtable();
  }
#else
  (void)isa;
#endif
  return scalar_vtable();
}

}  // namespace

std::uint64_t apply_block_panel_isa(const tensor::SymTensor3& a,
                                    const partition::BlockCoord& c,
                                    std::size_t b, std::size_t lanes,
                                    const PanelBuffers& buf,
                                    simt::KernelIsa isa) {
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k, "block coordinate must be sorted");
  STTSV_REQUIRE(lanes >= 1, "panel needs at least one lane");
  for (int s = 0; s < 3; ++s) {
    STTSV_REQUIRE(buf.x[s] != nullptr && buf.y[s] != nullptr,
                  "panel buffers must be bound");
  }
  const std::size_t n = a.dim();
  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t k0 = c.k * b;
  if (i0 >= n) return 0;  // fully padded block
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  const std::size_t k_end = std::min(k0 + b, n);

  obs::Span span("kernel.panel", obs::Category::kKernel);
  const PanelVTable& vt = vtable_for(isa);
  constexpr std::size_t kW = simt::simd::kLanes;

  // Walk the panel in vector-width lane chunks; the last chunk may be a
  // masked partial one. Chunks are independent (lane arithmetic never
  // crosses lanes), so the order is irrelevant to the bitwise contract.
  const auto for_chunks = [&](const auto& full, const auto& part) {
    std::size_t v0 = 0;
    for (; v0 + kW <= lanes; v0 += kW) full(v0);
    if (v0 < lanes) part(v0, lanes - v0);
  };

  std::uint64_t mults = 0;
  if (c.i > c.j && c.j > c.k) {
    const auto run = [&](auto fn, std::size_t v0, std::size_t m) {
      fn(a.data(), i0, i_end, j0, j_end, k0, k_end, buf.x[0] + v0,
         buf.x[1] + v0, buf.x[2] + v0, buf.y[0] + v0, buf.y[1] + v0,
         buf.y[2] + v0, lanes, m);
    };
    for_chunks([&](std::size_t v0) { run(vt.interior_full, v0, kW); },
               [&](std::size_t v0, std::size_t m) {
                 run(vt.interior_part, v0, m);
               });
    mults = 3 * static_cast<std::uint64_t>(i_end - i0) * (j_end - j0) *
            (k_end - k0) * lanes;
  } else if (c.i == c.j && c.j > c.k) {
    // Slots 0 and 1 view the same row block (aliased by contract).
    const auto run = [&](auto fn, std::size_t v0, std::size_t m) {
      fn(a.data(), i0, i_end, k0, k_end, buf.x[0] + v0, buf.x[2] + v0,
         buf.y[0] + v0, buf.y[2] + v0, lanes, m);
    };
    for_chunks([&](std::size_t v0) { run(vt.face_ij_full, v0, kW); },
               [&](std::size_t v0, std::size_t m) {
                 run(vt.face_ij_part, v0, m);
               });
    const std::uint64_t ni = i_end - i0;
    mults = (k_end - k0) * (3 * (ni * (ni - 1) / 2) + 2 * ni) * lanes;
  } else if (c.i > c.j && c.j == c.k) {
    // Slots 1 and 2 view the same row block (aliased by contract).
    const auto run = [&](auto fn, std::size_t v0, std::size_t m) {
      fn(a.data(), i0, i_end, j0, j_end, buf.x[0] + v0, buf.x[1] + v0,
         buf.y[0] + v0, buf.y[1] + v0, lanes, m);
    };
    for_chunks([&](std::size_t v0) { run(vt.face_jk_full, v0, kW); },
               [&](std::size_t v0, std::size_t m) {
                 run(vt.face_jk_part, v0, m);
               });
    const std::uint64_t ni = i_end - i0;
    const std::uint64_t nj = j_end - j0;
    mults = ni * (3 * (nj * (nj - 1) / 2) + 2 * nj) * lanes;
  } else {
    // Central diagonal block: all three slots alias one panel pair.
    const auto run = [&](auto fn, std::size_t v0, std::size_t m) {
      fn(a.data(), i0, i_end, buf.x[0] + v0, buf.y[0] + v0, lanes, m);
    };
    for_chunks([&](std::size_t v0) { run(vt.central_full, v0, kW); },
               [&](std::size_t v0, std::size_t m) {
                 run(vt.central_part, v0, m);
               });
    // 3·C(e,3) strict + 2·2·C(e,2) face + e central elements per lane.
    const std::uint64_t e = i_end - i0;
    mults = (e * (e - 1) * (e - 2) / 2 + 2 * e * (e - 1) + e) * lanes;
  }
  span.set_arg(mults);
  return mults;
}

std::uint64_t apply_block_panel(const tensor::SymTensor3& a,
                                const partition::BlockCoord& c,
                                std::size_t b, std::size_t lanes,
                                const PanelBuffers& buf) {
  return apply_block_panel_isa(a, c, b, lanes, buf, simt::preferred_isa());
}

}  // namespace sttsv::batch
