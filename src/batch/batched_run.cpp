#include "batch/batched_run.hpp"

#include <algorithm>

#include "batch/panel_kernels.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace sttsv::batch {

namespace {

using partition::Share;
using simt::Delivery;
using simt::Envelope;

}  // namespace

BatchRunResult parallel_sttsv_batch(
    simt::Machine& machine, const Plan& plan, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& x) {
  simt::DirectExchange direct(machine);
  return parallel_sttsv_batch(direct, plan, a, x);
}

BatchRunResult parallel_sttsv_batch(
    simt::Exchanger& exchanger, const Plan& plan, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& x) {
  simt::Machine& machine = exchanger.machine();
  const partition::TetraPartition& part = plan.partition();
  const partition::VectorDistribution& dist = plan.distribution();
  const std::size_t P = part.num_processors();
  const std::size_t b = dist.block_length_b();
  const std::size_t n = dist.logical_n();
  const std::size_t B = x.size();
  const simt::Transport transport = plan.key().transport;
  STTSV_REQUIRE(machine.num_ranks() == P,
                "machine rank count must match plan");
  STTSV_REQUIRE(a.dim() == n, "tensor dimension must match plan");
  STTSV_REQUIRE(B >= 1, "batch must contain at least one vector");
  for (const auto& xv : x) {
    STTSV_REQUIRE(xv.size() == n, "input vector length mismatch");
  }

  // Lane-interleaved padded panel: element g of lane v at g*B + v.
  std::vector<double> x_pad(dist.padded_n() * B, 0.0);
  for (std::size_t v = 0; v < B; ++v) {
    for (std::size_t g = 0; g < n; ++g) x_pad[g * B + v] = x[v][g];
  }

  // ---- Phase 1: one aggregated x message per (rank, peer) pair. -------
  obs::Span x_phase("batch.x-panel", obs::Category::kSuperstep, B);
  std::vector<std::vector<Envelope>> outboxes(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const Plan::PeerExchange& ex : plan.exchanges(p)) {
      if (ex.x_words == 0) continue;
      Envelope env;
      env.to = ex.peer;
      env.data.reserve(ex.x_words * B);
      for (const Plan::BlockSlice& s : ex.slices) {
        const double* base =
            x_pad.data() + (s.block * b + s.sender.offset) * B;
        env.data.insert(env.data.end(), base, base + s.sender.length * B);
      }
      outboxes[p].push_back(std::move(env));
    }
  }
  exchanger.set_phase("x-panel");
  auto inboxes = exchanger.exchange(std::move(outboxes), transport);

  // Unpack into per-rank panels of full local row blocks: rank p holds
  // one b×B panel per row block in R_p, indexed by plan.local_index.
  std::vector<std::vector<double>> x_loc(P);
  for (std::size_t p = 0; p < P; ++p) {
    x_loc[p].assign(part.R(p).size() * b * B, 0.0);
    for (const std::size_t i : part.R(p)) {
      const Share s = dist.share(i, p);
      std::copy_n(x_pad.data() + (i * b + s.offset) * B, s.length * B,
                  x_loc[p].data() +
                      (plan.local_index(p, i) * b + s.offset) * B);
    }
    for (const Delivery& d : inboxes[p]) {
      const Plan::PeerExchange& ex = plan.exchange_between(d.from, p);
      std::size_t cursor = 0;
      for (const Plan::BlockSlice& s : ex.slices) {
        STTSV_CHECK(cursor + s.sender.length * B <= d.data.size(),
                    "x delivery shorter than expected");
        std::copy_n(d.data.data() + cursor, s.sender.length * B,
                    x_loc[p].data() +
                        (plan.local_index(p, s.block) * b + s.sender.offset) *
                            B);
        cursor += s.sender.length * B;
      }
      STTSV_CHECK(cursor == d.data.size(), "x delivery longer than expected");
    }
  }
  inboxes.clear();
  x_phase.close();

  // ---- Phase 2: panel kernels over owned blocks. ----------------------
  std::vector<std::vector<double>> y_loc(P);
  BatchRunResult result;
  result.ternary_mults.assign(P, 0);
  machine.run_ranks([&](std::size_t p) {
    y_loc[p].assign(part.R(p).size() * b * B, 0.0);
    for (const partition::BlockCoord& c : plan.owned(p)) {
      PanelBuffers buf;
      buf.x[0] = x_loc[p].data() + plan.local_index(p, c.i) * b * B;
      buf.x[1] = x_loc[p].data() + plan.local_index(p, c.j) * b * B;
      buf.x[2] = x_loc[p].data() + plan.local_index(p, c.k) * b * B;
      buf.y[0] = y_loc[p].data() + plan.local_index(p, c.i) * b * B;
      buf.y[1] = y_loc[p].data() + plan.local_index(p, c.j) * b * B;
      buf.y[2] = y_loc[p].data() + plan.local_index(p, c.k) * b * B;
      result.ternary_mults[p] += apply_block_panel(a, c, b, B, buf);
    }
    x_loc[p] = {};  // frees the gathered inputs early
  });

  // ---- Phase 3: one aggregated partial-y message per pair. ------------
  obs::Span y_phase("batch.y-panel", obs::Category::kSuperstep, B);
  std::vector<std::vector<Envelope>> y_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const Plan::PeerExchange& ex : plan.exchanges(p)) {
      if (ex.y_words == 0) continue;
      Envelope env;
      env.to = ex.peer;
      env.data.reserve(ex.y_words * B);
      // Send the *receiver's* share of each common row block.
      for (const Plan::BlockSlice& s : ex.slices) {
        const double* base =
            y_loc[p].data() +
            (plan.local_index(p, s.block) * b + s.receiver.offset) * B;
        env.data.insert(env.data.end(), base, base + s.receiver.length * B);
      }
      y_out[p].push_back(std::move(env));
    }
  }
  exchanger.set_phase("y-panel");
  auto y_in = exchanger.exchange(std::move(y_out), transport);

  // Own share = local partial + sum of received partials, in the same
  // rank-major, sender-ascending order as the single-vector run.
  std::vector<double> y_pad(dist.padded_n() * B, 0.0);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) {
      const Share s = dist.share(i, p);
      const double* src =
          y_loc[p].data() + (plan.local_index(p, i) * b + s.offset) * B;
      double* dst = y_pad.data() + (i * b + s.offset) * B;
      for (std::size_t e = 0; e < s.length * B; ++e) dst[e] += src[e];
    }
    for (const Delivery& d : y_in[p]) {
      const Plan::PeerExchange& ex = plan.exchange_between(d.from, p);
      std::size_t cursor = 0;
      for (const Plan::BlockSlice& s : ex.slices) {
        // For the pair (d.from -> p) the receiver's share is p's share.
        STTSV_CHECK(cursor + s.receiver.length * B <= d.data.size(),
                    "y delivery shorter than expected");
        double* dst = y_pad.data() + (s.block * b + s.receiver.offset) * B;
        for (std::size_t e = 0; e < s.receiver.length * B; ++e) {
          dst[e] += d.data[cursor + e];
        }
        cursor += s.receiver.length * B;
      }
      STTSV_CHECK(cursor == d.data.size(), "y delivery longer than expected");
    }
  }

  machine.ledger().verify_conservation();
  result.y.assign(B, std::vector<double>(n));
  for (std::size_t v = 0; v < B; ++v) {
    for (std::size_t g = 0; g < n; ++g) result.y[v][g] = y_pad[g * B + v];
  }
  result.maxima = machine.ledger().maxima();
  return result;
}

}  // namespace sttsv::batch
