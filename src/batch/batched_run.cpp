#include "batch/batched_run.hpp"

#include <algorithm>

#include "batch/panel_kernels.hpp"
#include "obs/trace.hpp"
#include "simt/pipeline.hpp"
#include "support/check.hpp"

namespace sttsv::batch {

namespace {

using partition::Share;
using simt::Delivery;
using simt::Envelope;

}  // namespace

BatchRunResult parallel_sttsv_batch(
    simt::Machine& machine, const Plan& plan, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& x, simt::PipelineMode pipeline) {
  simt::DirectExchange direct(machine);
  return parallel_sttsv_batch(direct, plan, a, x, pipeline);
}

BatchRunResult parallel_sttsv_batch(
    simt::Exchanger& exchanger, const Plan& plan, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& x, simt::PipelineMode pipeline) {
  simt::Machine& machine = exchanger.machine();
  const partition::TetraPartition& part = plan.partition();
  const partition::VectorDistribution& dist = plan.distribution();
  const std::size_t P = part.num_processors();
  const std::size_t b = dist.block_length_b();
  const std::size_t n = dist.logical_n();
  const std::size_t B = x.size();
  const simt::Transport transport = plan.key().transport;
  STTSV_REQUIRE(machine.num_ranks() == P,
                "machine rank count must match plan");
  STTSV_REQUIRE(a.dim() == n, "tensor dimension must match plan");
  STTSV_REQUIRE(B >= 1, "batch must contain at least one vector");
  for (const auto& xv : x) {
    STTSV_REQUIRE(xv.size() == n, "input vector length mismatch");
  }

  // Pair-block chunking as in core::parallel_sttsv (DESIGN.md §12).
  const std::size_t chunks =
      pipeline == simt::PipelineMode::kDoubleBuffered && P > 1 ? 2 : 1;

  // Lane-interleaved padded panel: element g of lane v at g*B + v.
  std::vector<double> x_pad(dist.padded_n() * B, 0.0);
  for (std::size_t v = 0; v < B; ++v) {
    for (std::size_t g = 0; g < n; ++g) x_pad[g * B + v] = x[v][g];
  }

  // ---- Phase 1: one aggregated x message per (rank, peer) pair. -------
  // Per-rank panels are seeded with own shares before the exchange so
  // every pipeline part's deliveries land into disjoint panel slices.
  // Seeded on the worker threads (run_ranks) so each rank's panel is
  // first-touched where its kernels will run (DESIGN.md §17); rank
  // programs stay disjoint, so the output is bitwise unchanged.
  obs::Span x_phase("batch.x-panel", obs::Category::kSuperstep, B);
  std::vector<std::vector<double>> x_loc(P);
  machine.run_ranks([&](std::size_t p) {
    x_loc[p].assign(part.R(p).size() * b * B, 0.0);
    for (const std::size_t i : part.R(p)) {
      const Share s = dist.share(i, p);
      std::copy_n(x_pad.data() + (i * b + s.offset) * B, s.length * B,
                  x_loc[p].data() +
                      (plan.local_index(p, i) * b + s.offset) * B);
    }
  });

  const auto pack_x = [&](std::size_t c) {
    std::vector<std::vector<Envelope>> outboxes(P);
    for (std::size_t p = 0; p < P; ++p) {
      for (const Plan::PeerExchange& ex : plan.exchanges(p)) {
        if (ex.x_words == 0) continue;
        if ((p + ex.peer) % chunks != c) continue;
        simt::PooledBuffer buf = machine.pool().acquire(p, ex.x_words * B);
        for (const Plan::BlockSlice& s : ex.slices) {
          const double* base =
              x_pad.data() + (s.block * b + s.sender.offset) * B;
          buf.append(base, s.sender.length * B);
        }
        outboxes[p].push_back(Envelope{ex.peer, std::move(buf)});
      }
    }
    return outboxes;
  };
  const auto consume_x = [&](std::vector<std::vector<Delivery>> in) {
    for (std::size_t p = 0; p < in.size(); ++p) {
      for (const Delivery& d : in[p]) {
        const Plan::PeerExchange& ex = plan.exchange_between(d.from, p);
        std::size_t cursor = 0;
        for (const Plan::BlockSlice& s : ex.slices) {
          STTSV_CHECK(cursor + s.sender.length * B <= d.data.size(),
                      "x delivery shorter than expected");
          std::copy_n(d.data.data() + cursor, s.sender.length * B,
                      x_loc[p].data() +
                          (plan.local_index(p, s.block) * b +
                           s.sender.offset) *
                              B);
          cursor += s.sender.length * B;
        }
        STTSV_CHECK(cursor == d.data.size(), "x delivery longer than expected");
      }
    }
  };
  exchanger.set_phase("x-panel");
  simt::pipelined_exchange(exchanger, transport, chunks, pipeline, pack_x,
                           consume_x);
  x_phase.close();

  // ---- Phases 2+3: panel kernels feeding the partial-y exchange. ------
  // One rank group per chunk: its kernels run, its aggregated partial-y
  // messages go on the wire, and the next group's kernels overlap that
  // wire time. The reduction is deferred and sender-sorted below so the
  // floating-point order matches the serialized schedule exactly.
  std::vector<std::vector<double>> y_loc(P);
  BatchRunResult result;
  result.ternary_mults.assign(P, 0);

  std::vector<std::vector<std::size_t>> rank_chunks(chunks);
  for (std::size_t p = 0; p < P; ++p) rank_chunks[p % chunks].push_back(p);

  // Active-message transports reduce at the target (DESIGN.md §16): seed
  // local partials into y_pad as each rank's kernels finish (disjoint
  // own-share panel slices per rank), then the handler below replays the
  // plan's slice walk per landed payload in the same local-first,
  // senders-ascending order as the two-sided reduction — bit for bit.
  const bool am_reduce = exchanger.supports_handler_delivery();
  std::vector<double> y_pad(dist.padded_n() * B, 0.0);

  obs::Span y_phase("batch.y-panel", obs::Category::kSuperstep, B);
  const auto pack_y = [&](std::size_t c) {
    machine.run_ranks(rank_chunks[c], [&](std::size_t p) {
      y_loc[p].assign(part.R(p).size() * b * B, 0.0);
      for (const partition::BlockCoord& coord : plan.owned(p)) {
        PanelBuffers buf;
        buf.x[0] = x_loc[p].data() + plan.local_index(p, coord.i) * b * B;
        buf.x[1] = x_loc[p].data() + plan.local_index(p, coord.j) * b * B;
        buf.x[2] = x_loc[p].data() + plan.local_index(p, coord.k) * b * B;
        buf.y[0] = y_loc[p].data() + plan.local_index(p, coord.i) * b * B;
        buf.y[1] = y_loc[p].data() + plan.local_index(p, coord.j) * b * B;
        buf.y[2] = y_loc[p].data() + plan.local_index(p, coord.k) * b * B;
        result.ternary_mults[p] += apply_block_panel(a, coord, b, B, buf);
      }
      x_loc[p] = {};  // frees the gathered inputs early
      if (am_reduce) {
        for (const std::size_t i : part.R(p)) {
          const Share s = dist.share(i, p);
          const double* src =
              y_loc[p].data() + (plan.local_index(p, i) * b + s.offset) * B;
          double* dst = y_pad.data() + (i * b + s.offset) * B;
          for (std::size_t e = 0; e < s.length * B; ++e) dst[e] += src[e];
        }
      }
    });
    std::vector<std::vector<Envelope>> y_out(P);
    for (const std::size_t p : rank_chunks[c]) {
      for (const Plan::PeerExchange& ex : plan.exchanges(p)) {
        if (ex.y_words == 0) continue;
        simt::PooledBuffer buf = machine.pool().acquire(p, ex.y_words * B);
        // Send the *receiver's* share of each common row block.
        for (const Plan::BlockSlice& s : ex.slices) {
          const double* base =
              y_loc[p].data() +
              (plan.local_index(p, s.block) * b + s.receiver.offset) * B;
          buf.append(base, s.receiver.length * B);
        }
        y_out[p].push_back(Envelope{ex.peer, std::move(buf)});
      }
    }
    return y_out;
  };
  std::vector<std::vector<Delivery>> y_in(P);
  const auto collect_y = [&](std::vector<std::vector<Delivery>> in) {
    for (std::size_t p = 0; p < in.size(); ++p) {
      for (Delivery& d : in[p]) y_in[p].push_back(std::move(d));
    }
  };
  if (am_reduce) {
    // Remote-reduce handler: targets then origins ascending, the same
    // slice walk as the two-sided loop below.
    exchanger.set_delivery_handler(
        [&](std::size_t target, std::size_t from, const double* data,
            std::size_t words) {
          const Plan::PeerExchange& ex = plan.exchange_between(from, target);
          std::size_t cursor = 0;
          for (const Plan::BlockSlice& s : ex.slices) {
            STTSV_CHECK(cursor + s.receiver.length * B <= words,
                        "y delivery shorter than expected");
            double* dst =
                y_pad.data() + (s.block * b + s.receiver.offset) * B;
            for (std::size_t e = 0; e < s.receiver.length * B; ++e) {
              dst[e] += data[cursor + e];
            }
            cursor += s.receiver.length * B;
          }
          STTSV_CHECK(cursor == words, "y delivery longer than expected");
        });
  }
  exchanger.set_phase("y-panel");
  simt::pipelined_exchange(exchanger, transport, chunks, pipeline, pack_y,
                           collect_y);
  if (am_reduce) {
    exchanger.set_delivery_handler({});
  }
  for (auto& inbox : y_in) {
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const Delivery& da, const Delivery& db) {
                       return da.from < db.from;
                     });
  }

  // Own share = local partial + sum of received partials, in the same
  // rank-major, sender-ascending order as the single-vector run. In AM
  // mode the handler above already did both halves and y_in stays empty.
  for (std::size_t p = 0; p < P && !am_reduce; ++p) {
    for (const std::size_t i : part.R(p)) {
      const Share s = dist.share(i, p);
      const double* src =
          y_loc[p].data() + (plan.local_index(p, i) * b + s.offset) * B;
      double* dst = y_pad.data() + (i * b + s.offset) * B;
      for (std::size_t e = 0; e < s.length * B; ++e) dst[e] += src[e];
    }
    for (const Delivery& d : y_in[p]) {
      const Plan::PeerExchange& ex = plan.exchange_between(d.from, p);
      std::size_t cursor = 0;
      for (const Plan::BlockSlice& s : ex.slices) {
        // For the pair (d.from -> p) the receiver's share is p's share.
        STTSV_CHECK(cursor + s.receiver.length * B <= d.data.size(),
                    "y delivery shorter than expected");
        double* dst = y_pad.data() + (s.block * b + s.receiver.offset) * B;
        for (std::size_t e = 0; e < s.receiver.length * B; ++e) {
          dst[e] += d.data[cursor + e];
        }
        cursor += s.receiver.length * B;
      }
      STTSV_CHECK(cursor == d.data.size(), "y delivery longer than expected");
    }
  }

  machine.ledger().verify_conservation();
  result.y.assign(B, std::vector<double>(n));
  for (std::size_t v = 0; v < B; ++v) {
    for (std::size_t g = 0; g < n; ++g) result.y[v][g] = y_pad[g * B + v];
  }
  result.maxima = machine.ledger().maxima();
  return result;
}

}  // namespace sttsv::batch
