#pragma once
// Panel variants of the local block kernels (DESIGN.md §9): apply one
// b×b×b tensor block to a *panel* of B vectors at once. Panels are
// lane-interleaved — element l of lane v lives at l*lanes + v — so the
// innermost lane loop is a contiguous SIMD-friendly run and every packed
// tensor entry is loaded once per block instead of once per vector.
//
// Contract: lane v of the output is bitwise identical to running the
// single-vector kernels (core::apply_block) on lane v alone. Each lane's
// arithmetic is independent and performed in the same order as the
// single-vector kernel, so batching reorders nothing within a lane.

#include <cstddef>
#include <cstdint>

#include "partition/blocks.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::batch {

/// Row-block-local panel views. Slot 0 corresponds to row block c.i,
/// slot 1 to c.j, slot 2 to c.k; each is a b×lanes lane-interleaved
/// panel. For diagonal blocks the caller passes aliased pointers, as in
/// core::BlockBuffers.
struct PanelBuffers {
  const double* x[3] = {nullptr, nullptr, nullptr};
  double* y[3] = {nullptr, nullptr, nullptr};
};

/// Accumulates the contributions of block c into the y panels for all
/// `lanes` vectors. Returns the ternary multiplication count summed over
/// lanes (lanes × the single-vector count). Dispatches by block class
/// like core::apply_block; lanes are processed in register-blocked
/// chunks of 8/4/2/1.
std::uint64_t apply_block_panel(const tensor::SymTensor3& a,
                                const partition::BlockCoord& c,
                                std::size_t b, std::size_t lanes,
                                const PanelBuffers& buf);

}  // namespace sttsv::batch
