#pragma once
// Panel variants of the local block kernels (DESIGN.md §9): apply one
// b×b×b tensor block to a *panel* of B vectors at once. Panels are
// lane-interleaved — element l of lane v lives at l*lanes + v — so the
// innermost lane loop is a contiguous SIMD-friendly run and every packed
// tensor entry is loaded once per block instead of once per vector.
//
// Contract: lane v of the output is bitwise identical to running the
// single-vector kernels (core::apply_block) on lane v alone. Both sides
// follow the canonical arithmetic order of DESIGN.md §13.1, so the
// contract holds across the scalar and AVX2 instantiations in any
// combination (core scalar vs. panel AVX2 and vice versa).

#include <cstddef>
#include <cstdint>

#include "partition/blocks.hpp"
#include "simt/simd.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::batch {

/// Row-block-local panel views. Slot 0 corresponds to row block c.i,
/// slot 1 to c.j, slot 2 to c.k; each is a b×lanes lane-interleaved
/// panel. For diagonal blocks the caller passes aliased pointers, as in
/// core::BlockBuffers.
struct PanelBuffers {
  const double* x[3] = {nullptr, nullptr, nullptr};
  double* y[3] = {nullptr, nullptr, nullptr};
};

/// apply_block_panel with an explicit kernel ISA (tests pin this to
/// compare instantiations; requesting kAvx2 on a host or build without
/// AVX2 kernels silently falls back to scalar — bitwise identical).
std::uint64_t apply_block_panel_isa(const tensor::SymTensor3& a,
                                    const partition::BlockCoord& c,
                                    std::size_t b, std::size_t lanes,
                                    const PanelBuffers& buf,
                                    simt::KernelIsa isa);

/// Accumulates the contributions of block c into the y panels for all
/// `lanes` vectors. Returns the ternary multiplication count summed over
/// lanes (lanes × the single-vector count). Dispatches by block class
/// like core::apply_block, with the ISA from simt::preferred_isa();
/// lanes are processed in vector-width chunks with a masked partial tail.
std::uint64_t apply_block_panel(const tensor::SymTensor3& a,
                                const partition::BlockCoord& c,
                                std::size_t b, std::size_t lanes,
                                const PanelBuffers& buf);

}  // namespace sttsv::batch
