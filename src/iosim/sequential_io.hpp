#pragma once
// Sequential STTSV on the two-level memory model. The tensor has zero
// reuse (every packed entry participates in one iteration-space point),
// so it streams through fast memory exactly once — n(n+1)(n+2)/6 words of
// compulsory traffic. All the schedule can optimize is VECTOR traffic:
//
//  * blocked_sttsv_io — tetra-tile schedule with edge b: every b×b×b tile
//    touches 3 x-blocks and 3 y-blocks, so vector traffic scales like
//    O(n³/b²) words and falls quadratically with b until the working set
//    (6 row blocks of length b, plus reuse across adjacent tiles)
//    exceeds fast memory;
//  * streaming_sttsv_io — the unblocked packed walk (b = 1): the natural
//    Algorithm 4 loop, whose x_k/y_k accesses sweep ranges of length j
//    and thrash once n exceeds the cache.
//
// Both produce the numerically identical y and report the model's traffic.

#include <cstdint>
#include <vector>

#include "iosim/fast_memory.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::iosim {

struct IoResult {
  std::vector<double> y;
  FastMemory::Stats stats;
  std::uint64_t tensor_words = 0;  // streamed once (compulsory)
  std::uint64_t vector_traffic = 0;  // loads+stores of x/y segments
};

/// Tile schedule over lower-tetra b-blocks; `capacity_words` is the fast
/// memory size (must hold at least 6 row blocks: 3 of x, 3 of y).
IoResult blocked_sttsv_io(const tensor::SymTensor3& a,
                          const std::vector<double>& x, std::size_t tile_b,
                          std::size_t capacity_words);

/// Unblocked packed-linear walk; vector elements cached in segments of
/// `segment_words` (1 = per-element).
IoResult streaming_sttsv_io(const tensor::SymTensor3& a,
                            const std::vector<double>& x,
                            std::size_t capacity_words,
                            std::size_t segment_words = 1);

/// Upper-bound model for the blocked schedule's vector traffic with a
/// cold cache per tile: 6b words per tile × #tiles ≈ n³/b² + O(n²/b).
double blocked_vector_traffic_bound(std::size_t n, std::size_t tile_b);

}  // namespace sttsv::iosim
