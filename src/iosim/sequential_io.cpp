#include "iosim/sequential_io.hpp"

#include <algorithm>
#include <cmath>

#include "core/block_kernels.hpp"
#include "partition/blocks.hpp"
#include "support/check.hpp"

namespace sttsv::iosim {

namespace {

constexpr std::uint32_t kArrayX = 0;
constexpr std::uint32_t kArrayY = 1;

std::size_t block_len(std::size_t block, std::size_t b, std::size_t n) {
  const std::size_t start = block * b;
  return start >= n ? 0 : std::min(b, n - start);
}

}  // namespace

IoResult blocked_sttsv_io(const tensor::SymTensor3& a,
                          const std::vector<double>& x, std::size_t tile_b,
                          std::size_t capacity_words) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  STTSV_REQUIRE(tile_b >= 1, "tile edge must be >= 1");
  STTSV_REQUIRE(capacity_words >= 6 * tile_b,
                "fast memory must hold six row blocks (3 of x, 3 of y)");
  const std::size_t m = (n + tile_b - 1) / tile_b;

  FastMemory mem(capacity_words);
  // The tensor streams through exactly once — compulsory traffic that no
  // schedule can reduce (each packed entry is used at one tile).
  mem.stream(a.packed_size());

  std::vector<double> x_pad(m * tile_b, 0.0);
  std::copy(x.begin(), x.end(), x_pad.begin());
  std::vector<double> y_pad(m * tile_b, 0.0);

  for (const auto& c : partition::all_lower_blocks(m)) {
    // Charge the vector working set of this tile (LRU keeps recently
    // used row blocks resident, so adjacent tiles reuse them for free).
    for (const std::size_t blk : {c.i, c.j, c.k}) {
      const std::size_t len = block_len(blk, tile_b, n);
      if (len == 0) continue;
      mem.read(SegmentKey{kArrayX, blk}, len);
    }
    for (const std::size_t blk : {c.i, c.j, c.k}) {
      const std::size_t len = block_len(blk, tile_b, n);
      if (len == 0) continue;
      mem.write(SegmentKey{kArrayY, blk}, len);
    }
    core::BlockBuffers buf;
    buf.x[0] = x_pad.data() + c.i * tile_b;
    buf.x[1] = x_pad.data() + c.j * tile_b;
    buf.x[2] = x_pad.data() + c.k * tile_b;
    buf.y[0] = y_pad.data() + c.i * tile_b;
    buf.y[1] = y_pad.data() + c.j * tile_b;
    buf.y[2] = y_pad.data() + c.k * tile_b;
    (void)core::apply_block(a, c, tile_b, buf);
  }
  mem.flush();

  IoResult result;
  result.y.assign(y_pad.begin(), y_pad.begin() + static_cast<long>(n));
  result.stats = mem.stats();
  result.tensor_words = a.packed_size();
  result.vector_traffic = result.stats.traffic() - result.tensor_words;
  return result;
}

IoResult streaming_sttsv_io(const tensor::SymTensor3& a,
                            const std::vector<double>& x,
                            std::size_t capacity_words,
                            std::size_t segment_words) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  STTSV_REQUIRE(segment_words >= 1, "segment size must be >= 1");

  FastMemory mem(capacity_words);
  mem.stream(a.packed_size());

  auto seg_of = [&](std::size_t elem) { return elem / segment_words; };
  auto seg_len = [&](std::size_t seg) {
    const std::size_t start = seg * segment_words;
    return std::min(segment_words, n - start);
  };
  auto read_x = [&](std::size_t elem) {
    mem.read(SegmentKey{kArrayX, seg_of(elem)}, seg_len(seg_of(elem)));
  };
  auto write_y = [&](std::size_t elem) {
    mem.write(SegmentKey{kArrayY, seg_of(elem)}, seg_len(seg_of(elem)));
  };

  std::vector<double> y(n, 0.0);
  const double* data = a.data();
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k, ++idx) {
        const double v = data[idx];
        if (i != j && j != k) {
          read_x(i);
          read_x(j);
          read_x(k);
          write_y(i);
          write_y(j);
          write_y(k);
          y[i] += 2.0 * v * x[j] * x[k];
          y[j] += 2.0 * v * x[i] * x[k];
          y[k] += 2.0 * v * x[i] * x[j];
        } else if (i == j && j != k) {
          read_x(i);
          read_x(k);
          write_y(i);
          write_y(k);
          y[i] += 2.0 * v * x[j] * x[k];
          y[k] += v * x[i] * x[j];
        } else if (i != j && j == k) {
          read_x(i);
          read_x(k);
          write_y(i);
          write_y(j);
          y[i] += v * x[j] * x[k];
          y[j] += 2.0 * v * x[i] * x[k];
        } else {
          read_x(i);
          write_y(i);
          y[i] += v * x[j] * x[k];
        }
      }
    }
  }
  mem.flush();

  IoResult result;
  result.y = std::move(y);
  result.stats = mem.stats();
  result.tensor_words = a.packed_size();
  result.vector_traffic = result.stats.traffic() - result.tensor_words;
  return result;
}

double blocked_vector_traffic_bound(std::size_t n, std::size_t tile_b) {
  const double m = std::ceil(static_cast<double>(n) /
                             static_cast<double>(tile_b));
  const double tiles = m * (m + 1.0) * (m + 2.0) / 6.0;
  return tiles * 6.0 * static_cast<double>(tile_b);
}

}  // namespace sttsv::iosim
