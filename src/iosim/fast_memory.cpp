#include "iosim/fast_memory.hpp"

#include "support/check.hpp"

namespace sttsv::iosim {

FastMemory::FastMemory(std::size_t capacity_words)
    : capacity_(capacity_words) {
  STTSV_REQUIRE(capacity_words >= 1, "fast memory needs capacity >= 1");
}

void FastMemory::touch(const SegmentKey& key, Entry& entry) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
}

void FastMemory::make_room(std::size_t words) {
  STTSV_REQUIRE(words <= capacity_,
                "segment larger than fast memory capacity");
  while (resident_ + words > capacity_) {
    STTSV_CHECK(!lru_.empty(), "capacity accounting out of sync");
    const SegmentKey victim = lru_.back();
    lru_.pop_back();
    auto it = table_.find(victim);
    STTSV_CHECK(it != table_.end(), "LRU entry missing from table");
    if (it->second.dirty) stats_.stores += it->second.words;
    resident_ -= it->second.words;
    ++stats_.evictions;
    table_.erase(it);
  }
}

void FastMemory::insert(const SegmentKey& key, std::size_t words,
                        bool dirty, bool charge_load) {
  make_room(words);
  if (charge_load) stats_.loads += words;
  lru_.push_front(key);
  table_[key] = Entry{words, dirty, lru_.begin()};
  resident_ += words;
}

void FastMemory::read(const SegmentKey& key, std::size_t words) {
  ++stats_.accesses;
  auto it = table_.find(key);
  if (it != table_.end()) {
    STTSV_REQUIRE(it->second.words == words,
                  "segment accessed with inconsistent size");
    ++stats_.hits;
    touch(key, it->second);
    return;
  }
  insert(key, words, /*dirty=*/false, /*charge_load=*/true);
}

void FastMemory::write(const SegmentKey& key, std::size_t words) {
  ++stats_.accesses;
  auto it = table_.find(key);
  if (it != table_.end()) {
    STTSV_REQUIRE(it->second.words == words,
                  "segment accessed with inconsistent size");
    ++stats_.hits;
    it->second.dirty = true;
    touch(key, it->second);
    return;
  }
  insert(key, words, /*dirty=*/true, /*charge_load=*/true);
}

void FastMemory::write_no_allocate(const SegmentKey& key,
                                   std::size_t words) {
  ++stats_.accesses;
  auto it = table_.find(key);
  if (it != table_.end()) {
    STTSV_REQUIRE(it->second.words == words,
                  "segment accessed with inconsistent size");
    ++stats_.hits;
    it->second.dirty = true;
    touch(key, it->second);
    return;
  }
  insert(key, words, /*dirty=*/true, /*charge_load=*/false);
}

void FastMemory::stream(std::size_t words) { stats_.loads += words; }

void FastMemory::flush() {
  for (auto& [key, entry] : table_) {
    (void)key;
    if (entry.dirty) {
      stats_.stores += entry.words;
      entry.dirty = false;
    }
  }
}

}  // namespace sttsv::iosim
