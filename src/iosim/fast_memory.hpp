#pragma once
// A two-level memory model for sequential I/O analysis (the limited-
// memory direction of the paper's Section 8, and the setting of the
// sequential results it cites — Hong-Kung pebbling, Beaumont et al.).
//
// Slow memory holds all data; fast memory holds at most `capacity` words.
// Data moves in named segments (e.g. "row block i of x"). Reads of absent
// segments charge a load of the segment's length; evictions of dirty
// segments charge a store. Replacement is LRU.

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace sttsv::iosim {

/// Identifies a cached segment: which array, which segment within it.
struct SegmentKey {
  std::uint32_t array = 0;
  std::uint64_t index = 0;

  friend bool operator==(const SegmentKey&, const SegmentKey&) = default;
};

struct SegmentKeyHash {
  std::size_t operator()(const SegmentKey& k) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(k.array) << 48) ^ k.index);
  }
};

class FastMemory {
 public:
  struct Stats {
    std::uint64_t loads = 0;          // words moved slow -> fast
    std::uint64_t stores = 0;         // words moved fast -> slow
    std::uint64_t evictions = 0;      // segments displaced by capacity
    std::uint64_t hits = 0;           // accesses served from fast memory
    std::uint64_t accesses = 0;       // total segment accesses

    [[nodiscard]] std::uint64_t traffic() const { return loads + stores; }
  };

  /// capacity in words; must hold at least one segment of every size the
  /// caller will touch (checked per access).
  explicit FastMemory(std::size_t capacity_words);

  /// Touches a segment for reading; loads it if absent.
  void read(const SegmentKey& key, std::size_t words);

  /// Touches a segment for writing; loads it if absent (write-allocate)
  /// and marks it dirty.
  void write(const SegmentKey& key, std::size_t words);

  /// Touches a segment for writing without loading it first (the caller
  /// overwrites the whole segment); marks dirty.
  void write_no_allocate(const SegmentKey& key, std::size_t words);

  /// Charges a pure stream of `words` through fast memory without caching
  /// (non-temporal load — used for the tensor, which has zero reuse).
  void stream(std::size_t words);

  /// Writes back all dirty segments.
  void flush();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t resident_words() const { return resident_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::size_t words = 0;
    bool dirty = false;
    std::list<SegmentKey>::iterator lru_pos;
  };

  void touch(const SegmentKey& key, Entry& entry);
  void make_room(std::size_t words);
  void insert(const SegmentKey& key, std::size_t words, bool dirty,
              bool charge_load);

  std::size_t capacity_;
  std::size_t resident_ = 0;
  Stats stats_;
  std::list<SegmentKey> lru_;  // front = most recent
  std::unordered_map<SegmentKey, Entry, SegmentKeyHash> table_;
};

}  // namespace sttsv::iosim
