#pragma once
// Deficit-round-robin batch scheduler over per-tenant lanes (DESIGN.md
// §14). Each lane is a FIFO of opaque job handles; next_batch() forms one
// mixed-tenant batch of up to `width` jobs by cycling the lanes, crediting
// each lane its quantum of deficit per service opportunity and serving
// jobs (unit cost) against that credit. Backlogged lanes therefore share
// batch slots in proportion to their quanta — equal quanta give equal
// goodput under overload (the Jain-fairness property bench_serve checks)
// — while per-lane FIFO order is preserved by construction.
//
// The scheduler is deterministic: batch composition depends only on the
// enqueue sequence and the cursor state. When a batch fills mid-service,
// the cursor parks on the interrupted lane and its remaining deficit
// carries into the next batch, so truncation does not skew shares.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

namespace sttsv::serve {

class DrrScheduler {
 public:
  /// One scheduled job: (lane index, handle passed to enqueue).
  using Pick = std::pair<std::size_t, std::uint64_t>;

  /// Registers a lane served `quantum` jobs per round-robin visit (>= 1).
  /// Returns the lane index (dense, starting at 0).
  std::size_t add_lane(std::uint64_t quantum = 1);

  /// Appends a job handle to the lane's FIFO.
  void enqueue(std::size_t lane, std::uint64_t handle);

  /// Returns a picked-but-not-served handle to the FRONT of its lane —
  /// the dispatch-failure path: a batch that faulted mid-run puts its
  /// picks back in reverse pick order so lane FIFO order is preserved
  /// for the retry. Deficit already spent on the pick is not restored
  /// (the lane was served an opportunity; re-crediting it would let a
  /// faulting tenant farm extra credit from failed batches).
  void requeue_front(std::size_t lane, std::uint64_t handle);

  /// Forms the next batch: up to `width` jobs in deterministic DRR order.
  /// Returns fewer (possibly zero) when the backlog is smaller.
  [[nodiscard]] std::vector<Pick> next_batch(std::size_t width);

  [[nodiscard]] std::size_t num_lanes() const { return lanes_.size(); }
  [[nodiscard]] std::size_t backlog() const { return backlog_; }
  [[nodiscard]] std::size_t lane_depth(std::size_t lane) const;

 private:
  struct Lane {
    std::deque<std::uint64_t> q;
    std::uint64_t quantum = 1;
    std::uint64_t deficit = 0;
  };

  std::vector<Lane> lanes_;
  std::size_t cursor_ = 0;
  std::size_t backlog_ = 0;
};

}  // namespace sttsv::serve
