#include "serve/sharded_plan_cache.hpp"

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace sttsv::serve {

ShardedPlanCache::ShardedPlanCache(std::size_t shards,
                                   std::size_t per_shard_capacity) {
  STTSV_REQUIRE(shards >= 1, "plan cache needs at least one shard");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(per_shard_capacity));
  }
}

std::size_t ShardedPlanCache::shard_of(const batch::PlanKey& key) const {
  return batch::PlanKeyHash{}(key) % shards_.size();
}

std::shared_ptr<const batch::Plan> ShardedPlanCache::get(
    const batch::PlanKey& key) {
  Shard& shard = *shards_[shard_of(key)];
  // Misses build the plan while holding the shard lock: a second caller
  // racing on the same shape blocks and then hits the just-built entry,
  // so one pointer-identical plan exists per shape by construction.
  std::lock_guard<std::mutex> lk(shard.mu);
  return shard.cache.get(key);
}

std::uint64_t ShardedPlanCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    total += s->cache.hits();
  }
  return total;
}

std::uint64_t ShardedPlanCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    total += s->cache.misses();
  }
  return total;
}

std::size_t ShardedPlanCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    total += s->cache.size();
  }
  return total;
}

double ShardedPlanCache::hit_rate() const {
  const std::uint64_t h = hits();
  const std::uint64_t m = misses();
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

ShardedPlanCache::ShardStats ShardedPlanCache::shard_stats(
    std::size_t shard) const {
  STTSV_REQUIRE(shard < shards_.size(), "shard out of range");
  const Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lk(s.mu);
  return ShardStats{s.cache.hits(), s.cache.misses(), s.cache.size(),
                    s.cache.capacity()};
}

void ShardedPlanCache::publish_metrics(obs::MetricsRegistry& out,
                                       const std::string& prefix) const {
  out.set_counter(prefix + ".hits", hits());
  out.set_counter(prefix + ".misses", misses());
  out.set_counter(prefix + ".size", size());
  out.set_counter(prefix + ".shards", shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats stats = shard_stats(s);
    const std::string base = prefix + ".shard" + std::to_string(s);
    out.set_counter(base + ".hits", stats.hits);
    out.set_counter(base + ".misses", stats.misses);
    out.set_counter(base + ".size", stats.size);
  }
}

}  // namespace sttsv::serve
