#include "serve/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace sttsv::serve {

std::vector<Arrival> generate_open_loop(const TrafficSpec& spec) {
  STTSV_REQUIRE(!spec.tenant_weights.empty(), "traffic needs >= 1 tenant");
  STTSV_REQUIRE(spec.duration_s > 0.0, "traffic duration must be positive");
  STTSV_REQUIRE(spec.offered_jobs_per_s > 0.0,
                "offered load must be positive");
  double total_weight = 0.0;
  for (const double w : spec.tenant_weights) {
    STTSV_REQUIRE(w > 0.0, "tenant weights must be positive");
    total_weight += w;
  }

  const std::uint64_t horizon_ns =
      static_cast<std::uint64_t>(spec.duration_s * 1e9);
  std::vector<Arrival> merged;
  for (std::size_t t = 0; t < spec.tenant_weights.size(); ++t) {
    // Per-tenant stream: seeding from (seed, tenant) makes each tenant's
    // trace independent of how many other tenants exist.
    std::uint64_t mix = spec.seed;
    (void)splitmix64(mix);
    Rng rng(mix + 0x9e3779b97f4a7c15ULL * (t + 1));
    const double rate_per_ns =
        spec.offered_jobs_per_s * (spec.tenant_weights[t] / total_weight) /
        1e9;
    double clock_ns = 0.0;
    std::uint64_t seq = 0;
    for (;;) {
      // Exponential gap: -ln(1 - U) / rate, U uniform in [0, 1).
      const double gap = -std::log1p(-rng.next_unit()) / rate_per_ns;
      clock_ns += gap;
      if (clock_ns >= static_cast<double>(horizon_ns)) break;
      merged.push_back(
          Arrival{static_cast<std::uint64_t>(clock_ns), t, seq++});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.seq < b.seq;
            });
  return merged;
}

std::vector<double> uniform_weights(std::size_t tenants) {
  STTSV_REQUIRE(tenants >= 1, "need >= 1 tenant");
  return std::vector<double>(tenants, 1.0);
}

std::vector<double> zipf_weights(std::size_t tenants, double s) {
  STTSV_REQUIRE(tenants >= 1, "need >= 1 tenant");
  std::vector<double> w(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    w[t] = 1.0 / std::pow(static_cast<double>(t + 1), s);
  }
  return w;
}

}  // namespace sttsv::serve
