#pragma once
// Tenant identity, quotas and accounting for the multi-tenant serving
// front end (DESIGN.md §14). A tenant is a registered traffic source with
// its own FIFO lane, admission quotas (queue depth, in-flight jobs,
// token-bucket rate) and an accounting record: job counters broken down
// by reject reason, the tenant's exact share of the communication ledger
// (attribution sums to the global ledger by construction — the serving
// analogue of the conservation invariant), and latency histograms dense
// enough for p50/p99 extraction (obs::HistogramStats).
//
// Everything here runs on the front end's virtual clock (nanoseconds), so
// admission decisions are a pure function of the seeded arrival sequence
// — reproducible bit for bit, like every other subsystem in the repo.

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "obs/metrics.hpp"

namespace sttsv::serve {

/// Dense tenant handle assigned by Frontend::add_tenant (0, 1, 2, ...).
using TenantId = std::size_t;

/// Why a submission was turned away. Admission never drops silently: every
/// rejected job is counted against its tenant under one of these reasons.
/// Checks run in the declaration order below (shape first, rate last, so a
/// job that would be rejected anyway does not consume rate tokens).
enum class RejectReason : std::uint8_t {
  kShapeMismatch,    // x.size() != plan n — never admitted at any load
  kTenantQueueFull,  // tenant lane at quota.max_queue_depth (backpressure)
  kGlobalQueueFull,  // total backlog at FrontendOptions::global_queue_depth
  kInFlightQuota,    // queued + unfinished jobs at quota.max_in_flight
  kRateLimited,      // token bucket empty
};
inline constexpr std::size_t kNumRejectReasons = 5;

[[nodiscard]] const char* reject_reason_name(RejectReason reason);

/// Per-tenant admission limits. Defaults admit everything (no quota).
struct TenantQuota {
  /// Jobs allowed to wait in the tenant's lane; arrivals beyond this are
  /// rejected kTenantQueueFull (bounded buffering, never unbounded).
  std::size_t max_queue_depth = 64;
  /// Queued plus in-service-but-not-yet-complete jobs (virtual time).
  std::size_t max_in_flight = std::numeric_limits<std::size_t>::max();
  /// Token-bucket sustained admission rate; infinity = unlimited.
  double rate_per_s = std::numeric_limits<double>::infinity();
  /// Token-bucket burst capacity (whole jobs).
  double burst = 32.0;
  /// DRR quantum: jobs' worth of deficit credited per scheduler visit.
  /// Equal quanta give equal service under backlog; larger = more share.
  std::uint64_t weight = 1;
};

/// Deterministic token bucket on the virtual clock. Refills continuously
/// at rate_per_s up to burst; try_take admits one job per token.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst);

  /// Refills up to now_ns and consumes one token if available. `now_ns`
  /// must be monotonically nondecreasing across calls.
  bool try_take(std::uint64_t now_ns);

  /// Tokens available at now_ns (refill applied, nothing consumed).
  [[nodiscard]] double available(std::uint64_t now_ns);

 private:
  void refill(std::uint64_t now_ns);

  double rate_per_ns_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
  bool unlimited_;
};

/// Everything the front end accounts per tenant. Counters are exact; the
/// ledger shares (words/messages/rounds) are the tenant's attributed
/// slice of each mixed batch's ledger delta — per-batch deltas are split
/// across lanes evenly with the remainder assigned to the earliest lanes
/// in batch order, so the per-tenant sums reproduce the global ledger
/// exactly (tests/test_serve.cpp proves conservation).
struct TenantStats {
  std::string name;
  TenantQuota quota;

  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_total = 0;
  std::array<std::uint64_t, kNumRejectReasons> rejected{};

  // Attributed ledger shares (goodput words, overhead words, one-sided
  // words, messages, rounds) summing exactly to the machine ledger
  // across tenants.
  std::uint64_t words = 0;
  std::uint64_t overhead_words = 0;
  std::uint64_t onesided_words = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;

  // Virtual-time latency decomposition, nanoseconds: queue wait
  // (batch start - arrival), service (completion - batch start), and
  // end-to-end latency (completion - arrival).
  obs::HistogramStats queue_wait_ns;
  obs::HistogramStats service_ns;
  obs::HistogramStats latency_ns;
};

}  // namespace sttsv::serve
