#include "serve/drr.hpp"

#include "support/check.hpp"

namespace sttsv::serve {

std::size_t DrrScheduler::add_lane(std::uint64_t quantum) {
  STTSV_REQUIRE(quantum >= 1, "DRR quantum must be >= 1");
  Lane lane;
  lane.quantum = quantum;
  lanes_.push_back(std::move(lane));
  return lanes_.size() - 1;
}

void DrrScheduler::enqueue(std::size_t lane, std::uint64_t handle) {
  STTSV_REQUIRE(lane < lanes_.size(), "DRR lane out of range");
  lanes_[lane].q.push_back(handle);
  ++backlog_;
}

void DrrScheduler::requeue_front(std::size_t lane, std::uint64_t handle) {
  STTSV_REQUIRE(lane < lanes_.size(), "DRR lane out of range");
  lanes_[lane].q.push_front(handle);
  ++backlog_;
}

std::size_t DrrScheduler::lane_depth(std::size_t lane) const {
  STTSV_REQUIRE(lane < lanes_.size(), "DRR lane out of range");
  return lanes_[lane].q.size();
}

std::vector<DrrScheduler::Pick> DrrScheduler::next_batch(std::size_t width) {
  STTSV_REQUIRE(width >= 1, "DRR batch width must be >= 1");
  std::vector<Pick> out;
  if (lanes_.empty()) return out;
  while (out.size() < width && backlog_ > 0) {
    Lane& lane = lanes_[cursor_];
    if (lane.q.empty()) {
      // An idle lane banks no credit (classic DRR: deficit resets when
      // the queue drains, so credit cannot accumulate while idle).
      lane.deficit = 0;
      cursor_ = (cursor_ + 1) % lanes_.size();
      continue;
    }
    // A fresh service opportunity credits the quantum; a lane resumed
    // after a batch-boundary truncation keeps its remaining deficit.
    if (lane.deficit == 0) lane.deficit = lane.quantum;
    while (lane.deficit > 0 && !lane.q.empty() && out.size() < width) {
      out.emplace_back(cursor_, lane.q.front());
      lane.q.pop_front();
      --backlog_;
      --lane.deficit;
    }
    if (out.size() == width && lane.deficit > 0 && !lane.q.empty()) {
      break;  // park the cursor here; leftover deficit carries over
    }
    if (lane.q.empty()) lane.deficit = 0;
    cursor_ = (cursor_ + 1) % lanes_.size();
  }
  return out;
}

}  // namespace sttsv::serve
