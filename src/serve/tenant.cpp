#include "serve/tenant.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::serve {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kShapeMismatch:
      return "shape_mismatch";
    case RejectReason::kTenantQueueFull:
      return "tenant_queue_full";
    case RejectReason::kGlobalQueueFull:
      return "global_queue_full";
    case RejectReason::kInFlightQuota:
      return "in_flight_quota";
    case RejectReason::kRateLimited:
      return "rate_limited";
  }
  STTSV_CHECK(false, "unknown reject reason");
  return "";
}

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_ns_(rate_per_s / 1e9),
      burst_(burst),
      tokens_(burst),
      unlimited_(!(rate_per_s < std::numeric_limits<double>::infinity())) {
  STTSV_REQUIRE(rate_per_s > 0.0, "token bucket rate must be positive");
  STTSV_REQUIRE(burst >= 1.0, "token bucket burst must be >= 1");
}

void TokenBucket::refill(std::uint64_t now_ns) {
  STTSV_REQUIRE(now_ns >= last_ns_, "token bucket clock must not go back");
  tokens_ = std::min(
      burst_, tokens_ + rate_per_ns_ * static_cast<double>(now_ns - last_ns_));
  last_ns_ = now_ns;
}

bool TokenBucket::try_take(std::uint64_t now_ns) {
  if (unlimited_) return true;
  refill(now_ns);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(std::uint64_t now_ns) {
  if (unlimited_) return std::numeric_limits<double>::infinity();
  refill(now_ns);
  return tokens_;
}

}  // namespace sttsv::serve
