#pragma once
// Multi-tenant serving front end over batch::Engine (DESIGN.md §14).
//
// Tenants register lanes and submit independent STTSV requests against
// one resident tensor; the front end admits or rejects each request
// (bounded queues, in-flight quotas, token-bucket rates — rejects are
// explicit and attributed, never silent drops), schedules admitted jobs
// with deficit round-robin into mixed-tenant batches of up to
// batch_width, and runs each batch through the engine. Because every
// lane of a batched run is bitwise identical to its single-vector run
// (DESIGN.md §9), a tenant's outputs are bitwise identical to running
// its jobs alone — batch composition is unobservable in the numbers, the
// serving-layer extension of the repo's determinism invariant.
//
// Time: the front end runs on a VIRTUAL clock (nanoseconds) advanced by
// the caller (advance_to), with a deterministic service-time model —
// a batch of B jobs occupies the server for alpha + beta·B virtual ns.
// Admission, scheduling, batch composition, and every latency number are
// therefore pure functions of the seeded arrival sequence; the engine
// still performs the real computation for every admitted job. A batch
// starts as soon as the server is free and jobs are queued (greedy
// dispatch: width-1 batches at light load, full batches under backlog).
//
// Ledger attribution: each batch's ledger delta (goodput words, overhead
// words, messages, rounds) is split evenly across its lanes with the
// remainder charged to the earliest lanes in batch order, so per-tenant
// shares sum EXACTLY to the machine ledger — conservation holds with
// per-tenant resolution (tests/test_serve.cpp).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "batch/engine.hpp"
#include "batch/plan.hpp"
#include "serve/drr.hpp"
#include "serve/tenant.hpp"
#include "simt/machine.hpp"
#include "simt/pipeline.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::serve {

struct FrontendOptions {
  /// Largest mixed-tenant batch (also the engine's max_batch_size).
  std::size_t batch_width = 16;
  /// Total queued jobs across all lanes; arrivals beyond this are
  /// rejected kGlobalQueueFull.
  std::size_t global_queue_depth = 1024;
  /// Virtual service-time model: a batch of B jobs holds the server for
  /// alpha + beta * B nanoseconds. The defaults give a saturation
  /// throughput of batch_width / (alpha + beta * batch_width) jobs/ns.
  std::uint64_t service_alpha_ns = 2'000'000;
  std::uint64_t service_beta_ns = 250'000;
  /// Phase schedule forwarded to the engine (outputs identical either way).
  simt::PipelineMode pipeline = simt::PipelineMode::kDoubleBuffered;
  /// Optional resilience seam forwarded to the engine (must wrap the
  /// front end's machine; non-owning, must outlive the front end). With
  /// a fail-fast ReliableExchange, a faulted batch raises simt::FaultError
  /// out of submit()/advance_to()/drain() AFTER the front end has re-
  /// parked the batch's jobs (same handles, lane-FIFO order preserved) —
  /// no request is lost and no quota leaks; the caller recovers (e.g.
  /// elastic shrink + rebind) and pumps again.
  simt::Exchanger* exchanger = nullptr;
  /// Transport backend when `exchanger` is unset, forwarded to
  /// batch::EngineOptions::transport (DESIGN.md §16): the engine builds
  /// and owns a one-sided or active-message exchanger, and the front
  /// end's per-tenant attribution picks up the one-sided channel.
  simt::TransportKind transport = simt::TransportKind::kDirect;
  /// Rank -> node map forwarded to batch::EngineOptions::topology
  /// (DESIGN.md §17): non-empty splits the ledger's accounting by level
  /// and, under TransportKind::kHierarchical, selects the composed
  /// two-level backend. Ignored when an explicit `exchanger` is supplied.
  std::vector<std::uint32_t> topology;
  /// Inter-node backend under kHierarchical, forwarded to
  /// batch::EngineOptions::hier_inter.
  simt::TransportKind hier_inter = simt::TransportKind::kDirect;
};

/// One finished job as delivered to its submit callback.
struct JobResult {
  TenantId tenant = 0;
  /// Per-tenant admission sequence number (FIFO witness: completions of
  /// one tenant carry strictly increasing seq).
  std::uint64_t seq = 0;
  std::vector<double> y;
  std::uint64_t arrival_ns = 0;
  std::uint64_t start_ns = 0;       // batch start (queue wait ends)
  std::uint64_t completion_ns = 0;  // virtual completion
};

/// Outcome of submit(): admitted with a job handle, or rejected with a
/// reason (reason is meaningful only when admitted == false).
struct Admission {
  bool admitted = false;
  std::uint64_t job_id = 0;
  RejectReason reason = RejectReason::kShapeMismatch;
};

struct FrontendStats {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches_run = 0;
  std::uint64_t batched_jobs = 0;  // sum of batch sizes
  std::size_t largest_batch = 0;
  /// Batches that raised simt::FaultError mid-run and were re-parked.
  std::uint64_t dispatch_failures = 0;
};

/// Single-threaded like the engine it drives (the simulated machine has
/// one driver); concurrent tenants are multiplexed by the caller feeding
/// one merged arrival sequence. ShardedPlanCache is the concurrent piece.
class Frontend {
 public:
  using Callback = std::function<void(JobResult)>;

  /// Machine, plan and tensor must outlive the front end; the machine
  /// must match the plan and the tensor dimension must equal plan n.
  Frontend(simt::Machine& machine, std::shared_ptr<const batch::Plan> plan,
           const tensor::SymTensor3& a, FrontendOptions opts = {});

  /// Registers a tenant lane; returns its dense id.
  TenantId add_tenant(std::string name, TenantQuota quota = {});

  /// Admission-controlled submit at the current virtual time. On
  /// admission the job enters its tenant's FIFO lane; the callback fires
  /// (inline, during a later pump) when its batch completes.
  Admission submit(TenantId tenant, std::vector<double> x, Callback cb);

  /// Advances the virtual clock to `now_ns` (monotonic), running every
  /// batch whose start time falls at or before it.
  void advance_to(std::uint64_t now_ns);

  /// Runs all queued jobs regardless of virtual time, advancing the
  /// clock through each batch; returns with an empty backlog.
  void drain();

  [[nodiscard]] std::uint64_t now_ns() const { return now_ns_; }
  [[nodiscard]] std::uint64_t busy_until_ns() const { return busy_until_ns_; }
  [[nodiscard]] std::size_t backlog() const { return drr_.backlog(); }
  [[nodiscard]] std::size_t num_tenants() const { return tenants_.size(); }
  [[nodiscard]] const TenantStats& tenant_stats(TenantId tenant) const;
  [[nodiscard]] const FrontendStats& stats() const { return stats_; }
  [[nodiscard]] const FrontendOptions& options() const { return opts_; }
  [[nodiscard]] const batch::Engine& engine() const { return engine_; }

  /// Saturation throughput of the service model (jobs per virtual
  /// second at full batches) — the benchmarks sweep offered load
  /// relative to this.
  [[nodiscard]] double saturation_jobs_per_s() const;

  /// Graceful capacity degradation after an elastic shrink: rescales the
  /// per-job service cost to `alive` survivors out of the machine's P
  /// ranks (beta -> beta * P / alive, rounded up), so admission and the
  /// virtual latency numbers reflect the smaller cluster. Idempotent in
  /// `alive` (always rescales from the construction-time beta); restore
  /// full capacity with alive == P.
  void degrade_capacity(std::size_t alive);

  /// Publishes global counters plus per-tenant counters, ledger shares
  /// and latency percentiles as "<prefix>.*" / "<prefix>.tenant.<name>.*"
  /// (set absolutely, so re-export is idempotent).
  void publish_metrics(obs::MetricsRegistry& out,
                       const std::string& prefix = "serve") const;

 private:
  struct PendingJob {
    TenantId tenant = 0;
    std::uint64_t seq = 0;
    std::uint64_t arrival_ns = 0;
    std::vector<double> x;
    Callback cb;
  };

  /// Runs one DRR batch starting at `start_ns` virtual time.
  void run_batch(std::uint64_t start_ns);
  /// Queued + not-yet-complete jobs of a tenant at the current time.
  [[nodiscard]] std::size_t in_flight(TenantId tenant);

  simt::Machine& machine_;
  std::shared_ptr<const batch::Plan> plan_;
  FrontendOptions opts_;
  batch::Engine engine_;
  DrrScheduler drr_;
  std::vector<TenantStats> tenants_;
  std::vector<TokenBucket> buckets_;
  /// Per tenant: virtual completion times of dispatched jobs, ascending;
  /// pruned lazily against the clock for in-flight accounting.
  std::vector<std::deque<std::uint64_t>> dispatched_;
  std::unordered_map<std::uint64_t, PendingJob> jobs_;
  std::uint64_t next_handle_ = 0;
  std::uint64_t now_ns_ = 0;
  std::uint64_t busy_until_ns_ = 0;
  /// Construction-time service beta, the degrade_capacity() baseline.
  std::uint64_t base_beta_ns_ = 0;
  FrontendStats stats_;
};

}  // namespace sttsv::serve
