#include "serve/frontend.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace sttsv::serve {

namespace {

std::size_t reason_index(RejectReason reason) {
  return static_cast<std::size_t>(reason);
}

}  // namespace

Frontend::Frontend(simt::Machine& machine,
                   std::shared_ptr<const batch::Plan> plan,
                   const tensor::SymTensor3& a, FrontendOptions opts)
    : machine_(machine),
      plan_(std::move(plan)),
      opts_(opts),
      engine_(machine, plan_, a,
              batch::EngineOptions{.max_batch_size = opts.batch_width,
                                   .exchanger = opts.exchanger,
                                   .transport = opts.transport,
                                   .pipeline = opts.pipeline,
                                   .topology = opts.topology,
                                   .hier_inter = opts.hier_inter}),
      base_beta_ns_(opts.service_beta_ns) {
  STTSV_REQUIRE(opts_.batch_width >= 1, "batch width must be >= 1");
  STTSV_REQUIRE(opts_.global_queue_depth >= 1,
                "global queue depth must be >= 1");
  STTSV_REQUIRE(opts_.service_alpha_ns + opts_.service_beta_ns >= 1,
                "service model must cost at least 1 ns per batch");
}

TenantId Frontend::add_tenant(std::string name, TenantQuota quota) {
  STTSV_REQUIRE(quota.max_queue_depth >= 1,
                "tenant queue depth must be >= 1");
  const TenantId id = drr_.add_lane(quota.weight);
  STTSV_CHECK(id == tenants_.size(), "lane/tenant id drift");
  TenantStats stats;
  stats.name = std::move(name);
  stats.quota = quota;
  tenants_.push_back(std::move(stats));
  buckets_.emplace_back(quota.rate_per_s, quota.burst);
  dispatched_.emplace_back();
  return id;
}

const TenantStats& Frontend::tenant_stats(TenantId tenant) const {
  STTSV_REQUIRE(tenant < tenants_.size(), "unknown tenant");
  return tenants_[tenant];
}

double Frontend::saturation_jobs_per_s() const {
  const double width = static_cast<double>(opts_.batch_width);
  const double batch_ns = static_cast<double>(
      opts_.service_alpha_ns + opts_.service_beta_ns * opts_.batch_width);
  return width / batch_ns * 1e9;
}

void Frontend::degrade_capacity(std::size_t alive) {
  const std::size_t P = machine_.num_ranks();
  STTSV_REQUIRE(alive >= 1 && alive <= P,
                "alive count must be in [1, num_ranks]");
  // Ceiling division: a shrunken cluster never looks cheaper than full
  // width, and alive == P restores the construction-time beta exactly.
  opts_.service_beta_ns = (base_beta_ns_ * P + alive - 1) / alive;
}

std::size_t Frontend::in_flight(TenantId tenant) {
  std::deque<std::uint64_t>& d = dispatched_[tenant];
  while (!d.empty() && d.front() <= now_ns_) d.pop_front();
  return drr_.lane_depth(tenant) + d.size();
}

Admission Frontend::submit(TenantId tenant, std::vector<double> x,
                           Callback cb) {
  STTSV_REQUIRE(tenant < tenants_.size(), "unknown tenant");
  TenantStats& ts = tenants_[tenant];
  const auto reject = [&](RejectReason reason) {
    ++ts.rejected_total;
    ++ts.rejected[reason_index(reason)];
    ++stats_.rejected;
    return Admission{false, 0, reason};
  };
  // Check order matches RejectReason declaration order: structural checks
  // first, shared-capacity checks next, the token bucket last so a job
  // rejected for capacity does not burn rate budget.
  if (x.size() != plan_->key().n) return reject(RejectReason::kShapeMismatch);
  if (drr_.lane_depth(tenant) >= ts.quota.max_queue_depth) {
    return reject(RejectReason::kTenantQueueFull);
  }
  if (drr_.backlog() >= opts_.global_queue_depth) {
    return reject(RejectReason::kGlobalQueueFull);
  }
  if (in_flight(tenant) >= ts.quota.max_in_flight) {
    return reject(RejectReason::kInFlightQuota);
  }
  if (!buckets_[tenant].try_take(now_ns_)) {
    return reject(RejectReason::kRateLimited);
  }

  const std::uint64_t handle = next_handle_++;
  PendingJob job;
  job.tenant = tenant;
  job.seq = ts.admitted;
  job.arrival_ns = now_ns_;
  job.x = std::move(x);
  job.cb = std::move(cb);
  jobs_.emplace(handle, std::move(job));
  ++ts.admitted;
  ++stats_.admitted;
  drr_.enqueue(tenant, handle);
  // Greedy dispatch: an idle server starts a batch immediately (width 1
  // at light load); a busy server leaves the job queued for the next
  // completion boundary (advance_to).
  if (busy_until_ns_ <= now_ns_) run_batch(now_ns_);
  return Admission{true, handle, RejectReason::kShapeMismatch};
}

void Frontend::advance_to(std::uint64_t now_ns) {
  STTSV_REQUIRE(now_ns >= now_ns_, "virtual clock must not go backwards");
  // After any submit/pump, backlog > 0 implies the server is busy; each
  // completion at or before the target time starts the next batch.
  while (drr_.backlog() > 0 && busy_until_ns_ <= now_ns) {
    now_ns_ = std::max(now_ns_, busy_until_ns_);
    run_batch(now_ns_);
  }
  now_ns_ = now_ns;
}

void Frontend::drain() {
  while (drr_.backlog() > 0) {
    now_ns_ = std::max(now_ns_, busy_until_ns_);
    run_batch(now_ns_);
  }
  now_ns_ = std::max(now_ns_, busy_until_ns_);
}

void Frontend::run_batch(std::uint64_t start_ns) {
  const std::vector<DrrScheduler::Pick> picks =
      drr_.next_batch(opts_.batch_width);
  STTSV_CHECK(!picks.empty(), "run_batch with an empty backlog");
  const std::size_t B = picks.size();
  obs::Span batch_span("serve.batch", obs::Category::kServe, B);

  std::vector<PendingJob> jobs;
  jobs.reserve(B);
  for (const auto& [lane, handle] : picks) {
    auto it = jobs_.find(handle);
    STTSV_CHECK(it != jobs_.end(), "scheduled job missing from the store");
    STTSV_CHECK(it->second.tenant == lane, "lane/tenant mismatch");
    jobs.push_back(std::move(it->second));
    jobs_.erase(it);
  }

  // Ledger baseline for per-tenant attribution of this batch's delta.
  const simt::CommLedger& ledger = machine_.ledger();
  const std::uint64_t words0 = ledger.total_words();
  const std::uint64_t overhead0 = ledger.total_overhead_words();
  const std::uint64_t onesided0 = ledger.total_onesided_words();
  const std::uint64_t messages0 = ledger.total_messages();
  const std::uint64_t rounds0 = ledger.rounds();

  // Attribute a ledger delta across lanes: every lane gets the floor
  // share, the first (delta mod B) lanes in batch order one extra word —
  // deterministic, and the shares sum exactly to the delta.
  const auto share = [B](std::uint64_t total, std::size_t v) {
    return total / B + (v < total % B ? 1 : 0);
  };

  // The engine queue is empty between serve batches and B <= the engine's
  // max_batch_size, so flush() runs exactly one aggregated batch whose
  // lane order is the DRR pick order. A simt::FaultError (fail-fast
  // exchanger, retry budget spent) leaves that batch queued in the
  // engine; we reclaim the inputs, re-park the jobs under their ORIGINAL
  // handles and seq numbers, and put the handles back at the front of
  // their lanes in reverse pick order — so per-lane FIFO order, in-flight
  // accounting, and admission quotas are exactly as before the dispatch.
  // The faulted attempt's ledger delta (retries are real traffic) is
  // still attributed to the picked lanes so per-tenant shares keep
  // summing exactly to the machine ledger.
  std::vector<std::vector<double>> ys(B);
  try {
    for (std::size_t v = 0; v < B; ++v) {
      engine_.submit(std::move(jobs[v].x),
                     [&ys, v](std::size_t, std::vector<double> y) {
                       ys[v] = std::move(y);
                     });
    }
    engine_.flush();
  } catch (const simt::FaultError&) {
    const simt::CommLedger& led = machine_.ledger();
    const std::uint64_t dw = led.total_words() - words0;
    const std::uint64_t doh = led.total_overhead_words() - overhead0;
    const std::uint64_t dos = led.total_onesided_words() - onesided0;
    const std::uint64_t dm = led.total_messages() - messages0;
    const std::uint64_t dr = led.rounds() - rounds0;
    for (std::size_t v = 0; v < B; ++v) {
      TenantStats& ts = tenants_[jobs[v].tenant];
      ts.words += share(dw, v);
      ts.overhead_words += share(doh, v);
      ts.onesided_words += share(dos, v);
      ts.messages += share(dm, v);
      ts.rounds += share(dr, v);
    }
    std::vector<std::vector<double>> xs = engine_.cancel_pending();
    STTSV_CHECK(xs.size() == B, "faulted batch did not stay queued intact");
    for (std::size_t v = 0; v < B; ++v) {
      jobs[v].x = std::move(xs[v]);
      jobs_.emplace(picks[v].second, std::move(jobs[v]));
    }
    for (std::size_t v = B; v-- > 0;) {
      drr_.requeue_front(picks[v].first, picks[v].second);
    }
    ++stats_.dispatch_failures;
    // busy_until_ / batches_run are untouched: virtually, the batch
    // never started.
    throw;
  }

  const std::uint64_t delta_words = ledger.total_words() - words0;
  const std::uint64_t delta_overhead =
      ledger.total_overhead_words() - overhead0;
  const std::uint64_t delta_onesided =
      ledger.total_onesided_words() - onesided0;
  const std::uint64_t delta_messages = ledger.total_messages() - messages0;
  const std::uint64_t delta_rounds = ledger.rounds() - rounds0;

  const std::uint64_t completion_ns =
      start_ns + opts_.service_alpha_ns +
      opts_.service_beta_ns * static_cast<std::uint64_t>(B);
  busy_until_ns_ = completion_ns;

  ++stats_.batches_run;
  stats_.batched_jobs += B;
  stats_.largest_batch = std::max(stats_.largest_batch, B);

  for (std::size_t v = 0; v < B; ++v) {
    TenantStats& ts = tenants_[jobs[v].tenant];
    obs::Span tenant_span("serve.tenant-slice", obs::Category::kServe,
                          jobs[v].tenant);
    ts.words += share(delta_words, v);
    ts.overhead_words += share(delta_overhead, v);
    ts.onesided_words += share(delta_onesided, v);
    ts.messages += share(delta_messages, v);
    ts.rounds += share(delta_rounds, v);
    ++ts.completed;
    ++stats_.completed;
    const double wait =
        static_cast<double>(start_ns - jobs[v].arrival_ns);
    const double service = static_cast<double>(completion_ns - start_ns);
    ts.queue_wait_ns.observe(wait);
    ts.service_ns.observe(service);
    ts.latency_ns.observe(wait + service);
    dispatched_[jobs[v].tenant].push_back(completion_ns);
  }

  for (std::size_t v = 0; v < B; ++v) {
    if (!jobs[v].cb) continue;
    JobResult result;
    result.tenant = jobs[v].tenant;
    result.seq = jobs[v].seq;
    result.y = std::move(ys[v]);
    result.arrival_ns = jobs[v].arrival_ns;
    result.start_ns = start_ns;
    result.completion_ns = completion_ns;
    jobs[v].cb(std::move(result));
  }
}

void Frontend::publish_metrics(obs::MetricsRegistry& out,
                               const std::string& prefix) const {
  out.set_counter(prefix + ".admitted", stats_.admitted);
  out.set_counter(prefix + ".completed", stats_.completed);
  out.set_counter(prefix + ".rejected", stats_.rejected);
  out.set_counter(prefix + ".batches_run", stats_.batches_run);
  out.set_counter(prefix + ".batched_jobs", stats_.batched_jobs);
  out.set_counter(prefix + ".largest_batch", stats_.largest_batch);
  out.set_counter(prefix + ".dispatch_failures", stats_.dispatch_failures);
  out.set_counter(prefix + ".backlog", drr_.backlog());
  for (const TenantStats& ts : tenants_) {
    const std::string base = prefix + ".tenant." + ts.name;
    out.set_counter(base + ".admitted", ts.admitted);
    out.set_counter(base + ".completed", ts.completed);
    out.set_counter(base + ".rejected", ts.rejected_total);
    for (std::size_t r = 0; r < kNumRejectReasons; ++r) {
      if (ts.rejected[r] == 0) continue;  // keep exports compact
      out.set_counter(
          base + ".rejected." +
              reject_reason_name(static_cast<RejectReason>(r)),
          ts.rejected[r]);
    }
    out.set_counter(base + ".words", ts.words);
    out.set_counter(base + ".overhead_words", ts.overhead_words);
    out.set_counter(base + ".onesided_words", ts.onesided_words);
    out.set_counter(base + ".messages", ts.messages);
    out.set_counter(base + ".rounds", ts.rounds);
    out.set_gauge(base + ".queue_wait_p50_ns",
                  ts.queue_wait_ns.percentile(0.50));
    out.set_gauge(base + ".queue_wait_p99_ns",
                  ts.queue_wait_ns.percentile(0.99));
    out.set_gauge(base + ".latency_p50_ns", ts.latency_ns.percentile(0.50));
    out.set_gauge(base + ".latency_p99_ns", ts.latency_ns.percentile(0.99));
  }
}

}  // namespace sttsv::serve
