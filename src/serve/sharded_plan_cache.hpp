#pragma once
// Sharded, thread-safe plan cache for the serving layer (DESIGN.md §14).
// The Steiner/partition plan depends only on (n, P, family, transport) —
// nothing tenant- or value-specific — so hot shapes can stay
// pointer-identical across every tenant that serves them. This wrapper
// spreads batch::PlanCache instances over `shards` mutex-protected
// shards keyed by PlanKeyHash: concurrent lookups of the SAME shape
// serialize only on that shape's shard (the first caller builds, later
// callers hit and receive the identical shared_ptr), while DISTINCT
// shapes land on distinct shards and do not contend. LRU eviction runs
// per shard with per-shard capacity.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "batch/plan.hpp"

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::serve {

class ShardedPlanCache {
 public:
  /// `shards` independent batch::PlanCache instances, each holding up to
  /// `per_shard_capacity` plans under LRU.
  explicit ShardedPlanCache(std::size_t shards = 8,
                            std::size_t per_shard_capacity = 8);

  /// Thread-safe memoized Plan::build: hits return the cached pointer
  /// (identity-preserving); misses build under the shard lock.
  std::shared_ptr<const batch::Plan> get(const batch::PlanKey& key);

  /// Which shard a key lives on (stable; used by the sharding tests).
  [[nodiscard]] std::size_t shard_of(const batch::PlanKey& key) const;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

  /// Aggregates over all shards.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t size() const;
  /// hits / (hits + misses); 0 when never queried.
  [[nodiscard]] double hit_rate() const;

  /// Per-shard snapshot for tests and metrics.
  struct ShardStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  [[nodiscard]] ShardStats shard_stats(std::size_t shard) const;

  /// Publishes aggregate + per-shard counters as "<prefix>.*", set
  /// absolutely so re-export is idempotent.
  void publish_metrics(obs::MetricsRegistry& out,
                       const std::string& prefix = "serve.plan_cache") const;

 private:
  struct Shard {
    mutable std::mutex mu;
    batch::PlanCache cache;
    explicit Shard(std::size_t capacity) : cache(capacity) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sttsv::serve
