#pragma once
// The geometric inequalities of the paper's Section 4, as executable
// checks used by property tests:
//
//  * Lemma 4.1 (Loomis-Whitney, 3D): |V| <= |φ_i(V)|·|φ_j(V)|·|φ_k(V)|.
//  * Lemma 4.2 (symmetric extension): for V within the strict region
//    i > j > k, 6|V| <= |φ_i ∪ φ_j ∪ φ_k|³.
//  * The order-d generalization: d!·|V| <= |∪_t φ_t(V)|^d for V within
//    the strictly decreasing region (the bound behind the Section 8
//    extension of the lower bound).

#include <array>
#include <cstddef>
#include <set>
#include <vector>

namespace sttsv::core {

using Point3 = std::array<std::size_t, 3>;
using PointD = std::vector<std::size_t>;

/// Axis projections of a 3D point set.
struct Projections3 {
  std::set<std::size_t> i, j, k;

  [[nodiscard]] std::size_t union_size() const;
};

Projections3 project3(const std::vector<Point3>& points);

/// Lemma 4.1 check: |V| <= |φ_i|·|φ_j|·|φ_k| (holds for ANY finite V).
bool loomis_whitney_holds(const std::vector<Point3>& points);

/// Lemma 4.2 check: 6|V| <= |φ_i ∪ φ_j ∪ φ_k|³; requires every point to
/// satisfy i > j > k (throws otherwise).
bool symmetric_projection_bound_holds(const std::vector<Point3>& points);

/// Order-d generalization: d!|V| <= |∪ projections|^d for strictly
/// decreasing tuples (throws if a point is not strictly decreasing).
bool symmetric_projection_bound_holds_d(const std::vector<PointD>& points);

/// The V~ expansion from the proof of Lemma 4.2: all d! permutations of
/// every point. |expand_symmetric(V)| == d!·|V| exactly when the points
/// are strictly decreasing.
std::vector<PointD> expand_symmetric(const std::vector<PointD>& points);

}  // namespace sttsv::core
