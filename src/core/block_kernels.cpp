#include "core/block_kernels.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "support/check.hpp"

// The specialized kernels take mutually distinct buffers (aliased slots
// are collapsed before dispatch), so the compiler may keep accumulators
// in registers and vectorize the k-innermost loops.
#define STTSV_RESTRICT __restrict__

namespace sttsv::core {

namespace {

/// Packed offset of the row (gi, gj, *): data[row + gk] is a_{gi,gj,gk}.
inline std::size_t row_base(std::size_t gi, std::size_t gj) {
  return gi * (gi + 1) * (gi + 2) / 6 + gj * (gj + 1) / 2;
}

/// Interior block c.i > c.j > c.k: the three index ranges are disjoint, so
/// every element is strict (gi > gj > gk) and performs the same 3 updates —
/// no multiplicity tests anywhere. The k loop is a fused dot-product /
/// axpy pair; y_i and y_j contributions ride in registers across it.
std::uint64_t interior_kernel(const double* STTSV_RESTRICT data,
                              std::size_t i0, std::size_t i_end,
                              std::size_t j0, std::size_t j_end,
                              std::size_t k0, std::size_t k_end,
                              const double* STTSV_RESTRICT xi,
                              const double* STTSV_RESTRICT xj,
                              const double* STTSV_RESTRICT xk,
                              double* STTSV_RESTRICT yi,
                              double* STTSV_RESTRICT yj,
                              double* STTSV_RESTRICT yk) {
  const std::size_t kb = k_end - k0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xi[li];
    double yi_row = 0.0;
    for (std::size_t gj = j0; gj < j_end; ++gj) {
      const std::size_t lj = gj - j0;
      const double xjv = xj[lj];
      const double* STTSV_RESTRICT row = data + row_base(gi, gj) + k0;
      const double cij = 2.0 * xiv * xjv;
      double acc = 0.0;
      for (std::size_t lk = 0; lk < kb; ++lk) {
        const double v = row[lk];
        acc += v * xk[lk];
        yk[lk] += cij * v;
      }
      yi_row += xjv * acc;
      yj[lj] += 2.0 * xiv * acc;
    }
    yi[li] += 2.0 * yi_row;
  }
  return 3 * static_cast<std::uint64_t>(i_end - i0) * (j_end - j0) * kb;
}

/// Face block c.i == c.j > c.k: rows with gi > gj are strict; the single
/// gj == gi row per gi (element class i == j > k, 2 updates) is hoisted
/// out of the inner loop. Slots 0 and 1 alias: xij/yij serve both.
std::uint64_t face_ij_kernel(const double* STTSV_RESTRICT data,
                             std::size_t i0, std::size_t i_end,
                             std::size_t k0, std::size_t k_end,
                             const double* STTSV_RESTRICT xij,
                             const double* STTSV_RESTRICT xk,
                             double* STTSV_RESTRICT yij,
                             double* STTSV_RESTRICT yk) {
  const std::size_t kb = k_end - k0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xij[li];
    double yi_row = 0.0;
    for (std::size_t gj = i0; gj < gi; ++gj) {
      const std::size_t lj = gj - i0;
      const double xjv = xij[lj];
      const double* STTSV_RESTRICT row = data + row_base(gi, gj) + k0;
      const double cij = 2.0 * xiv * xjv;
      double acc = 0.0;
      for (std::size_t lk = 0; lk < kb; ++lk) {
        const double v = row[lk];
        acc += v * xk[lk];
        yk[lk] += cij * v;
      }
      yi_row += xjv * acc;
      yij[lj] += 2.0 * xiv * acc;
    }
    // gj == gi: y_i += 2 a x_j x_k collapses to 2 x_i Σ a x_k, and
    // y_k += a x_i x_j becomes an axpy with coefficient x_i².
    const double* STTSV_RESTRICT row = data + row_base(gi, gi) + k0;
    const double cii = xiv * xiv;
    double acc = 0.0;
    for (std::size_t lk = 0; lk < kb; ++lk) {
      const double v = row[lk];
      acc += v * xk[lk];
      yk[lk] += cii * v;
    }
    yij[li] += 2.0 * (yi_row + xiv * acc);
  }
  const std::uint64_t ni = i_end - i0;
  return kb * (3 * (ni * (ni - 1) / 2) + 2 * ni);
}

/// Face block c.i > c.j == c.k: within each (gi, gj) the run gk < gj is
/// strict; the gk == gj tail (element class i > j == k, 2 updates) is
/// hoisted out of the loop. Slots 1 and 2 alias: xjk/yjk serve both.
std::uint64_t face_jk_kernel(const double* STTSV_RESTRICT data,
                             std::size_t i0, std::size_t i_end,
                             std::size_t j0, std::size_t j_end,
                             const double* STTSV_RESTRICT xi,
                             const double* STTSV_RESTRICT xjk,
                             double* STTSV_RESTRICT yi,
                             double* STTSV_RESTRICT yjk) {
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xi[li];
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    double yi_row = 0.0;
    for (std::size_t gj = j0; gj < j_end; ++gj) {
      const std::size_t lj = gj - j0;
      const double xjv = xjk[lj];
      const double* STTSV_RESTRICT row =
          data + gi_base + gj * (gj + 1) / 2 + j0;
      const double cij = 2.0 * xiv * xjv;
      double acc = 0.0;
      for (std::size_t lk = 0; lk < lj; ++lk) {
        const double v = row[lk];
        acc += v * xjk[lk];
        yjk[lk] += cij * v;
      }
      // gk == gj tail: y_i += a x_j x_k = a x_j², y_j += 2 a x_i x_k.
      const double vt = row[lj];
      yi_row += 2.0 * xjv * acc + vt * xjv * xjv;
      yjk[lj] += 2.0 * xiv * acc + 2.0 * vt * xiv * xjv;
    }
    yi[li] += yi_row;
  }
  const std::uint64_t ni = i_end - i0;
  const std::uint64_t nj = j_end - j0;
  return ni * (3 * (nj * (nj - 1) / 2) + 2 * nj);
}

}  // namespace

std::uint64_t apply_block_generic(const tensor::SymTensor3& a,
                                  const partition::BlockCoord& c,
                                  std::size_t b, const BlockBuffers& buf) {
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k, "block coordinate must be sorted");
  for (int s = 0; s < 3; ++s) {
    STTSV_REQUIRE(buf.x[s] != nullptr && buf.y[s] != nullptr,
                  "kernel buffers must be bound");
  }
  const std::size_t n = a.dim();
  const double* data = a.data();

  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t k0 = c.k * b;
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  const std::size_t k_end = std::min(k0 + b, n);
  if (i0 >= n) return 0;  // fully padded block

  const bool ij_same_block = (c.i == c.j);
  const bool jk_same_block = (c.j == c.k);

  const double* xi = buf.x[0];
  const double* xj = buf.x[1];
  const double* xk = buf.x[2];
  double* yi = buf.y[0];
  double* yj = buf.y[1];
  double* yk = buf.y[2];

  std::uint64_t count = 0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xi[li];
    // Only gj <= gi contributes when i and j ranges coincide.
    const std::size_t gj_end = ij_same_block ? std::min(gi + 1, j_end) : j_end;
    for (std::size_t gj = j0; gj < gj_end; ++gj) {
      const std::size_t lj = gj - j0;
      const double xjv = xj[lj];
      const std::size_t row = row_base(gi, gj);
      const std::size_t gk_end =
          jk_same_block ? std::min(gj + 1, k_end) : k_end;
      if (gi != gj) {
        // Strict gi > gj: the gk loop splits into a strict run gk < gj
        // (3 updates each) and the possible gk == gj tail (2 updates).
        std::size_t gk = k0;
        const std::size_t strict_end = std::min(gk_end, gj);
        for (; gk < strict_end; ++gk) {
          const double v = data[row + gk];
          const double xkv = xk[gk - k0];
          yi[li] += 2.0 * v * xjv * xkv;
          yj[lj] += 2.0 * v * xiv * xkv;
          yk[gk - k0] += 2.0 * v * xiv * xjv;
          count += 3;
        }
        if (gk < gk_end && gk == gj) {
          // gi > gj == gk.
          const double v = data[row + gk];
          const double xkv = xk[gk - k0];
          yi[li] += v * xjv * xkv;
          yj[lj] += 2.0 * v * xiv * xkv;
          count += 2;
        }
      } else {
        // gi == gj (only in diagonal blocks).
        std::size_t gk = k0;
        const std::size_t strict_end = std::min(gk_end, gj);
        for (; gk < strict_end; ++gk) {
          // gi == gj > gk.
          const double v = data[row + gk];
          const double xkv = xk[gk - k0];
          yi[li] += 2.0 * v * xjv * xkv;
          yk[gk - k0] += v * xiv * xjv;
          count += 2;
        }
        if (gk < gk_end && gk == gj) {
          // gi == gj == gk: central element.
          const double v = data[row + gk];
          yi[li] += v * xjv * xk[gk - k0];
          count += 1;
        }
      }
    }
  }
  return count;
}

std::uint64_t apply_block(const tensor::SymTensor3& a,
                          const partition::BlockCoord& c, std::size_t b,
                          const BlockBuffers& buf) {
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k, "block coordinate must be sorted");
  for (int s = 0; s < 3; ++s) {
    STTSV_REQUIRE(buf.x[s] != nullptr && buf.y[s] != nullptr,
                  "kernel buffers must be bound");
  }
  const std::size_t n = a.dim();
  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t k0 = c.k * b;
  if (i0 >= n) return 0;  // fully padded block
  // i0 < n implies k0 < j0' <= i0 < n for every coordinate, so each range
  // below is non-empty.
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  const std::size_t k_end = std::min(k0 + b, n);

  obs::Span span("kernel.block", obs::Category::kKernel);
  std::uint64_t mults = 0;
  if (c.i > c.j && c.j > c.k) {
    mults = interior_kernel(a.data(), i0, i_end, j0, j_end, k0, k_end,
                            buf.x[0], buf.x[1], buf.x[2], buf.y[0], buf.y[1],
                            buf.y[2]);
  } else if (c.i == c.j && c.j > c.k) {
    // Slots 0 and 1 view the same row block (aliased by contract).
    mults = face_ij_kernel(a.data(), i0, i_end, k0, k_end, buf.x[0], buf.x[2],
                           buf.y[0], buf.y[2]);
  } else if (c.i > c.j && c.j == c.k) {
    // Slots 1 and 2 view the same row block (aliased by contract).
    mults = face_jk_kernel(a.data(), i0, i_end, j0, j_end, buf.x[0], buf.x[1],
                           buf.y[0], buf.y[1]);
  } else {
    // Central diagonal block: every equality case appears; the element-wise
    // reference handles them all and only m such blocks exist per tiling.
    mults = apply_block_generic(a, c, b, buf);
  }
  span.set_arg(mults);
  return mults;
}

}  // namespace sttsv::core
