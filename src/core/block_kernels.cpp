#include "core/block_kernels.hpp"

#include <algorithm>
#include <atomic>

#include "core/block_kernels_impl.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

// This translation unit instantiates the canonical kernels with the
// portable scalar vector type. It is compiled with -ffp-contract=off
// (see src/core/CMakeLists.txt) so the compiler cannot fuse the
// mul/add pairs into FMAs and break the bitwise contract with the AVX2
// instantiation (DESIGN.md §13.1).

namespace sttsv::core {

namespace {

using detail::KernelVTable;

const KernelVTable& scalar_vtable() {
  static const KernelVTable t =
      detail::make_kernel_vtable<simt::simd::VecScalar>();
  return t;
}

const KernelVTable& vtable_for(simt::KernelIsa isa) {
#ifdef STTSV_HAVE_AVX2_KERNELS
  if (isa == simt::KernelIsa::kAvx2 && simt::cpu_features().avx2 &&
      simt::cpu_features().fma) {
    return detail::avx2_kernel_vtable();
  }
#else
  (void)isa;
#endif
  // Requesting kAvx2 without compiled-in AVX2 kernels (or on a host
  // without AVX2+FMA) silently falls back — bitwise identical anyway.
  return scalar_vtable();
}

/// interior/face_ij vtable index for a register-block shape.
std::size_t rj_index(std::uint8_t rj) { return rj == 4 ? 2 : (rj == 2 ? 1 : 0); }

std::uint32_t encode(const KernelOptions& o) {
  return static_cast<std::uint32_t>(o.isa) |
         (static_cast<std::uint32_t>(o.math) << 8) |
         (static_cast<std::uint32_t>(o.rj_interior) << 16) |
         (static_cast<std::uint32_t>(o.rj_face_ij) << 24);
}

KernelOptions decode(std::uint32_t bits) {
  KernelOptions o;
  o.isa = static_cast<simt::KernelIsa>(bits & 0xff);
  o.math = static_cast<KernelMath>((bits >> 8) & 0xff);
  o.rj_interior = static_cast<std::uint8_t>((bits >> 16) & 0xff);
  o.rj_face_ij = static_cast<std::uint8_t>((bits >> 24) & 0xff);
  return o;
}

std::atomic<std::uint32_t>& options_cell() {
  // Initialized on first use so the default picks up preferred_isa()
  // (which reads the STTSV_SIMD environment switch).
  static std::atomic<std::uint32_t> cell{encode(KernelOptions{})};
  return cell;
}

detail::CompressedScratch& compressed_scratch() {
  thread_local detail::CompressedScratch scr;
  return scr;
}

}  // namespace

KernelOptions kernel_options() {
  return decode(options_cell().load(std::memory_order_relaxed));
}

void set_kernel_options(const KernelOptions& opts) {
  const auto valid_rj = [](std::uint8_t rj) {
    return rj == 1 || rj == 2 || rj == 4;
  };
  STTSV_REQUIRE(valid_rj(opts.rj_interior) && valid_rj(opts.rj_face_ij),
                "register-block shape must be 1, 2 or 4");
  options_cell().store(encode(opts), std::memory_order_relaxed);
}

std::uint64_t apply_block_generic(const tensor::SymTensor3& a,
                                  const partition::BlockCoord& c,
                                  std::size_t b, const BlockBuffers& buf) {
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k, "block coordinate must be sorted");
  for (int s = 0; s < 3; ++s) {
    STTSV_REQUIRE(buf.x[s] != nullptr && buf.y[s] != nullptr,
                  "kernel buffers must be bound");
  }
  const std::size_t n = a.dim();
  const double* data = a.data();

  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t k0 = c.k * b;
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  const std::size_t k_end = std::min(k0 + b, n);
  if (i0 >= n) return 0;  // fully padded block

  const bool ij_same_block = (c.i == c.j);
  const bool jk_same_block = (c.j == c.k);

  const double* xi = buf.x[0];
  const double* xj = buf.x[1];
  const double* xk = buf.x[2];
  double* yi = buf.y[0];
  double* yj = buf.y[1];
  double* yk = buf.y[2];

  std::uint64_t count = 0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xi[li];
    // Only gj <= gi contributes when i and j ranges coincide.
    const std::size_t gj_end = ij_same_block ? std::min(gi + 1, j_end) : j_end;
    for (std::size_t gj = j0; gj < gj_end; ++gj) {
      const std::size_t lj = gj - j0;
      const double xjv = xj[lj];
      const std::size_t row = detail::packed_row_base(gi, gj);
      const std::size_t gk_end =
          jk_same_block ? std::min(gj + 1, k_end) : k_end;
      if (gi != gj) {
        // Strict gi > gj: the gk loop splits into a strict run gk < gj
        // (3 updates each) and the possible gk == gj tail (2 updates).
        std::size_t gk = k0;
        const std::size_t strict_end = std::min(gk_end, gj);
        for (; gk < strict_end; ++gk) {
          const double v = data[row + gk];
          const double xkv = xk[gk - k0];
          yi[li] += 2.0 * v * xjv * xkv;
          yj[lj] += 2.0 * v * xiv * xkv;
          yk[gk - k0] += 2.0 * v * xiv * xjv;
          count += 3;
        }
        if (gk < gk_end && gk == gj) {
          // gi > gj == gk.
          const double v = data[row + gk];
          const double xkv = xk[gk - k0];
          yi[li] += v * xjv * xkv;
          yj[lj] += 2.0 * v * xiv * xkv;
          count += 2;
        }
      } else {
        // gi == gj (only in diagonal blocks).
        std::size_t gk = k0;
        const std::size_t strict_end = std::min(gk_end, gj);
        for (; gk < strict_end; ++gk) {
          // gi == gj > gk.
          const double v = data[row + gk];
          const double xkv = xk[gk - k0];
          yi[li] += 2.0 * v * xjv * xkv;
          yk[gk - k0] += v * xiv * xjv;
          count += 2;
        }
        if (gk < gk_end && gk == gj) {
          // gi == gj == gk: central element.
          const double v = data[row + gk];
          yi[li] += v * xjv * xk[gk - k0];
          count += 1;
        }
      }
    }
  }
  return count;
}

std::uint64_t apply_block_ex(const tensor::SymTensor3& a,
                             const partition::BlockCoord& c, std::size_t b,
                             const BlockBuffers& buf,
                             const KernelOptions& opts) {
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k, "block coordinate must be sorted");
  for (int s = 0; s < 3; ++s) {
    STTSV_REQUIRE(buf.x[s] != nullptr && buf.y[s] != nullptr,
                  "kernel buffers must be bound");
  }
  const std::size_t n = a.dim();
  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t k0 = c.k * b;
  if (i0 >= n) return 0;  // fully padded block
  // i0 < n implies k0 <= j0 <= i0 < n for every coordinate, so each range
  // below is non-empty.
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  const std::size_t k_end = std::min(k0 + b, n);

  obs::Span span("kernel.block", obs::Category::kKernel);
  const KernelVTable& vt = vtable_for(opts.isa);
  std::uint64_t mults = 0;
  if (c.i > c.j && c.j > c.k) {
    if (opts.math == KernelMath::kCompressed) {
      mults = vt.interior_compressed(a.data(), i0, i_end, j0, j_end, k0, k_end,
                                     buf.x[0], buf.x[1], buf.x[2], buf.y[0],
                                     buf.y[1], buf.y[2], compressed_scratch());
    } else {
      mults = vt.interior[rj_index(opts.rj_interior)](
          a.data(), i0, i_end, j0, j_end, k0, k_end, buf.x[0], buf.x[1],
          buf.x[2], buf.y[0], buf.y[1], buf.y[2]);
    }
  } else if (c.i == c.j && c.j > c.k) {
    // Slots 0 and 1 view the same row block (aliased by contract).
    mults = vt.face_ij[rj_index(opts.rj_face_ij)](a.data(), i0, i_end, k0,
                                                  k_end, buf.x[0], buf.x[2],
                                                  buf.y[0], buf.y[2]);
  } else if (c.i > c.j && c.j == c.k) {
    // Slots 1 and 2 view the same row block (aliased by contract).
    mults = vt.face_jk(a.data(), i0, i_end, j0, j_end, buf.x[0], buf.x[1],
                       buf.y[0], buf.y[1]);
  } else {
    // Central diagonal block: all three slots alias one buffer.
    mults = vt.central(a.data(), i0, i_end, buf.x[0], buf.y[0]);
  }
  span.set_arg(mults);
  return mults;
}

std::uint64_t apply_block(const tensor::SymTensor3& a,
                          const partition::BlockCoord& c, std::size_t b,
                          const BlockBuffers& buf) {
  return apply_block_ex(a, c, b, buf, kernel_options());
}

}  // namespace sttsv::core
