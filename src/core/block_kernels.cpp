#include "core/block_kernels.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::core {

std::uint64_t apply_block(const tensor::SymTensor3& a,
                          const partition::BlockCoord& c, std::size_t b,
                          const BlockBuffers& buf) {
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k, "block coordinate must be sorted");
  for (int s = 0; s < 3; ++s) {
    STTSV_REQUIRE(buf.x[s] != nullptr && buf.y[s] != nullptr,
                  "kernel buffers must be bound");
  }
  const std::size_t n = a.dim();
  const double* data = a.data();

  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t k0 = c.k * b;
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  const std::size_t k_end = std::min(k0 + b, n);
  if (i0 >= n) return 0;  // fully padded block

  const bool ij_same_block = (c.i == c.j);
  const bool jk_same_block = (c.j == c.k);

  const double* xi = buf.x[0];
  const double* xj = buf.x[1];
  const double* xk = buf.x[2];
  double* yi = buf.y[0];
  double* yj = buf.y[1];
  double* yk = buf.y[2];

  std::uint64_t count = 0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xi[li];
    // Only gj <= gi contributes when i and j ranges coincide.
    const std::size_t gj_end = ij_same_block ? std::min(gi + 1, j_end) : j_end;
    for (std::size_t gj = j0; gj < gj_end; ++gj) {
      const std::size_t lj = gj - j0;
      const double xjv = xj[lj];
      const std::size_t row_base = gi * (gi + 1) * (gi + 2) / 6 +
                                   gj * (gj + 1) / 2;
      const std::size_t gk_end =
          jk_same_block ? std::min(gj + 1, k_end) : k_end;
      if (gi != gj) {
        // Strict gi > gj: the gk loop splits into a strict run gk < gj
        // (3 updates each) and the possible gk == gj tail (2 updates).
        std::size_t gk = k0;
        const std::size_t strict_end = std::min(gk_end, gj);
        for (; gk < strict_end; ++gk) {
          const double v = data[row_base + gk];
          const double xkv = xk[gk - k0];
          yi[li] += 2.0 * v * xjv * xkv;
          yj[lj] += 2.0 * v * xiv * xkv;
          yk[gk - k0] += 2.0 * v * xiv * xjv;
          count += 3;
        }
        if (gk < gk_end && gk == gj) {
          // gi > gj == gk.
          const double v = data[row_base + gk];
          const double xkv = xk[gk - k0];
          yi[li] += v * xjv * xkv;
          yj[lj] += 2.0 * v * xiv * xkv;
          count += 2;
        }
      } else {
        // gi == gj (only in diagonal blocks).
        std::size_t gk = k0;
        const std::size_t strict_end = std::min(gk_end, gj);
        for (; gk < strict_end; ++gk) {
          // gi == gj > gk.
          const double v = data[row_base + gk];
          const double xkv = xk[gk - k0];
          yi[li] += 2.0 * v * xjv * xkv;
          yk[gk - k0] += v * xiv * xjv;
          count += 2;
        }
        if (gk < gk_end && gk == gj) {
          // gi == gj == gk: central element.
          const double v = data[row_base + gk];
          yi[li] += v * xjv * xk[gk - k0];
          count += 1;
        }
      }
    }
  }
  return count;
}

}  // namespace sttsv::core
