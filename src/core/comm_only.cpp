#include "core/comm_only.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::core {

namespace {

using partition::TetraPartition;
using partition::VectorDistribution;
using simt::Envelope;

std::vector<std::size_t> common_blocks(const TetraPartition& part,
                                       std::size_t p, std::size_t peer) {
  const auto& a = part.R(p);
  const auto& b = part.R(peer);
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::size_t> peers_of(const TetraPartition& part,
                                  std::size_t p) {
  std::vector<std::size_t> peers;
  for (const std::size_t i : part.R(p)) {
    for (const std::size_t other : part.Q(i)) {
      if (other != p) peers.push_back(other);
    }
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

}  // namespace

void simulate_communication(simt::Machine& machine,
                            const TetraPartition& part,
                            const VectorDistribution& dist,
                            simt::Transport transport) {
  const std::size_t P = part.num_processors();
  STTSV_REQUIRE(machine.num_ranks() == P,
                "machine rank count must match partition");

  // Phase 1: x shares — sender p ships its own share of each common block.
  std::vector<std::vector<Envelope>> x_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      std::size_t words = 0;
      for (const std::size_t i : common_blocks(part, p, peer)) {
        words += dist.share(i, p).length;
      }
      if (words > 0) {
        x_out[p].push_back(Envelope{peer, std::vector<double>(words, 0.0)});
      }
    }
  }
  (void)machine.exchange(std::move(x_out), transport);

  // Phase 3: partial y — sender p ships the *receiver's* share sizes.
  std::vector<std::vector<Envelope>> y_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      std::size_t words = 0;
      for (const std::size_t i : common_blocks(part, p, peer)) {
        words += dist.share(i, peer).length;
      }
      if (words > 0) {
        y_out[p].push_back(Envelope{peer, std::vector<double>(words, 0.0)});
      }
    }
  }
  (void)machine.exchange(std::move(y_out), transport);
  machine.ledger().verify_conservation();
}

}  // namespace sttsv::core
