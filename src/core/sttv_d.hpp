#pragma once
// Order-d STTSV (paper Section 8): y = A ×₂ x ×₃ x ··· ×_d x for a fully
// symmetric order-d tensor, i.e. y_i = Σ_{j_2..j_d} a_{i j_2 .. j_d} Π x.
//
//  * sttv_naive_d     — all n^d d-ary multiplications (ground truth).
//  * sttv_symmetric_d — one pass over the C(n+d-1, d) packed entries;
//    every stored entry updates each distinct index it contains, weighted
//    by the number of distinct permutations of the remaining multiset
//    (the d-dimensional generalization of Algorithm 4's 1/2/3-way cases).

#include <cstdint>
#include <vector>

#include "tensor/sym_tensor_d.hpp"

namespace sttsv::core {

struct OpCountD {
  /// d-ary multiplications, generalizing the paper's ternary count.
  std::uint64_t dary_mults = 0;
};

std::vector<double> sttv_naive_d(const tensor::SymTensorD& a,
                                 const std::vector<double>& x,
                                 OpCountD* ops = nullptr);

std::vector<double> sttv_symmetric_d(const tensor::SymTensorD& a,
                                     const std::vector<double>& x,
                                     OpCountD* ops = nullptr);

/// The symmetric algorithm's d-ary multiplication count in closed form:
/// Σ over sorted tuples of (#distinct values in the tuple). For d = 3
/// this is the paper's n²(n+1)/2.
std::uint64_t symmetric_dary_mults(std::size_t n, std::size_t order);

}  // namespace sttsv::core
