#include "core/parallel_sttsv.hpp"

#include <algorithm>
#include <map>

#include "core/block_kernels.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace sttsv::core {

namespace {

using partition::Share;
using partition::TetraPartition;
using partition::VectorDistribution;
using simt::Delivery;
using simt::Envelope;

/// The row blocks both p and peer require: R_p ∩ R_peer (ascending).
/// By the Steiner property two distinct subsets share at most 2 points,
/// which is why a pair exchanges at most 2 row-block shares (Section 7.2.2).
std::vector<std::size_t> common_blocks(const TetraPartition& part,
                                       std::size_t p, std::size_t peer) {
  const auto& a = part.R(p);
  const auto& b = part.R(peer);
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Peers of p: every other member of Q_i for some i ∈ R_p, ascending.
std::vector<std::size_t> peers_of(const TetraPartition& part, std::size_t p) {
  std::vector<std::size_t> peers;
  for (const std::size_t i : part.R(p)) {
    for (const std::size_t other : part.Q(i)) {
      if (other != p) peers.push_back(other);
    }
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

}  // namespace

ParallelRunResult parallel_sttsv(simt::Machine& machine,
                                 const TetraPartition& part,
                                 const VectorDistribution& dist,
                                 const tensor::SymTensor3& a,
                                 const std::vector<double>& x,
                                 simt::Transport transport) {
  simt::DirectExchange direct(machine);
  return parallel_sttsv(direct, part, dist, a, x, transport);
}

ParallelRunResult parallel_sttsv(simt::Exchanger& exchanger,
                                 const TetraPartition& part,
                                 const VectorDistribution& dist,
                                 const tensor::SymTensor3& a,
                                 const std::vector<double>& x,
                                 simt::Transport transport) {
  simt::Machine& machine = exchanger.machine();
  const std::size_t P = part.num_processors();
  const std::size_t b = dist.block_length_b();
  const std::size_t n = dist.logical_n();
  STTSV_REQUIRE(machine.num_ranks() == P,
                "machine rank count must match partition");
  STTSV_REQUIRE(a.dim() == n, "tensor dimension must match distribution");
  STTSV_REQUIRE(x.size() == n, "input vector length mismatch");

  // Padded copy of x: row block i occupies [i*b, (i+1)*b).
  std::vector<double> x_pad(dist.padded_n(), 0.0);
  std::copy(x.begin(), x.end(), x_pad.begin());

  // ---- Phase 1: exchange x shares (Algorithm 5 lines 10-21). ----------
  // Pack: for each peer, the shares of common row blocks in (row block,
  // sender-share) order — receivers unpack with the same deterministic walk.
  obs::Span x_phase("sttsv.x-shares", obs::Category::kSuperstep);
  std::vector<std::vector<Envelope>> outboxes(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      Envelope env;
      env.to = peer;
      for (const std::size_t i : common_blocks(part, p, peer)) {
        const Share s = dist.share(i, p);
        const double* base = x_pad.data() + i * b + s.offset;
        env.data.insert(env.data.end(), base, base + s.length);
      }
      if (!env.data.empty()) outboxes[p].push_back(std::move(env));
    }
  }
  exchanger.set_phase("x-shares");
  auto inboxes = exchanger.exchange(std::move(outboxes), transport);

  // Unpack into full local row blocks x_loc[p][i] (length b each).
  // Start from the rank's own share, then place every delivery.
  std::vector<std::map<std::size_t, std::vector<double>>> x_loc(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) {
      auto& blockvec = x_loc[p][i];
      blockvec.assign(b, 0.0);
      const Share s = dist.share(i, p);
      std::copy_n(x_pad.data() + i * b + s.offset, s.length,
                  blockvec.data() + s.offset);
    }
    for (const Delivery& d : inboxes[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const Share s = dist.share(i, d.from);
        STTSV_CHECK(cursor + s.length <= d.data.size(),
                    "x delivery shorter than expected");
        std::copy_n(d.data.data() + cursor, s.length,
                    x_loc[p][i].data() + s.offset);
        cursor += s.length;
      }
      STTSV_CHECK(cursor == d.data.size(), "x delivery longer than expected");
    }
  }
  inboxes.clear();
  x_phase.close();

  // ---- Phase 2: local block kernels (Algorithm 5 lines 23-36). --------
  // Rank programs between the two exchanges are independent (rank p reads
  // x_loc[p], writes y_loc[p]), so they run on host threads; the ledger
  // and the produced y are identical to the sequential rank order.
  std::vector<std::map<std::size_t, std::vector<double>>> y_loc(P);
  ParallelRunResult result;
  result.ternary_mults.assign(P, 0);
  machine.run_ranks([&](std::size_t p) {
    for (const std::size_t i : part.R(p)) {
      y_loc[p][i].assign(b, 0.0);
    }
    for (const partition::BlockCoord& c : part.owned_blocks(p)) {
      BlockBuffers buf;
      buf.x[0] = x_loc[p].at(c.i).data();
      buf.x[1] = x_loc[p].at(c.j).data();
      buf.x[2] = x_loc[p].at(c.k).data();
      buf.y[0] = y_loc[p].at(c.i).data();
      buf.y[1] = y_loc[p].at(c.j).data();
      buf.y[2] = y_loc[p].at(c.k).data();
      result.ternary_mults[p] += apply_block(a, c, b, buf);
    }
    x_loc[p].clear();  // frees the gathered inputs early
  });

  // ---- Phase 3: exchange + reduce partial y (lines 38-50). ------------
  obs::Span y_phase("sttsv.y-partials", obs::Category::kSuperstep);
  std::vector<std::vector<Envelope>> y_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      Envelope env;
      env.to = peer;
      // Send the *receiver's* share of each common row block.
      for (const std::size_t i : common_blocks(part, p, peer)) {
        const Share s = dist.share(i, peer);
        const double* base = y_loc[p].at(i).data() + s.offset;
        env.data.insert(env.data.end(), base, base + s.length);
      }
      if (!env.data.empty()) y_out[p].push_back(std::move(env));
    }
  }
  exchanger.set_phase("y-partials");
  auto y_in = exchanger.exchange(std::move(y_out), transport);

  // Own share = local partial + sum of received partials.
  std::vector<double> y_pad(dist.padded_n(), 0.0);
  for (std::size_t p = 0; p < P; ++p) {
    // Seed with this rank's local partials on its own shares.
    for (const std::size_t i : part.R(p)) {
      const Share s = dist.share(i, p);
      for (std::size_t off = 0; off < s.length; ++off) {
        y_pad[i * b + s.offset + off] += y_loc[p].at(i)[s.offset + off];
      }
    }
    for (const Delivery& d : y_in[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const Share s = dist.share(i, p);
        STTSV_CHECK(cursor + s.length <= d.data.size(),
                    "y delivery shorter than expected");
        for (std::size_t off = 0; off < s.length; ++off) {
          y_pad[i * b + s.offset + off] += d.data[cursor + off];
        }
        cursor += s.length;
      }
      STTSV_CHECK(cursor == d.data.size(), "y delivery longer than expected");
    }
  }

  machine.ledger().verify_conservation();
  result.y.assign(y_pad.begin(), y_pad.begin() + static_cast<long>(n));
  const simt::LedgerMaxima maxima = machine.ledger().maxima();
  result.max_words_sent = maxima.words_sent;
  result.max_words_received = maxima.words_received;
  return result;
}

}  // namespace sttsv::core
