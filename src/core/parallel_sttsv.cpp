#include "core/parallel_sttsv.hpp"

#include <algorithm>
#include <map>

#include "core/block_kernels.hpp"
#include "obs/trace.hpp"
#include "simt/pipeline.hpp"
#include "support/check.hpp"

namespace sttsv::core {

namespace {

using partition::Share;
using partition::TetraPartition;
using partition::VectorDistribution;
using simt::Delivery;
using simt::Envelope;

/// The row blocks both p and peer require: R_p ∩ R_peer (ascending).
/// By the Steiner property two distinct subsets share at most 2 points,
/// which is why a pair exchanges at most 2 row-block shares (Section 7.2.2).
std::vector<std::size_t> common_blocks(const TetraPartition& part,
                                       std::size_t p, std::size_t peer) {
  const auto& a = part.R(p);
  const auto& b = part.R(peer);
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Peers of p: every other member of Q_i for some i ∈ R_p, ascending.
std::vector<std::size_t> peers_of(const TetraPartition& part, std::size_t p) {
  std::vector<std::size_t> peers;
  for (const std::size_t i : part.R(p)) {
    for (const std::size_t other : part.Q(i)) {
      if (other != p) peers.push_back(other);
    }
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

}  // namespace

ParallelRunResult parallel_sttsv(simt::Machine& machine,
                                 const TetraPartition& part,
                                 const VectorDistribution& dist,
                                 const tensor::SymTensor3& a,
                                 const std::vector<double>& x,
                                 simt::Transport transport,
                                 simt::PipelineMode pipeline) {
  simt::DirectExchange direct(machine);
  return parallel_sttsv(direct, part, dist, a, x, transport, pipeline);
}

ParallelRunResult parallel_sttsv(simt::Exchanger& exchanger,
                                 const TetraPartition& part,
                                 const VectorDistribution& dist,
                                 const tensor::SymTensor3& a,
                                 const std::vector<double>& x,
                                 simt::Transport transport,
                                 simt::PipelineMode pipeline) {
  simt::Machine& machine = exchanger.machine();
  const std::size_t P = part.num_processors();
  const std::size_t b = dist.block_length_b();
  const std::size_t n = dist.logical_n();
  STTSV_REQUIRE(machine.num_ranks() == P,
                "machine rank count must match partition");
  STTSV_REQUIRE(a.dim() == n, "tensor dimension must match distribution");
  STTSV_REQUIRE(x.size() == n, "input vector length mismatch");

  // Each communication phase is one logical exchange split into pair-block
  // chunks: chunk t+1 packs (or computes) while chunk t is on the wire.
  // The ledger cannot tell the difference (DESIGN.md §12).
  const std::size_t chunks =
      pipeline == simt::PipelineMode::kDoubleBuffered && P > 1 ? 2 : 1;

  std::vector<std::vector<std::size_t>> peers(P);
  for (std::size_t p = 0; p < P; ++p) peers[p] = peers_of(part, p);

  // Padded copy of x: row block i occupies [i*b, (i+1)*b).
  std::vector<double> x_pad(dist.padded_n(), 0.0);
  std::copy(x.begin(), x.end(), x_pad.begin());

  // ---- Phase 1: exchange x shares (Algorithm 5 lines 10-21). ----------
  // Local row blocks x_loc[p][i] (length b each) are seeded with the
  // rank's own share up front, so each pipeline part's deliveries can be
  // unpacked the moment it completes: every delivery writes a disjoint
  // (block, sender-share) slice, making the landing order irrelevant.
  // Seeding runs on the worker threads (run_ranks) so each rank's block
  // storage is first-touched by the thread that will feed it to the
  // kernels — the NUMA placement half of DESIGN.md §17. Rank programs
  // stay disjoint (rank p writes only x_loc[p]), so the parallel seed is
  // bitwise identical to the sequential one.
  obs::Span x_phase("sttsv.x-shares", obs::Category::kSuperstep);
  std::vector<std::map<std::size_t, std::vector<double>>> x_loc(P);
  machine.run_ranks([&](std::size_t p) {
    for (const std::size_t i : part.R(p)) {
      auto& blockvec = x_loc[p][i];
      blockvec.assign(b, 0.0);
      const Share s = dist.share(i, p);
      std::copy_n(x_pad.data() + i * b + s.offset, s.length,
                  blockvec.data() + s.offset);
    }
  });

  // Pack: for each peer, the shares of common row blocks in (row block,
  // sender-share) order — receivers unpack with the same deterministic
  // walk. Buffers are leased exactly sized from the sender's pool shard.
  const auto pack_x = [&](std::size_t c) {
    std::vector<std::vector<Envelope>> outboxes(P);
    for (std::size_t p = 0; p < P; ++p) {
      for (const std::size_t peer : peers[p]) {
        if ((p + peer) % chunks != c) continue;
        const std::vector<std::size_t> common = common_blocks(part, p, peer);
        std::size_t words = 0;
        for (const std::size_t i : common) words += dist.share(i, p).length;
        if (words == 0) continue;
        simt::PooledBuffer buf = machine.pool().acquire(p, words);
        for (const std::size_t i : common) {
          const Share s = dist.share(i, p);
          buf.append(x_pad.data() + i * b + s.offset, s.length);
        }
        outboxes[p].push_back(Envelope{peer, std::move(buf)});
      }
    }
    return outboxes;
  };
  const auto consume_x = [&](std::vector<std::vector<Delivery>> in) {
    for (std::size_t p = 0; p < in.size(); ++p) {
      for (const Delivery& d : in[p]) {
        std::size_t cursor = 0;
        for (const std::size_t i : common_blocks(part, p, d.from)) {
          const Share s = dist.share(i, d.from);
          STTSV_CHECK(cursor + s.length <= d.data.size(),
                      "x delivery shorter than expected");
          std::copy_n(d.data.data() + cursor, s.length,
                      x_loc[p][i].data() + s.offset);
          cursor += s.length;
        }
        STTSV_CHECK(cursor == d.data.size(), "x delivery longer than expected");
      }
    }
  };
  exchanger.set_phase("x-shares");
  simt::pipelined_exchange(exchanger, transport, chunks, pipeline, pack_x,
                           consume_x);
  x_phase.close();

  // ---- Phases 2+3: block kernels feeding the partial-y exchange. ------
  // Ranks are split into `chunks` groups; each pack runs one group's
  // kernels (rank programs stay independent — rank p reads x_loc[p],
  // writes y_loc[p]) and posts that group's partial-y messages, so the
  // other group's kernels overlap the wire time. The reduction below is
  // deferred until every part has landed and re-sorted by sender, which
  // pins the exact floating-point order of the serialized schedule.
  std::vector<std::map<std::size_t, std::vector<double>>> y_loc(P);
  ParallelRunResult result;
  result.ternary_mults.assign(P, 0);

  std::vector<std::vector<std::size_t>> rank_chunks(chunks);
  for (std::size_t p = 0; p < P; ++p) rank_chunks[p % chunks].push_back(p);

  // Active-message transports run the reduction at the target instead of
  // returning deliveries (DESIGN.md §16): local partials are seeded into
  // y_pad as soon as each rank's kernels finish (disjoint own-share
  // slices, so the host-threaded kernel groups never collide), and a
  // handler registered below replays the common-block walk for every
  // landed payload. Both happen in the local-first, senders-ascending
  // order of the two-sided reduction, so y is bitwise identical.
  const bool am_reduce = exchanger.supports_handler_delivery();
  std::vector<double> y_pad(dist.padded_n(), 0.0);

  obs::Span y_phase("sttsv.y-partials", obs::Category::kSuperstep);
  const auto pack_y = [&](std::size_t c) {
    machine.run_ranks(rank_chunks[c], [&](std::size_t p) {
      for (const std::size_t i : part.R(p)) {
        y_loc[p][i].assign(b, 0.0);
      }
      for (const partition::BlockCoord& coord : part.owned_blocks(p)) {
        BlockBuffers buf;
        buf.x[0] = x_loc[p].at(coord.i).data();
        buf.x[1] = x_loc[p].at(coord.j).data();
        buf.x[2] = x_loc[p].at(coord.k).data();
        buf.y[0] = y_loc[p].at(coord.i).data();
        buf.y[1] = y_loc[p].at(coord.j).data();
        buf.y[2] = y_loc[p].at(coord.k).data();
        result.ternary_mults[p] += apply_block(a, coord, b, buf);
      }
      x_loc[p].clear();  // frees the gathered inputs early
      if (am_reduce) {
        for (const std::size_t i : part.R(p)) {
          const Share s = dist.share(i, p);
          for (std::size_t off = 0; off < s.length; ++off) {
            y_pad[i * b + s.offset + off] += y_loc[p].at(i)[s.offset + off];
          }
        }
      }
    });
    std::vector<std::vector<Envelope>> y_out(P);
    for (const std::size_t p : rank_chunks[c]) {
      for (const std::size_t peer : peers[p]) {
        // Send the *receiver's* share of each common row block.
        const std::vector<std::size_t> common = common_blocks(part, p, peer);
        std::size_t words = 0;
        for (const std::size_t i : common) words += dist.share(i, peer).length;
        if (words == 0) continue;
        simt::PooledBuffer buf = machine.pool().acquire(p, words);
        for (const std::size_t i : common) {
          const Share s = dist.share(i, peer);
          buf.append(y_loc[p].at(i).data() + s.offset, s.length);
        }
        y_out[p].push_back(Envelope{peer, std::move(buf)});
      }
    }
    return y_out;
  };
  std::vector<std::vector<Delivery>> y_in(P);
  const auto collect_y = [&](std::vector<std::vector<Delivery>> in) {
    for (std::size_t p = 0; p < in.size(); ++p) {
      for (Delivery& d : in[p]) y_in[p].push_back(std::move(d));
    }
  };
  if (am_reduce) {
    // Remote-reduce handler: ran once per landed payload, targets then
    // origins ascending — the same walk as the two-sided loop below.
    exchanger.set_delivery_handler(
        [&](std::size_t target, std::size_t from, const double* data,
            std::size_t words) {
          std::size_t cursor = 0;
          for (const std::size_t i : common_blocks(part, target, from)) {
            const Share s = dist.share(i, target);
            STTSV_CHECK(cursor + s.length <= words,
                        "y delivery shorter than expected");
            for (std::size_t off = 0; off < s.length; ++off) {
              y_pad[i * b + s.offset + off] += data[cursor + off];
            }
            cursor += s.length;
          }
          STTSV_CHECK(cursor == words, "y delivery longer than expected");
        });
  }
  exchanger.set_phase("y-partials");
  simt::pipelined_exchange(exchanger, transport, chunks, pipeline, pack_y,
                           collect_y);
  if (am_reduce) {
    exchanger.set_delivery_handler({});
  }
  for (auto& inbox : y_in) {
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const Delivery& da, const Delivery& db) {
                       return da.from < db.from;
                     });
  }

  // Own share = local partial + sum of received partials, senders
  // ascending — the serialized reduction order, bit for bit. In AM mode
  // the handler above already did both halves and y_in stays empty.
  for (std::size_t p = 0; p < P && !am_reduce; ++p) {
    // Seed with this rank's local partials on its own shares.
    for (const std::size_t i : part.R(p)) {
      const Share s = dist.share(i, p);
      for (std::size_t off = 0; off < s.length; ++off) {
        y_pad[i * b + s.offset + off] += y_loc[p].at(i)[s.offset + off];
      }
    }
    for (const Delivery& d : y_in[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const Share s = dist.share(i, p);
        STTSV_CHECK(cursor + s.length <= d.data.size(),
                    "y delivery shorter than expected");
        for (std::size_t off = 0; off < s.length; ++off) {
          y_pad[i * b + s.offset + off] += d.data[cursor + off];
        }
        cursor += s.length;
      }
      STTSV_CHECK(cursor == d.data.size(), "y delivery longer than expected");
    }
  }

  machine.ledger().verify_conservation();
  result.y.assign(y_pad.begin(), y_pad.begin() + static_cast<long>(n));
  const simt::LedgerMaxima maxima = machine.ledger().maxima();
  result.max_words_sent = maxima.words_sent;
  result.max_words_received = maxima.words_received;
  return result;
}

}  // namespace sttsv::core
