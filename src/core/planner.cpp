#include "core/planner.hpp"

#include <algorithm>
#include <cmath>

#include "core/costs.hpp"
#include "core/parallel_sttsv.hpp"
#include "steiner/constructions.hpp"
#include "support/check.hpp"

namespace sttsv::core {

namespace {

/// Estimated per-rank words for a generic partition: each rank owns
/// shares of r row blocks, receiving the rest of each block from the
/// other λ₁ - 1 owners, twice (x and y).
double predicted_words(const partition::TetraPartition& part,
                       std::size_t b) {
  const double lambda1 =
      static_cast<double>(part.system().point_replication());
  const double r = static_cast<double>(part.steiner_block_size());
  return 2.0 * r * static_cast<double>(b) * (lambda1 - 1.0) / lambda1;
}

}  // namespace

Planner::Planner(std::size_t processor_budget, std::size_t n) {
  STTSV_REQUIRE(n >= 1, "problem size must be >= 1");
  STTSV_REQUIRE(processor_budget >= 4,
                "need a budget of at least 4 processors (trivial m=4)");

  // Candidates: built-in families plus the trivial S(m,3,3) for the
  // largest m with C(m,3) <= budget. Select the candidate minimizing the
  // predicted per-rank words 2·r·b·(λ₁-1)/λ₁ (larger P is not enough: a
  // high-replication family can cost more communication than a smaller
  // spherical one). Ties prefer spherical, then larger P.
  struct Candidate {
    std::string family;
    std::size_t q = 0;      // spherical parameter
    unsigned k = 0;         // boolean parameter
    std::size_t m = 0;      // trivial parameter / row blocks
    std::size_t P = 0;
    double words = 0.0;
  };
  auto estimate = [&](std::size_t m, std::size_t r,
                      std::size_t lambda1) {
    const double b =
        std::ceil(static_cast<double>(n) / static_cast<double>(m));
    return 2.0 * static_cast<double>(r) * b *
           (static_cast<double>(lambda1) - 1.0) /
           static_cast<double>(lambda1);
  };

  std::vector<Candidate> candidates;
  for (const auto& f :
       steiner::admissible_processor_counts(processor_budget)) {
    Candidate cand;
    cand.family = f.family;
    cand.q = f.q;
    cand.k = f.k;
    cand.m = f.m;
    cand.P = f.P;
    const std::size_t lambda1 =
        (f.m - 1) * (f.m - 2) / ((f.r - 1) * (f.r - 2));
    cand.words = estimate(f.m, f.r, lambda1);
    candidates.push_back(cand);
  }
  for (std::size_t m = 4; m * (m - 1) * (m - 2) / 6 <= processor_budget;
       ++m) {
    Candidate cand;
    cand.family = "triples";
    cand.m = m;
    cand.P = m * (m - 1) * (m - 2) / 6;
    cand.words = estimate(m, 3, (m - 1) * (m - 2) / 2);
    candidates.push_back(cand);
  }
  STTSV_REQUIRE(!candidates.empty(),
                "no admissible partition fits the processor budget");

  const Candidate best = *std::min_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) {
        if (a.words != b.words) return a.words < b.words;
        if ((a.family == "spherical") != (b.family == "spherical")) {
          return a.family == "spherical";
        }
        return a.P > b.P;
      });

  summary_.family = best.family;
  summary_.q = best.q;
  steiner::SteinerSystem sys = [&] {
    if (best.family == "spherical") return steiner::spherical_system(best.q);
    if (best.family == "boolean") {
      return steiner::boolean_quadruple_system(best.k);
    }
    return steiner::trivial_triple_system(best.m);
  }();

  part_ = std::make_unique<partition::TetraPartition>(
      partition::TetraPartition::build(std::move(sys)));
  dist_ = std::make_unique<partition::VectorDistribution>(*part_, n);

  summary_.processors = part_->num_processors();
  summary_.row_blocks = part_->num_row_blocks();
  summary_.block_length = dist_->block_length_b();
  summary_.lower_bound_words = lower_bound_words(n, summary_.processors);
  summary_.predicted_words =
      summary_.family == "spherical"
          ? optimal_algorithm_words(n, summary_.q)
          : predicted_words(*part_, summary_.block_length);
  for (std::size_t p = 0; p < summary_.processors; ++p) {
    summary_.tensor_words_per_rank =
        std::max(summary_.tensor_words_per_rank,
                 part_->stored_entries(p, summary_.block_length));
    summary_.vector_words_per_rank = std::max(
        summary_.vector_words_per_rank, dist_->local_elements(p));
  }
}

simt::Machine Planner::make_machine() const {
  return simt::Machine(summary_.processors);
}

std::vector<double> Planner::run(simt::Machine& machine,
                                 const tensor::SymTensor3& a,
                                 const std::vector<double>& x,
                                 simt::Transport transport) const {
  return parallel_sttsv(machine, *part_, *dist_, a, x, transport).y;
}

}  // namespace sttsv::core
