#pragma once
// The "sequence" approach discussed in the paper's Section 8: compute
// STTSV as two successive multiplies,
//   M = A ×₂ x   (an n×n symmetric matrix),   y = M·x,
// reusing the partial products M across the two steps. This costs
// ~2n³ + 2n² elementary operations — about twice the symmetric
// Algorithm 4 — but is the natural building block for memory-limited or
// matrix-library-based implementations, and the paper flags its parallel
// communication (Ω(n) for P <= n) as future work. We provide it as an
// ablation baseline.

#include <cstdint>
#include <vector>

#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

struct TwoStepCount {
  /// Elementary multiply-adds in each step (Section 8: 2n³ + 2n² total
  /// elementary arithmetic operations).
  std::uint64_t step1_ops = 0;
  std::uint64_t step2_ops = 0;
};

/// y = (A ×₂ x) · x via the explicit intermediate matrix.
std::vector<double> sttsv_two_step(const tensor::SymTensor3& a,
                                   const std::vector<double>& x,
                                   TwoStepCount* ops = nullptr);

/// The intermediate M = A ×₂ x as a dense symmetric matrix in row-major
/// order (M[i*n+k]); exposed for tests and for callers who reuse M
/// (e.g. several right-hand sides).
std::vector<double> ttv_mode2(const tensor::SymTensor3& a,
                              const std::vector<double>& x,
                              TwoStepCount* ops = nullptr);

}  // namespace sttsv::core
