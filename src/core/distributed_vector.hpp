#pragma once
// Vectors that LIVE in Algorithm 5's distribution: rank p holds the
// share(i, p) slice of each row block i ∈ R_p. With these, iterative
// solvers (HOPM, CP gradient descent) run start-to-finish without ever
// gathering a global vector — each iteration costs one STTSV exchange
// plus O(log P) words of scalar reductions, which is how a production
// distributed-memory code would be written.

#include <vector>

#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

class DistributedVector {
 public:
  /// Zero vector in the given distribution (kept by pointer: the
  /// distribution must outlive the vector).
  explicit DistributedVector(const partition::VectorDistribution& dist);

  /// Splits a global vector of length dist.logical_n() into shares.
  /// This models the paper's initial data placement; no communication
  /// is charged.
  static DistributedVector scatter(const partition::VectorDistribution& dist,
                                   const std::vector<double>& global);

  /// Reassembles the global vector (logical length, padding dropped).
  /// Models final output collection; no communication charged.
  [[nodiscard]] std::vector<double> gather() const;

  [[nodiscard]] const partition::VectorDistribution& distribution() const {
    return *dist_;
  }

  /// Rank p's share of row block i (i must be in R_p); length equals
  /// dist.share(i, p).length.
  [[nodiscard]] const std::vector<double>& share(std::size_t rank,
                                                 std::size_t row_block) const;
  std::vector<double>& share(std::size_t rank, std::size_t row_block);

  // --- distributed BLAS-1 (local arithmetic; reductions go through the
  // machine so their words are counted) --------------------------------

  /// Global dot product: local partial dots + allreduce (O(log P) words
  /// per rank).
  static double dot(simt::Machine& machine, const DistributedVector& a,
                    const DistributedVector& b);

  /// Global squared distances min(||a-b||², ||a+b||²) computed with one
  /// fused allreduce of two partials (for sign-invariant convergence
  /// tests).
  static std::pair<double, double> diff_norms2(simt::Machine& machine,
                                               const DistributedVector& a,
                                               const DistributedVector& b);

  /// x <- s·x, locally on every rank.
  void scale(double s);

  /// x <- x + alpha·other (same distribution required).
  void axpy(double alpha, const DistributedVector& other);

 private:
  const partition::VectorDistribution* dist_;
  // shares_[rank] maps row block -> slice. Flat layout: per rank, the
  // slices of its R_p blocks concatenated in R_p order.
  struct RankShares {
    std::vector<std::size_t> row_blocks;          // R_p
    std::vector<std::vector<double>> slices;      // parallel to row_blocks
  };
  std::vector<RankShares> shares_;

  friend DistributedVector parallel_sttsv_dist(
      simt::Machine&, const partition::TetraPartition&,
      const tensor::SymTensor3&, const DistributedVector&, simt::Transport,
      std::vector<std::uint64_t>*);
};

/// Algorithm 5 with persistent distribution: input and output vectors
/// stay in shares. Communication is identical to parallel_sttsv (the
/// gather/scatter in that wrapper are free by the paper's I/O model).
/// Optionally reports per-rank ternary multiplication counts.
DistributedVector parallel_sttsv_dist(
    simt::Machine& machine, const partition::TetraPartition& part,
    const tensor::SymTensor3& a, const DistributedVector& x,
    simt::Transport transport,
    std::vector<std::uint64_t>* ternary_out = nullptr);

}  // namespace sttsv::core
