#pragma once
// Closed-form cost expressions from the paper, used by benches to print
// "paper prediction" columns next to measured values.

#include <cstddef>
#include <cstdint>

namespace sttsv::core {

/// Theorem 5.2: some processor communicates at least
/// 2 (n(n-1)(n-2)/P)^{1/3} - 2 n/P words.
double lower_bound_words(std::size_t n, std::size_t P);

/// Section 7.2.2: per-processor bandwidth cost of Algorithm 5 with the
/// scheduled point-to-point exchange, counting both vectors:
/// 2 (n (q+1)/(q²+1) - n/P) with P = q(q²+1). Exact when q(q+1) | b.
double optimal_algorithm_words(std::size_t n, std::size_t q);

/// Section 7.2.2 (All-to-All variant): 4n/(q+1) · (1 - 1/P),
/// asymptotically twice the lower bound's leading term.
double all_to_all_words(std::size_t n, std::size_t q);

/// Section 7.2.2 / Theorem 7.2.2: point-to-point steps per vector,
/// q³/2 + 3q²/2 - 1 (< P-1).
std::size_t p2p_steps_per_vector(std::size_t q);

/// Number of ternary multiplications of the symmetric Algorithm 4:
/// n²(n+1)/2 (Section 3).
std::uint64_t symmetric_ternary_mults(std::size_t n);

/// Ternary multiplications of the naive Algorithm 3: n³.
std::uint64_t naive_ternary_mults(std::size_t n);

/// Section 7.1: per-processor ternary-mult bound of Algorithm 5,
/// (q+1)q(q-1)/6·3b³ + q·3b²(b-1) + 3b(b-1)(b-2)/6 + 2b(b-1) + b
/// (the last three terms only when the rank holds a central block).
std::uint64_t per_rank_ternary_bound(std::size_t q, std::size_t b);

/// Section 6.1.3: per-processor stored tensor entries,
/// (q+1)q(q-1)/6·b³ + q·b²(b+1)/2 + b(b+1)(b+2)/6 ≈ n³/(6P).
std::uint64_t per_rank_storage_bound(std::size_t q, std::size_t b);

/// Order-d generalization of Theorem 5.2 (paper Section 8: "the lower
/// bound arguments can easily be extended"): with d!|V| <= |∪φ|^d the
/// same minimization gives at least
///   2 (n(n-1)···(n-d+1) / P)^{1/d} - 2n/P
/// words for some processor. d = 3 reduces to lower_bound_words.
double lower_bound_words_d(std::size_t n, std::size_t order, std::size_t P);

/// P = q(q²+1) for the spherical family.
std::size_t spherical_processor_count(std::size_t q);

/// Number of row blocks m = q²+1 for the spherical family.
std::size_t spherical_row_blocks(std::size_t q);

// ---------------------------------------------------------------------------
// Per-level α-β cost model (DESIGN.md §17).
//
// The paper's α-β-γ machine prices every message the same. A two-level
// cluster does not: a node-local hand-off costs shared-memory latency
// and bandwidth, a cross-node message the full fabric price — typically
// an order of magnitude apart on both terms. The hierarchy planner
// scores candidate rank -> node placements with this model; since the
// intra/inter totals come straight from the per-level ledger (or its
// closed-form prediction), minimizing the modeled time at fixed total
// words reduces to minimizing inter-node words, which is exactly what
// hier::compose_assignment does combinatorially.

/// One network level's latency/bandwidth pair: a message costs
/// alpha_s + words * beta_s_per_word seconds.
struct AlphaBeta {
  double alpha_s = 0.0;
  double beta_s_per_word = 0.0;
};

/// Modeled time for `sync_ops` message-startup events moving `words`
/// payload words on one level.
double alpha_beta_time_s(const AlphaBeta& level, std::uint64_t sync_ops,
                         std::uint64_t words);

/// Both levels of the two-level machine, with defaults in the ballpark
/// of a current cluster: intra ~0.2 µs / ~8 ns-per-word (shared-memory
/// hand-off of doubles), inter ~2 µs / ~20 ns-per-word (RDMA fabric).
/// Only the ratios matter for placement decisions.
struct HierCostModel {
  AlphaBeta intra{2e-7, 1.6e-10};
  AlphaBeta inter{2e-6, 2.5e-9};
};

/// Modeled wall time of one communication schedule: intra and inter
/// phases priced by their own α-β line (the two networks run in
/// parallel in reality; summing is the conservative serialization, and
/// monotone in each level's words, which is all the planner needs).
double hier_time_s(const HierCostModel& model, std::uint64_t intra_sync_ops,
                   std::uint64_t intra_words, std::uint64_t inter_sync_ops,
                   std::uint64_t inter_words);

}  // namespace sttsv::core
