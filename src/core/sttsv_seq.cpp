#include "core/sttsv_seq.hpp"

#include "support/check.hpp"

#ifdef STTSV_WITH_OPENMP
#include <omp.h>
#endif

namespace sttsv::core {

namespace {

/// One row i of the packed walk with the multiplicity branches hoisted out
/// of the inner loops (the same structure as the specialized block
/// kernels): rows j < i split into a branch-free strict run k < j plus the
/// k == j tail, and the j == i row handles the i == j > k run and the
/// central element. `row0` points at the first entry of row (i, 0).
/// Returns the ternary multiplications performed: i(3i+1)/2 + 1... counted
/// exactly as Algorithm 4 does.
inline std::uint64_t packed_row_update(const double* __restrict row0,
                                       const double* __restrict x,
                                       double* __restrict y, std::size_t i) {
  const double xi = x[i];
  const double* row = row0;
  double yi_acc = 0.0;
  std::uint64_t count = 0;
  for (std::size_t j = 0; j < i; ++j) {
    const double xj = x[j];
    const double cij = 2.0 * xi * xj;
    double acc = 0.0;
    for (std::size_t k = 0; k < j; ++k) {
      const double v = row[k];
      acc += v * x[k];
      y[k] += cij * v;  // strict: y_k += 2 a x_i x_j
    }
    // k == j tail (i > j == k): y_i += a x_j², y_j += 2 a x_i x_j.
    const double vt = row[j];
    yi_acc += 2.0 * xj * acc + vt * xj * xj;
    y[j] += 2.0 * xi * acc + 2.0 * vt * xi * xj;
    row += j + 1;
    count += 3 * j + 2;
  }
  // j == i row: k < i entries are class i == j > k; k == i is central.
  const double cii = xi * xi;
  double acc = 0.0;
  for (std::size_t k = 0; k < i; ++k) {
    const double v = row[k];
    acc += v * x[k];
    y[k] += cii * v;  // y_k += a x_i x_j = a x_i²
  }
  y[i] += yi_acc + 2.0 * xi * acc + row[i] * cii;
  return count + 2 * i + 1;
}

}  // namespace

std::vector<double> sttsv_naive(const tensor::Dense3& a,
                                const std::vector<double>& x,
                                OpCount* ops) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        acc += a(i, j, k) * x[j] * x[k];
        ++count;
      }
    }
    y[i] = acc;
  }
  if (ops != nullptr) ops->ternary_mults += count;
  return y;
}

std::vector<double> sttsv_symmetric(const tensor::SymTensor3& a,
                                    const std::vector<double>& x,
                                    OpCount* ops) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;
  // Algorithm 4: every lower-tetra entry updates all outputs it touches.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        const double v = a(i, j, k);
        if (i != j && j != k) {
          y[i] += 2.0 * v * x[j] * x[k];
          y[j] += 2.0 * v * x[i] * x[k];
          y[k] += 2.0 * v * x[i] * x[j];
          count += 3;
        } else if (i == j && j != k) {
          y[i] += 2.0 * v * x[j] * x[k];
          y[k] += v * x[i] * x[j];
          count += 2;
        } else if (i != j && j == k) {
          y[i] += v * x[j] * x[k];
          y[j] += 2.0 * v * x[i] * x[k];
          count += 2;
        } else {
          y[i] += v * x[j] * x[k];
          count += 1;
        }
      }
    }
  }
  if (ops != nullptr) ops->ternary_mults += count;
  return y;
}

std::vector<double> sttsv_packed(const tensor::SymTensor3& a,
                                 const std::vector<double>& x,
                                 OpCount* ops) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;
  const double* data = a.data();
  // Linear walk of packed storage, one row (i, *) at a time with the
  // multiplicity branches hoisted out of the inner loops; row (i, 0)
  // starts at offset i(i+1)(i+2)/6 and holds (i+1)(i+2)/2 entries.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += packed_row_update(data + idx, x.data(), y.data(), i);
    idx += (i + 1) * (i + 2) / 2;
  }
  STTSV_CHECK(idx == a.packed_size(), "packed walk out of sync");
  if (ops != nullptr) ops->ternary_mults += count;
  return y;
}

std::vector<double> sttsv_packed_parallel(const tensor::SymTensor3& a,
                                          const std::vector<double>& x,
                                          OpCount* ops) {
#ifndef STTSV_WITH_OPENMP
  return sttsv_packed(a, x, ops);
#else
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  const double* data = a.data();
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;

  // Per-thread slabs for the partial outputs; merged below by a second
  // parallel loop over output indices (a strided merge) instead of the
  // former serialized full-vector `omp critical` pass.
  const auto max_threads = static_cast<std::size_t>(omp_get_max_threads());
  std::vector<double> slabs(max_threads * n, 0.0);

#pragma omp parallel reduction(+ : count)
  {
    double* y_local = slabs.data() +
                      static_cast<std::size_t>(omp_get_thread_num()) * n;
    // Cyclic rows: row i holds (i+1)(i+2)/2 entries, so work grows
    // quadratically with i; a (static, 1) cyclic schedule hands every
    // thread the same mix of light and heavy rows.
#pragma omp for schedule(static, 1)
    for (std::size_t i = 0; i < n; ++i) {
      count += packed_row_update(data + tensor::tetra_index(i, 0, 0),
                                 x.data(), y_local, i);
    }
    // The loop's implicit barrier guarantees every slab is complete; each
    // thread then reduces a disjoint slice of the output across slabs.
    const auto active = static_cast<std::size_t>(omp_get_num_threads());
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t t = 0; t < active; ++t) s += slabs[t * n + i];
      y[i] = s;
    }
  }
  if (ops != nullptr) ops->ternary_mults += count;
  return y;
#endif
}

double full_contraction(const tensor::SymTensor3& a,
                        const std::vector<double>& x) {
  const std::vector<double> y = sttsv_packed(a, x);
  double lambda = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) lambda += y[i] * x[i];
  return lambda;
}

}  // namespace sttsv::core
