#include "core/sttsv_seq.hpp"

#include "support/check.hpp"

namespace sttsv::core {

std::vector<double> sttsv_naive(const tensor::Dense3& a,
                                const std::vector<double>& x,
                                OpCount* ops) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        acc += a(i, j, k) * x[j] * x[k];
        ++count;
      }
    }
    y[i] = acc;
  }
  if (ops != nullptr) ops->ternary_mults += count;
  return y;
}

std::vector<double> sttsv_symmetric(const tensor::SymTensor3& a,
                                    const std::vector<double>& x,
                                    OpCount* ops) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;
  // Algorithm 4: every lower-tetra entry updates all outputs it touches.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        const double v = a(i, j, k);
        if (i != j && j != k) {
          y[i] += 2.0 * v * x[j] * x[k];
          y[j] += 2.0 * v * x[i] * x[k];
          y[k] += 2.0 * v * x[i] * x[j];
          count += 3;
        } else if (i == j && j != k) {
          y[i] += 2.0 * v * x[j] * x[k];
          y[k] += v * x[i] * x[j];
          count += 2;
        } else if (i != j && j == k) {
          y[i] += v * x[j] * x[k];
          y[j] += 2.0 * v * x[i] * x[k];
          count += 2;
        } else {
          y[i] += v * x[j] * x[k];
          count += 1;
        }
      }
    }
  }
  if (ops != nullptr) ops->ternary_mults += count;
  return y;
}

std::vector<double> sttsv_packed(const tensor::SymTensor3& a,
                                 const std::vector<double>& x,
                                 OpCount* ops) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;
  const double* data = a.data();
  // Linear walk of packed storage; (i, j, k) recovered incrementally in
  // the same i >= j >= k order that tetra_index enumerates.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    for (std::size_t j = 0; j <= i; ++j) {
      const double xj = x[j];
      const double xi_xj = xi * xj;
      for (std::size_t k = 0; k <= j; ++k, ++idx) {
        const double v = data[idx];
        const double xk = x[k];
        if (i != j && j != k) {
          y[i] += 2.0 * v * xj * xk;
          y[j] += 2.0 * v * xi * xk;
          y[k] += 2.0 * v * xi_xj;
          count += 3;
        } else if (i == j && j != k) {
          y[i] += 2.0 * v * xj * xk;
          y[k] += v * xi_xj;
          count += 2;
        } else if (i != j && j == k) {
          y[i] += v * xj * xk;
          y[j] += 2.0 * v * xi * xk;
          count += 2;
        } else {
          y[i] += v * xj * xk;
          count += 1;
        }
      }
    }
  }
  STTSV_CHECK(idx == a.packed_size(), "packed walk out of sync");
  if (ops != nullptr) ops->ternary_mults += count;
  return y;
}

std::vector<double> sttsv_packed_parallel(const tensor::SymTensor3& a,
                                          const std::vector<double>& x,
                                          OpCount* ops) {
#ifndef STTSV_WITH_OPENMP
  return sttsv_packed(a, x, ops);
#else
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  const double* data = a.data();
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;

#pragma omp parallel reduction(+ : count)
  {
    std::vector<double> y_local(n, 0.0);
    // Dynamic schedule: row i holds (i+1)(i+2)/2 entries, so work grows
    // quadratically with i and static splitting would imbalance badly.
#pragma omp for schedule(dynamic, 4) nowait
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = x[i];
      std::size_t idx = tensor::tetra_index(i, 0, 0);
      for (std::size_t j = 0; j <= i; ++j) {
        const double xj = x[j];
        const double xi_xj = xi * xj;
        for (std::size_t k = 0; k <= j; ++k, ++idx) {
          const double v = data[idx];
          const double xk = x[k];
          if (i != j && j != k) {
            y_local[i] += 2.0 * v * xj * xk;
            y_local[j] += 2.0 * v * xi * xk;
            y_local[k] += 2.0 * v * xi_xj;
            count += 3;
          } else if (i == j && j != k) {
            y_local[i] += 2.0 * v * xj * xk;
            y_local[k] += v * xi_xj;
            count += 2;
          } else if (i != j && j == k) {
            y_local[i] += v * xj * xk;
            y_local[j] += 2.0 * v * xi * xk;
            count += 2;
          } else {
            y_local[i] += v * xj * xk;
            count += 1;
          }
        }
      }
    }
#pragma omp critical
    for (std::size_t i = 0; i < n; ++i) y[i] += y_local[i];
  }
  if (ops != nullptr) ops->ternary_mults += count;
  return y;
#endif
}

double full_contraction(const tensor::SymTensor3& a,
                        const std::vector<double>& x) {
  const std::vector<double> y = sttsv_packed(a, x);
  double lambda = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) lambda += y[i] * x[i];
  return lambda;
}

}  // namespace sttsv::core
