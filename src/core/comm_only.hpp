#pragma once
// Communication-only replay of Algorithm 5's two exchange phases.
//
// The words moved by Algorithm 5 depend only on the partition and the
// vector distribution — never on tensor values — so benches that sweep
// large q/P measure communication exactly without allocating O(n³/P)
// tensor data or running O(n³/2) flops.

#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"

namespace sttsv::core {

/// Executes the x-gather and y-reduce exchanges of Algorithm 5 with
/// zero-filled payloads of the exact sizes the real run sends. After the
/// call, machine.ledger() holds the same communication statistics a full
/// parallel_sttsv run would produce.
void simulate_communication(simt::Machine& machine,
                            const partition::TetraPartition& part,
                            const partition::VectorDistribution& dist,
                            simt::Transport transport);

}  // namespace sttsv::core
