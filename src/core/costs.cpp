#include "core/costs.hpp"

#include <cmath>

#include "support/check.hpp"

namespace sttsv::core {

double lower_bound_words(std::size_t n, std::size_t P) {
  STTSV_REQUIRE(n >= 1 && P >= 1, "n and P must be positive");
  const double nn = static_cast<double>(n);
  const double pp = static_cast<double>(P);
  const double volume = nn * (nn - 1.0) * (nn - 2.0) / pp;
  return 2.0 * std::cbrt(volume) - 2.0 * nn / pp;
}

double optimal_algorithm_words(std::size_t n, std::size_t q) {
  const double nn = static_cast<double>(n);
  const double qq = static_cast<double>(q);
  const double P = static_cast<double>(spherical_processor_count(q));
  return 2.0 * (nn * (qq + 1.0) / (qq * qq + 1.0) - nn / P);
}

double all_to_all_words(std::size_t n, std::size_t q) {
  const double nn = static_cast<double>(n);
  const double qq = static_cast<double>(q);
  const double P = static_cast<double>(spherical_processor_count(q));
  return 4.0 * nn / (qq + 1.0) * (1.0 - 1.0 / P);
}

std::size_t p2p_steps_per_vector(std::size_t q) {
  // q³/2 + 3q²/2 - 1 = (q²(q+1))/2 + q² - 1; integral for all q.
  return q * q * (q + 1) / 2 + q * q - 1;
}

std::uint64_t symmetric_ternary_mults(std::size_t n) {
  return static_cast<std::uint64_t>(n) * n * (n + 1) / 2;
}

std::uint64_t naive_ternary_mults(std::size_t n) {
  return static_cast<std::uint64_t>(n) * n * n;
}

std::uint64_t per_rank_ternary_bound(std::size_t q, std::size_t b) {
  const std::uint64_t off =
      static_cast<std::uint64_t>(q + 1) * q * (q - 1) / 6 * 3 * b * b * b;
  const std::uint64_t noncentral =
      static_cast<std::uint64_t>(q) *
      (3 * b * b * (b - 1) / 2 + 2 * b * b);
  const std::uint64_t central =
      3 * (static_cast<std::uint64_t>(b) * (b - 1) * (b - 2) / 6) +
      2 * static_cast<std::uint64_t>(b) * (b - 1) + b;
  return off + noncentral + central;
}

std::uint64_t per_rank_storage_bound(std::size_t q, std::size_t b) {
  const std::uint64_t off =
      static_cast<std::uint64_t>(q + 1) * q * (q - 1) / 6 * b * b * b;
  const std::uint64_t noncentral =
      static_cast<std::uint64_t>(q) * b * b * (b + 1) / 2;
  const std::uint64_t central =
      static_cast<std::uint64_t>(b) * (b + 1) * (b + 2) / 6;
  return off + noncentral + central;
}

double lower_bound_words_d(std::size_t n, std::size_t order,
                           std::size_t P) {
  STTSV_REQUIRE(n >= 1 && P >= 1 && order >= 2, "bad lower bound inputs");
  const double nn = static_cast<double>(n);
  double falling = 1.0;
  for (std::size_t t = 0; t < order; ++t) {
    falling *= nn - static_cast<double>(t);
  }
  if (falling <= 0.0) return 0.0;  // n < d: no strict tuples at all
  return 2.0 * std::pow(falling / static_cast<double>(P),
                        1.0 / static_cast<double>(order)) -
         2.0 * nn / static_cast<double>(P);
}

std::size_t spherical_processor_count(std::size_t q) {
  return q * (q * q + 1);
}

std::size_t spherical_row_blocks(std::size_t q) { return q * q + 1; }

double alpha_beta_time_s(const AlphaBeta& level, std::uint64_t sync_ops,
                         std::uint64_t words) {
  return level.alpha_s * static_cast<double>(sync_ops) +
         level.beta_s_per_word * static_cast<double>(words);
}

double hier_time_s(const HierCostModel& model, std::uint64_t intra_sync_ops,
                   std::uint64_t intra_words, std::uint64_t inter_sync_ops,
                   std::uint64_t inter_words) {
  return alpha_beta_time_s(model.intra, intra_sync_ops, intra_words) +
         alpha_beta_time_s(model.inter, inter_sync_ops, inter_words);
}

}  // namespace sttsv::core
