#pragma once
// Local block kernels: lines 24-36 of Algorithm 5. Each owned b×b×b block
// of the symmetric tensor updates (up to) three local y row blocks using
// (up to) three local x row blocks, with the Algorithm-4 multiplicity
// rules applied at the *element* level, so diagonal blocks are handled by
// the same entry point.
//
// apply_block classifies the block once by its coordinate pattern and
// dispatches to a kernel specialized for that class (DESIGN.md §8):
//
//   interior   i > j > k    every element is strict — branch-free 3-update
//                           loop nest, k-innermost, register accumulation;
//   face i==j  i == j > k   strict rows plus a gi == gj diagonal row
//                           (2-update) hoisted out of the inner loop;
//   face j==k  i > j == k   strict runs plus a gk == gj tail element
//                           (2-update) hoisted out of the inner loop;
//   central    i == j == k  triangular bounds, all equality cases live here.
//
// All kernels produce the same ternary-multiplication count as the
// element-wise reference (Section 7.1 counting); floating-point sums may
// differ from the reference by rounding only (reassociated accumulation).

#include <cstddef>
#include <cstdint>

#include "partition/blocks.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

/// Row-block-local views for a block kernel invocation. Slot 0 corresponds
/// to row block c.i, slot 1 to c.j, slot 2 to c.k. For diagonal blocks the
/// caller passes aliased pointers (same buffer in multiple slots).
struct BlockBuffers {
  const double* x[3] = {nullptr, nullptr, nullptr};
  double* y[3] = {nullptr, nullptr, nullptr};
};

/// Accumulates all contributions of the lower-tetra entries of block c
/// (edge length b) of tensor `a` into the y buffers. Entries with any
/// global index >= a.dim() are padding and contribute nothing. Returns
/// the number of ternary multiplications performed (Section 7.1 counting).
/// Dispatches to the class-specialized kernels above.
std::uint64_t apply_block(const tensor::SymTensor3& a,
                          const partition::BlockCoord& c, std::size_t b,
                          const BlockBuffers& buf);

/// The seed element-wise kernel: one loop nest with per-element
/// multiplicity branches, valid for every block class. Kept as the
/// golden reference for tests and as the baseline the kernel benches
/// (BENCH_kernels.json) measure the specialized kernels against.
std::uint64_t apply_block_generic(const tensor::SymTensor3& a,
                                  const partition::BlockCoord& c,
                                  std::size_t b, const BlockBuffers& buf);

}  // namespace sttsv::core
