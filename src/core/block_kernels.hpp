#pragma once
// Local block kernels: lines 24-36 of Algorithm 5. Each owned b×b×b block
// of the symmetric tensor updates (up to) three local y row blocks using
// (up to) three local x row blocks, with the Algorithm-4 multiplicity
// rules applied at the *element* level, so diagonal blocks are handled by
// the same kernel.

#include <cstddef>
#include <cstdint>

#include "partition/blocks.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

/// Row-block-local views for a block kernel invocation. Slot 0 corresponds
/// to row block c.i, slot 1 to c.j, slot 2 to c.k. For diagonal blocks the
/// caller passes aliased pointers (same buffer in multiple slots).
struct BlockBuffers {
  const double* x[3] = {nullptr, nullptr, nullptr};
  double* y[3] = {nullptr, nullptr, nullptr};
};

/// Accumulates all contributions of the lower-tetra entries of block c
/// (edge length b) of tensor `a` into the y buffers. Entries with any
/// global index >= a.dim() are padding and contribute nothing. Returns
/// the number of ternary multiplications performed (Section 7.1 counting).
std::uint64_t apply_block(const tensor::SymTensor3& a,
                          const partition::BlockCoord& c, std::size_t b,
                          const BlockBuffers& buf);

}  // namespace sttsv::core
