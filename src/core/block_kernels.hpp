#pragma once
// Local block kernels: lines 24-36 of Algorithm 5. Each owned b×b×b block
// of the symmetric tensor updates (up to) three local y row blocks using
// (up to) three local x row blocks, with the Algorithm-4 multiplicity
// rules applied at the *element* level, so diagonal blocks are handled by
// the same entry point.
//
// apply_block classifies the block once by its coordinate pattern and
// dispatches to a kernel specialized for that class (DESIGN.md §8):
//
//   interior   i > j > k    every element is strict — branch-free 3-update
//                           loop nest, k-innermost, register accumulation;
//   face i==j  i == j > k   strict rows plus a gi == gj diagonal row
//                           (2-update) hoisted out of the inner loop;
//   face j==k  i > j == k   strict runs plus a gk == gj tail element
//                           (2-update) hoisted out of the inner loop;
//   central    i == j == k  face_jk-style rows plus a diagonal row and the
//                           central element, all on one aliased buffer.
//
// Since PR 6 the kernels are SIMD-vectorized (DESIGN.md §13): each class
// body is a template over a 4-lane vector type, instantiated once with
// the portable scalar type and once with AVX2/FMA intrinsics, selected at
// runtime by simt::preferred_isa(). Every instantiation follows one
// canonical arithmetic order, so y is *bitwise identical* across the
// scalar fallback, the AVX2 path, and every register-block shape — the
// choice in KernelOptions changes speed, never bits. The one exception is
// the opt-in KernelMath::kCompressed bilinear formulation (arXiv
// 1707.04618), which legitimately reassociates and is off by default.
//
// All standard-math kernels produce the same ternary-multiplication count
// as the element-wise reference (Section 7.1 counting); floating-point
// sums may differ from the reference by rounding only (reassociated
// accumulation).

#include <cstddef>
#include <cstdint>

#include "partition/blocks.hpp"
#include "simt/simd.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

/// Row-block-local views for a block kernel invocation. Slot 0 corresponds
/// to row block c.i, slot 1 to c.j, slot 2 to c.k. For diagonal blocks the
/// caller passes aliased pointers (same buffer in multiple slots).
struct BlockBuffers {
  const double* x[3] = {nullptr, nullptr, nullptr};
  double* y[3] = {nullptr, nullptr, nullptr};
};

/// Arithmetic formulation of the kernels.
enum class KernelMath : std::uint8_t {
  /// Three ternary products per strict entry; canonical order, bitwise
  /// reproducible across ISAs and register-block shapes.
  kStandard = 0,
  /// Symmetry-compressed bilinear formulation (arXiv 1707.04618) for
  /// interior blocks: one bilinear product per packed entry plus
  /// adds-only marginals — bi·bj·bk + 4(bi·bj+bi·bk+bj·bk) + 3(bi+bj+bk)
  /// multiplies versus 3·bi·bj·bk. Reassociates (results match the
  /// standard kernels to rounding only, see DESIGN.md §13.4); non-interior
  /// classes fall back to the standard kernels.
  kCompressed = 1,
};

/// Tunable kernel configuration. The defaults are safe everywhere; the
/// register-block shapes rj_* (rows of j fused per strict-row sweep, one
/// of 1/2/4) are what `bench_kernels --tune` calibrates.
struct KernelOptions {
  simt::KernelIsa isa = simt::preferred_isa();
  KernelMath math = KernelMath::kStandard;
  std::uint8_t rj_interior = 4;
  std::uint8_t rj_face_ij = 2;
};

/// Process-wide kernel options used by apply_block (thread-safe).
KernelOptions kernel_options();
/// Installs new process-wide options. Requires rj_* ∈ {1, 2, 4}.
void set_kernel_options(const KernelOptions& opts);

/// Accumulates all contributions of the lower-tetra entries of block c
/// (edge length b) of tensor `a` into the y buffers. Entries with any
/// global index >= a.dim() are padding and contribute nothing. Returns
/// the number of ternary multiplications performed (Section 7.1 counting;
/// for compressed math, the compressed count documented above).
/// Dispatches on the explicit options — kernel-level tests and the tuner
/// use this to pin ISA, math, and register-block shape.
std::uint64_t apply_block_ex(const tensor::SymTensor3& a,
                             const partition::BlockCoord& c, std::size_t b,
                             const BlockBuffers& buf,
                             const KernelOptions& opts);

/// apply_block_ex with the process-wide kernel_options().
std::uint64_t apply_block(const tensor::SymTensor3& a,
                          const partition::BlockCoord& c, std::size_t b,
                          const BlockBuffers& buf);

/// The seed element-wise kernel: one loop nest with per-element
/// multiplicity branches, valid for every block class. Kept as the
/// golden reference for tests and as the baseline the kernel benches
/// (BENCH_kernels.json) measure the specialized kernels against.
std::uint64_t apply_block_generic(const tensor::SymTensor3& a,
                                  const partition::BlockCoord& c,
                                  std::size_t b, const BlockBuffers& buf);

}  // namespace sttsv::core
