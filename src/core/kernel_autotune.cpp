#include "core/kernel_autotune.hpp"

#include <chrono>
#include <cstring>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Time-per-invocation of apply_block_ex on (a, c, b, buf) under `opts`,
/// measured over enough repetitions to fill min_seconds.
double time_block(const tensor::SymTensor3& a, const partition::BlockCoord& c,
                  std::size_t b, const BlockBuffers& buf,
                  const KernelOptions& opts, double min_seconds) {
  // Warm caches and pull lazy pages in before timing.
  apply_block_ex(a, c, b, buf, opts);
  std::size_t reps = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) apply_block_ex(a, c, b, buf, opts);
    const double dt = seconds_since(t0);
    if (dt >= min_seconds) return dt / static_cast<double>(reps);
    const double scale = min_seconds / (dt > 1e-9 ? dt : 1e-9);
    reps = static_cast<std::size_t>(static_cast<double>(reps) *
                                    (scale < 8.0 ? 2.0 * scale : 8.0)) +
           1;
  }
}

}  // namespace

CalibrationResult calibrate_kernel_shapes(std::size_t b, double min_seconds) {
  STTSV_REQUIRE(b >= 1, "calibration edge must be positive");
  CalibrationResult res;
  res.isa = simt::preferred_isa();
  res.b = b;

  const std::size_t n = 3 * b;
  Rng rng(0xA11C0DEULL + n);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  std::vector<double> y(n, 0.0);

  const auto buffers_for = [&](const partition::BlockCoord& c) {
    BlockBuffers buf;
    const std::size_t blocks[3] = {c.i, c.j, c.k};
    for (int s = 0; s < 3; ++s) {
      buf.x[s] = x.data() + blocks[s] * b;
      buf.y[s] = y.data() + blocks[s] * b;
    }
    return buf;
  };

  KernelOptions opts = kernel_options();
  opts.isa = res.isa;
  opts.math = KernelMath::kStandard;

  constexpr std::uint8_t kShapes[] = {1, 2, 4};

  const auto sweep = [&](const partition::BlockCoord& c, std::uint8_t* knob,
                         std::vector<ShapeTiming>& out) {
    const BlockBuffers buf = buffers_for(c);
    std::uint8_t winner = kShapes[0];
    double best = 0.0;
    for (const std::uint8_t rj : kShapes) {
      *knob = rj;
      const double s = time_block(a, c, b, buf, opts, min_seconds);
      out.push_back({rj, s});
      if (out.size() == 1 || s < best) {
        best = s;
        winner = rj;
      }
    }
    *knob = winner;
    return winner;
  };

  res.rj_interior = sweep({2, 1, 0}, &opts.rj_interior, res.interior);
  res.rj_face_ij = sweep({1, 1, 0}, &opts.rj_face_ij, res.face_ij);
  return res;
}

CalibrationResult autotune_kernels(std::size_t b) {
  const CalibrationResult res = calibrate_kernel_shapes(b);
  KernelOptions opts = kernel_options();
  opts.rj_interior = res.rj_interior;
  opts.rj_face_ij = res.rj_face_ij;
  set_kernel_options(opts);
  return res;
}

}  // namespace sttsv::core
