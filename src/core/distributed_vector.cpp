#include "core/distributed_vector.hpp"

#include <algorithm>
#include <map>

#include "core/block_kernels.hpp"
#include "simt/collective.hpp"
#include "support/check.hpp"

namespace sttsv::core {

namespace {

using partition::Share;
using partition::TetraPartition;
using partition::VectorDistribution;
using simt::Delivery;
using simt::Envelope;

std::vector<std::size_t> common_blocks(const TetraPartition& part,
                                       std::size_t p, std::size_t peer) {
  const auto& a = part.R(p);
  const auto& b = part.R(peer);
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::size_t> peers_of(const TetraPartition& part,
                                  std::size_t p) {
  std::vector<std::size_t> peers;
  for (const std::size_t i : part.R(p)) {
    for (const std::size_t other : part.Q(i)) {
      if (other != p) peers.push_back(other);
    }
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

}  // namespace

DistributedVector::DistributedVector(const VectorDistribution& dist)
    : dist_(&dist), shares_(dist.num_processors()) {
  const auto& part_blocks = [&](std::size_t p) {
    return dist.required_blocks(p);
  };
  for (std::size_t p = 0; p < shares_.size(); ++p) {
    shares_[p].row_blocks = part_blocks(p);
    shares_[p].slices.resize(shares_[p].row_blocks.size());
    for (std::size_t t = 0; t < shares_[p].row_blocks.size(); ++t) {
      const Share s = dist.share(shares_[p].row_blocks[t], p);
      shares_[p].slices[t].assign(s.length, 0.0);
    }
  }
}

DistributedVector DistributedVector::scatter(
    const VectorDistribution& dist, const std::vector<double>& global) {
  STTSV_REQUIRE(global.size() == dist.logical_n(),
                "global vector length mismatch");
  DistributedVector dv(dist);
  const std::size_t b = dist.block_length_b();
  std::vector<double> padded(dist.padded_n(), 0.0);
  std::copy(global.begin(), global.end(), padded.begin());
  for (std::size_t p = 0; p < dv.shares_.size(); ++p) {
    auto& rs = dv.shares_[p];
    for (std::size_t t = 0; t < rs.row_blocks.size(); ++t) {
      const std::size_t i = rs.row_blocks[t];
      const Share s = dist.share(i, p);
      std::copy_n(padded.data() + i * b + s.offset, s.length,
                  rs.slices[t].data());
    }
  }
  return dv;
}

std::vector<double> DistributedVector::gather() const {
  const auto& dist = *dist_;
  const std::size_t b = dist.block_length_b();
  std::vector<double> padded(dist.padded_n(), 0.0);
  for (std::size_t p = 0; p < shares_.size(); ++p) {
    const auto& rs = shares_[p];
    for (std::size_t t = 0; t < rs.row_blocks.size(); ++t) {
      const std::size_t i = rs.row_blocks[t];
      const Share s = dist.share(i, p);
      std::copy(rs.slices[t].begin(), rs.slices[t].end(),
                padded.begin() + static_cast<long>(i * b + s.offset));
    }
  }
  return {padded.begin(),
          padded.begin() + static_cast<long>(dist.logical_n())};
}

const std::vector<double>& DistributedVector::share(
    std::size_t rank, std::size_t row_block) const {
  STTSV_REQUIRE(rank < shares_.size(), "rank out of range");
  const auto& rs = shares_[rank];
  const auto it = std::lower_bound(rs.row_blocks.begin(),
                                   rs.row_blocks.end(), row_block);
  STTSV_REQUIRE(it != rs.row_blocks.end() && *it == row_block,
                "rank does not own this row block");
  return rs.slices[static_cast<std::size_t>(it - rs.row_blocks.begin())];
}

std::vector<double>& DistributedVector::share(std::size_t rank,
                                              std::size_t row_block) {
  return const_cast<std::vector<double>&>(
      static_cast<const DistributedVector&>(*this).share(rank, row_block));
}

double DistributedVector::dot(simt::Machine& machine,
                              const DistributedVector& a,
                              const DistributedVector& b) {
  STTSV_REQUIRE(a.dist_ == b.dist_, "distribution mismatch");
  const std::size_t P = a.shares_.size();
  STTSV_REQUIRE(machine.num_ranks() == P, "machine rank count mismatch");
  std::vector<std::vector<double>> partials(P, std::vector<double>(1, 0.0));
  for (std::size_t p = 0; p < P; ++p) {
    double local = 0.0;
    for (std::size_t t = 0; t < a.shares_[p].slices.size(); ++t) {
      const auto& av = a.shares_[p].slices[t];
      const auto& bv = b.shares_[p].slices[t];
      for (std::size_t i = 0; i < av.size(); ++i) local += av[i] * bv[i];
    }
    partials[p][0] = local;
  }
  return simt::allreduce_sum(machine, partials)[0];
}

std::pair<double, double> DistributedVector::diff_norms2(
    simt::Machine& machine, const DistributedVector& a,
    const DistributedVector& b) {
  STTSV_REQUIRE(a.dist_ == b.dist_, "distribution mismatch");
  const std::size_t P = a.shares_.size();
  std::vector<std::vector<double>> partials(P, std::vector<double>(2, 0.0));
  for (std::size_t p = 0; p < P; ++p) {
    double dm = 0.0;
    double dp = 0.0;
    for (std::size_t t = 0; t < a.shares_[p].slices.size(); ++t) {
      const auto& av = a.shares_[p].slices[t];
      const auto& bv = b.shares_[p].slices[t];
      for (std::size_t i = 0; i < av.size(); ++i) {
        dm += (av[i] - bv[i]) * (av[i] - bv[i]);
        dp += (av[i] + bv[i]) * (av[i] + bv[i]);
      }
    }
    partials[p] = {dm, dp};
  }
  const auto sums = simt::allreduce_sum(machine, partials);
  return {sums[0], sums[1]};
}

void DistributedVector::scale(double s) {
  for (auto& rs : shares_) {
    for (auto& slice : rs.slices) {
      for (auto& v : slice) v *= s;
    }
  }
}

void DistributedVector::axpy(double alpha, const DistributedVector& other) {
  STTSV_REQUIRE(dist_ == other.dist_, "distribution mismatch");
  for (std::size_t p = 0; p < shares_.size(); ++p) {
    for (std::size_t t = 0; t < shares_[p].slices.size(); ++t) {
      auto& dst = shares_[p].slices[t];
      const auto& src = other.shares_[p].slices[t];
      for (std::size_t i = 0; i < dst.size(); ++i) {
        dst[i] += alpha * src[i];
      }
    }
  }
}

DistributedVector parallel_sttsv_dist(
    simt::Machine& machine, const TetraPartition& part,
    const tensor::SymTensor3& a, const DistributedVector& x,
    simt::Transport transport, std::vector<std::uint64_t>* ternary_out) {
  const VectorDistribution& dist = x.distribution();
  const std::size_t P = part.num_processors();
  const std::size_t b = dist.block_length_b();
  STTSV_REQUIRE(machine.num_ranks() == P,
                "machine rank count must match partition");
  STTSV_REQUIRE(a.dim() == dist.logical_n(),
                "tensor dimension must match distribution");

  // Phase 1: gather full row blocks of x per rank from the shares.
  std::vector<std::vector<Envelope>> outboxes(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      Envelope env;
      env.to = peer;
      for (const std::size_t i : common_blocks(part, p, peer)) {
        const auto& slice = x.share(p, i);
        env.data.insert(env.data.end(), slice.begin(), slice.end());
      }
      if (!env.data.empty()) outboxes[p].push_back(std::move(env));
    }
  }
  auto inboxes = machine.exchange(std::move(outboxes), transport);

  std::vector<std::map<std::size_t, std::vector<double>>> x_loc(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) {
      auto& blockvec = x_loc[p][i];
      blockvec.assign(b, 0.0);
      const Share s = dist.share(i, p);
      const auto& own = x.share(p, i);
      std::copy(own.begin(), own.end(), blockvec.begin() +
                                            static_cast<long>(s.offset));
    }
    for (const Delivery& d : inboxes[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const Share s = dist.share(i, d.from);
        STTSV_CHECK(cursor + s.length <= d.data.size(),
                    "x delivery shorter than expected");
        std::copy_n(d.data.data() + cursor, s.length,
                    x_loc[p][i].data() + s.offset);
        cursor += s.length;
      }
      STTSV_CHECK(cursor == d.data.size(), "x delivery longer than expected");
    }
  }
  inboxes.clear();

  // Phase 2: block kernels. Rank programs are independent between the two
  // exchanges, so they run on host threads (ledger untouched).
  std::vector<std::map<std::size_t, std::vector<double>>> y_loc(P);
  if (ternary_out != nullptr) ternary_out->assign(P, 0);
  machine.run_ranks([&](std::size_t p) {
    for (const std::size_t i : part.R(p)) y_loc[p][i].assign(b, 0.0);
    for (const partition::BlockCoord& c : part.owned_blocks(p)) {
      BlockBuffers buf;
      buf.x[0] = x_loc[p].at(c.i).data();
      buf.x[1] = x_loc[p].at(c.j).data();
      buf.x[2] = x_loc[p].at(c.k).data();
      buf.y[0] = y_loc[p].at(c.i).data();
      buf.y[1] = y_loc[p].at(c.j).data();
      buf.y[2] = y_loc[p].at(c.k).data();
      const auto mults = apply_block(a, c, b, buf);
      if (ternary_out != nullptr) (*ternary_out)[p] += mults;
    }
    x_loc[p].clear();
  });

  // Phase 3: exchange receiver shares of the partial y and reduce into a
  // fresh distributed vector.
  std::vector<std::vector<Envelope>> y_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      Envelope env;
      env.to = peer;
      for (const std::size_t i : common_blocks(part, p, peer)) {
        const Share s = dist.share(i, peer);
        const double* base = y_loc[p].at(i).data() + s.offset;
        env.data.insert(env.data.end(), base, base + s.length);
      }
      if (!env.data.empty()) y_out[p].push_back(std::move(env));
    }
  }
  auto y_in = machine.exchange(std::move(y_out), transport);

  DistributedVector y(dist);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) {
      const Share s = dist.share(i, p);
      auto& own = y.share(p, i);
      for (std::size_t off = 0; off < s.length; ++off) {
        own[off] += y_loc[p].at(i)[s.offset + off];
      }
    }
    for (const Delivery& d : y_in[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const Share s = dist.share(i, p);
        STTSV_CHECK(cursor + s.length <= d.data.size(),
                    "y delivery shorter than expected");
        auto& own = y.share(p, i);
        for (std::size_t off = 0; off < s.length; ++off) {
          own[off] += d.data[cursor + off];
        }
        cursor += s.length;
      }
      STTSV_CHECK(cursor == d.data.size(), "y delivery longer than expected");
    }
  }
  machine.ledger().verify_conservation();
  return y;
}

}  // namespace sttsv::core
