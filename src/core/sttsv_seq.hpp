#pragma once
// Sequential STTSV kernels.
//
//  * sttsv_naive        — paper Algorithm 3: all n³ ternary multiplications
//                         over the dense tensor (ground truth + baseline).
//  * sttsv_symmetric    — paper Algorithm 4: walks the lower tetrahedron
//                         once, performing every update an entry implies;
//                         n²(n+1)/2 ternary multiplications.
//  * sttsv_packed       — same math as Algorithm 4 but iterating packed
//                         storage linearly (cache-friendlier ablation).
//
// All return y = A ×₂ x ×₃ x.

#include <cstdint>
#include <vector>

#include "tensor/dense3.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

/// Counters filled by the kernels when a non-null pointer is passed.
struct OpCount {
  std::uint64_t ternary_mults = 0;
};

std::vector<double> sttsv_naive(const tensor::Dense3& a,
                                const std::vector<double>& x,
                                OpCount* ops = nullptr);

std::vector<double> sttsv_symmetric(const tensor::SymTensor3& a,
                                    const std::vector<double>& x,
                                    OpCount* ops = nullptr);

std::vector<double> sttsv_packed(const tensor::SymTensor3& a,
                                 const std::vector<double>& x,
                                 OpCount* ops = nullptr);

/// Shared-memory parallel Algorithm 4 (OpenMP over the i loop, one
/// private y accumulator per thread because updates scatter to y[j] and
/// y[k]). Built without STTSV_WITH_OPENMP this is the sequential kernel.
std::vector<double> sttsv_packed_parallel(const tensor::SymTensor3& a,
                                          const std::vector<double>& x,
                                          OpCount* ops = nullptr);

/// Full contraction λ = A ×₁ x ×₂ x ×₃ x (line 8 of Algorithm 1),
/// computed symmetry-aware in one pass.
double full_contraction(const tensor::SymTensor3& a,
                        const std::vector<double>& x);

}  // namespace sttsv::core
