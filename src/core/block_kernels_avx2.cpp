// AVX2/FMA instantiation of the canonical block kernels. Compiled only
// when STTSV_ENABLE_SIMD resolves (see src/core/CMakeLists.txt) with
// -mavx2 -mfma -ffp-contract=off; executed only when the runtime
// dispatcher selects simt::KernelIsa::kAvx2. The -ffp-contract=off is
// load-bearing: with contraction on, GCC fuses the _mm256_mul_pd /
// _mm256_add_pd pairs of the canonical order into FMAs and the bitwise
// contract with the scalar instantiation breaks (DESIGN.md §13.1).

#include "core/block_kernels_impl.hpp"

#ifndef STTSV_SIMD_TU_HAS_AVX2
#error "block_kernels_avx2.cpp must be compiled with -mavx2"
#endif

namespace sttsv::core::detail {

const KernelVTable& avx2_kernel_vtable() {
  static const KernelVTable t = make_kernel_vtable<simt::simd::VecAvx2>();
  return t;
}

}  // namespace sttsv::core::detail
