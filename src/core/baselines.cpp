#include "core/baselines.hpp"

#include <algorithm>
#include <array>

#include "support/check.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

namespace {

using simt::Delivery;
using simt::Envelope;

/// Contiguous balanced ranges: element e belongs to rank e*P/total.
struct Ranges {
  std::size_t total;
  std::size_t P;

  [[nodiscard]] std::size_t begin(std::size_t p) const {
    return p * total / P;
  }
  [[nodiscard]] std::size_t end(std::size_t p) const {
    return (p + 1) * total / P;
  }
  [[nodiscard]] std::size_t size(std::size_t p) const {
    return end(p) - begin(p);
  }
};

}  // namespace

ParallelRunResult baseline_1d_atomic(simt::Machine& machine,
                                     const tensor::SymTensor3& a,
                                     const std::vector<double>& x) {
  const std::size_t P = machine.num_ranks();
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "input vector length mismatch");
  const Ranges xr{n, P};
  const Ranges er{tensor::tetra_count(n), P};

  // Phase 1: allgather x by direct sends of owned slices.
  std::vector<std::vector<Envelope>> outboxes(P);
  for (std::size_t p = 0; p < P; ++p) {
    std::vector<double> slice(x.begin() + static_cast<long>(xr.begin(p)),
                              x.begin() + static_cast<long>(xr.end(p)));
    for (std::size_t peer = 0; peer < P; ++peer) {
      if (peer == p || slice.empty()) continue;
      outboxes[p].push_back(Envelope{peer, slice});
    }
  }
  (void)machine.exchange(std::move(outboxes), simt::Transport::kPointToPoint);
  // Every rank now has the full x (we use the global copy; the exchange
  // above accounted the words an MPI allgather moves).

  // Phase 2: each rank processes its packed-entry range with the
  // Algorithm-4 updates, accumulating into a full-length local y.
  ParallelRunResult result;
  result.ternary_mults.assign(P, 0);
  std::vector<std::vector<double>> y_loc(P, std::vector<double>(n, 0.0));
  const double* data = a.data();
  // Per-rank compute is independent (reads the shared x, writes y_loc[p]):
  // run on host threads without touching the ledger.
  machine.run_ranks([&](std::size_t p) {
    auto& y = y_loc[p];
    std::uint64_t count = 0;
    for (std::size_t idx = er.begin(p); idx < er.end(p); ++idx) {
      std::size_t i = 0, j = 0, k = 0;
      tensor::tetra_unindex(idx, i, j, k);
      const double v = data[idx];
      if (i != j && j != k) {
        y[i] += 2.0 * v * x[j] * x[k];
        y[j] += 2.0 * v * x[i] * x[k];
        y[k] += 2.0 * v * x[i] * x[j];
        count += 3;
      } else if (i == j && j != k) {
        y[i] += 2.0 * v * x[j] * x[k];
        y[k] += v * x[i] * x[j];
        count += 2;
      } else if (i != j && j == k) {
        y[i] += v * x[j] * x[k];
        y[j] += 2.0 * v * x[i] * x[k];
        count += 2;
      } else {
        y[i] += v * x[j] * x[k];
        count += 1;
      }
    }
    result.ternary_mults[p] = count;
  });

  // Phase 3: reduce-scatter partial y onto the x ranges.
  std::vector<std::vector<Envelope>> y_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t peer = 0; peer < P; ++peer) {
      if (peer == p || xr.size(peer) == 0) continue;
      Envelope env;
      env.to = peer;
      env.data.assign(
          y_loc[p].begin() + static_cast<long>(xr.begin(peer)),
          y_loc[p].begin() + static_cast<long>(xr.end(peer)));
      y_out[p].push_back(std::move(env));
    }
  }
  auto y_in = machine.exchange(std::move(y_out), simt::Transport::kPointToPoint);

  result.y.assign(n, 0.0);
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t g = xr.begin(p); g < xr.end(p); ++g) {
      result.y[g] += y_loc[p][g];
    }
    for (const Delivery& d : y_in[p]) {
      STTSV_CHECK(d.data.size() == xr.size(p), "reduce slice size mismatch");
      for (std::size_t off = 0; off < d.data.size(); ++off) {
        result.y[xr.begin(p) + off] += d.data[off];
      }
    }
  }
  machine.ledger().verify_conservation();
  result.max_words_sent = machine.ledger().max_words_sent();
  result.max_words_received = machine.ledger().max_words_received();
  return result;
}

ParallelRunResult baseline_cubic(simt::Machine& machine,
                                 const tensor::SymTensor3& a,
                                 const std::vector<double>& x) {
  const std::size_t P = machine.num_ranks();
  const std::size_t c = cube_side_for(P);
  STTSV_REQUIRE(c * c * c == P, "cubic baseline needs P == c³");
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "input vector length mismatch");
  const std::size_t b = (n + c - 1) / c;  // padded row-block length

  auto coords_of = [&](std::size_t p) {
    return std::array<std::size_t, 3>{p / (c * c), (p / c) % c, p % c};
  };

  // Row block t of x is required by ranks with v == t or w == t; distribute
  // its b elements evenly over that requirer set (sorted).
  std::vector<std::vector<std::size_t>> requirers(c);
  for (std::size_t t = 0; t < c; ++t) {
    for (std::size_t p = 0; p < P; ++p) {
      const auto [u, v, w] = coords_of(p);
      (void)u;
      if (v == t || w == t) requirers[t].push_back(p);
    }
  }
  auto share_of = [&](std::size_t t, std::size_t p) -> partition::Share {
    const auto& req = requirers[t];
    const auto it = std::lower_bound(req.begin(), req.end(), p);
    STTSV_CHECK(it != req.end() && *it == p, "rank does not require block");
    const std::size_t pos = static_cast<std::size_t>(it - req.begin());
    const std::size_t base = b / req.size();
    const std::size_t extra = b % req.size();
    return partition::Share{pos * base + std::min(pos, extra),
                            base + (pos < extra ? 1 : 0)};
  };

  std::vector<double> x_pad(b * c, 0.0);
  std::copy(x.begin(), x.end(), x_pad.begin());

  // Phase 1: within each requirer set, exchange shares so every rank
  // assembles the row blocks x[v] and x[w] it needs.
  std::vector<std::vector<Envelope>> outboxes(P);
  for (std::size_t t = 0; t < c; ++t) {
    for (const std::size_t p : requirers[t]) {
      const partition::Share s = share_of(t, p);
      if (s.length == 0) continue;
      std::vector<double> payload(
          x_pad.begin() + static_cast<long>(t * b + s.offset),
          x_pad.begin() + static_cast<long>(t * b + s.offset + s.length));
      for (const std::size_t peer : requirers[t]) {
        if (peer == p) continue;
        outboxes[p].push_back(Envelope{peer, payload});
      }
    }
  }
  (void)machine.exchange(std::move(outboxes), simt::Transport::kPointToPoint);

  // Phase 2: dense cube kernels (no symmetry exploited). Each rank writes
  // only y_loc[p], so the cube sweep runs on host threads.
  ParallelRunResult result;
  result.ternary_mults.assign(P, 0);
  std::vector<std::vector<double>> y_loc(P, std::vector<double>(b, 0.0));
  machine.run_ranks([&](std::size_t p) {
    const auto [u, v, w] = coords_of(p);
    std::uint64_t count = 0;
    const std::size_t i_end = std::min((u + 1) * b, n);
    const std::size_t j_end = std::min((v + 1) * b, n);
    const std::size_t k_end = std::min((w + 1) * b, n);
    for (std::size_t gi = u * b; gi < i_end; ++gi) {
      double acc = 0.0;
      for (std::size_t gj = v * b; gj < j_end; ++gj) {
        for (std::size_t gk = w * b; gk < k_end; ++gk) {
          acc += a(gi, gj, gk) * x_pad[gj] * x_pad[gk];
          ++count;
        }
      }
      y_loc[p][gi - u * b] += acc;
    }
    result.ternary_mults[p] = count;
  });

  // Phase 3: reduce y row block u across the c² ranks of plane u; y block
  // u is owned in shares by that plane's ranks (balanced like x shares).
  std::vector<std::vector<std::size_t>> plane(c);
  for (std::size_t p = 0; p < P; ++p) plane[coords_of(p)[0]].push_back(p);
  auto y_share_of = [&](std::size_t u, std::size_t p) -> partition::Share {
    const auto& grp = plane[u];
    const auto it = std::lower_bound(grp.begin(), grp.end(), p);
    STTSV_CHECK(it != grp.end() && *it == p, "rank not in plane");
    const std::size_t pos = static_cast<std::size_t>(it - grp.begin());
    const std::size_t base = b / grp.size();
    const std::size_t extra = b % grp.size();
    return partition::Share{pos * base + std::min(pos, extra),
                            base + (pos < extra ? 1 : 0)};
  };

  std::vector<std::vector<Envelope>> y_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    const std::size_t u = coords_of(p)[0];
    for (const std::size_t peer : plane[u]) {
      if (peer == p) continue;
      const partition::Share s = y_share_of(u, peer);
      if (s.length == 0) continue;
      Envelope env;
      env.to = peer;
      env.data.assign(
          y_loc[p].begin() + static_cast<long>(s.offset),
          y_loc[p].begin() + static_cast<long>(s.offset + s.length));
      y_out[p].push_back(std::move(env));
    }
  }
  auto y_in = machine.exchange(std::move(y_out), simt::Transport::kPointToPoint);

  std::vector<double> y_pad(b * c, 0.0);
  for (std::size_t p = 0; p < P; ++p) {
    const std::size_t u = coords_of(p)[0];
    const partition::Share own = y_share_of(u, p);
    for (std::size_t off = 0; off < own.length; ++off) {
      y_pad[u * b + own.offset + off] += y_loc[p][own.offset + off];
    }
    for (const Delivery& d : y_in[p]) {
      STTSV_CHECK(d.data.size() == own.length, "y reduce size mismatch");
      for (std::size_t off = 0; off < own.length; ++off) {
        y_pad[u * b + own.offset + off] += d.data[off];
      }
    }
  }
  machine.ledger().verify_conservation();
  result.y.assign(y_pad.begin(), y_pad.begin() + static_cast<long>(n));
  result.max_words_sent = machine.ledger().max_words_sent();
  result.max_words_received = machine.ledger().max_words_received();
  return result;
}

double baseline_1d_words(std::size_t n, std::size_t P) {
  const double nn = static_cast<double>(n);
  return 2.0 * nn * (1.0 - 1.0 / static_cast<double>(P));
}

double baseline_cubic_words(std::size_t n, std::size_t c) {
  // Two x row blocks gathered (2(b - share)) + one y block reduced
  // (b - share), shares ~ b/(2c²-c) and b/c² respectively.
  const double b = static_cast<double>(n) / static_cast<double>(c);
  const double cc = static_cast<double>(c);
  const double x_words = 2.0 * b * (1.0 - 1.0 / (2.0 * cc * cc - cc));
  const double y_words = b * (1.0 - 1.0 / (cc * cc));
  return x_words + y_words;
}

std::size_t cube_side_for(std::size_t P) {
  std::size_t c = 1;
  while ((c + 1) * (c + 1) * (c + 1) <= P) ++c;
  return c;
}

}  // namespace sttsv::core
