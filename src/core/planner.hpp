#pragma once
// High-level entry point: given a processor budget and a problem size,
// choose an admissible Steiner family, build the partition, distribution
// and schedule once, and expose predictions plus a one-call parallel run.
// This is the API a downstream application uses without touching the
// combinatorial machinery.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

struct PlanSummary {
  std::string family;          // "spherical", "boolean", or "triples"
  std::size_t q = 0;           // spherical parameter (0 otherwise)
  std::size_t processors = 0;  // exact P of the plan
  std::size_t row_blocks = 0;  // m
  std::size_t block_length = 0;  // b (from n)
  double predicted_words = 0.0;  // per-rank, both vectors (divisible est.)
  double lower_bound_words = 0.0;
  std::size_t tensor_words_per_rank = 0;  // storage bound
  std::size_t vector_words_per_rank = 0;
};

class Planner {
 public:
  /// Builds a plan for (at most) `processor_budget` ranks and problem
  /// size n. Picks the largest admissible P <= budget, preferring the
  /// spherical family (lowest replication) when several match; falls
  /// back to the trivial S(m,3,3) family if nothing else fits.
  /// Throws PreconditionError if even P = 4 (trivial m = 4) exceeds the
  /// budget.
  Planner(std::size_t processor_budget, std::size_t n);

  [[nodiscard]] const PlanSummary& summary() const { return summary_; }
  [[nodiscard]] const partition::TetraPartition& partition() const {
    return *part_;
  }
  [[nodiscard]] const partition::VectorDistribution& distribution() const {
    return *dist_;
  }

  /// A machine sized for this plan.
  [[nodiscard]] simt::Machine make_machine() const;

  /// One STTSV run; see parallel_sttsv for semantics.
  std::vector<double> run(simt::Machine& machine,
                          const tensor::SymTensor3& a,
                          const std::vector<double>& x,
                          simt::Transport transport =
                              simt::Transport::kPointToPoint) const;

 private:
  std::unique_ptr<partition::TetraPartition> part_;
  std::unique_ptr<partition::VectorDistribution> dist_;
  PlanSummary summary_;
};

}  // namespace sttsv::core
