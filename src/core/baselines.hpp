#pragma once
// Comparison algorithms for the evaluation harness (DESIGN.md E5):
//
//  * baseline_1d_atomic — the straightforward parallelization of
//    Algorithm 4: lower-tetra entries are split evenly by packed index,
//    x is allgathered, partial y is reduce-scattered. Θ(n) words per rank
//    regardless of P — the communication cost symmetry-oblivious codes pay.
//  * baseline_cubic — a Loomis-Whitney style c×c×c grid partition of the
//    *dense* (nonsymmetric) tensor: communication ~ 3n/P^{1/3} but twice
//    the arithmetic of the symmetric algorithm and a higher constant than
//    Algorithm 5's 2n/P^{1/3}.
//
// Both run on the simulated machine and return the same result structure
// as parallel_sttsv so benches can compare measured words directly.

#include <vector>

#include "core/parallel_sttsv.hpp"
#include "simt/machine.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

/// 1D atomic baseline; any machine.num_ranks() >= 1 works.
ParallelRunResult baseline_1d_atomic(simt::Machine& machine,
                                     const tensor::SymTensor3& a,
                                     const std::vector<double>& x);

/// Cubic baseline; requires machine.num_ranks() == c³ for some c >= 1.
ParallelRunResult baseline_cubic(simt::Machine& machine,
                                 const tensor::SymTensor3& a,
                                 const std::vector<double>& x);

/// Predicted per-rank words of the 1D baseline: 2n(1 - 1/P).
double baseline_1d_words(std::size_t n, std::size_t P);

/// Predicted per-rank words of the cubic baseline (leading term 3n/c).
double baseline_cubic_words(std::size_t n, std::size_t c);

/// Largest c with c³ <= P.
std::size_t cube_side_for(std::size_t P);

}  // namespace sttsv::core
