#include "core/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sttsv::core {

std::size_t Projections3::union_size() const {
  std::set<std::size_t> u(i);
  u.insert(j.begin(), j.end());
  u.insert(k.begin(), k.end());
  return u.size();
}

Projections3 project3(const std::vector<Point3>& points) {
  Projections3 proj;
  for (const auto& p : points) {
    proj.i.insert(p[0]);
    proj.j.insert(p[1]);
    proj.k.insert(p[2]);
  }
  return proj;
}

bool loomis_whitney_holds(const std::vector<Point3>& points) {
  // Dedupe first: the inequality is about sets.
  std::vector<Point3> v(points);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  const auto proj = project3(v);
  const double bound = static_cast<double>(proj.i.size()) *
                       static_cast<double>(proj.j.size()) *
                       static_cast<double>(proj.k.size());
  return static_cast<double>(v.size()) <= bound;
}

bool symmetric_projection_bound_holds(const std::vector<Point3>& points) {
  std::vector<Point3> v(points);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  for (const auto& p : v) {
    STTSV_REQUIRE(p[0] > p[1] && p[1] > p[2],
                  "Lemma 4.2 needs strictly decreasing points");
  }
  const auto proj = project3(v);
  const double u = static_cast<double>(proj.union_size());
  return 6.0 * static_cast<double>(v.size()) <= u * u * u;
}

std::vector<PointD> expand_symmetric(const std::vector<PointD>& points) {
  std::set<PointD> out;
  for (const auto& p : points) {
    PointD perm(p);
    std::sort(perm.begin(), perm.end());
    do {
      out.insert(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  return {out.begin(), out.end()};
}

bool symmetric_projection_bound_holds_d(const std::vector<PointD>& points) {
  std::vector<PointD> v(points);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  if (v.empty()) return true;
  const std::size_t d = v[0].size();
  std::set<std::size_t> union_proj;
  for (const auto& p : v) {
    STTSV_REQUIRE(p.size() == d, "mixed point dimensions");
    for (std::size_t t = 1; t < d; ++t) {
      STTSV_REQUIRE(p[t - 1] > p[t],
                    "d-dim bound needs strictly decreasing points");
    }
    union_proj.insert(p.begin(), p.end());
  }
  double fact = 1.0;
  for (std::size_t t = 2; t <= d; ++t) fact *= static_cast<double>(t);
  const double u = static_cast<double>(union_proj.size());
  return fact * static_cast<double>(v.size()) <= std::pow(u, static_cast<double>(d));
}

}  // namespace sttsv::core
