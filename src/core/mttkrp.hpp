#pragma once
// Symmetric mode-1 MTTKRP (paper Section 8): for a factor matrix X with
// columns x_1..x_r,
//   Y[i][ℓ] = Σ_{j,k} a_ijk · X[j][ℓ] · X[k][ℓ],
// i.e. one STTSV per column. This is the bottleneck of CP decomposition;
// the paper plans to generalize its bounds to it. We provide:
//
//  * symmetric_mttkrp          — sequential, one packed pass per column;
//  * parallel_symmetric_mttkrp — batched Algorithm 5: the r columns'
//    shares travel in ONE pair of exchanges (r× the words of a single
//    STTSV but the same message/step count — an r-fold latency saving
//    over r separate STTSV runs).

#include <vector>

#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

/// Y as columns: result[ℓ][i] = (A ×₂ x_ℓ ×₃ x_ℓ)_i.
std::vector<std::vector<double>> symmetric_mttkrp(
    const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns);

/// Batched parallel MTTKRP on the simulated machine. Requirements mirror
/// parallel_sttsv; every column must have length dist.logical_n().
std::vector<std::vector<double>> parallel_symmetric_mttkrp(
    simt::Machine& machine, const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns,
    simt::Transport transport);

}  // namespace sttsv::core
