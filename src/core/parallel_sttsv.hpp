#pragma once
// Parallel STTSV (paper Algorithm 5) on the simulated machine.
//
// Data distribution (Section 6.1): processor p owns the extended
// tetrahedral block A[T_p] = TB₃(R_p) ∪ N_p ∪ D_p of the tensor and the
// share x[i]^(p) of each row block i ∈ R_p. The run is the paper's three
// phases: All-to-All (or scheduled point-to-point) exchange of x shares,
// local block kernels, exchange + reduction of partial y shares.
//
// Only vector data moves; the tensor is never communicated (owner-compute).

#include <cstdint>
#include <vector>

#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "simt/pipeline.hpp"
#include "simt/reliable_exchange.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

struct ParallelRunResult {
  /// Assembled output, logical length n (padding dropped).
  std::vector<double> y;
  /// Ternary multiplications per rank (Section 7.1 load balance).
  std::vector<std::uint64_t> ternary_mults;
  /// Convenience: max over ranks of words sent during this run
  /// (the quantity bounded by Theorem 5.2). Also available via the ledger.
  std::uint64_t max_words_sent = 0;
  std::uint64_t max_words_received = 0;
};

/// Runs y = A ×₂ x ×₃ x on `machine` using the given partition and vector
/// distribution. Requirements: machine.num_ranks() == part.num_processors(),
/// dist built over the same partition, x.size() == dist.logical_n(),
/// a.dim() == dist.logical_n().
/// `pipeline` selects the phase schedule: kDoubleBuffered (default)
/// overlaps each chunk's pack/kernels with the previous chunk's wire
/// time; kSerialized is the historical pack-all-then-exchange order.
/// Both produce bitwise-identical y and identical ledger channels
/// (DESIGN.md §12).
ParallelRunResult parallel_sttsv(
    simt::Machine& machine, const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const tensor::SymTensor3& a,
    const std::vector<double>& x, simt::Transport transport,
    simt::PipelineMode pipeline = simt::PipelineMode::kDoubleBuffered);

/// Same run, but communication goes through `exchanger` (the resilience
/// seam, DESIGN.md §10). With simt::DirectExchange this is the raw run
/// above; with simt::ReliableExchange the two vector phases survive
/// injected wire faults — y stays bitwise identical to the fault-free
/// run and the ledger's goodput channel stays at the fault-free value,
/// with retransmission/ACK cost accounted as overhead. A rank exceeding
/// the retry budget raises simt::FaultError (kFailFast) or is healed by
/// owner-compute replay (kDegrade); phases are labeled "x-shares" and
/// "y-partials" in any FaultReport.
ParallelRunResult parallel_sttsv(
    simt::Exchanger& exchanger, const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const tensor::SymTensor3& a,
    const std::vector<double>& x, simt::Transport transport,
    simt::PipelineMode pipeline = simt::PipelineMode::kDoubleBuffered);

}  // namespace sttsv::core
