#pragma once
// One-shot register-block calibration (DESIGN.md §13.3).
//
// The interior and face_ij kernels are template-instantiated for RJ ∈
// {1, 2, 4} fused j-rows per strict-row sweep. All shapes are bitwise
// identical by construction (the canonical order is shape-invariant), so
// picking one is purely a throughput decision: the calibrator times each
// instantiation on a synthetic block at the requested edge length and
// installs the winners into the process-wide kernel options. Exposed to
// users through `bench_kernels --tune`.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/block_kernels.hpp"

namespace sttsv::core {

struct ShapeTiming {
  std::uint8_t rj = 1;
  double seconds = 0.0;  // time per kernel invocation
};

struct CalibrationResult {
  simt::KernelIsa isa = simt::KernelIsa::kScalar;
  std::size_t b = 0;
  std::uint8_t rj_interior = 1;
  std::uint8_t rj_face_ij = 1;
  std::vector<ShapeTiming> interior;  // one entry per candidate shape
  std::vector<ShapeTiming> face_ij;
};

/// Times every register-block shape of the interior and face_ij kernels
/// on one synthetic b-edge block per class (ISA = preferred_isa()) and
/// returns the fastest shapes. Does not modify the global options.
CalibrationResult calibrate_kernel_shapes(std::size_t b = 64,
                                          double min_seconds = 0.02);

/// calibrate_kernel_shapes + set_kernel_options with the winners
/// (leaving isa/math untouched). Returns the calibration detail.
CalibrationResult autotune_kernels(std::size_t b = 64);

}  // namespace sttsv::core
