#include "core/sttv_d.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::core {

namespace {

std::uint64_t factorial(std::size_t k) {
  std::uint64_t f = 1;
  for (std::size_t t = 2; t <= k; ++t) f *= t;
  return f;
}

}  // namespace

std::vector<double> sttv_naive_d(const tensor::SymTensorD& a,
                                 const std::vector<double>& x,
                                 OpCountD* ops) {
  const std::size_t n = a.dim();
  const std::size_t d = a.order();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;

  // Odometer over all (j_2 .. j_d) in [0, n)^{d-1} for each output i.
  std::vector<std::size_t> index(d, 0);
  for (std::size_t i = 0; i < n; ++i) {
    index.assign(d, 0);
    index[0] = i;
    double acc = 0.0;
    while (true) {
      double prod = a(index);
      for (std::size_t t = 1; t < d; ++t) prod *= x[index[t]];
      acc += prod;
      ++count;
      // Advance the (d-1)-digit base-n odometer in positions 1..d-1.
      std::size_t t = d;
      bool done = true;
      while (t > 1) {
        --t;
        if (index[t] + 1 < n) {
          ++index[t];
          for (std::size_t u = t + 1; u < d; ++u) index[u] = 0;
          done = false;
          break;
        }
      }
      if (done) break;
      if (d == 1) break;
    }
    y[i] = acc;
  }
  if (ops != nullptr) ops->dary_mults += count;
  return y;
}

std::vector<double> sttv_symmetric_d(const tensor::SymTensorD& a,
                                     const std::vector<double>& x,
                                     OpCountD* ops) {
  const std::size_t n = a.dim();
  const std::size_t d = a.order();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> y(n, 0.0);
  std::uint64_t count = 0;
  const std::uint64_t fact_dm1 = factorial(d - 1);

  std::size_t packed = 0;
  tensor::for_each_sorted_index(
      n, d, [&](const std::vector<std::size_t>& idx) {
        const double v = a.packed(packed++);
        // Walk the distinct values of the sorted tuple; for value u with
        // multiplicity m_u, removing one copy leaves a multiset whose
        // distinct permutation count is (d-1)! / ((m_u - 1)! Π_{w≠u} m_w!).
        // Precompute Π of all multiplicities' factorials once.
        std::uint64_t denom_all = 1;
        std::size_t t = 0;
        while (t < d) {
          std::size_t run = 1;
          while (t + run < d && idx[t + run] == idx[t]) ++run;
          denom_all *= factorial(run);
          t += run;
        }
        // Product of x over the whole tuple (divide one factor out per
        // output — guard x[u] == 0 by recomputing the partial product).
        t = 0;
        while (t < d) {
          std::size_t run = 1;
          while (t + run < d && idx[t + run] == idx[t]) ++run;
          const std::size_t u = idx[t];
          // coefficient = (d-1)! * m_u / Π m_w!  (removing one copy of u
          // multiplies the denominator by m_u / m_u! ... derived:
          // (d-1)! / ((m_u-1)! Π_{w≠u} m_w!) = (d-1)! m_u / Π m_w!).
          const double coeff =
              static_cast<double>(fact_dm1 * run) /
              static_cast<double>(denom_all);
          double prod = 1.0;
          for (std::size_t s = 0; s < d; ++s) {
            if (s == t) continue;  // drop ONE copy of u (position t)
            prod *= x[idx[s]];
          }
          y[u] += coeff * v * prod;
          ++count;
          t += run;
        }
      });
  STTSV_CHECK(packed == a.packed_size(), "packed walk out of sync");
  if (ops != nullptr) ops->dary_mults += count;
  return y;
}

std::uint64_t symmetric_dary_mults(std::size_t n, std::size_t order) {
  std::uint64_t count = 0;
  tensor::for_each_sorted_index(
      n, order, [&](const std::vector<std::size_t>& idx) {
        std::size_t distinct = 1;
        for (std::size_t t = 1; t < idx.size(); ++t) {
          if (idx[t] != idx[t - 1]) ++distinct;
        }
        count += distinct;
      });
  return count;
}

}  // namespace sttsv::core
