#include "core/mttkrp.hpp"

#include <algorithm>
#include <map>

#include "core/block_kernels.hpp"
#include "core/sttsv_seq.hpp"
#include "support/check.hpp"

namespace sttsv::core {

namespace {

using partition::Share;
using partition::TetraPartition;
using partition::VectorDistribution;
using simt::Delivery;
using simt::Envelope;

std::vector<std::size_t> common_blocks(const TetraPartition& part,
                                       std::size_t p, std::size_t peer) {
  const auto& a = part.R(p);
  const auto& b = part.R(peer);
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::size_t> peers_of(const TetraPartition& part,
                                  std::size_t p) {
  std::vector<std::size_t> peers;
  for (const std::size_t i : part.R(p)) {
    for (const std::size_t other : part.Q(i)) {
      if (other != p) peers.push_back(other);
    }
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

}  // namespace

std::vector<std::vector<double>> symmetric_mttkrp(
    const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns) {
  std::vector<std::vector<double>> out;
  out.reserve(columns.size());
  for (const auto& col : columns) {
    out.push_back(sttsv_packed(a, col));
  }
  return out;
}

std::vector<std::vector<double>> parallel_symmetric_mttkrp(
    simt::Machine& machine, const TetraPartition& part,
    const VectorDistribution& dist, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns,
    simt::Transport transport) {
  const std::size_t P = part.num_processors();
  const std::size_t b = dist.block_length_b();
  const std::size_t n = dist.logical_n();
  const std::size_t r = columns.size();
  STTSV_REQUIRE(machine.num_ranks() == P,
                "machine rank count must match partition");
  STTSV_REQUIRE(a.dim() == n, "tensor dimension must match distribution");
  STTSV_REQUIRE(r >= 1, "need at least one column");
  for (const auto& col : columns) {
    STTSV_REQUIRE(col.size() == n, "column length mismatch");
  }

  // Padded column-major copies.
  std::vector<std::vector<double>> x_pad(r,
                                         std::vector<double>(dist.padded_n(),
                                                             0.0));
  for (std::size_t l = 0; l < r; ++l) {
    std::copy(columns[l].begin(), columns[l].end(), x_pad[l].begin());
  }

  // Phase 1: batched x exchange — for each (pair, common block, column)
  // the sender's share, columns innermost so unpacking is deterministic.
  std::vector<std::vector<Envelope>> outboxes(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      Envelope env;
      env.to = peer;
      for (const std::size_t i : common_blocks(part, p, peer)) {
        const Share s = dist.share(i, p);
        for (std::size_t l = 0; l < r; ++l) {
          const double* base = x_pad[l].data() + i * b + s.offset;
          env.data.insert(env.data.end(), base, base + s.length);
        }
      }
      if (!env.data.empty()) outboxes[p].push_back(std::move(env));
    }
  }
  auto inboxes = machine.exchange(std::move(outboxes), transport);

  // Assemble full local row blocks per column: x_loc[p][i] has r*b words,
  // column l at offset l*b.
  std::vector<std::map<std::size_t, std::vector<double>>> x_loc(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) {
      auto& buf = x_loc[p][i];
      buf.assign(r * b, 0.0);
      const Share s = dist.share(i, p);
      for (std::size_t l = 0; l < r; ++l) {
        std::copy_n(x_pad[l].data() + i * b + s.offset, s.length,
                    buf.data() + l * b + s.offset);
      }
    }
    for (const Delivery& d : inboxes[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const Share s = dist.share(i, d.from);
        for (std::size_t l = 0; l < r; ++l) {
          STTSV_CHECK(cursor + s.length <= d.data.size(),
                      "x delivery shorter than expected");
          std::copy_n(d.data.data() + cursor, s.length,
                      x_loc[p][i].data() + l * b + s.offset);
          cursor += s.length;
        }
      }
      STTSV_CHECK(cursor == d.data.size(), "x delivery longer than expected");
    }
  }
  inboxes.clear();

  // Phase 2: block kernels per column. Per-rank compute is independent,
  // so it runs on host threads (ledger untouched).
  std::vector<std::map<std::size_t, std::vector<double>>> y_loc(P);
  machine.run_ranks([&](std::size_t p) {
    for (const std::size_t i : part.R(p)) {
      y_loc[p][i].assign(r * b, 0.0);
    }
    for (const partition::BlockCoord& c : part.owned_blocks(p)) {
      for (std::size_t l = 0; l < r; ++l) {
        BlockBuffers buf;
        buf.x[0] = x_loc[p].at(c.i).data() + l * b;
        buf.x[1] = x_loc[p].at(c.j).data() + l * b;
        buf.x[2] = x_loc[p].at(c.k).data() + l * b;
        buf.y[0] = y_loc[p].at(c.i).data() + l * b;
        buf.y[1] = y_loc[p].at(c.j).data() + l * b;
        buf.y[2] = y_loc[p].at(c.k).data() + l * b;
        (void)apply_block(a, c, b, buf);
      }
    }
    x_loc[p].clear();
  });

  // Phase 3: batched partial-y exchange and reduction.
  std::vector<std::vector<Envelope>> y_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      Envelope env;
      env.to = peer;
      for (const std::size_t i : common_blocks(part, p, peer)) {
        const Share s = dist.share(i, peer);
        for (std::size_t l = 0; l < r; ++l) {
          const double* base = y_loc[p].at(i).data() + l * b + s.offset;
          env.data.insert(env.data.end(), base, base + s.length);
        }
      }
      if (!env.data.empty()) y_out[p].push_back(std::move(env));
    }
  }
  auto y_in = machine.exchange(std::move(y_out), transport);

  std::vector<std::vector<double>> y_pad(
      r, std::vector<double>(dist.padded_n(), 0.0));
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) {
      const Share s = dist.share(i, p);
      for (std::size_t l = 0; l < r; ++l) {
        for (std::size_t off = 0; off < s.length; ++off) {
          y_pad[l][i * b + s.offset + off] +=
              y_loc[p].at(i)[l * b + s.offset + off];
        }
      }
    }
    for (const Delivery& d : y_in[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const Share s = dist.share(i, p);
        for (std::size_t l = 0; l < r; ++l) {
          STTSV_CHECK(cursor + s.length <= d.data.size(),
                      "y delivery shorter than expected");
          for (std::size_t off = 0; off < s.length; ++off) {
            y_pad[l][i * b + s.offset + off] += d.data[cursor + off];
          }
          cursor += s.length;
        }
      }
      STTSV_CHECK(cursor == d.data.size(), "y delivery longer than expected");
    }
  }
  machine.ledger().verify_conservation();

  std::vector<std::vector<double>> out(r);
  for (std::size_t l = 0; l < r; ++l) {
    out[l].assign(y_pad[l].begin(),
                  y_pad[l].begin() + static_cast<long>(n));
  }
  return out;
}

}  // namespace sttsv::core
