#include "core/two_step.hpp"

#include "simt/parallel_for.hpp"
#include "support/check.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::core {

std::vector<double> ttv_mode2(const tensor::SymTensor3& a,
                              const std::vector<double>& x,
                              TwoStepCount* ops) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match tensor dimension");
  std::vector<double> m(n * n, 0.0);
  std::uint64_t count = 0;

  // Walk the packed lower tetrahedron once; each stored entry a_{ijk}
  // contributes to M at every (row, col) pair obtainable by choosing the
  // contracted (mode-2) index among {i, j, k}'s permutations:
  //   M[α][γ] += a · x[β]  for every distinct permutation (α, β, γ).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        const double v = a(i, j, k);
        if (i != j && j != k) {
          // 6 distinct permutations.
          m[i * n + j] += v * x[k];
          m[j * n + i] += v * x[k];
          m[i * n + k] += v * x[j];
          m[k * n + i] += v * x[j];
          m[j * n + k] += v * x[i];
          m[k * n + j] += v * x[i];
          count += 6;
        } else if (i == j && j != k) {
          // Distinct permutations of (i, i, k) as (row, contracted, col):
          m[i * n + k] += v * x[i];  // (i,i,k)
          m[i * n + i] += v * x[k];  // (i,k,i)
          m[k * n + i] += v * x[i];  // (k,i,i)
          count += 3;
        } else if (i != j && j == k) {
          // Permutations of (i, k, k): (i,k,k),(k,i,k),(k,k,i).
          m[i * n + k] += v * x[k];  // (i,k,k)
          m[k * n + k] += v * x[i];  // (k,i,k)
          m[k * n + i] += v * x[k];  // (k,k,i)
          count += 3;
        } else {
          m[i * n + i] += v * x[i];
          count += 1;
        }
      }
    }
  }
  if (ops != nullptr) ops->step1_ops += count;
  return m;
}

std::vector<double> sttsv_two_step(const tensor::SymTensor3& a,
                                   const std::vector<double>& x,
                                   TwoStepCount* ops) {
  const std::size_t n = a.dim();
  const std::vector<double> m = ttv_mode2(a, x, ops);
  std::vector<double> y(n, 0.0);
  // Rows of the matvec are independent — run on host threads; each row's
  // accumulation order is unchanged, so y is identical to the serial loop.
  simt::parallel_for(n, [&](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      acc += m[i * n + k] * x[k];
    }
    y[i] = acc;
  });
  if (ops != nullptr) ops->step2_ops += static_cast<std::uint64_t>(n) * n;
  return y;
}

}  // namespace sttsv::core
