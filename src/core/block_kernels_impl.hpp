#pragma once
// Templated bodies of the class-specialized block kernels (DESIGN.md §13).
//
// Every kernel here is written once as a template over a 4-lane vector
// type V (simt::simd::VecScalar or simt::simd::VecAvx2) and instantiated
// in two translation units: block_kernels.cpp (portable, always built)
// and block_kernels_avx2.cpp (compiled with -mavx2 -mfma, dispatched at
// runtime). Both TUs are compiled with -ffp-contract=off.
//
// §13.1 Canonical arithmetic order. The bitwise contract — scalar
// fallback, AVX2 path, every register-block shape RJ, and each panel
// lane in src/batch/ all produce bit-identical y — holds because every
// implementation performs the same rounded operations per element in the
// same order:
//
//   * dot products over a k-run: 4 partial sums over the full 4-chunks
//     (partial p accumulates elements lk ≡ p mod 4), combined as
//     (p0 + p1) + (p2 + p3), then the <4 leftover elements appended
//     sequentially;
//   * elementwise y updates (y[lk] += c·v): one rounded multiply and one
//     rounded add per element, applied in ascending j order for every
//     element — register-blocking j (RJ > 1) keeps the y chunk in a
//     register but applies the same per-element add sequence;
//   * no FMA contraction anywhere on this path (V::fmadd is reserved for
//     the compressed-math kernels below).
//
// §13.4 Compressed bilinear math (opt-in, interior blocks). The
// symmetry-compressed formulation of Solomonik–Demmel–Hoefler (arXiv
// 1707.04618) forms one bilinear product per packed entry,
// p = a_ijk·(x_i+x_j+x_k)², instead of three ternary products, and
// recovers the three y contributions from p plus lower-order correction
// contractions of the adds-only marginals Σ_k a, Σ_j a, Σ_i a. Exact
// multiplicative-operation count for a bi×bj×bk interior block
// (checked by tests/test_simd_kernels.cpp):
//
//   bi·bj·bk  +  4(bi·bj + bi·bk + bj·bk)  +  3(bi + bj + bk)
//
// versus 3·bi·bj·bk for the standard kernels — the leading term drops
// 3×, paid for with ~6 extra adds per entry. Compressed results are
// *documented as reassociating*: they match the reference only to
// rounding (O(b²·ε) cancellation in the corrections), may use FMA, and
// are therefore gated off by default (KernelMath::kStandard) so the
// repo-wide bitwise-y invariant holds in default builds.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simt/simd.hpp"

#ifndef STTSV_RESTRICT
#define STTSV_RESTRICT __restrict__
#endif

namespace sttsv::core::detail {

/// Packed offset of the row (gi, gj, *): data[row + gk] is a_{gi,gj,gk}.
inline std::size_t packed_row_base(std::size_t gi, std::size_t gj) {
  return gi * (gi + 1) * (gi + 2) / 6 + gj * (gj + 1) / 2;
}

/// Scratch for the compressed kernels: adds-only marginal matrices and
/// per-fiber product sums. Heap-backed (thread_local in the dispatcher);
/// the compressed path is opt-in and not bound by the steady-state
/// no-allocation guarantee of the default path (DESIGN.md §12).
struct CompressedScratch {
  std::vector<double> sig;  // bi×bj: Σ_k a
  std::vector<double> tau;  // bi×bk: Σ_j a
  std::vector<double> rho;  // bj×bk: Σ_i a
  std::vector<double> pj;   // bj: Σ_{i,k} p
  std::vector<double> pk;   // bk: Σ_{i,j} p
  std::vector<double> x2i, x2j, x2k;

  void ensure(std::size_t bi, std::size_t bj, std::size_t bk) {
    sig.assign(bi * bj, 0.0);
    tau.assign(bi * bk, 0.0);
    rho.assign(bj * bk, 0.0);
    pj.assign(bj, 0.0);
    pk.assign(bk, 0.0);
    x2i.resize(bi);
    x2j.resize(bj);
    x2k.resize(bk);
  }
};

// ---------------------------------------------------------------------------
// Canonical row primitives.
// ---------------------------------------------------------------------------

/// RJ fused strict rows over one k-run of length kb: for each row r (in
/// ascending j order) accumulates acc[r] = Σ_lk rows[r][lk]·xk[lk] in the
/// canonical order and applies yk[lk] += cy[r]·rows[r][lk] elementwise.
template <class V, std::size_t RJ>
inline void strict_rows(const double* const* rows,
                        const double* STTSV_RESTRICT xk,
                        double* STTSV_RESTRICT yk, const double* cy,
                        double* acc, std::size_t kb) {
  V accv[RJ];
  V cyv[RJ];
  for (std::size_t r = 0; r < RJ; ++r) {
    accv[r] = V::zero();
    cyv[r] = V::broadcast(cy[r]);
  }
  std::size_t lk = 0;
  for (; lk + simt::simd::kLanes <= kb; lk += simt::simd::kLanes) {
    const V xv = V::load(xk + lk);
    V yv = V::load(yk + lk);
    for (std::size_t r = 0; r < RJ; ++r) {
      const V vv = V::load(rows[r] + lk);
      accv[r] = accv[r] + vv * xv;
      yv = yv + cyv[r] * vv;
    }
    yv.store(yk + lk);
  }
  for (std::size_t r = 0; r < RJ; ++r) acc[r] = accv[r].reduce();
  const std::size_t tail = kb - lk;
  if (tail != 0) {
    // Masked elementwise y update; the dot-product tail is appended
    // sequentially after the canonical 4-partial combine.
    V yv = V::load_partial(yk + lk, tail);
    for (std::size_t r = 0; r < RJ; ++r) {
      const V vv = V::load_partial(rows[r] + lk, tail);
      yv = yv + cyv[r] * vv;
      for (std::size_t t = 0; t < tail; ++t) {
        acc[r] += rows[r][lk + t] * xk[lk + t];
      }
    }
    yv.store_partial(yk + lk, tail);
  }
}

/// One face_jk/central row: a strict run of lj elements followed by the
/// gk == gj tail element at row[lj] (element class i > j == k).
template <class V>
inline void face_jk_row(const double* STTSV_RESTRICT row, std::size_t lj,
                        double xiv, double xjv,
                        const double* STTSV_RESTRICT xjk,
                        double* STTSV_RESTRICT yjk, double& yi_row) {
  const double cy = 2.0 * xiv * xjv;
  double acc = 0.0;
  const double* rows[1] = {row};
  strict_rows<V, 1>(rows, xjk, yjk, &cy, &acc, lj);
  const double vt = row[lj];
  yi_row += 2.0 * xjv * acc + vt * xjv * xjv;
  yjk[lj] += 2.0 * xiv * acc + 2.0 * vt * xiv * xjv;
}

// ---------------------------------------------------------------------------
// Class kernels (standard math).
// ---------------------------------------------------------------------------

/// Interior block c.i > c.j > c.k: every element strict, 3 updates.
template <class V, std::size_t RJ>
std::uint64_t interior_kernel(const double* STTSV_RESTRICT data,
                              std::size_t i0, std::size_t i_end,
                              std::size_t j0, std::size_t j_end,
                              std::size_t k0, std::size_t k_end,
                              const double* STTSV_RESTRICT xi,
                              const double* STTSV_RESTRICT xj,
                              const double* STTSV_RESTRICT xk,
                              double* STTSV_RESTRICT yi,
                              double* STTSV_RESTRICT yj,
                              double* STTSV_RESTRICT yk) {
  const std::size_t kb = k_end - k0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xi[li];
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    double yi_row = 0.0;
    std::size_t gj = j0;
    for (; gj + RJ <= j_end; gj += RJ) {
      const double* rows[RJ];
      double xjv[RJ];
      double cy[RJ];
      double acc[RJ];
      for (std::size_t r = 0; r < RJ; ++r) {
        rows[r] = data + gi_base + (gj + r) * (gj + r + 1) / 2 + k0;
        xjv[r] = xj[gj + r - j0];
        cy[r] = 2.0 * xiv * xjv[r];
      }
      // Touch the first cache line of each row in the *next* group. The
      // rows stride apart in the packed layout, so the hardware streamer
      // sees RJ short independent streams and misses their heads; one
      // explicit hint per row hides most of that latency (pure hint — no
      // effect on results). Prefetching more than the head is counter-
      // productive: the streamer covers the rest of each row.
      if (gj + 2 * RJ <= j_end) {
        for (std::size_t r = 0; r < RJ; ++r) {
          const double* next =
              data + gi_base + (gj + RJ + r) * (gj + RJ + r + 1) / 2 + k0;
          __builtin_prefetch(next);
          __builtin_prefetch(next + 8);
        }
      }
      strict_rows<V, RJ>(rows, xk, yk, cy, acc, kb);
      for (std::size_t r = 0; r < RJ; ++r) {
        yi_row += xjv[r] * acc[r];
        yj[gj + r - j0] += 2.0 * xiv * acc[r];
      }
    }
    for (; gj < j_end; ++gj) {  // remainder rows: RJ = 1, same order
      const double* rows[1] = {data + gi_base + gj * (gj + 1) / 2 + k0};
      const double xjv = xj[gj - j0];
      const double cy = 2.0 * xiv * xjv;
      double acc = 0.0;
      strict_rows<V, 1>(rows, xk, yk, &cy, &acc, kb);
      yi_row += xjv * acc;
      yj[gj - j0] += 2.0 * xiv * acc;
    }
    yi[li] += 2.0 * yi_row;
  }
  return 3 * static_cast<std::uint64_t>(i_end - i0) * (j_end - j0) * kb;
}

/// Face block c.i == c.j > c.k: strict rows gj < gi plus the hoisted
/// gj == gi diagonal row. Slots 0/1 alias: xij/yij serve both.
template <class V, std::size_t RJ>
std::uint64_t face_ij_kernel(const double* STTSV_RESTRICT data,
                             std::size_t i0, std::size_t i_end,
                             std::size_t k0, std::size_t k_end,
                             const double* STTSV_RESTRICT xij,
                             const double* STTSV_RESTRICT xk,
                             double* STTSV_RESTRICT yij,
                             double* STTSV_RESTRICT yk) {
  const std::size_t kb = k_end - k0;
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xij[li];
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    double yi_row = 0.0;
    std::size_t gj = i0;
    for (; gj + RJ <= gi; gj += RJ) {
      const double* rows[RJ];
      double xjv[RJ];
      double cy[RJ];
      double acc[RJ];
      for (std::size_t r = 0; r < RJ; ++r) {
        rows[r] = data + gi_base + (gj + r) * (gj + r + 1) / 2 + k0;
        xjv[r] = xij[gj + r - i0];
        cy[r] = 2.0 * xiv * xjv[r];
      }
      if (gj + 2 * RJ <= gi) {  // same head-of-stream hint as interior
        for (std::size_t r = 0; r < RJ; ++r) {
          const double* next =
              data + gi_base + (gj + RJ + r) * (gj + RJ + r + 1) / 2 + k0;
          __builtin_prefetch(next);
          __builtin_prefetch(next + 8);
        }
      }
      strict_rows<V, RJ>(rows, xk, yk, cy, acc, kb);
      for (std::size_t r = 0; r < RJ; ++r) {
        yi_row += xjv[r] * acc[r];
        yij[gj + r - i0] += 2.0 * xiv * acc[r];
      }
    }
    for (; gj < gi; ++gj) {
      const double* rows[1] = {data + gi_base + gj * (gj + 1) / 2 + k0};
      const double xjv = xij[gj - i0];
      const double cy = 2.0 * xiv * xjv;
      double acc = 0.0;
      strict_rows<V, 1>(rows, xk, yk, &cy, &acc, kb);
      yi_row += xjv * acc;
      yij[gj - i0] += 2.0 * xiv * acc;
    }
    // gj == gi: y_i += 2 a x_j x_k collapses to 2 x_i Σ a x_k, and
    // y_k += a x_i x_j becomes an axpy with coefficient x_i².
    const double* rows[1] = {data + gi_base + gi * (gi + 1) / 2 + k0};
    const double cy = xiv * xiv;
    double acc = 0.0;
    strict_rows<V, 1>(rows, xk, yk, &cy, &acc, kb);
    yij[li] += 2.0 * (yi_row + xiv * acc);
  }
  const std::uint64_t ni = i_end - i0;
  return kb * (3 * (ni * (ni - 1) / 2) + 2 * ni);
}

/// Face block c.i > c.j == c.k: per (gi, gj) a strict run gk < gj plus
/// the gk == gj tail element. Slots 1/2 alias: xjk/yjk serve both.
template <class V>
std::uint64_t face_jk_kernel(const double* STTSV_RESTRICT data,
                             std::size_t i0, std::size_t i_end,
                             std::size_t j0, std::size_t j_end,
                             const double* STTSV_RESTRICT xi,
                             const double* STTSV_RESTRICT xjk,
                             double* STTSV_RESTRICT yi,
                             double* STTSV_RESTRICT yjk) {
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xi[li];
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    double yi_row = 0.0;
    for (std::size_t gj = j0; gj < j_end; ++gj) {
      const std::size_t lj = gj - j0;
      face_jk_row<V>(data + gi_base + gj * (gj + 1) / 2 + j0, lj, xiv,
                     xjk[lj], xjk, yjk, yi_row);
    }
    yi[li] += yi_row;
  }
  const std::uint64_t ni = i_end - i0;
  const std::uint64_t nj = j_end - j0;
  return ni * (3 * (nj * (nj - 1) / 2) + 2 * nj);
}

/// Central diagonal block c.i == c.j == c.k: all three slots alias a
/// single x/y pair. Rows gj < gi behave exactly like face_jk rows; the
/// gj == gi diagonal row is a face_ij-style run plus the central
/// element a_iii. Vectorizes the strict runs the seed element-wise
/// kernel left scalar.
template <class V>
std::uint64_t central_kernel(const double* STTSV_RESTRICT data,
                             std::size_t i0, std::size_t i_end,
                             const double* STTSV_RESTRICT x,
                             double* STTSV_RESTRICT y) {
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = x[li];
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    double yi_row = 0.0;
    for (std::size_t gj = i0; gj < gi; ++gj) {
      const std::size_t lj = gj - i0;
      face_jk_row<V>(data + gi_base + gj * (gj + 1) / 2 + i0, lj, xiv,
                     x[lj], x, y, yi_row);
    }
    // Diagonal row gj == gi: strict run gk < gi (class i == j > k), then
    // the central element a_iii.
    const double* rows[1] = {data + gi_base + gi * (gi + 1) / 2 + i0};
    const double cy = xiv * xiv;
    double acc = 0.0;
    strict_rows<V, 1>(rows, x, y, &cy, &acc, li);
    const double vt = rows[0][li];
    y[li] += yi_row + 2.0 * xiv * acc + vt * xiv * xiv;
  }
  const std::uint64_t e = i_end - i0;
  // 3·C(e,3) strict + 2·2·C(e,2) face elements + e central elements.
  return e * (e - 1) * (e - 2) / 2 + 2 * e * (e - 1) + e;
}

// ---------------------------------------------------------------------------
// Compressed bilinear kernel (interior blocks only; see header comment).
// ---------------------------------------------------------------------------

template <class V>
std::uint64_t interior_compressed_kernel(
    const double* STTSV_RESTRICT data, std::size_t i0, std::size_t i_end,
    std::size_t j0, std::size_t j_end, std::size_t k0, std::size_t k_end,
    const double* STTSV_RESTRICT xi, const double* STTSV_RESTRICT xj,
    const double* STTSV_RESTRICT xk, double* STTSV_RESTRICT yi,
    double* STTSV_RESTRICT yj, double* STTSV_RESTRICT yk,
    CompressedScratch& scr) {
  const std::size_t bi = i_end - i0;
  const std::size_t bj = j_end - j0;
  const std::size_t bk = k_end - k0;
  scr.ensure(bi, bj, bk);
  for (std::size_t li = 0; li < bi; ++li) scr.x2i[li] = xi[li] * xi[li];
  for (std::size_t lj = 0; lj < bj; ++lj) scr.x2j[lj] = xj[lj] * xj[lj];
  for (std::size_t lk = 0; lk < bk; ++lk) scr.x2k[lk] = xk[lk] * xk[lk];

  // Pass 1: one bilinear product p = a·(x_i+x_j+x_k)² per entry,
  // scattered to the three per-fiber product sums, plus the adds-only
  // marginals σ = Σ_k a, τ = Σ_j a, ρ = Σ_i a.
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t li = gi - i0;
    const double xiv = xi[li];
    const std::size_t gi_base = gi * (gi + 1) * (gi + 2) / 6;
    double* STTSV_RESTRICT sig_row = scr.sig.data() + li * bj;
    double* STTSV_RESTRICT tau_row = scr.tau.data() + li * bk;
    double pi_acc = 0.0;
    for (std::size_t gj = j0; gj < j_end; ++gj) {
      const std::size_t lj = gj - j0;
      const double zij = xiv + xj[lj];
      const double* STTSV_RESTRICT row =
          data + gi_base + gj * (gj + 1) / 2 + k0;
      double* STTSV_RESTRICT rho_row = scr.rho.data() + lj * bk;
      double* STTSV_RESTRICT pk_sum = scr.pk.data();
      const V zijv = V::broadcast(zij);
      V psum = V::zero();
      V vsum = V::zero();
      std::size_t lk = 0;
      for (; lk + simt::simd::kLanes <= bk; lk += simt::simd::kLanes) {
        const V vv = V::load(row + lk);
        const V zv = zijv + V::load(xk + lk);
        const V pv = vv * (zv * zv);
        psum = psum + pv;
        vsum = vsum + vv;
        (V::load(pk_sum + lk) + pv).store(pk_sum + lk);
        (V::load(tau_row + lk) + vv).store(tau_row + lk);
        (V::load(rho_row + lk) + vv).store(rho_row + lk);
      }
      double psum_s = psum.reduce();
      double vsum_s = vsum.reduce();
      for (; lk < bk; ++lk) {
        const double v = row[lk];
        const double z = zij + xk[lk];
        const double p = v * (z * z);
        psum_s += p;
        vsum_s += v;
        pk_sum[lk] += p;
        tau_row[lk] += v;
        rho_row[lk] += v;
      }
      pi_acc += psum_s;
      scr.pj[lj] += psum_s;
      sig_row[lj] = vsum_s;
    }
    // Finalize y_i: 2x_jx_k = z² − (x_j²+x_k²) − x_i² − 2x_i(x_j+x_k).
    V sv = V::zero();
    V qv = V::zero();
    V rv = V::zero();
    std::size_t lj = 0;
    for (; lj + simt::simd::kLanes <= bj; lj += simt::simd::kLanes) {
      const V sgv = V::load(sig_row + lj);
      sv = sv + sgv;
      qv = V::fmadd(V::load(scr.x2j.data() + lj), sgv, qv);
      rv = V::fmadd(V::load(xj + lj), sgv, rv);
    }
    double s = sv.reduce();
    double q = qv.reduce();
    double r = rv.reduce();
    for (; lj < bj; ++lj) {
      s += sig_row[lj];
      q += scr.x2j[lj] * sig_row[lj];
      r += xj[lj] * sig_row[lj];
    }
    V q2v = V::zero();
    V r2v = V::zero();
    std::size_t lk = 0;
    for (; lk + simt::simd::kLanes <= bk; lk += simt::simd::kLanes) {
      const V tv = V::load(tau_row + lk);
      q2v = V::fmadd(V::load(scr.x2k.data() + lk), tv, q2v);
      r2v = V::fmadd(V::load(xk + lk), tv, r2v);
    }
    q += q2v.reduce();
    r += r2v.reduce();
    for (; lk < bk; ++lk) {
      q += scr.x2k[lk] * tau_row[lk];
      r += xk[lk] * tau_row[lk];
    }
    yi[li] += pi_acc - q - scr.x2i[li] * s - 2.0 * (xiv * r);
  }

  // Finalize y_j from σ columns and ρ rows.
  for (std::size_t lj = 0; lj < bj; ++lj) {
    double s = 0.0;
    double q = 0.0;
    double r = 0.0;
    for (std::size_t li = 0; li < bi; ++li) {
      const double sg = scr.sig[li * bj + lj];
      s += sg;
      q += scr.x2i[li] * sg;
      r += xi[li] * sg;
    }
    const double* STTSV_RESTRICT rho_row = scr.rho.data() + lj * bk;
    for (std::size_t lk = 0; lk < bk; ++lk) {
      q += scr.x2k[lk] * rho_row[lk];
      r += xk[lk] * rho_row[lk];
    }
    yj[lj] += scr.pj[lj] - q - scr.x2j[lj] * s - 2.0 * (xj[lj] * r);
  }

  // Finalize y_k from τ and ρ columns.
  for (std::size_t lk = 0; lk < bk; ++lk) {
    double s = 0.0;
    double q = 0.0;
    double r = 0.0;
    for (std::size_t li = 0; li < bi; ++li) {
      const double tv = scr.tau[li * bk + lk];
      s += tv;
      q += scr.x2i[li] * tv;
      r += xi[li] * tv;
    }
    for (std::size_t lj = 0; lj < bj; ++lj) {
      const double rv = scr.rho[lj * bk + lk];
      q += scr.x2j[lj] * rv;
      r += xj[lj] * rv;
    }
    yk[lk] += scr.pk[lk] - q - scr.x2k[lk] * s - 2.0 * (xk[lk] * r);
  }

  const std::uint64_t i64 = bi;
  const std::uint64_t j64 = bj;
  const std::uint64_t k64 = bk;
  return i64 * j64 * k64 + 4 * (i64 * j64 + i64 * k64 + j64 * k64) +
         3 * (i64 + j64 + k64);
}

// ---------------------------------------------------------------------------
// Dispatch table.
// ---------------------------------------------------------------------------

/// Function-pointer table of one ISA instantiation. interior/face_ij are
/// indexed by register-block shape (RJ = 1, 2, 4 → index 0, 1, 2).
struct KernelVTable {
  using StrictFn = std::uint64_t (*)(const double*, std::size_t, std::size_t,
                                     std::size_t, std::size_t, std::size_t,
                                     std::size_t, const double*, const double*,
                                     const double*, double*, double*, double*);
  using FaceIjFn = std::uint64_t (*)(const double*, std::size_t, std::size_t,
                                     std::size_t, std::size_t, const double*,
                                     const double*, double*, double*);
  using FaceJkFn = std::uint64_t (*)(const double*, std::size_t, std::size_t,
                                     std::size_t, std::size_t, const double*,
                                     const double*, double*, double*);
  using CentralFn = std::uint64_t (*)(const double*, std::size_t, std::size_t,
                                      const double*, double*);
  using CompressedFn = std::uint64_t (*)(const double*, std::size_t,
                                         std::size_t, std::size_t, std::size_t,
                                         std::size_t, std::size_t,
                                         const double*, const double*,
                                         const double*, double*, double*,
                                         double*, CompressedScratch&);
  StrictFn interior[3];
  FaceIjFn face_ij[3];
  FaceJkFn face_jk;
  CentralFn central;
  CompressedFn interior_compressed;
};

template <class V>
KernelVTable make_kernel_vtable() {
  KernelVTable t;
  t.interior[0] = &interior_kernel<V, 1>;
  t.interior[1] = &interior_kernel<V, 2>;
  t.interior[2] = &interior_kernel<V, 4>;
  t.face_ij[0] = &face_ij_kernel<V, 1>;
  t.face_ij[1] = &face_ij_kernel<V, 2>;
  t.face_ij[2] = &face_ij_kernel<V, 4>;
  t.face_jk = &face_jk_kernel<V>;
  t.central = &central_kernel<V>;
  t.interior_compressed = &interior_compressed_kernel<V>;
  return t;
}

/// Defined in block_kernels_avx2.cpp when the build compiles the AVX2
/// kernel TU (STTSV_HAVE_AVX2_KERNELS).
const KernelVTable& avx2_kernel_vtable();

}  // namespace sttsv::core::detail
