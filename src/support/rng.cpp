#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace sttsv {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  STTSV_REQUIRE(bound >= 1, "next_below requires bound >= 1");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_unit() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_in(double lo, double hi) {
  STTSV_REQUIRE(lo < hi, "next_in requires lo < hi");
  return lo + (hi - lo) * next_unit();
}

double Rng::next_normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] avoids log(0).
  const double u1 = 1.0 - next_unit();
  const double u2 = next_unit();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = next_in(lo, hi);
  return v;
}

}  // namespace sttsv
