#include "support/text.hpp"

#include <cctype>
#include <sstream>

#include "support/check.hpp"

namespace sttsv {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (const char ch : s) {
    if (ch == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::uint64_t parse_u64(const std::string& s) {
  const std::string t = trim(s);
  STTSV_REQUIRE(!t.empty(), "parse_u64: empty string");
  std::uint64_t value = 0;
  for (const char ch : t) {
    STTSV_REQUIRE(ch >= '0' && ch <= '9',
                  "parse_u64: non-digit in '" + t + "'");
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return value;
}

std::string brace_set(const std::vector<std::size_t>& v) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
  os << '}';
  return os.str();
}

std::string triple(std::size_t i, std::size_t j, std::size_t k) {
  std::ostringstream os;
  os << '(' << i << ',' << j << ',' << k << ')';
  return os.str();
}

}  // namespace sttsv
