#include "support/cli.hpp"

#include "support/check.hpp"
#include "support/text.hpp"

namespace sttsv {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      STTSV_REQUIRE(!key.empty(), "empty option name '--'");
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[key] = std::string(argv[i + 1]);
        ++i;
      } else {
        options_[key] = std::nullopt;  // bare flag
      }
    } else {
      positional_.push_back(token);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  queried_[key] = true;
  return options_.count(key) > 0;
}

std::string ArgParser::get(const std::string& key) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  STTSV_REQUIRE(it != options_.end(), "missing required option --" + key);
  STTSV_REQUIRE(it->second.has_value(),
                "option --" + key + " needs a value");
  return *it->second;
}

std::string ArgParser::get_or(const std::string& key,
                              const std::string& fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  STTSV_REQUIRE(it->second.has_value(),
                "option --" + key + " needs a value");
  return *it->second;
}

std::uint64_t ArgParser::get_u64(const std::string& key) const {
  return parse_u64(get(key));
}

std::uint64_t ArgParser::get_u64_or(const std::string& key,
                                    std::uint64_t fallback) const {
  if (!has(key)) return fallback;
  return parse_u64(get(key));
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) {
    (void)value;
    if (queried_.count(key) == 0) out.push_back(key);
  }
  return out;
}

}  // namespace sttsv
