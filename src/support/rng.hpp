#pragma once
// Deterministic, seedable random number generation.
//
// All randomized tensors/vectors in tests and benches use Rng so every run
// is reproducible from a printed seed. The generator is xoshiro256**,
// seeded through SplitMix64 (the reference seeding procedure).

#include <cstdint>
#include <vector>

namespace sttsv {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) for bound >= 1 (rejection-free Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_unit();

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi);

  /// Standard normal via Box-Muller (two calls to next_unit per pair).
  double next_normal();

  /// Vector of n uniform doubles in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo = -1.0,
                                     double hi = 1.0);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sttsv
