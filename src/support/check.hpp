#pragma once
// Checked preconditions and invariants.
//
// STTSV_REQUIRE  - argument/precondition validation; always on; throws
//                  sttsv::PreconditionError so callers can test misuse.
// STTSV_CHECK    - internal invariant; always on; throws sttsv::InternalError.
//                  These guard combinatorial constructions (Steiner systems,
//                  matchings, partitions) whose failure would silently produce
//                  wrong communication schedules, so they stay on in release.
// STTSV_DCHECK   - hot-path invariant; compiled out unless STTSV_DEBUG_CHECKS.

#include <stdexcept>
#include <string>

namespace sttsv {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace sttsv

#define STTSV_REQUIRE(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::sttsv::detail::throw_precondition(#expr, __FILE__, __LINE__,    \
                                          (msg));                       \
    }                                                                   \
  } while (false)

#define STTSV_CHECK(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::sttsv::detail::throw_internal(#expr, __FILE__, __LINE__,      \
                                      (msg));                         \
    }                                                                 \
  } while (false)

#ifdef STTSV_DEBUG_CHECKS
#define STTSV_DCHECK(expr, msg) STTSV_CHECK(expr, msg)
#else
#define STTSV_DCHECK(expr, msg) \
  do {                          \
  } while (false)
#endif
