#include "support/check.hpp"

#include <sstream>

namespace sttsv::detail {

namespace {
std::string render(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(render("precondition", expr, file, line, msg));
}

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw InternalError(render("invariant", expr, file, line, msg));
}

}  // namespace sttsv::detail
