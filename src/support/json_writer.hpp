#pragma once
// Minimal streaming JSON writer shared by the BENCH_*.json emitters and
// the obs exporters (moved here from bench/repro_common.hpp so library
// code can emit artifacts too). Handles commas, nesting and indentation;
// callers provide the shape:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.field("bench", "bench_batch");
//   w.begin_array("runs");
//   w.begin_object(); w.field("n", std::uint64_t{256}); w.end_object();
//   w.end_array();
//   w.end_object();
//
// Keys are emitted verbatim (callers pass plain identifiers); string
// values get quotes but no escaping — fine for the fixed vocabulary of
// the bench artifacts.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace sttsv::repro {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int precision = 6) : out_(out) {
    out_.precision(precision);
  }

  ~JsonWriter() { STTSV_CHECK(depth() == 0, "unclosed JSON scope"); }

  void begin_object() { open('{'); }
  void begin_object(const char* key) { open('{', key); }
  void end_object() { close('}'); }
  void begin_array(const char* key) { open('[', key); }
  void end_array() { close(']'); }

  void field(const char* key, const char* value) {
    pre(key);
    out_ << '"' << value << '"';
  }
  void field(const char* key, const std::string& value) {
    field(key, value.c_str());
  }
  void field(const char* key, double value) {
    pre(key);
    out_ << value;
  }
  void field(const char* key, std::uint64_t value) {
    pre(key);
    out_ << value;
  }
  void field(const char* key, bool value) {
    pre(key);
    out_ << (value ? "true" : "false");
  }

 private:
  [[nodiscard]] std::size_t depth() const { return needs_comma_.size(); }

  void indent() {
    for (std::size_t d = 0; d < depth(); ++d) out_ << "  ";
  }

  /// Comma/newline/indent before any value or key in the current scope.
  void pre(const char* key = nullptr) {
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ << ',';
      out_ << '\n';
      needs_comma_.back() = true;
      indent();
    }
    if (key != nullptr) out_ << '"' << key << "\": ";
  }

  void open(char bracket, const char* key = nullptr) {
    pre(key);
    out_ << bracket;
    needs_comma_.push_back(false);
  }

  void close(char bracket) {
    STTSV_CHECK(!needs_comma_.empty(), "JSON scope underflow");
    const bool had_content = needs_comma_.back();
    needs_comma_.pop_back();
    if (had_content) {
      out_ << '\n';
      indent();
    }
    out_ << bracket;
    if (depth() == 0) out_ << '\n';
  }

  std::ostream& out_;
  std::vector<bool> needs_comma_;
};

}  // namespace sttsv::repro
