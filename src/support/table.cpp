#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace sttsv {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  STTSV_REQUIRE(!headers_.empty(), "table needs at least one column");
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kLeft);
  }
  STTSV_REQUIRE(aligns_.size() == headers_.size(),
                "alignment count must match header count");
}

void TextTable::add_row(std::vector<std::string> cells) {
  STTSV_REQUIRE(cells.size() == headers_.size(),
                "row width must match header count");
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (const auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = width[c] - cells[c].size();
      if (aligns_[c] == Align::kRight) {
        s += " " + std::string(pad, ' ') + cells[c] + " |";
      } else {
        s += " " + cells[c] + std::string(pad, ' ') + " |";
      }
    }
    return s + "\n";
  };

  std::string out = hline() + line(headers_) + hline();
  for (const auto& row : rows_) {
    out += row.separator ? hline() : line(row.cells);
  }
  out += hline();
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_set(const std::vector<std::size_t>& v) {
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ' ';
    os << v[i];
  }
  return os.str();
}

}  // namespace sttsv
