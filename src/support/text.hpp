#pragma once
// Small string utilities shared by benches and examples.

#include <cstdint>
#include <string>
#include <vector>

namespace sttsv {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Parses a nonnegative integer; throws PreconditionError on junk.
std::uint64_t parse_u64(const std::string& s);

/// "1, 4, 6, 8" -> "{1,4,6,8}" style rendering of index sets (1-based in
/// the paper's tables; callers pass already-shifted values).
std::string brace_set(const std::vector<std::size_t>& v);

/// Renders a (i,j,k) triple as "(i,j,k)".
std::string triple(std::size_t i, std::size_t j, std::size_t k);

}  // namespace sttsv
