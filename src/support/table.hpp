#pragma once
// Plain-text table rendering for the reproduction harness.
//
// Every bench binary prints "paper row vs reproduced row" tables; this keeps
// the formatting consistent and alignment-correct without any dependency.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sttsv {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, append rows of strings, render.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Renders with unicode-free ASCII borders.
  [[nodiscard]] std::string render() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Formats a double with fixed precision, trimming to a compact width.
std::string format_double(double value, int precision = 3);

/// Formats v as "a b c" (space-separated), useful for set-valued cells.
std::string format_set(const std::vector<std::size_t>& v);

}  // namespace sttsv
