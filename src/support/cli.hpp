#pragma once
// Minimal command-line parsing for the tools: positional arguments plus
// "--key value" and "--flag" options. No external dependency; errors are
// PreconditionError so tools print a clean message.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sttsv {

class ArgParser {
 public:
  /// Parses argv[1..): tokens starting with "--" become options (the
  /// following token is the value unless it also starts with "--" or is
  /// absent, in which case the option is a boolean flag); everything else
  /// is positional.
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& key) const;

  /// Value of --key; throws if missing or if the option was a bare flag.
  [[nodiscard]] std::string get(const std::string& key) const;

  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;

  [[nodiscard]] std::uint64_t get_u64(const std::string& key) const;
  [[nodiscard]] std::uint64_t get_u64_or(const std::string& key,
                                         std::uint64_t fallback) const;

  /// Keys that were provided but never queried — for typo detection.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::optional<std::string>> options_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace sttsv
