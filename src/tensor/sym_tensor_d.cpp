#include "tensor/sym_tensor_d.hpp"

#include <algorithm>
#include <functional>

#include "support/check.hpp"

namespace sttsv::tensor {

std::size_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t result = 1;
  for (std::size_t t = 1; t <= k; ++t) {
    // result * (n - k + t) / t stays integral at every step.
    const std::size_t numer = n - k + t;
    STTSV_REQUIRE(result <= SIZE_MAX / numer, "binomial overflow");
    result = result * numer / t;
  }
  return result;
}

SymTensorD::SymTensorD(std::size_t n, std::size_t order)
    : n_(n), d_(order), data_(packed_count(n, order), 0.0) {
  STTSV_REQUIRE(n >= 1, "tensor dimension must be >= 1");
  STTSV_REQUIRE(order >= 1, "tensor order must be >= 1");
}

std::size_t SymTensorD::packed_count(std::size_t n, std::size_t order) {
  return binomial(n + order - 1, order);
}

std::size_t SymTensorD::packed_index(
    const std::vector<std::size_t>& sorted) {
  const std::size_t d = sorted.size();
  STTSV_DCHECK(d >= 1, "empty multi-index");
  std::size_t idx = 0;
  for (std::size_t t = 0; t < d; ++t) {
    STTSV_DCHECK(t == 0 || sorted[t] <= sorted[t - 1],
                 "multi-index not sorted non-increasing");
    // Combinatorial number system digit: C(i_t + d-1-t, d-t).
    idx += binomial(sorted[t] + d - 1 - t, d - t);
  }
  return idx;
}

void SymTensorD::unpack_index(std::size_t idx, std::size_t order,
                              std::vector<std::size_t>& out) {
  out.assign(order, 0);
  std::size_t rest = idx;
  for (std::size_t t = 0; t < order; ++t) {
    const std::size_t r = order - t;  // remaining positions incl. this one
    // Largest v with C(v + r - 1, r) <= rest.
    std::size_t lo = 0;
    std::size_t hi = 1;
    while (binomial(hi + r - 1, r) <= rest) hi *= 2;
    while (lo + 1 < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (binomial(mid + r - 1, r) <= rest) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    out[t] = lo;
    rest -= binomial(lo + r - 1, r);
  }
  STTSV_DCHECK(rest == 0, "unpack_index residue");
}

double SymTensorD::operator()(std::vector<std::size_t> index) const {
  STTSV_REQUIRE(index.size() == d_, "multi-index has wrong order");
  for (const auto v : index) {
    STTSV_REQUIRE(v < n_, "index out of range");
  }
  std::sort(index.begin(), index.end(), std::greater<>());
  return data_[packed_index(index)];
}

double& SymTensorD::at(std::vector<std::size_t> index) {
  STTSV_REQUIRE(index.size() == d_, "multi-index has wrong order");
  for (const auto v : index) {
    STTSV_REQUIRE(v < n_, "index out of range");
  }
  std::sort(index.begin(), index.end(), std::greater<>());
  return data_[packed_index(index)];
}

double SymTensorD::packed(std::size_t idx) const {
  STTSV_REQUIRE(idx < data_.size(), "packed index out of range");
  return data_[idx];
}

}  // namespace sttsv::tensor
