#pragma once
// Plain-text serialization of symmetric tensors and vectors, so examples
// and external tools can exchange data. The format is line-oriented:
//
//   sttsv-symtensor3 v1
//   <n>
//   <packed values, whitespace separated, tetra_index order>
//
// Values are written with max_digits10 precision and round-trip exactly.

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/sym_tensor.hpp"

namespace sttsv::tensor {

void write_tensor(std::ostream& os, const SymTensor3& a);
SymTensor3 read_tensor(std::istream& is);

void save_tensor(const std::string& path, const SymTensor3& a);
SymTensor3 load_tensor(const std::string& path);

void write_vector(std::ostream& os, const std::vector<double>& v);
std::vector<double> read_vector(std::istream& is);

}  // namespace sttsv::tensor
