#include "tensor/generators.hpp"

#include <cmath>

#include "support/check.hpp"

namespace sttsv::tensor {

SymTensor3 random_symmetric(std::size_t n, Rng& rng, double lo, double hi) {
  SymTensor3 a(n);
  double* data = a.data();
  for (std::size_t idx = 0; idx < a.packed_size(); ++idx) {
    data[idx] = rng.next_in(lo, hi);
  }
  return a;
}

SymTensor3 low_rank_symmetric(
    std::size_t n, const std::vector<double>& lambda,
    const std::vector<std::vector<double>>& factors) {
  STTSV_REQUIRE(lambda.size() == factors.size(),
                "one weight per factor column");
  for (const auto& col : factors) {
    STTSV_REQUIRE(col.size() == n, "factor column has wrong length");
  }
  SymTensor3 a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        double sum = 0.0;
        for (std::size_t l = 0; l < lambda.size(); ++l) {
          sum += lambda[l] * factors[l][i] * factors[l][j] * factors[l][k];
        }
        a.at(i, j, k) = sum;
      }
    }
  }
  return a;
}

SymTensor3 random_low_rank(std::size_t n, const std::vector<double>& lambda,
                           Rng& rng,
                           std::vector<std::vector<double>>* factors_out) {
  std::vector<std::vector<double>> factors(lambda.size());
  for (auto& col : factors) {
    col.resize(n);
    double norm2 = 0.0;
    for (auto& x : col) {
      x = rng.next_normal();
      norm2 += x * x;
    }
    const double inv_norm = 1.0 / std::sqrt(norm2);
    for (auto& x : col) x *= inv_norm;
  }
  SymTensor3 a = low_rank_symmetric(n, lambda, factors);
  if (factors_out != nullptr) *factors_out = std::move(factors);
  return a;
}

SymTensor3 super_diagonal(const std::vector<double>& values) {
  SymTensor3 a(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    a.at(i, i, i) = values[i];
  }
  return a;
}

SymTensor3 hilbert_like(std::size_t n) {
  SymTensor3 a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        a.at(i, j, k) = 1.0 / static_cast<double>(i + j + k + 1);
      }
    }
  }
  return a;
}

}  // namespace sttsv::tensor
