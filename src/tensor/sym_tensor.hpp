#pragma once
// Packed storage for fully symmetric 3-tensors.
//
// Only the lower tetrahedron i >= j >= k is stored (n(n+1)(n+2)/6 entries,
// ~1/6 of the dense n³), matching the paper's Section 3 representation.
// Reads/writes with arbitrary index order are routed through index sorting,
// implementing a_ijk = a_{σ(i)σ(j)σ(k)} for every permutation σ.

#include <cstddef>
#include <vector>

namespace sttsv::tensor {

/// Entries in the (non-strict) lower tetrahedron of an n×n×n symmetric
/// tensor: n(n+1)(n+2)/6.
std::size_t tetra_count(std::size_t n);

/// Entries in the *strict* lower tetrahedron (i > j > k): n(n-1)(n-2)/6.
std::size_t strict_tetra_count(std::size_t n);

/// Linear offset of sorted indices i >= j >= k inside the packed layout:
/// idx = i(i+1)(i+2)/6 + j(j+1)/2 + k. Bijective onto [0, tetra_count(n))
/// for i < n; independent of n so slices can share coordinates.
std::size_t tetra_index(std::size_t i, std::size_t j, std::size_t k);

/// Inverse of tetra_index: recovers (i >= j >= k) from a packed offset.
void tetra_unindex(std::size_t idx, std::size_t& i, std::size_t& j,
                   std::size_t& k);

class SymTensor3 {
 public:
  /// Zero-initialized symmetric tensor of dimension n (n >= 1).
  explicit SymTensor3(std::size_t n);

  [[nodiscard]] std::size_t dim() const { return n_; }
  [[nodiscard]] std::size_t packed_size() const { return data_.size(); }

  /// Value at (i, j, k) in any index order.
  [[nodiscard]] double operator()(std::size_t i, std::size_t j,
                                  std::size_t k) const;

  /// Mutable access at (i, j, k) in any index order (one stored cell
  /// backs all six permutations).
  double& at(std::size_t i, std::size_t j, std::size_t k);

  /// Direct packed access (sorted-index order).
  [[nodiscard]] const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  [[nodiscard]] double packed(std::size_t idx) const;

  /// Frobenius norm accounting for symmetric multiplicity: each stored
  /// entry with t distinct indices appears 3!/(dup) times in the dense
  /// tensor.
  [[nodiscard]] double frobenius_norm() const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

}  // namespace sttsv::tensor
