#pragma once
// Dense n×n×n tensor used as the ground-truth reference (paper
// Algorithm 3 operates on this) and for testing symmetry-exploiting code.

#include <cstddef>
#include <vector>

namespace sttsv::tensor {

class SymTensor3;

class Dense3 {
 public:
  explicit Dense3(std::size_t n);

  [[nodiscard]] std::size_t dim() const { return n_; }

  [[nodiscard]] double operator()(std::size_t i, std::size_t j,
                                  std::size_t k) const {
    return data_[(i * n_ + j) * n_ + k];
  }
  double& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * n_ + j) * n_ + k];
  }

  /// True iff value is invariant under all 6 index permutations.
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// Expands packed symmetric storage to a full dense tensor.
Dense3 to_dense(const SymTensor3& a);

/// Compresses a symmetric dense tensor to packed storage; requires
/// is_symmetric() within tol (throws otherwise).
SymTensor3 from_dense(const Dense3& a, double tol = 0.0);

}  // namespace sttsv::tensor
