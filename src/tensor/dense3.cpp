#include "tensor/dense3.hpp"

#include <cmath>

#include "support/check.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::tensor {

Dense3::Dense3(std::size_t n) : n_(n), data_(n * n * n, 0.0) {
  STTSV_REQUIRE(n >= 1, "tensor dimension must be >= 1");
}

bool Dense3::is_symmetric(double tol) const {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        const double v = (*this)(i, j, k);
        const double perms[5] = {(*this)(i, k, j), (*this)(j, i, k),
                                 (*this)(j, k, i), (*this)(k, i, j),
                                 (*this)(k, j, i)};
        for (const double w : perms) {
          if (std::abs(v - w) > tol) return false;
        }
      }
    }
  }
  return true;
}

Dense3 to_dense(const SymTensor3& a) {
  const std::size_t n = a.dim();
  Dense3 out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        out.at(i, j, k) = a(i, j, k);
      }
    }
  }
  return out;
}

SymTensor3 from_dense(const Dense3& a, double tol) {
  STTSV_REQUIRE(a.is_symmetric(tol), "from_dense needs a symmetric tensor");
  const std::size_t n = a.dim();
  SymTensor3 out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        out.at(i, j, k) = a(i, j, k);
      }
    }
  }
  return out;
}

}  // namespace sttsv::tensor
