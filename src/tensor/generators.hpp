#pragma once
// Workload generators for tests, examples, and benches.

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::tensor {

/// Uniform random entries in [lo, hi) on the packed lower tetrahedron.
SymTensor3 random_symmetric(std::size_t n, Rng& rng, double lo = -1.0,
                            double hi = 1.0);

/// Symmetric rank-r tensor Σ_ℓ λ_ℓ · x_ℓ ∘ x_ℓ ∘ x_ℓ; each x_ℓ is a column
/// of `factors` (n × r, column-major as vector-of-columns). This is the
/// model tensor of the symmetric CP decomposition (paper Algorithm 2).
SymTensor3 low_rank_symmetric(std::size_t n,
                              const std::vector<double>& lambda,
                              const std::vector<std::vector<double>>& factors);

/// Random symmetric rank-r tensor with unit-normal factor columns and the
/// given weights; returns the tensor and outputs the generated factors.
SymTensor3 random_low_rank(std::size_t n, const std::vector<double>& lambda,
                           Rng& rng,
                           std::vector<std::vector<double>>* factors_out);

/// Super-diagonal tensor: a_iii = values[i], zero elsewhere. Its STTSV with
/// x is elementwise values[i]·x_i², handy for closed-form checks.
SymTensor3 super_diagonal(const std::vector<double>& values);

/// a_ijk = 1 / (i + j + k + 1): a smooth, dense, well-conditioned test
/// tensor (Hilbert-like).
SymTensor3 hilbert_like(std::size_t n);

}  // namespace sttsv::tensor
