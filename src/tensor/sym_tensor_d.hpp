#pragma once
// Packed storage for fully symmetric tensors of arbitrary order d >= 1
// (the paper's Section 8 generalization). A symmetric order-d tensor of
// dimension n has C(n+d-1, d) distinct entries — the sorted non-increasing
// multi-indices — stored via the combinatorial number system:
//
//   index(i_1 >= i_2 >= ... >= i_d) = Σ_t C(i_t + d - t, d - t + 1)
//
// which reduces to tetra_index for d = 3 and to triangular packing for
// d = 2.

#include <cstddef>
#include <vector>

namespace sttsv::tensor {

/// Binomial coefficient with overflow checking (throws on overflow).
std::size_t binomial(std::size_t n, std::size_t k);

class SymTensorD {
 public:
  /// Zero-initialized symmetric tensor: dimension n, order d.
  SymTensorD(std::size_t n, std::size_t order);

  [[nodiscard]] std::size_t dim() const { return n_; }
  [[nodiscard]] std::size_t order() const { return d_; }
  [[nodiscard]] std::size_t packed_size() const { return data_.size(); }

  /// Number of distinct entries: C(n+d-1, d).
  static std::size_t packed_count(std::size_t n, std::size_t order);

  /// Packed offset of a sorted non-increasing multi-index.
  static std::size_t packed_index(const std::vector<std::size_t>& sorted);

  /// Inverse of packed_index; fills `out` (resized to order) with the
  /// sorted non-increasing multi-index.
  static void unpack_index(std::size_t idx, std::size_t order,
                           std::vector<std::size_t>& out);

  /// Value at an arbitrary-order multi-index (sorted internally).
  [[nodiscard]] double operator()(std::vector<std::size_t> index) const;

  /// Mutable access (all d! permutations share one cell).
  double& at(std::vector<std::size_t> index);

  [[nodiscard]] double packed(std::size_t idx) const;
  [[nodiscard]] const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

 private:
  std::size_t n_;
  std::size_t d_;
  std::vector<double> data_;
};

/// Iterates all sorted non-increasing multi-indices of length `order` with
/// entries < n, in packed order. Calls fn(multi_index) for each.
template <typename Fn>
void for_each_sorted_index(std::size_t n, std::size_t order, Fn&& fn) {
  std::vector<std::size_t> idx(order, 0);
  const auto& view = idx;
  while (true) {
    fn(view);
    // Odometer over non-increasing tuples: increment the last position
    // that can grow (bounded by the previous position, or n-1 for the
    // first), reset the tail to zero.
    std::size_t t = order;
    while (t > 0) {
      --t;
      const std::size_t cap = t == 0 ? n - 1 : idx[t - 1];
      if (idx[t] < cap) {
        ++idx[t];
        for (std::size_t u = t + 1; u < order; ++u) idx[u] = 0;
        break;
      }
      if (t == 0) return;
    }
  }
}

}  // namespace sttsv::tensor
