#include "tensor/sym_tensor.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sttsv::tensor {

std::size_t tetra_count(std::size_t n) {
  return n * (n + 1) * (n + 2) / 6;
}

std::size_t strict_tetra_count(std::size_t n) {
  if (n < 3) return 0;
  return n * (n - 1) * (n - 2) / 6;
}

std::size_t tetra_index(std::size_t i, std::size_t j, std::size_t k) {
  STTSV_DCHECK(i >= j && j >= k, "tetra_index needs sorted indices");
  return i * (i + 1) * (i + 2) / 6 + j * (j + 1) / 2 + k;
}

void tetra_unindex(std::size_t idx, std::size_t& i, std::size_t& j,
                   std::size_t& k) {
  // Find the largest i with i(i+1)(i+2)/6 <= idx by galloping + refine.
  std::size_t lo = 0;
  std::size_t hi = 1;
  while (tetra_count(hi) <= idx) hi *= 2;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (tetra_count(mid) <= idx) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  i = lo;
  std::size_t rest = idx - tetra_count(i);
  // Largest j with j(j+1)/2 <= rest.
  std::size_t jlo = 0;
  std::size_t jhi = i + 1;
  while (jlo + 1 < jhi) {
    const std::size_t mid = jlo + (jhi - jlo) / 2;
    if (mid * (mid + 1) / 2 <= rest) {
      jlo = mid;
    } else {
      jhi = mid;
    }
  }
  j = jlo;
  k = rest - j * (j + 1) / 2;
  STTSV_DCHECK(i >= j && j >= k, "tetra_unindex produced unsorted triple");
}

namespace {
/// Sorts so that i >= j >= k.
void sort_desc(std::size_t& i, std::size_t& j, std::size_t& k) {
  if (i < j) std::swap(i, j);
  if (j < k) std::swap(j, k);
  if (i < j) std::swap(i, j);
}
}  // namespace

SymTensor3::SymTensor3(std::size_t n) : n_(n), data_(tetra_count(n), 0.0) {
  STTSV_REQUIRE(n >= 1, "tensor dimension must be >= 1");
}

double SymTensor3::operator()(std::size_t i, std::size_t j,
                              std::size_t k) const {
  STTSV_DCHECK(i < n_ && j < n_ && k < n_, "index out of range");
  sort_desc(i, j, k);
  return data_[tetra_index(i, j, k)];
}

double& SymTensor3::at(std::size_t i, std::size_t j, std::size_t k) {
  STTSV_REQUIRE(i < n_ && j < n_ && k < n_, "index out of range");
  sort_desc(i, j, k);
  return data_[tetra_index(i, j, k)];
}

double SymTensor3::packed(std::size_t idx) const {
  STTSV_REQUIRE(idx < data_.size(), "packed index out of range");
  return data_[idx];
}

double SymTensor3::frobenius_norm() const {
  double sum = 0.0;
  for (std::size_t idx = 0; idx < data_.size(); ++idx) {
    std::size_t i = 0, j = 0, k = 0;
    tetra_unindex(idx, i, j, k);
    double multiplicity = 6.0;           // i > j > k: all 6 permutations
    if (i == j && j == k) {
      multiplicity = 1.0;
    } else if (i == j || j == k) {
      multiplicity = 3.0;
    }
    sum += multiplicity * data_[idx] * data_[idx];
  }
  return std::sqrt(sum);
}

}  // namespace sttsv::tensor
