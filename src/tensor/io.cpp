#include "tensor/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>

#include "support/check.hpp"

namespace sttsv::tensor {

namespace {
constexpr const char* kTensorMagic = "sttsv-symtensor3";
constexpr const char* kVectorMagic = "sttsv-vector";
}  // namespace

void write_tensor(std::ostream& os, const SymTensor3& a) {
  os << kTensorMagic << " v1\n" << a.dim() << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t idx = 0; idx < a.packed_size(); ++idx) {
    os << a.packed(idx) << (idx + 1 == a.packed_size() ? '\n' : ' ');
  }
  STTSV_REQUIRE(static_cast<bool>(os), "tensor write failed");
}

SymTensor3 read_tensor(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  STTSV_REQUIRE(magic == kTensorMagic && version == "v1",
                "not an sttsv-symtensor3 v1 stream");
  std::size_t n = 0;
  is >> n;
  STTSV_REQUIRE(is && n >= 1, "bad tensor dimension");
  SymTensor3 a(n);
  for (std::size_t idx = 0; idx < a.packed_size(); ++idx) {
    is >> a.data()[idx];
  }
  STTSV_REQUIRE(static_cast<bool>(is), "truncated tensor stream");
  return a;
}

void save_tensor(const std::string& path, const SymTensor3& a) {
  std::ofstream os(path);
  STTSV_REQUIRE(os.is_open(), "cannot open '" + path + "' for writing");
  write_tensor(os, a);
}

SymTensor3 load_tensor(const std::string& path) {
  std::ifstream is(path);
  STTSV_REQUIRE(is.is_open(), "cannot open '" + path + "' for reading");
  return read_tensor(is);
}

void write_vector(std::ostream& os, const std::vector<double>& v) {
  os << kVectorMagic << " v1\n" << v.size() << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << v[i] << (i + 1 == v.size() ? '\n' : ' ');
  }
  STTSV_REQUIRE(static_cast<bool>(os), "vector write failed");
}

std::vector<double> read_vector(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  STTSV_REQUIRE(magic == kVectorMagic && version == "v1",
                "not an sttsv-vector v1 stream");
  std::size_t n = 0;
  is >> n;
  STTSV_REQUIRE(static_cast<bool>(is), "bad vector length");
  std::vector<double> v(n);
  for (auto& x : v) is >> x;
  STTSV_REQUIRE(static_cast<bool>(is), "truncated vector stream");
  return v;
}

}  // namespace sttsv::tensor
