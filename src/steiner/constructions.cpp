#include "steiner/constructions.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>

#include "gf/primes.hpp"
#include "projective/projective_line.hpp"
#include "support/check.hpp"

namespace sttsv::steiner {

SteinerSystem spherical_system(std::uint64_t q) {
  return spherical_system(q, 2);
}

SteinerSystem spherical_system(std::uint64_t q, unsigned alpha) {
  STTSV_REQUIRE(gf::is_prime_power(q), "spherical family needs prime power q");
  STTSV_REQUIRE(alpha >= 2, "spherical family needs alpha >= 2");

  std::uint64_t p = 0;
  unsigned e = 0;
  gf::is_prime_power(q, p, e);
  const auto big =
      std::make_shared<const gf::FieldTable>(gf::FieldTable::make(p, e * alpha));
  const proj::ProjectiveLine line(big);

  // Base block: the subline F_q ∪ {∞} inside PG(1, q^alpha).
  const std::vector<std::size_t> base = line.subline(q);

  // Orbit of the base block under PGL₂(q^alpha) by BFS over the standard
  // generators. Blocks are canonical (sorted), so a set dedupes the orbit.
  const auto gens = line.standard_generators();
  std::set<std::vector<std::size_t>> seen;
  std::deque<std::vector<std::size_t>> frontier;
  seen.insert(base);
  frontier.push_back(base);
  while (!frontier.empty()) {
    const auto blk = std::move(frontier.front());
    frontier.pop_front();
    for (const auto& g : gens) {
      auto image = line.apply_to_block(g, blk);
      if (seen.insert(image).second) frontier.push_back(std::move(image));
    }
  }

  const std::uint64_t qa = gf::checked_pow(q, alpha);
  const std::size_t expected =
      static_cast<std::size_t>(((qa + 1) * qa * (qa - 1)) /
                               ((q + 1) * q * (q - 1)));
  STTSV_CHECK(seen.size() == expected,
              "spherical orbit size mismatch (expected "
              "(q^a+1)q^a(q^a-1)/((q+1)q(q-1)) blocks)");

  std::vector<std::vector<std::size_t>> blocks(seen.begin(), seen.end());
  return SteinerSystem(static_cast<std::size_t>(qa) + 1,
                       static_cast<std::size_t>(q) + 1, std::move(blocks));
}

SteinerSystem boolean_quadruple_system(unsigned k) {
  STTSV_REQUIRE(k >= 3, "boolean quadruple system needs k >= 3");
  STTSV_REQUIRE(k <= 12, "boolean quadruple system limited to 2^12 points");
  const std::size_t n = std::size_t{1} << k;

  // {a, b, c, d} with a<b<c, d = a^b^c and d > c guarantees each block is
  // produced exactly once. d != a, b, c automatically because XOR of two
  // equal elements of {a,b,c,d} would force the other two equal.
  std::vector<std::vector<std::size_t>> blocks;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        const std::size_t d = a ^ b ^ c;
        if (d > c) blocks.push_back({a, b, c, d});
      }
    }
  }
  return SteinerSystem(n, 4, std::move(blocks));
}

SteinerSystem trivial_triple_system(std::size_t m) {
  STTSV_REQUIRE(m >= 4, "trivial triple system needs m >= 4");
  STTSV_REQUIRE(m <= 512, "trivial triple system limited to 512 points");
  std::vector<std::vector<std::size_t>> blocks;
  blocks.reserve(m * (m - 1) * (m - 2) / 6);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      for (std::size_t c = b + 1; c < m; ++c) {
        blocks.push_back({a, b, c});
      }
    }
  }
  return SteinerSystem(m, 3, std::move(blocks));
}

std::optional<FamilyMatch> family_for_processor_count(std::size_t P) {
  for (const auto& match : admissible_processor_counts(P)) {
    if (match.P == P) return match;
  }
  return std::nullopt;
}

std::vector<FamilyMatch> admissible_processor_counts(std::size_t max_p) {
  std::vector<FamilyMatch> out;
  // Spherical: P = q(q²+1).
  for (std::uint64_t q = 2; q * (q * q + 1) <= max_p; ++q) {
    if (!gf::is_prime_power(q)) continue;
    FamilyMatch m;
    m.family = "spherical";
    m.q = q;
    m.m = static_cast<std::size_t>(q * q + 1);
    m.r = static_cast<std::size_t>(q + 1);
    m.P = static_cast<std::size_t>(q * (q * q + 1));
    out.push_back(m);
  }
  // Boolean: P = 2^k (2^k - 1)(2^k - 2) / 24.
  for (unsigned k = 3; k <= 12; ++k) {
    const std::size_t n = std::size_t{1} << k;
    const std::size_t P = n * (n - 1) * (n - 2) / 24;
    if (P > max_p) break;
    FamilyMatch m;
    m.family = "boolean";
    m.k = k;
    m.m = n;
    m.r = 4;
    m.P = P;
    out.push_back(m);
  }
  std::sort(out.begin(), out.end(),
            [](const FamilyMatch& a, const FamilyMatch& b) {
              return a.P < b.P;
            });
  return out;
}

}  // namespace sttsv::steiner
