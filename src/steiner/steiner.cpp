#include "steiner/steiner.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/check.hpp"

namespace sttsv::steiner {

SteinerSystem::SteinerSystem(std::size_t num_points, std::size_t block_size,
                             std::vector<std::vector<std::size_t>> blocks)
    : m_(num_points), r_(block_size), blocks_(std::move(blocks)) {
  STTSV_REQUIRE(r_ >= 3, "block size must be >= 3 for a (m, r, 3) system");
  STTSV_REQUIRE(m_ > r_, "need more points than one block");
  for (const auto& blk : blocks_) {
    STTSV_REQUIRE(blk.size() == r_, "block has wrong size");
    STTSV_REQUIRE(std::is_sorted(blk.begin(), blk.end()) &&
                      std::adjacent_find(blk.begin(), blk.end()) == blk.end(),
                  "block must be strictly increasing");
    STTSV_REQUIRE(blk.back() < m_, "block point out of range");
  }
  STTSV_REQUIRE(blocks_.size() == expected_num_blocks(),
                "block count does not match m(m-1)(m-2)/(r(r-1)(r-2))");

  point_blocks_.assign(m_, {});
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    for (const auto pt : blocks_[b]) point_blocks_[pt].push_back(b);
  }
  for (const auto& pb : point_blocks_) {
    STTSV_CHECK(pb.size() == point_replication(),
                "point replication violates Lemma 6.4");
  }
}

const std::vector<std::size_t>& SteinerSystem::block(std::size_t b) const {
  STTSV_REQUIRE(b < blocks_.size(), "block index out of range");
  return blocks_[b];
}

std::size_t SteinerSystem::expected_num_blocks() const {
  const std::size_t numer = m_ * (m_ - 1) * (m_ - 2);
  const std::size_t denom = r_ * (r_ - 1) * (r_ - 2);
  STTSV_CHECK(numer % denom == 0, "Wilson block-count divisibility fails");
  return numer / denom;
}

std::size_t SteinerSystem::pair_replication() const {
  STTSV_CHECK((m_ - 2) % (r_ - 2) == 0, "pair replication not integral");
  return (m_ - 2) / (r_ - 2);
}

std::size_t SteinerSystem::point_replication() const {
  const std::size_t numer = (m_ - 1) * (m_ - 2);
  const std::size_t denom = (r_ - 1) * (r_ - 2);
  STTSV_CHECK(numer % denom == 0, "point replication not integral");
  return numer / denom;
}

const std::vector<std::vector<std::size_t>>& SteinerSystem::point_blocks()
    const {
  return point_blocks_;
}

std::vector<std::size_t> SteinerSystem::blocks_containing_pair(
    std::size_t a, std::size_t b) const {
  STTSV_REQUIRE(a < m_ && b < m_ && a != b,
                "pair must be two distinct points");
  std::vector<std::size_t> out;
  std::set_intersection(point_blocks_[a].begin(), point_blocks_[a].end(),
                        point_blocks_[b].begin(), point_blocks_[b].end(),
                        std::back_inserter(out));
  return out;
}

void SteinerSystem::verify() const {
  // Count coverage of every unordered triple via a flat m^2 slice per
  // smallest point, keeping memory at O(m^2).
  for (std::size_t a = 0; a + 2 < m_; ++a) {
    // cover[b * m_ + c] counts blocks containing {a, b, c}, b < c, both > a.
    std::vector<std::uint8_t> cover(m_ * m_, 0);
    for (const auto blk_idx : point_blocks_[a]) {
      const auto& blk = blocks_[blk_idx];
      for (std::size_t i = 0; i < blk.size(); ++i) {
        if (blk[i] <= a) continue;
        for (std::size_t j = i + 1; j < blk.size(); ++j) {
          if (blk[j] <= a) continue;
          const auto lo = std::min(blk[i], blk[j]);
          const auto hi = std::max(blk[i], blk[j]);
          ++cover[lo * m_ + hi];
        }
      }
    }
    for (std::size_t b = a + 1; b < m_; ++b) {
      for (std::size_t c = b + 1; c < m_; ++c) {
        STTSV_CHECK(cover[b * m_ + c] == 1,
                    "triple not covered exactly once");
      }
    }
  }
}

bool wilson_admissible(std::size_t m, std::size_t r) {
  if (r < 3 || m <= r) return false;
  if ((m - 2) % (r - 2) != 0) return false;
  if (((m - 1) * (m - 2)) % ((r - 1) * (r - 2)) != 0) return false;
  if ((m * (m - 1) * (m - 2)) % (r * (r - 1) * (r - 2)) != 0) return false;
  return true;
}

}  // namespace sttsv::steiner
