#pragma once
// Concrete Steiner (m, r, 3) system families.
//
//  * spherical_system(q): the paper's main family (Theorem 6.5),
//    S(q²+1, q+1, 3) as the PGL₂(q²) orbit of the subline F_q ∪ {∞}.
//    Drives P = q(q²+1) processors.
//  * boolean_quadruple_system(k): S(2^k, 4, 3) — quadruples of
//    {0..2^k-1} with XOR zero (planes of AG(k, 2)). k = 3 is the unique
//    S(8, 4, 3) used in the paper's Table 3 / Figure 1 appendix example.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "steiner/steiner.hpp"

namespace sttsv::steiner {

/// S(q²+1, q+1, 3) for a prime power q (paper Theorem 6.5).
/// Deterministic: the block list is sorted lexicographically.
SteinerSystem spherical_system(std::uint64_t q);

/// Generalization used by tests: S(q^α + 1, q + 1, 3) for α >= 2.
SteinerSystem spherical_system(std::uint64_t q, unsigned alpha);

/// S(2^k, 4, 3) for k >= 3: blocks are the 4-subsets {a,b,c,d} of
/// {0..2^k-1} with a ^ b ^ c ^ d == 0. Deterministic order.
SteinerSystem boolean_quadruple_system(unsigned k);

/// The trivial S(m, 3, 3) for any m >= 4: every 3-subset is its own
/// block. Gives the finest partition (P = C(m,3), one off-diagonal block
/// per processor) — a processor count available for EVERY m, at the cost
/// of higher vector replication (λ₁ = (m-1)(m-2)/2).
SteinerSystem trivial_triple_system(std::size_t m);

/// Identifies which family (if any) provides a Steiner system whose block
/// count equals the requested processor count P, for partition planning.
struct FamilyMatch {
  std::string family;     // "spherical" or "boolean"
  std::uint64_t q = 0;    // spherical parameter (0 for boolean)
  unsigned k = 0;         // boolean parameter (0 for spherical)
  std::size_t m = 0;      // number of points (row blocks)
  std::size_t r = 0;      // block size
  std::size_t P = 0;      // number of blocks == processors
};

/// Exact match for P, if one of the built-in families provides it.
std::optional<FamilyMatch> family_for_processor_count(std::size_t P);

/// All admissible processor counts <= max_p from the built-in families,
/// ascending; used to suggest nearby valid P to users.
std::vector<FamilyMatch> admissible_processor_counts(std::size_t max_p);

}  // namespace sttsv::steiner
