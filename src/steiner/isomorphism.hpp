#pragma once
// Design isomorphism testing: two Steiner systems are isomorphic when a
// point relabeling maps one block set onto the other. Used to verify our
// constructed S(10,4,3) IS the paper's Table 1 design (S(10,4,3) is
// unique up to isomorphism, and this check proves it concretely for the
// exact block sets the paper prints).

#include <cstddef>
#include <optional>
#include <vector>

#include "steiner/steiner.hpp"

namespace sttsv::steiner {

/// A point permutation: image[p] is where point p goes.
using PointPermutation = std::vector<std::size_t>;

/// Backtracking search for an isomorphism from `a` onto `b`; returns a
/// permutation of a's points such that applying it to every block of `a`
/// yields exactly the block set of `b`, or nullopt if none exists.
/// Practical for the small designs used here (pruned by block-coverage
/// consistency at every assignment).
std::optional<PointPermutation> find_isomorphism(const SteinerSystem& a,
                                                 const SteinerSystem& b);

/// Applies a point permutation to a system, renaming points and
/// re-sorting blocks; the result is a Steiner system on the same
/// parameters.
SteinerSystem relabel(const SteinerSystem& a, const PointPermutation& perm);

}  // namespace sttsv::steiner
