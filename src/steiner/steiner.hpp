#pragma once
// Steiner (m, r, 3) systems (paper Definition 6.1): collections of
// r-subsets ("blocks") of {0..m-1} such that every 3-subset of points lies
// in exactly one block. These drive the tetrahedral block partition: one
// processor per block.
//
// Points here are 0-based; the paper's tables are 1-based. Rendering code
// adds 1 when reproducing tables.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sttsv::steiner {

/// An immutable, validated triple-wise balanced design.
class SteinerSystem {
 public:
  /// Takes ownership of blocks; each must be a strictly increasing r-subset
  /// of {0..m-1}. Cheap structural checks run here; call verify() for the
  /// exhaustive triple-coverage check.
  SteinerSystem(std::size_t num_points, std::size_t block_size,
                std::vector<std::vector<std::size_t>> blocks);

  [[nodiscard]] std::size_t num_points() const { return m_; }
  [[nodiscard]] std::size_t block_size() const { return r_; }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& block(std::size_t b) const;
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& blocks() const {
    return blocks_;
  }

  /// Expected block count m(m-1)(m-2) / (r(r-1)(r-2)).
  [[nodiscard]] std::size_t expected_num_blocks() const;

  /// λ₂ (paper Lemma 6.3): #blocks containing any fixed pair = (m-2)/(r-2).
  [[nodiscard]] std::size_t pair_replication() const;

  /// λ₁ (paper Lemma 6.4): #blocks containing any fixed point
  /// = (m-1)(m-2) / ((r-1)(r-2)).
  [[nodiscard]] std::size_t point_replication() const;

  /// Indices of blocks containing each point (the sets Q_i before mapping
  /// to processors). point_blocks()[i] is sorted ascending.
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& point_blocks()
      const;

  /// Sorted indices of blocks containing both points a != b.
  [[nodiscard]] std::vector<std::size_t> blocks_containing_pair(
      std::size_t a, std::size_t b) const;

  /// Exhaustive verification that every 3-subset of points appears in
  /// exactly one block. O(m^3) memory-light pass; throws on violation.
  void verify() const;

 private:
  std::size_t m_;
  std::size_t r_;
  std::vector<std::vector<std::size_t>> blocks_;
  std::vector<std::vector<std::size_t>> point_blocks_;
};

/// Wilson's necessary divisibility conditions (paper Theorem 6.2) for the
/// existence of a Steiner (m, r, 3) system:
///   (r-2) | (m-2), (r-1)(r-2) | (m-1)(m-2), r(r-1)(r-2) | m(m-1)(m-2).
bool wilson_admissible(std::size_t m, std::size_t r);

}  // namespace sttsv::steiner
