#include "steiner/isomorphism.hpp"

#include <algorithm>
#include <set>

#include "graph/bipartite.hpp"  // for kNone
#include "support/check.hpp"

namespace sttsv::steiner {

namespace {

constexpr std::size_t kUnset = graph::kNone;

struct Search {
  const SteinerSystem& a;
  const std::set<std::vector<std::size_t>>& b_blocks;
  std::size_t m;
  PointPermutation image;       // a-point -> b-point or kUnset
  std::vector<bool> used;       // b-point already an image

  /// Every block of `a` whose points are all mapped must land on a block
  /// of `b`.
  [[nodiscard]] bool consistent() const {
    for (const auto& blk : a.blocks()) {
      std::vector<std::size_t> mapped;
      bool complete = true;
      for (const auto pt : blk) {
        if (image[pt] == kUnset) {
          complete = false;
          break;
        }
        mapped.push_back(image[pt]);
      }
      if (!complete) continue;
      std::sort(mapped.begin(), mapped.end());
      if (b_blocks.count(mapped) == 0) return false;
    }
    return true;
  }

  bool extend(std::size_t next) {
    if (next == m) return true;  // all points mapped, all blocks checked
    for (std::size_t candidate = 0; candidate < m; ++candidate) {
      if (used[candidate]) continue;
      image[next] = candidate;
      used[candidate] = true;
      if (consistent() && extend(next + 1)) return true;
      image[next] = kUnset;
      used[candidate] = false;
    }
    return false;
  }
};

}  // namespace

std::optional<PointPermutation> find_isomorphism(const SteinerSystem& a,
                                                 const SteinerSystem& b) {
  if (a.num_points() != b.num_points() ||
      a.block_size() != b.block_size() ||
      a.num_blocks() != b.num_blocks()) {
    return std::nullopt;
  }
  std::set<std::vector<std::size_t>> b_blocks(b.blocks().begin(),
                                              b.blocks().end());
  Search search{a, b_blocks, a.num_points(),
                PointPermutation(a.num_points(), kUnset),
                std::vector<bool>(a.num_points(), false)};
  if (search.extend(0)) return search.image;
  return std::nullopt;
}

SteinerSystem relabel(const SteinerSystem& a, const PointPermutation& perm) {
  STTSV_REQUIRE(perm.size() == a.num_points(),
                "permutation must cover all points");
  std::vector<std::vector<std::size_t>> blocks;
  blocks.reserve(a.num_blocks());
  for (const auto& blk : a.blocks()) {
    std::vector<std::size_t> mapped;
    mapped.reserve(blk.size());
    for (const auto pt : blk) {
      STTSV_REQUIRE(perm[pt] < a.num_points(), "permutation out of range");
      mapped.push_back(perm[pt]);
    }
    std::sort(mapped.begin(), mapped.end());
    blocks.push_back(std::move(mapped));
  }
  std::sort(blocks.begin(), blocks.end());
  return SteinerSystem(a.num_points(), a.block_size(), std::move(blocks));
}

}  // namespace sttsv::steiner
