#pragma once
// The projective line PG(1, q) = F_q ∪ {∞} and the action of PGL₂(q)
// by Möbius transformations. This is the geometry behind the paper's
// Theorem 6.5: the PGL₂(q^α) orbit of the subline F_q ∪ {∞} is a
// Steiner (q^α + 1, q + 1, 3) system.

#include <cstdint>
#include <memory>
#include <vector>

#include "gf/field_table.hpp"

namespace sttsv::proj {

/// A Möbius transformation z -> (a z + b) / (c z + d) with ad - bc != 0,
/// entries packed GF(q) elements. Equality is up to scalar multiples only
/// when canonicalized by the caller; we use these purely as group actions.
struct Mobius {
  std::uint64_t a = 1;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 1;
};

class ProjectiveLine {
 public:
  /// Shares ownership of the field so lines are cheap to copy.
  explicit ProjectiveLine(std::shared_ptr<const gf::FieldTable> field);

  /// Convenience: builds GF(q) internally.
  static ProjectiveLine over_order(std::uint64_t q);

  [[nodiscard]] const gf::FieldTable& field() const { return *field_; }

  /// Points are indices 0..q: index v < q is the field element v,
  /// index q is the point at infinity.
  [[nodiscard]] std::size_t num_points() const;
  [[nodiscard]] std::size_t infinity() const;
  [[nodiscard]] bool is_infinity(std::size_t point) const;

  /// True iff ad - bc != 0 in the field.
  [[nodiscard]] bool is_invertible(const Mobius& m) const;

  /// Applies m to a point (handles the ∞ cases of the Möbius action).
  [[nodiscard]] std::size_t apply(const Mobius& m, std::size_t point) const;

  /// Applies m to every point of a block, returning the sorted image.
  [[nodiscard]] std::vector<std::size_t> apply_to_block(
      const Mobius& m, const std::vector<std::size_t>& block) const;

  /// Composition: (m1 ∘ m2)(z) = m1(m2(z)).
  [[nodiscard]] Mobius compose(const Mobius& m1, const Mobius& m2) const;

  [[nodiscard]] Mobius inverse(const Mobius& m) const;

  /// A generating set of PGL₂(q): z -> z+1, z -> g·z (g primitive),
  /// z -> 1/z. Sufficient for orbit enumeration by BFS.
  [[nodiscard]] std::vector<Mobius> standard_generators() const;

  /// The subline F_s ∪ {∞} as sorted point indices; s must be a subfield
  /// order of the line's field.
  [[nodiscard]] std::vector<std::size_t> subline(std::uint64_t s) const;

 private:
  std::shared_ptr<const gf::FieldTable> field_;
};

}  // namespace sttsv::proj
