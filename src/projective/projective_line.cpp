#include "projective/projective_line.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::proj {

ProjectiveLine::ProjectiveLine(std::shared_ptr<const gf::FieldTable> field)
    : field_(std::move(field)) {
  STTSV_REQUIRE(field_ != nullptr, "ProjectiveLine needs a field");
}

ProjectiveLine ProjectiveLine::over_order(std::uint64_t q) {
  return ProjectiveLine(
      std::make_shared<const gf::FieldTable>(gf::FieldTable::make_order(q)));
}

std::size_t ProjectiveLine::num_points() const {
  return static_cast<std::size_t>(field_->order()) + 1;
}

std::size_t ProjectiveLine::infinity() const {
  return static_cast<std::size_t>(field_->order());
}

bool ProjectiveLine::is_infinity(std::size_t point) const {
  return point == infinity();
}

bool ProjectiveLine::is_invertible(const Mobius& m) const {
  const auto& K = *field_;
  return K.sub(K.mul(m.a, m.d), K.mul(m.b, m.c)) != 0;
}

std::size_t ProjectiveLine::apply(const Mobius& m, std::size_t point) const {
  const auto& K = *field_;
  STTSV_DCHECK(point < num_points(), "point out of range");
  if (is_infinity(point)) {
    // m(∞) = a/c, or ∞ if c == 0.
    if (m.c == 0) return infinity();
    return static_cast<std::size_t>(K.div(m.a, m.c));
  }
  const std::uint64_t z = point;
  const std::uint64_t denom = K.add(K.mul(m.c, z), m.d);
  if (denom == 0) return infinity();
  const std::uint64_t numer = K.add(K.mul(m.a, z), m.b);
  return static_cast<std::size_t>(K.div(numer, denom));
}

std::vector<std::size_t> ProjectiveLine::apply_to_block(
    const Mobius& m, const std::vector<std::size_t>& block) const {
  std::vector<std::size_t> image;
  image.reserve(block.size());
  for (const auto pt : block) image.push_back(apply(m, pt));
  std::sort(image.begin(), image.end());
  STTSV_DCHECK(std::adjacent_find(image.begin(), image.end()) == image.end(),
               "Möbius image collapsed two points (non-invertible map?)");
  return image;
}

Mobius ProjectiveLine::compose(const Mobius& m1, const Mobius& m2) const {
  const auto& K = *field_;
  // Matrix product m1 * m2.
  return Mobius{
      K.add(K.mul(m1.a, m2.a), K.mul(m1.b, m2.c)),
      K.add(K.mul(m1.a, m2.b), K.mul(m1.b, m2.d)),
      K.add(K.mul(m1.c, m2.a), K.mul(m1.d, m2.c)),
      K.add(K.mul(m1.c, m2.b), K.mul(m1.d, m2.d)),
  };
}

Mobius ProjectiveLine::inverse(const Mobius& m) const {
  const auto& K = *field_;
  STTSV_REQUIRE(is_invertible(m), "Möbius transform not invertible");
  // Up to the (irrelevant) scalar det, the inverse is [[d,-b],[-c,a]].
  return Mobius{m.d, K.neg(m.b), K.neg(m.c), m.a};
}

std::vector<Mobius> ProjectiveLine::standard_generators() const {
  const auto& K = *field_;
  std::vector<Mobius> gens;
  gens.push_back(Mobius{1, 1, 0, 1});              // z -> z + 1
  gens.push_back(Mobius{K.generator(), 0, 0, 1});  // z -> g z
  gens.push_back(Mobius{0, 1, 1, 0});              // z -> 1 / z
  for (const auto& g : gens) {
    STTSV_CHECK(is_invertible(g), "standard generator not invertible");
  }
  return gens;
}

std::vector<std::size_t> ProjectiveLine::subline(std::uint64_t s) const {
  const auto elems = field_->subfield(s);
  std::vector<std::size_t> pts(elems.begin(), elems.end());
  pts.push_back(infinity());
  std::sort(pts.begin(), pts.end());
  return pts;
}

}  // namespace sttsv::proj
