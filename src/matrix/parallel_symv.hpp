#pragma once
// Communication-optimal parallel symmetric matrix-vector product on the
// triangle block partition — the 2D predecessor result (SYMV flavor of
// Al Daas et al. 2023/2025) that the paper lifts to three dimensions.
// Same three phases as Algorithm 5: gather x shares, owner-compute block
// kernels, reduce partial y shares. Only vector data moves.

#include <cstdint>
#include <vector>

#include "matrix/sym_matrix.hpp"
#include "matrix/triangle_partition.hpp"
#include "simt/machine.hpp"

namespace sttsv::matrix {

struct SymvRunResult {
  std::vector<double> y;  // logical length n
  std::uint64_t max_words_sent = 0;
};

SymvRunResult parallel_symv(simt::Machine& machine,
                            const TrianglePartition& part,
                            const SymMatrix& a,
                            const std::vector<double>& x,
                            simt::Transport transport);

/// Per-processor words of the optimal 2D algorithm on PG(2, q):
/// 2·q·n/(q²+q+1) ≈ 2n/√P for both vector phases (divisible case exact).
double optimal_symv_words(std::size_t n, std::size_t q);

/// The 2D symmetric lower bound: 2√(n(n−1)/P) − 2n/P (from 2|V| ≤ |∪φ|²).
double symv_lower_bound_words(std::size_t n, std::size_t P);

}  // namespace sttsv::matrix
