#pragma once
// Triangle block partition of a symmetric matrix (Beaumont et al. 2022;
// Al Daas et al. 2023/2025) — the 2D scheme the paper's tetrahedral
// partition extends. Given a Steiner (m, r, 2) system:
//
//  * processor p owns TB₂(R_p) = {(i, j) : i > j ∈ R_p} — every
//    off-diagonal block of the lower triangle lands on the unique block
//    containing its pair;
//  * the m diagonal blocks (i, i) are Hall-assigned to processors with
//    i ∈ R_p (for projective planes m == P and each processor gets
//    exactly one);
//  * row block i of the vectors is split across the Q_i = λ₁ processors
//    that require it.

#include <cstddef>
#include <vector>

#include "matrix/pair_system.hpp"

namespace sttsv::matrix {

struct MatBlockCoord {
  std::size_t i = 0;
  std::size_t j = 0;  // i >= j

  friend bool operator==(const MatBlockCoord&, const MatBlockCoord&) =
      default;
  friend auto operator<=>(const MatBlockCoord&, const MatBlockCoord&) =
      default;
};

/// Contiguous slice of a row block owned by one processor.
struct MatShare {
  std::size_t offset = 0;
  std::size_t length = 0;
};

class TrianglePartition {
 public:
  /// Builds from a pair system (copied in); requires m <= P.
  static TrianglePartition build(PairSystem system, std::size_t n);

  [[nodiscard]] const PairSystem& system() const { return sys_; }
  [[nodiscard]] std::size_t num_processors() const;
  [[nodiscard]] std::size_t num_row_blocks() const;
  [[nodiscard]] std::size_t logical_n() const { return n_; }
  [[nodiscard]] std::size_t block_length_b() const { return b_; }
  [[nodiscard]] std::size_t padded_n() const { return b_ * sys_.num_points(); }

  [[nodiscard]] const std::vector<std::size_t>& R(std::size_t p) const;
  [[nodiscard]] const std::vector<std::size_t>& Q(std::size_t i) const;

  /// Diagonal blocks assigned to p (indices i with block (i,i) at p).
  [[nodiscard]] const std::vector<std::size_t>& diagonals(
      std::size_t p) const;

  /// All blocks owned by p: TB₂(R_p) plus its diagonal blocks, sorted.
  [[nodiscard]] std::vector<MatBlockCoord> owned_blocks(std::size_t p) const;

  /// Owner of an arbitrary lower-triangle block.
  [[nodiscard]] std::size_t owner(const MatBlockCoord& c) const;

  /// Share of row block i owned by p ∈ Q_i (round-robin split of b).
  [[nodiscard]] MatShare share(std::size_t row_block, std::size_t p) const;

  /// Full validation (coverage, compatibility, share tiling).
  void validate() const;

 private:
  TrianglePartition(PairSystem system, std::size_t n);

  PairSystem sys_;
  std::size_t n_;
  std::size_t b_;
  std::vector<std::vector<std::size_t>> diag_;   // per processor
  std::vector<std::size_t> diag_owner_;          // per row block
};

}  // namespace sttsv::matrix
