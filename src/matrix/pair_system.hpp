#pragma once
// Steiner (m, r, 2) systems — "linear spaces": collections of r-subsets
// in which every PAIR of points lies in exactly one block. These generate
// the triangle block partitions of symmetric matrices (Beaumont et al.
// 2022; Al Daas et al. 2023/2025), the 2D scheme the paper's tetrahedral
// partition generalizes.
//
// Families provided:
//  * projective_plane_system(q): lines of PG(2, q) — S(q²+q+1, q+1, 2)
//    with exactly P = q²+q+1 blocks (and m == P);
//  * trivial_pair_system(m): every pair its own block, any m >= 3.

#include <cstdint>
#include <vector>

namespace sttsv::matrix {

class PairSystem {
 public:
  PairSystem(std::size_t num_points, std::size_t block_size,
             std::vector<std::vector<std::size_t>> blocks);

  [[nodiscard]] std::size_t num_points() const { return m_; }
  [[nodiscard]] std::size_t block_size() const { return r_; }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& block(std::size_t b) const;
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& blocks() const {
    return blocks_;
  }

  /// λ₁: every point lies in exactly (m-1)/(r-1) blocks.
  [[nodiscard]] std::size_t point_replication() const;

  /// Blocks containing each point, ascending (the 2D Q_i sets).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& point_blocks()
      const {
    return point_blocks_;
  }

  /// Index of the unique block containing the pair {a, b}, a != b.
  [[nodiscard]] std::size_t block_of_pair(std::size_t a,
                                          std::size_t b) const;

  /// Exhaustive verification: every pair covered exactly once.
  void verify() const;

 private:
  std::size_t m_;
  std::size_t r_;
  std::vector<std::vector<std::size_t>> blocks_;
  std::vector<std::vector<std::size_t>> point_blocks_;
  std::vector<std::size_t> pair_block_;  // m*m lookup, kNone-free
};

/// Lines of the projective plane PG(2, q): S(q²+q+1, q+1, 2).
PairSystem projective_plane_system(std::uint64_t q);

/// All 2-subsets as blocks: S(m, 2, 2).
PairSystem trivial_pair_system(std::size_t m);

}  // namespace sttsv::matrix
