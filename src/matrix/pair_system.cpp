#include "matrix/pair_system.hpp"

#include <algorithm>

#include "gf/field_table.hpp"
#include "gf/primes.hpp"
#include "support/check.hpp"

namespace sttsv::matrix {

PairSystem::PairSystem(std::size_t num_points, std::size_t block_size,
                       std::vector<std::vector<std::size_t>> blocks)
    : m_(num_points), r_(block_size), blocks_(std::move(blocks)) {
  STTSV_REQUIRE(r_ >= 2, "block size must be >= 2 for a (m, r, 2) system");
  STTSV_REQUIRE(m_ > r_ || (m_ == r_ && blocks_.size() == 1) || r_ == 2,
                "degenerate parameters");
  const std::size_t expected = m_ * (m_ - 1) / (r_ * (r_ - 1));
  STTSV_REQUIRE(m_ * (m_ - 1) % (r_ * (r_ - 1)) == 0 &&
                    blocks_.size() == expected,
                "block count must be m(m-1)/(r(r-1))");

  point_blocks_.assign(m_, {});
  pair_block_.assign(m_ * m_, 0);
  std::vector<bool> covered(m_ * m_, false);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const auto& blk = blocks_[b];
    STTSV_REQUIRE(blk.size() == r_, "block has wrong size");
    STTSV_REQUIRE(std::is_sorted(blk.begin(), blk.end()) &&
                      std::adjacent_find(blk.begin(), blk.end()) ==
                          blk.end() &&
                      blk.back() < m_,
                  "block must be a strictly increasing subset");
    for (const auto pt : blk) point_blocks_[pt].push_back(b);
    for (std::size_t s = 0; s < blk.size(); ++s) {
      for (std::size_t t = s + 1; t < blk.size(); ++t) {
        const std::size_t key = blk[s] * m_ + blk[t];
        STTSV_CHECK(!covered[key], "pair covered twice");
        covered[key] = true;
        pair_block_[key] = b;
        pair_block_[blk[t] * m_ + blk[s]] = b;
      }
    }
  }
  for (const auto& pb : point_blocks_) {
    STTSV_CHECK(pb.size() == point_replication(),
                "point replication not (m-1)/(r-1)");
  }
}

const std::vector<std::size_t>& PairSystem::block(std::size_t b) const {
  STTSV_REQUIRE(b < blocks_.size(), "block index out of range");
  return blocks_[b];
}

std::size_t PairSystem::point_replication() const {
  STTSV_CHECK((m_ - 1) % (r_ - 1) == 0, "replication not integral");
  return (m_ - 1) / (r_ - 1);
}

std::size_t PairSystem::block_of_pair(std::size_t a, std::size_t b) const {
  STTSV_REQUIRE(a < m_ && b < m_ && a != b, "need two distinct points");
  return pair_block_[a * m_ + b];
}

void PairSystem::verify() const {
  for (std::size_t a = 0; a < m_; ++a) {
    for (std::size_t b = a + 1; b < m_; ++b) {
      const std::size_t blk_idx = block_of_pair(a, b);
      const auto& blk = blocks_[blk_idx];
      STTSV_CHECK(std::binary_search(blk.begin(), blk.end(), a) &&
                      std::binary_search(blk.begin(), blk.end(), b),
                  "pair lookup inconsistent");
    }
  }
}

PairSystem projective_plane_system(std::uint64_t q) {
  STTSV_REQUIRE(gf::is_prime_power(q), "projective plane needs prime power");
  const gf::FieldTable K = gf::FieldTable::make_order(q);
  // Points of PG(2, q): normalized homogeneous triples. Canonical forms:
  // (1, y, z), (0, 1, z), (0, 0, 1) — q² + q + 1 of them.
  struct Triple {
    std::uint64_t x, y, z;
  };
  std::vector<Triple> points;
  for (std::uint64_t y = 0; y < q; ++y) {
    for (std::uint64_t z = 0; z < q; ++z) {
      points.push_back({1, y, z});
    }
  }
  for (std::uint64_t z = 0; z < q; ++z) points.push_back({0, 1, z});
  points.push_back({0, 0, 1});
  const std::size_t m = points.size();
  STTSV_CHECK(m == q * q + q + 1, "projective point count");

  // Lines are the same triples (duality): line (a,b,c) contains point
  // (x,y,z) iff ax + by + cz == 0.
  std::vector<std::vector<std::size_t>> blocks;
  blocks.reserve(m);
  for (const auto& line : points) {
    std::vector<std::size_t> blk;
    for (std::size_t p = 0; p < m; ++p) {
      const auto& pt = points[p];
      const std::uint64_t dot = K.add(
          K.add(K.mul(line.x, pt.x), K.mul(line.y, pt.y)),
          K.mul(line.z, pt.z));
      if (dot == 0) blk.push_back(p);
    }
    STTSV_CHECK(blk.size() == q + 1, "projective line size");
    blocks.push_back(std::move(blk));
  }
  std::sort(blocks.begin(), blocks.end());
  return PairSystem(m, static_cast<std::size_t>(q) + 1, std::move(blocks));
}

PairSystem trivial_pair_system(std::size_t m) {
  STTSV_REQUIRE(m >= 3, "trivial pair system needs m >= 3");
  std::vector<std::vector<std::size_t>> blocks;
  blocks.reserve(m * (m - 1) / 2);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) blocks.push_back({a, b});
  }
  return PairSystem(m, 2, std::move(blocks));
}

}  // namespace sttsv::matrix
