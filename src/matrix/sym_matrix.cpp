#include "matrix/sym_matrix.hpp"

#include <utility>

#include "support/check.hpp"

namespace sttsv::matrix {

std::size_t tri_index(std::size_t i, std::size_t j) {
  STTSV_DCHECK(i >= j, "tri_index needs sorted indices");
  return i * (i + 1) / 2 + j;
}

SymMatrix::SymMatrix(std::size_t n) : n_(n), data_(n * (n + 1) / 2, 0.0) {
  STTSV_REQUIRE(n >= 1, "matrix dimension must be >= 1");
}

double SymMatrix::operator()(std::size_t i, std::size_t j) const {
  STTSV_DCHECK(i < n_ && j < n_, "index out of range");
  if (i < j) std::swap(i, j);
  return data_[tri_index(i, j)];
}

double& SymMatrix::at(std::size_t i, std::size_t j) {
  STTSV_REQUIRE(i < n_ && j < n_, "index out of range");
  if (i < j) std::swap(i, j);
  return data_[tri_index(i, j)];
}

SymMatrix random_symmetric_matrix(std::size_t n, Rng& rng, double lo,
                                  double hi) {
  SymMatrix a(n);
  for (std::size_t idx = 0; idx < a.packed_size(); ++idx) {
    a.data()[idx] = rng.next_in(lo, hi);
  }
  return a;
}

std::vector<double> symv(const SymMatrix& a, const std::vector<double>& x) {
  const std::size_t n = a.dim();
  STTSV_REQUIRE(x.size() == n, "vector length must match matrix dimension");
  std::vector<double> y(n, 0.0);
  const double* data = a.data();
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j, ++idx) {
      y[i] += data[idx] * x[j];
      y[j] += data[idx] * x[i];
    }
    y[i] += data[idx] * x[i];  // diagonal
    ++idx;
  }
  return y;
}

}  // namespace sttsv::matrix
