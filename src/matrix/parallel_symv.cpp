#include "matrix/parallel_symv.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/check.hpp"

namespace sttsv::matrix {

namespace {

using simt::Delivery;
using simt::Envelope;

std::vector<std::size_t> common_blocks(const TrianglePartition& part,
                                       std::size_t p, std::size_t peer) {
  const auto& a = part.R(p);
  const auto& b = part.R(peer);
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  // Two blocks of a (m, r, 2) system share at most one point.
  STTSV_CHECK(out.size() <= 1, "pair-system blocks share > 1 point");
  return out;
}

std::vector<std::size_t> peers_of(const TrianglePartition& part,
                                  std::size_t p) {
  std::vector<std::size_t> peers;
  for (const std::size_t i : part.R(p)) {
    for (const std::size_t other : part.Q(i)) {
      if (other != p) peers.push_back(other);
    }
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

/// Applies one matrix block (bi, bj) to the local row-block buffers.
void apply_matrix_block(const SymMatrix& a, const MatBlockCoord& c,
                        std::size_t b, const double* xi, const double* xj,
                        double* yi, double* yj) {
  const std::size_t n = a.dim();
  const std::size_t i0 = c.i * b;
  const std::size_t j0 = c.j * b;
  const std::size_t i_end = std::min(i0 + b, n);
  const std::size_t j_end = std::min(j0 + b, n);
  if (i0 >= n) return;
  const double* data = a.data();
  const bool diag = (c.i == c.j);
  for (std::size_t gi = i0; gi < i_end; ++gi) {
    const std::size_t row = gi * (gi + 1) / 2;
    const double xiv = xi[gi - i0];
    double acc = 0.0;
    const std::size_t gj_end = diag ? std::min(gi + 1, j_end) : j_end;
    for (std::size_t gj = j0; gj < gj_end; ++gj) {
      const double v = data[row + gj];
      if (gi == gj) {
        acc += v * xj[gj - j0];
      } else {
        acc += v * xj[gj - j0];
        yj[gj - j0] += v * xiv;
      }
    }
    yi[gi - i0] += acc;
  }
}

}  // namespace

SymvRunResult parallel_symv(simt::Machine& machine,
                            const TrianglePartition& part,
                            const SymMatrix& a,
                            const std::vector<double>& x,
                            simt::Transport transport) {
  const std::size_t P = part.num_processors();
  const std::size_t b = part.block_length_b();
  const std::size_t n = part.logical_n();
  STTSV_REQUIRE(machine.num_ranks() == P, "machine rank count mismatch");
  STTSV_REQUIRE(a.dim() == n && x.size() == n, "dimension mismatch");

  std::vector<double> x_pad(part.padded_n(), 0.0);
  std::copy(x.begin(), x.end(), x_pad.begin());

  // Phase 1: gather x shares.
  std::vector<std::vector<Envelope>> outboxes(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      const std::vector<std::size_t> common = common_blocks(part, p, peer);
      std::size_t words = 0;
      for (const std::size_t i : common) words += part.share(i, p).length;
      if (words == 0) continue;
      simt::PooledBuffer buf = machine.pool().acquire(p, words);
      for (const std::size_t i : common) {
        const MatShare s = part.share(i, p);
        buf.append(x_pad.data() + i * b + s.offset, s.length);
      }
      outboxes[p].push_back(Envelope{peer, std::move(buf)});
    }
  }
  auto inboxes = machine.exchange(std::move(outboxes), transport);

  std::vector<std::map<std::size_t, std::vector<double>>> x_loc(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) {
      auto& blockvec = x_loc[p][i];
      blockvec.assign(b, 0.0);
      const MatShare s = part.share(i, p);
      std::copy_n(x_pad.data() + i * b + s.offset, s.length,
                  blockvec.data() + s.offset);
    }
    for (const Delivery& d : inboxes[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const MatShare s = part.share(i, d.from);
        STTSV_CHECK(cursor + s.length <= d.data.size(), "short delivery");
        std::copy_n(d.data.data() + cursor, s.length,
                    x_loc[p][i].data() + s.offset);
        cursor += s.length;
      }
      STTSV_CHECK(cursor == d.data.size(), "long delivery");
    }
  }
  inboxes.clear();

  // Phase 2: block kernels.
  std::vector<std::map<std::size_t, std::vector<double>>> y_loc(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) y_loc[p][i].assign(b, 0.0);
    for (const MatBlockCoord& c : part.owned_blocks(p)) {
      apply_matrix_block(a, c, b, x_loc[p].at(c.i).data(),
                         x_loc[p].at(c.j).data(), y_loc[p].at(c.i).data(),
                         y_loc[p].at(c.j).data());
    }
    x_loc[p].clear();
  }

  // Phase 3: reduce y shares.
  std::vector<std::vector<Envelope>> y_out(P);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t peer : peers_of(part, p)) {
      const std::vector<std::size_t> common = common_blocks(part, p, peer);
      std::size_t words = 0;
      for (const std::size_t i : common) words += part.share(i, peer).length;
      if (words == 0) continue;
      simt::PooledBuffer buf = machine.pool().acquire(p, words);
      for (const std::size_t i : common) {
        const MatShare s = part.share(i, peer);
        buf.append(y_loc[p].at(i).data() + s.offset, s.length);
      }
      y_out[p].push_back(Envelope{peer, std::move(buf)});
    }
  }
  auto y_in = machine.exchange(std::move(y_out), transport);

  std::vector<double> y_pad(part.padded_n(), 0.0);
  for (std::size_t p = 0; p < P; ++p) {
    for (const std::size_t i : part.R(p)) {
      const MatShare s = part.share(i, p);
      for (std::size_t off = 0; off < s.length; ++off) {
        y_pad[i * b + s.offset + off] += y_loc[p].at(i)[s.offset + off];
      }
    }
    for (const Delivery& d : y_in[p]) {
      std::size_t cursor = 0;
      for (const std::size_t i : common_blocks(part, p, d.from)) {
        const MatShare s = part.share(i, p);
        STTSV_CHECK(cursor + s.length <= d.data.size(), "short delivery");
        for (std::size_t off = 0; off < s.length; ++off) {
          y_pad[i * b + s.offset + off] += d.data[cursor + off];
        }
        cursor += s.length;
      }
      STTSV_CHECK(cursor == d.data.size(), "long delivery");
    }
  }
  machine.ledger().verify_conservation();

  SymvRunResult result;
  result.y.assign(y_pad.begin(), y_pad.begin() + static_cast<long>(n));
  result.max_words_sent = machine.ledger().max_words_sent();
  return result;
}

double optimal_symv_words(std::size_t n, std::size_t q) {
  const double nn = static_cast<double>(n);
  const double qq = static_cast<double>(q);
  return 2.0 * qq * nn / (qq * qq + qq + 1.0);
}

double symv_lower_bound_words(std::size_t n, std::size_t P) {
  const double nn = static_cast<double>(n);
  const double pp = static_cast<double>(P);
  return 2.0 * std::sqrt(nn * (nn - 1.0) / pp) - 2.0 * nn / pp;
}

}  // namespace sttsv::matrix
