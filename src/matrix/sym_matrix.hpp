#pragma once
// Packed symmetric matrices — the 2D ancestor of the tensor code, used by
// the triangle-block-partition module that reimplements the prior work
// the paper generalizes (Beaumont et al. 2022, Al Daas et al. 2023/25).

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace sttsv::matrix {

/// Lower-triangle packed storage: entries (i >= j), n(n+1)/2 of them,
/// offset i(i+1)/2 + j.
class SymMatrix {
 public:
  explicit SymMatrix(std::size_t n);

  [[nodiscard]] std::size_t dim() const { return n_; }
  [[nodiscard]] std::size_t packed_size() const { return data_.size(); }

  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const;
  double& at(std::size_t i, std::size_t j);

  [[nodiscard]] const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// Packed triangular index of sorted (i >= j).
std::size_t tri_index(std::size_t i, std::size_t j);

/// Uniform random symmetric matrix.
SymMatrix random_symmetric_matrix(std::size_t n, Rng& rng,
                                  double lo = -1.0, double hi = 1.0);

/// Reference y = A·x exploiting symmetry (one pass over the triangle).
std::vector<double> symv(const SymMatrix& a, const std::vector<double>& x);

}  // namespace sttsv::matrix
