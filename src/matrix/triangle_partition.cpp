#include "matrix/triangle_partition.hpp"

#include <algorithm>

#include "graph/bipartite.hpp"
#include "graph/max_flow.hpp"
#include "support/check.hpp"

namespace sttsv::matrix {

TrianglePartition TrianglePartition::build(PairSystem system,
                                           std::size_t n) {
  STTSV_REQUIRE(system.num_points() <= system.num_blocks(),
                "need m <= P for one diagonal block per processor");
  return TrianglePartition(std::move(system), n);
}

TrianglePartition::TrianglePartition(PairSystem system, std::size_t n)
    : sys_(std::move(system)),
      n_(n),
      b_((n + sys_.num_points() - 1) / sys_.num_points()),
      diag_(sys_.num_blocks()),
      diag_owner_(sys_.num_points(), graph::kNone) {
  STTSV_REQUIRE(n >= 1, "vector length must be >= 1");
  // Hall assignment of diagonal blocks: candidates are processors whose
  // R_p contains the index.
  const std::size_t m = sys_.num_points();
  const std::size_t P = sys_.num_blocks();
  graph::BipartiteGraph g(P, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (const std::size_t p : sys_.point_blocks()[i]) {
      g.add_edge(p, i);
    }
  }
  const std::size_t quota = (m + P - 1) / P;
  const auto owners =
      graph::assign_with_quotas(g, std::vector<std::size_t>(P, quota));
  for (std::size_t i = 0; i < m; ++i) {
    diag_[owners[i]].push_back(i);
    diag_owner_[i] = owners[i];
  }
}

std::size_t TrianglePartition::num_processors() const {
  return sys_.num_blocks();
}

std::size_t TrianglePartition::num_row_blocks() const {
  return sys_.num_points();
}

const std::vector<std::size_t>& TrianglePartition::R(std::size_t p) const {
  return sys_.block(p);
}

const std::vector<std::size_t>& TrianglePartition::Q(std::size_t i) const {
  STTSV_REQUIRE(i < sys_.num_points(), "row block out of range");
  return sys_.point_blocks()[i];
}

const std::vector<std::size_t>& TrianglePartition::diagonals(
    std::size_t p) const {
  STTSV_REQUIRE(p < diag_.size(), "processor out of range");
  return diag_[p];
}

std::vector<MatBlockCoord> TrianglePartition::owned_blocks(
    std::size_t p) const {
  std::vector<MatBlockCoord> out;
  const auto& Rp = R(p);
  for (std::size_t s = 0; s < Rp.size(); ++s) {
    for (std::size_t t = s + 1; t < Rp.size(); ++t) {
      out.push_back(MatBlockCoord{Rp[t], Rp[s]});
    }
  }
  for (const std::size_t i : diag_[p]) {
    out.push_back(MatBlockCoord{i, i});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t TrianglePartition::owner(const MatBlockCoord& c) const {
  STTSV_REQUIRE(c.i >= c.j && c.i < sys_.num_points(),
                "block must be sorted and in range");
  if (c.i == c.j) return diag_owner_[c.i];
  return sys_.block_of_pair(c.i, c.j);
}

MatShare TrianglePartition::share(std::size_t row_block,
                                  std::size_t p) const {
  const auto& Qi = Q(row_block);
  const auto it = std::lower_bound(Qi.begin(), Qi.end(), p);
  STTSV_REQUIRE(it != Qi.end() && *it == p,
                "processor does not require this row block");
  const auto pos = static_cast<std::size_t>(it - Qi.begin());
  const std::size_t w = Qi.size();
  const std::size_t base = b_ / w;
  const std::size_t extra = b_ % w;
  return MatShare{pos * base + std::min(pos, extra),
                  base + (pos < extra ? 1 : 0)};
}

void TrianglePartition::validate() const {
  const std::size_t m = sys_.num_points();
  // Every lower-triangle block owned exactly once by a compatible owner.
  std::size_t counted = 0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const std::size_t p = owner(MatBlockCoord{i, j});
      const auto& Rp = R(p);
      STTSV_CHECK(std::binary_search(Rp.begin(), Rp.end(), i) &&
                      std::binary_search(Rp.begin(), Rp.end(), j),
                  "owner incompatible with block indices");
      ++counted;
    }
  }
  STTSV_CHECK(counted == m * (m + 1) / 2, "triangle coverage mismatch");

  // Owned lists consistent, diagonal totals exact.
  std::size_t diag_total = 0;
  for (std::size_t p = 0; p < sys_.num_blocks(); ++p) {
    for (const auto& c : owned_blocks(p)) {
      STTSV_CHECK(owner(c) == p, "owned_blocks/owner mismatch");
    }
    diag_total += diag_[p].size();
  }
  STTSV_CHECK(diag_total == m, "diagonal blocks not all assigned");

  // Shares tile each row block.
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t cursor = 0;
    for (const std::size_t p : Q(i)) {
      const MatShare s = share(i, p);
      STTSV_CHECK(s.offset == cursor, "share gap/overlap");
      cursor += s.length;
    }
    STTSV_CHECK(cursor == b_, "shares do not tile the row block");
  }
}

}  // namespace sttsv::matrix
