#pragma once
// Rank-loss recovery (DESIGN.md §15): run Algorithm 5 under a liveness-
// aware reliable exchange, and when a peer is declared dead, shrink the
// role assignment to the survivors, redistribute exactly the orphaned
// vector shares, and re-run — looping until a run completes or the
// shrink budget is spent.
//
// Redistribution is *verified*: the planner computes the block/slice
// movement diff in closed form (only roles hosted on dead ranks move;
// tensor blocks never travel — the new host regenerates them from the
// owner-compute invariant), the mover charges every word to the ledger's
// recovery channel, and the caller checks measured == planned to the
// word. The from-scratch comparator (laying out the full distribution
// anew) bounds how much the diff saves.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/parallel_sttsv.hpp"
#include "elastic/assignment.hpp"
#include "elastic/elastic_run.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "simt/pipeline.hpp"
#include "simt/reliable_exchange.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::elastic {

struct RecoveryOptions {
  simt::RetryPolicy retry = {};
  simt::LivenessPolicy liveness{true, 3};
  /// Distinct rank-loss verdicts survived before giving up (rethrow).
  std::size_t max_shrinks = 4;
  simt::Transport transport = simt::Transport::kPointToPoint;
  simt::PipelineMode pipeline = simt::PipelineMode::kDoubleBuffered;
};

/// One orphaned role re-homed: its x shares (words) travel from the
/// coordinator to the new host. words == 0 when the coordinator itself
/// adopts the role (a local copy).
struct RoleMove {
  std::size_t role = 0;
  std::size_t to = 0;
  std::size_t words = 0;
};

struct RedistributionPlan {
  std::vector<RoleMove> moves;
  /// Donor of every moved share: the lowest live rank. Honest because
  /// the submitting layer retains x (batch::Engine copies it; serve
  /// holds the job) — the coordinator re-slices from the retained input.
  std::size_t coordinator = 0;
  /// Σ move words: the minimal diff, checked against measured traffic.
  std::uint64_t planned_words = 0;
  /// Tensor entries the adopting hosts regenerate locally (never sent).
  std::uint64_t regenerated_entries = 0;
  /// Comparator: words to lay out the whole distribution from scratch.
  std::uint64_t from_scratch_words = 0;
};

/// Computes the movement diff between two assignments over the same
/// partition: exactly the roles whose host changed.
[[nodiscard]] RedistributionPlan plan_redistribution(
    const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const BlockAssignment& from,
    const BlockAssignment& to);

/// Executes the plan through the pooled exchange path: one raw exchange
/// of recovery-flagged envelopes (charged to the ledger's recovery
/// channel), one aggregated payload per adopting host, slices in
/// (role ascending, R_role order) walk. Verifies every delivered slice
/// word-for-word against the source vector and returns the measured
/// recovery-channel delta.
std::uint64_t execute_redistribution(simt::Machine& machine,
                                     const partition::TetraPartition& part,
                                     const partition::VectorDistribution& dist,
                                     const std::vector<double>& x,
                                     const RedistributionPlan& plan);

struct RecoveryOutcome {
  core::ParallelRunResult result;
  /// The assignment the successful run executed under.
  BlockAssignment assignment;
  /// One detector verdict per survived shrink, in order.
  std::vector<simt::RankLossReport> reports;
  std::vector<RedistributionPlan> redistributions;
  /// Measured recovery-channel words, summed over all shrinks; equals
  /// Σ plan.planned_words (checked).
  std::uint64_t redistribution_words = 0;
  std::size_t shrinks = 0;
  /// Σ silent attempts that backed the verdicts — detection latency in
  /// protocol attempts.
  std::size_t detection_attempts = 0;
};

/// The recovery loop. Runs elastic_sttsv under kFailFast + the given
/// liveness policy; on RankLossError shrinks to the machine's survivor
/// set, plans + executes + verifies redistribution, and retries. After
/// `max_shrinks` verdicts the next RankLossError propagates. Other
/// FaultErrors (link faults past the retry budget) always propagate.
RecoveryOutcome run_with_recovery(
    simt::Machine& machine, const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const tensor::SymTensor3& a,
    const std::vector<double>& x, const RecoveryOptions& opts = {},
    std::optional<BlockAssignment> initial = std::nullopt);

}  // namespace sttsv::elastic
