#include "elastic/assignment.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::elastic {

BlockAssignment BlockAssignment::identity(std::size_t num_roles) {
  STTSV_REQUIRE(num_roles >= 1, "assignment needs at least one role");
  BlockAssignment a;
  a.hosts_.resize(num_roles);
  a.live_.resize(num_roles);
  for (std::size_t r = 0; r < num_roles; ++r) {
    a.hosts_[r] = r;
    a.live_[r] = r;
  }
  return a;
}

BlockAssignment BlockAssignment::shrink(
    const std::vector<std::size_t>& dead) const {
  std::vector<std::size_t> dying = dead;
  std::sort(dying.begin(), dying.end());
  dying.erase(std::unique(dying.begin(), dying.end()), dying.end());
  for (const std::size_t r : dying) {
    STTSV_REQUIRE(r < hosts_.size(), "dead rank out of range");
  }

  BlockAssignment next;
  next.epoch_ = epoch_ + 1;
  for (const std::size_t r : live_) {
    if (!std::binary_search(dying.begin(), dying.end(), r)) {
      next.live_.push_back(r);
    }
  }
  STTSV_REQUIRE(!next.live_.empty(), "shrink would leave no live rank");

  next.hosts_ = hosts_;
  std::vector<std::size_t> load(hosts_.size(), 0);
  for (std::size_t role = 0; role < hosts_.size(); ++role) {
    if (std::binary_search(next.live_.begin(), next.live_.end(),
                           hosts_[role])) {
      ++load[hosts_[role]];
    }
  }
  // Orphaned roles ascending, each to the currently least-loaded live
  // rank (ties to the lowest id): deterministic, and from the uniform
  // start it keeps per-host loads within one of each other.
  for (std::size_t role = 0; role < hosts_.size(); ++role) {
    if (std::binary_search(next.live_.begin(), next.live_.end(),
                           hosts_[role])) {
      continue;
    }
    std::size_t best = next.live_.front();
    for (const std::size_t h : next.live_) {
      if (load[h] < load[best]) best = h;
    }
    next.hosts_[role] = best;
    ++load[best];
  }
  return next;
}

std::size_t BlockAssignment::host(std::size_t role) const {
  STTSV_REQUIRE(role < hosts_.size(), "role out of range");
  return hosts_[role];
}

std::vector<std::size_t> BlockAssignment::roles_of(std::size_t rank) const {
  std::vector<std::size_t> roles;
  for (std::size_t role = 0; role < hosts_.size(); ++role) {
    if (hosts_[role] == rank) roles.push_back(role);
  }
  return roles;
}

void BlockAssignment::validate() const {
  STTSV_CHECK(!live_.empty(), "assignment has no live ranks");
  STTSV_CHECK(std::is_sorted(live_.begin(), live_.end()),
              "live set must be sorted");
  std::vector<std::size_t> load(hosts_.size(), 0);
  for (const std::size_t h : hosts_) {
    STTSV_CHECK(std::binary_search(live_.begin(), live_.end(), h),
                "role hosted on a dead rank");
    ++load[h];
  }
  std::size_t lo = hosts_.size();
  std::size_t hi = 0;
  for (const std::size_t h : live_) {
    STTSV_CHECK(load[h] >= 1, "live rank hosts no role");
    lo = std::min(lo, load[h]);
    hi = std::max(hi, load[h]);
  }
  STTSV_CHECK(hi - lo <= 1, "role loads unbalanced beyond one");
}

}  // namespace sttsv::elastic
