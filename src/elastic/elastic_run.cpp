#include "elastic/elastic_run.hpp"

#include <algorithm>
#include <map>

#include "core/block_kernels.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace sttsv::elastic {

namespace {

using partition::Share;
using partition::TetraPartition;
using partition::VectorDistribution;
using simt::Delivery;
using simt::Envelope;

/// Row blocks both roles require: R_sp ∩ R_rp (ascending) — the Steiner
/// property caps this at 2 for distinct roles (Section 7.2.2).
std::vector<std::size_t> common_blocks(const TetraPartition& part,
                                       std::size_t sp, std::size_t rp) {
  const auto& a = part.R(sp);
  const auto& b = part.R(rp);
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

core::ParallelRunResult elastic_sttsv(simt::Exchanger& exchanger,
                                      const TetraPartition& part,
                                      const VectorDistribution& dist,
                                      const tensor::SymTensor3& a,
                                      const std::vector<double>& x,
                                      const BlockAssignment& assign,
                                      simt::Transport transport,
                                      simt::PipelineMode pipeline) {
  simt::Machine& machine = exchanger.machine();
  const std::size_t num_roles = part.num_processors();
  const std::size_t b = dist.block_length_b();
  const std::size_t n = dist.logical_n();
  STTSV_REQUIRE(assign.num_roles() == num_roles,
                "assignment must cover every partition role");
  STTSV_REQUIRE(machine.num_ranks() == num_roles,
                "hosts live in the original rank space");
  STTSV_REQUIRE(a.dim() == n, "tensor dimension must match distribution");
  STTSV_REQUIRE(x.size() == n, "input vector length mismatch");

  const std::vector<std::size_t>& live = assign.live_ranks();
  const std::size_t chunks =
      pipeline == simt::PipelineMode::kDoubleBuffered && live.size() > 1 ? 2
                                                                         : 1;

  // roles_by_host[h]: roles hosted by h, ascending (empty off the live
  // set). The deterministic walk below iterates these everywhere.
  std::vector<std::vector<std::size_t>> roles_by_host(num_roles);
  for (const std::size_t h : live) roles_by_host[h] = assign.roles_of(h);

  // Role pairs that exchange: rp requires a block sp also requires.
  const auto pair_blocks = [&](std::size_t sp, std::size_t rp) {
    return sp == rp ? std::vector<std::size_t>{} : common_blocks(part, sp, rp);
  };

  std::vector<double> x_pad(dist.padded_n(), 0.0);
  std::copy(x.begin(), x.end(), x_pad.begin());

  // ---- Phase 1: x shares, keyed by role. -----------------------------
  obs::Span x_phase("elastic.x-shares", obs::Category::kSuperstep);
  std::vector<std::map<std::size_t, std::vector<double>>> x_loc(num_roles);
  for (const std::size_t h : live) {
    for (const std::size_t role : roles_by_host[h]) {
      for (const std::size_t i : part.R(role)) {
        auto& blockvec = x_loc[role][i];
        blockvec.assign(b, 0.0);
        const Share s = dist.share(i, role);
        std::copy_n(x_pad.data() + i * b + s.offset, s.length,
                    blockvec.data() + s.offset);
      }
    }
  }
  // Co-hosted role pairs: the share lands by local copy, off the wire —
  // the elastic analogue of "self-sends are local copies".
  for (const std::size_t h : live) {
    for (const std::size_t sp : roles_by_host[h]) {
      for (const std::size_t rp : roles_by_host[h]) {
        for (const std::size_t i : pair_blocks(sp, rp)) {
          const Share s = dist.share(i, sp);
          std::copy_n(x_pad.data() + i * b + s.offset, s.length,
                      x_loc[rp][i].data() + s.offset);
        }
      }
    }
  }

  // One envelope per ordered live host pair per chunk: sending roles of
  // hf ascending x receiving roles of ht ascending x common blocks.
  const auto pack_x = [&](std::size_t c) {
    std::vector<std::vector<Envelope>> outboxes(num_roles);
    for (const std::size_t hf : live) {
      for (const std::size_t ht : live) {
        if (hf == ht || (hf + ht) % chunks != c) continue;
        std::size_t words = 0;
        for (const std::size_t sp : roles_by_host[hf]) {
          for (const std::size_t rp : roles_by_host[ht]) {
            for (const std::size_t i : pair_blocks(sp, rp)) {
              words += dist.share(i, sp).length;
            }
          }
        }
        if (words == 0) continue;
        simt::PooledBuffer buf = machine.pool().acquire(hf, words);
        for (const std::size_t sp : roles_by_host[hf]) {
          for (const std::size_t rp : roles_by_host[ht]) {
            for (const std::size_t i : pair_blocks(sp, rp)) {
              const Share s = dist.share(i, sp);
              buf.append(x_pad.data() + i * b + s.offset, s.length);
            }
          }
        }
        outboxes[hf].push_back(Envelope{ht, std::move(buf)});
      }
    }
    return outboxes;
  };
  const auto consume_x = [&](std::vector<std::vector<Delivery>> in) {
    for (std::size_t ht = 0; ht < in.size(); ++ht) {
      for (const Delivery& d : in[ht]) {
        std::size_t cursor = 0;
        for (const std::size_t sp : roles_by_host[d.from]) {
          for (const std::size_t rp : roles_by_host[ht]) {
            for (const std::size_t i : pair_blocks(sp, rp)) {
              const Share s = dist.share(i, sp);
              STTSV_CHECK(cursor + s.length <= d.data.size(),
                          "x delivery shorter than expected");
              std::copy_n(d.data.data() + cursor, s.length,
                          x_loc[rp][i].data() + s.offset);
              cursor += s.length;
            }
          }
        }
        STTSV_CHECK(cursor == d.data.size(),
                    "x delivery longer than expected");
      }
    }
  };
  exchanger.set_phase("x-shares");
  simt::pipelined_exchange(exchanger, transport, chunks, pipeline, pack_x,
                           consume_x);
  x_phase.close();

  // ---- Phases 2+3: kernels per role, partial-y exchange per host. ----
  std::vector<std::map<std::size_t, std::vector<double>>> y_loc(num_roles);
  // Contributions into role rp, keyed by sending role sp (wire-delivered
  // and co-hosted alike): packed share(i, rp) slices over the common
  // blocks of (sp, rp). Reduced ascending by sp below — the same
  // floating-point order at every assignment.
  std::vector<std::map<std::size_t, std::vector<double>>> y_contrib(
      num_roles);
  core::ParallelRunResult result;
  result.ternary_mults.assign(num_roles, 0);

  std::vector<std::vector<std::size_t>> host_chunks(chunks);
  for (std::size_t idx = 0; idx < live.size(); ++idx) {
    host_chunks[idx % chunks].push_back(live[idx]);
  }

  obs::Span y_phase("elastic.y-partials", obs::Category::kSuperstep);
  const auto pack_y = [&](std::size_t c) {
    machine.run_ranks(host_chunks[c], [&](std::size_t h) {
      for (const std::size_t role : roles_by_host[h]) {
        for (const std::size_t i : part.R(role)) {
          y_loc[role][i].assign(b, 0.0);
        }
        for (const partition::BlockCoord& coord : part.owned_blocks(role)) {
          core::BlockBuffers buf;
          buf.x[0] = x_loc[role].at(coord.i).data();
          buf.x[1] = x_loc[role].at(coord.j).data();
          buf.x[2] = x_loc[role].at(coord.k).data();
          buf.y[0] = y_loc[role].at(coord.i).data();
          buf.y[1] = y_loc[role].at(coord.j).data();
          buf.y[2] = y_loc[role].at(coord.k).data();
          result.ternary_mults[role] += core::apply_block(a, coord, b, buf);
        }
        x_loc[role].clear();
      }
    });
    std::vector<std::vector<Envelope>> y_out(num_roles);
    for (const std::size_t hf : host_chunks[c]) {
      // Co-hosted contributions: straight into the reduction buffers.
      for (const std::size_t sp : roles_by_host[hf]) {
        for (const std::size_t rp : roles_by_host[hf]) {
          const std::vector<std::size_t> common = pair_blocks(sp, rp);
          if (common.empty()) continue;
          auto& packed = y_contrib[rp][sp];
          for (const std::size_t i : common) {
            const Share s = dist.share(i, rp);
            const double* src = y_loc[sp].at(i).data() + s.offset;
            packed.insert(packed.end(), src, src + s.length);
          }
        }
      }
      for (const std::size_t ht : live) {
        if (ht == hf) continue;
        // Send the *receiving role's* share of each common row block.
        std::size_t words = 0;
        for (const std::size_t sp : roles_by_host[hf]) {
          for (const std::size_t rp : roles_by_host[ht]) {
            for (const std::size_t i : pair_blocks(sp, rp)) {
              words += dist.share(i, rp).length;
            }
          }
        }
        if (words == 0) continue;
        simt::PooledBuffer buf = machine.pool().acquire(hf, words);
        for (const std::size_t sp : roles_by_host[hf]) {
          for (const std::size_t rp : roles_by_host[ht]) {
            for (const std::size_t i : pair_blocks(sp, rp)) {
              const Share s = dist.share(i, rp);
              buf.append(y_loc[sp].at(i).data() + s.offset, s.length);
            }
          }
        }
        y_out[hf].push_back(Envelope{ht, std::move(buf)});
      }
    }
    return y_out;
  };
  const auto consume_y = [&](std::vector<std::vector<Delivery>> in) {
    for (std::size_t ht = 0; ht < in.size(); ++ht) {
      for (const Delivery& d : in[ht]) {
        std::size_t cursor = 0;
        for (const std::size_t sp : roles_by_host[d.from]) {
          for (const std::size_t rp : roles_by_host[ht]) {
            const std::vector<std::size_t> common = pair_blocks(sp, rp);
            if (common.empty()) continue;
            auto& packed = y_contrib[rp][sp];
            for (const std::size_t i : common) {
              const Share s = dist.share(i, rp);
              STTSV_CHECK(cursor + s.length <= d.data.size(),
                          "y delivery shorter than expected");
              packed.insert(packed.end(), d.data.data() + cursor,
                            d.data.data() + cursor + s.length);
              cursor += s.length;
            }
          }
        }
        STTSV_CHECK(cursor == d.data.size(),
                    "y delivery longer than expected");
      }
    }
  };
  exchanger.set_phase("y-partials");
  simt::pipelined_exchange(exchanger, transport, chunks, pipeline, pack_y,
                           consume_y);

  // Own share = local partial + contributions, sending roles ascending —
  // the identity-assignment (== serialized P-rank) reduction order.
  std::vector<double> y_pad(dist.padded_n(), 0.0);
  for (std::size_t rp = 0; rp < num_roles; ++rp) {
    for (const std::size_t i : part.R(rp)) {
      const Share s = dist.share(i, rp);
      for (std::size_t off = 0; off < s.length; ++off) {
        y_pad[i * b + s.offset + off] += y_loc[rp].at(i)[s.offset + off];
      }
    }
    for (const auto& [sp, packed] : y_contrib[rp]) {
      std::size_t cursor = 0;
      for (const std::size_t i : pair_blocks(sp, rp)) {
        const Share s = dist.share(i, rp);
        STTSV_CHECK(cursor + s.length <= packed.size(),
                    "y contribution shorter than expected");
        for (std::size_t off = 0; off < s.length; ++off) {
          y_pad[i * b + s.offset + off] += packed[cursor + off];
        }
        cursor += s.length;
      }
      STTSV_CHECK(cursor == packed.size(),
                  "y contribution longer than expected");
    }
  }

  machine.ledger().verify_conservation();
  result.y.assign(y_pad.begin(), y_pad.begin() + static_cast<long>(n));
  const simt::LedgerMaxima maxima = machine.ledger().maxima();
  result.max_words_sent = maxima.words_sent;
  result.max_words_received = maxima.words_received;
  return result;
}

}  // namespace sttsv::elastic
