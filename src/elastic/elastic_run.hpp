#pragma once
// Role-hosted parallel STTSV (DESIGN.md §15): Algorithm 5 executed under
// a BlockAssignment that maps the partition's P roles onto a (possibly
// smaller) set of live host ranks.
//
// The driver is core::parallel_sttsv with one level of indirection:
// kernels, x shares and partial-y reductions are all keyed by *role*;
// the wire is keyed by *host*. Each ordered host pair moves exactly one
// aggregated envelope per phase chunk whose layout both sides replay
// deterministically (sending roles ascending x receiving roles ascending
// x common row blocks ascending); role pairs co-hosted on one rank are
// local copies and never touch the wire or the ledger.
//
// The partial-y reduction orders contributions by sending *role*, not by
// host — the same floating-point order at every assignment — so y is
// bitwise identical to core::parallel_sttsv at the identity assignment
// AND invariant across shrinks: the recovery property test compares a
// crashed-then-shrunk run against a fault-free run at P' byte for byte.

#include <vector>

#include "core/parallel_sttsv.hpp"
#include "elastic/assignment.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "simt/pipeline.hpp"
#include "simt/reliable_exchange.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::elastic {

/// Runs y = A x₂ x x₃ x with the partition's roles placed by `assign`.
/// Requirements: machine.num_ranks() == part.num_processors() (hosts are
/// drawn from the original rank space), assign.num_roles() ==
/// part.num_processors(), every assigned host alive on the machine.
/// ternary_mults in the result are per-role (the partition's own
/// accounting), not per-host.
core::ParallelRunResult elastic_sttsv(
    simt::Exchanger& exchanger, const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const tensor::SymTensor3& a,
    const std::vector<double>& x, const BlockAssignment& assign,
    simt::Transport transport,
    simt::PipelineMode pipeline = simt::PipelineMode::kDoubleBuffered);

}  // namespace sttsv::elastic
