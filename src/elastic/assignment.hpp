#pragma once
// Role-to-host assignment for elastic rank membership (DESIGN.md §15).
//
// A Steiner (m, r, 3) system fixes the number of partition *roles* at P =
// #blocks; an arbitrary survivor count P' = P - f generally admits no
// Steiner system at all. So instead of re-deriving a partition for P',
// the elastic layer keeps the P base roles of the TetraPartition — their
// R_p subsets, owned blocks and Hall matching are untouched — and remaps
// each role onto a live *host* rank. A host owning several roles runs
// their kernels back to back and exchanges their shares over one
// aggregated envelope per host pair; role pairs that land on the same
// host become local copies and leave the wire entirely.
//
// shrink() is the redistribution planner's input: orphaned roles (hosted
// on a dead rank) are re-homed, ascending, onto the live rank currently
// hosting the fewest roles (ties to the lowest rank id) — the greedy
// balance matching the Hall-quota spirit of Section 6.1.3. Everything
// else stays put, so the block/slice movement diff is minimal: only dead
// ranks' roles move.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sttsv::elastic {

class BlockAssignment {
 public:
  /// Every role hosted by its own rank — the P-rank fault-free layout,
  /// under which the elastic driver reproduces core::parallel_sttsv
  /// bit for bit.
  static BlockAssignment identity(std::size_t num_roles);

  /// A new assignment with `dead` ranks (sorted or not, duplicates fine)
  /// removed from the live set and their roles re-homed as described
  /// above. Epoch advances by one per shrink. Throws if nothing would
  /// remain alive or a dead rank is out of range.
  [[nodiscard]] BlockAssignment shrink(
      const std::vector<std::size_t>& dead) const;

  [[nodiscard]] std::size_t num_roles() const { return hosts_.size(); }
  [[nodiscard]] std::size_t host(std::size_t role) const;

  /// Roles hosted by `rank`, ascending (empty for dead ranks).
  [[nodiscard]] std::vector<std::size_t> roles_of(std::size_t rank) const;

  /// Live ranks, ascending.
  [[nodiscard]] const std::vector<std::size_t>& live_ranks() const {
    return live_;
  }

  /// Monotone shrink counter; the serving stack keys plan-cache entries
  /// on it so a membership change can never hit a stale plan.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Every host is live, every live rank hosts at least one role, and
  /// per-host role counts differ by at most one (the greedy re-homing
  /// preserves this from the uniform start). Throws on violation.
  void validate() const;

 private:
  BlockAssignment() = default;

  std::vector<std::size_t> hosts_;  // role -> live rank
  std::vector<std::size_t> live_;  // ascending
  std::uint64_t epoch_ = 0;
};

}  // namespace sttsv::elastic
