#include "elastic/recovery.hpp"

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "support/check.hpp"

namespace sttsv::elastic {

namespace {

using partition::Share;

/// Words of x owned by `role`: Σ_{i∈R_role} |share(i, role)|.
std::size_t role_share_words(const partition::TetraPartition& part,
                             const partition::VectorDistribution& dist,
                             std::size_t role) {
  std::size_t words = 0;
  for (const std::size_t i : part.R(role)) {
    words += dist.share(i, role).length;
  }
  return words;
}

}  // namespace

RedistributionPlan plan_redistribution(
    const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const BlockAssignment& from,
    const BlockAssignment& to) {
  STTSV_REQUIRE(from.num_roles() == to.num_roles(),
                "assignments cover different role sets");
  RedistributionPlan plan;
  plan.coordinator = to.live_ranks().front();
  const std::size_t b = dist.block_length_b();
  for (std::size_t role = 0; role < from.num_roles(); ++role) {
    plan.from_scratch_words += role_share_words(part, dist, role);
    if (from.host(role) == to.host(role)) continue;
    RoleMove move;
    move.role = role;
    move.to = to.host(role);
    move.words =
        move.to == plan.coordinator ? 0 : role_share_words(part, dist, role);
    plan.planned_words += move.words;
    plan.regenerated_entries += part.stored_entries(role, b);
    plan.moves.push_back(move);
  }
  return plan;
}

std::uint64_t execute_redistribution(
    simt::Machine& machine, const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const std::vector<double>& x,
    const RedistributionPlan& plan) {
  obs::Span span("recovery.redistribute", obs::Category::kRecovery,
                 plan.planned_words);
  const std::size_t b = dist.block_length_b();
  std::vector<double> x_pad(dist.padded_n(), 0.0);
  std::copy(x.begin(), x.end(), x_pad.begin());

  const std::uint64_t before = machine.ledger().total_recovery_words();

  // One aggregated payload per adopting host: moved roles ascending,
  // blocks in R_role order, the role's share slice of each.
  std::vector<std::size_t> hosts;
  for (const RoleMove& m : plan.moves) {
    if (m.words > 0) hosts.push_back(m.to);
  }
  std::sort(hosts.begin(), hosts.end());
  hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());

  std::vector<std::vector<simt::Envelope>> outboxes(machine.num_ranks());
  for (const std::size_t h : hosts) {
    std::size_t words = 0;
    for (const RoleMove& m : plan.moves) {
      if (m.to == h) words += m.words;
    }
    simt::PooledBuffer buf = machine.pool().acquire(plan.coordinator, words);
    for (const RoleMove& m : plan.moves) {
      if (m.to != h || m.words == 0) continue;
      for (const std::size_t i : part.R(m.role)) {
        const Share s = dist.share(i, m.role);
        buf.append(x_pad.data() + i * b + s.offset, s.length);
      }
    }
    simt::Envelope env;
    env.to = h;
    env.data = std::move(buf);
    env.recovery = true;
    outboxes[plan.coordinator].push_back(std::move(env));
  }
  auto inboxes =
      machine.exchange(std::move(outboxes), simt::Transport::kPointToPoint);

  // Verify delivery word-for-word against the source slices: the walk is
  // deterministic, so the adopting host's view must equal the donor's.
  for (const std::size_t h : hosts) {
    std::size_t expect = 0;
    for (const RoleMove& m : plan.moves) {
      if (m.to == h) expect += m.words;
    }
    std::size_t got = 0;
    for (const simt::Delivery& d : inboxes[h]) {
      STTSV_CHECK(d.from == plan.coordinator,
                  "unexpected redistribution sender");
      std::size_t cursor = 0;
      for (const RoleMove& m : plan.moves) {
        if (m.to != h || m.words == 0) continue;
        for (const std::size_t i : part.R(m.role)) {
          const Share s = dist.share(i, m.role);
          STTSV_CHECK(std::memcmp(d.data.data() + cursor,
                                  x_pad.data() + i * b + s.offset,
                                  s.length * sizeof(double)) == 0,
                      "redistributed share diverges from source");
          cursor += s.length;
        }
      }
      got += d.data.size();
    }
    STTSV_CHECK(got == expect, "redistribution delivery incomplete");
  }

  return machine.ledger().total_recovery_words() - before;
}

RecoveryOutcome run_with_recovery(simt::Machine& machine,
                                  const partition::TetraPartition& part,
                                  const partition::VectorDistribution& dist,
                                  const tensor::SymTensor3& a,
                                  const std::vector<double>& x,
                                  const RecoveryOptions& opts,
                                  std::optional<BlockAssignment> initial) {
  RecoveryOutcome out{{},
                      initial.has_value()
                          ? std::move(*initial)
                          : BlockAssignment::identity(part.num_processors()),
                      {},
                      {},
                      0,
                      0,
                      0};
  for (;;) {
    simt::ReliableExchange rex(machine, opts.retry,
                               simt::RecoveryPolicy::kFailFast,
                               opts.liveness);
    try {
      out.result = elastic_sttsv(rex, part, dist, a, x, out.assignment,
                                 opts.transport, opts.pipeline);
      return out;
    } catch (const simt::RankLossError& e) {
      if (out.shrinks >= opts.max_shrinks) throw;
      out.reports.push_back(e.rank_loss());
      out.detection_attempts += e.rank_loss().silent_attempts;

      obs::Span span("recovery.shrink", obs::Category::kRecovery,
                     e.rank_loss().dead_ranks.size());
      BlockAssignment next = out.assignment.shrink(machine.dead_ranks());
      next.validate();
      RedistributionPlan plan =
          plan_redistribution(part, dist, out.assignment, next);
      const std::uint64_t measured =
          execute_redistribution(machine, part, dist, x, plan);
      STTSV_CHECK(measured == plan.planned_words,
                  "measured redistribution diverges from the planned diff");
      out.redistribution_words += measured;
      out.redistributions.push_back(std::move(plan));
      out.assignment = next;
      ++out.shrinks;
    }
  }
}

}  // namespace sttsv::elastic
