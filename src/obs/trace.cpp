#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace sttsv::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's append-only span log. Owned by the tracer (threads hold a
/// raw pointer validated by generation), so buffers survive thread exit
/// and clear() can invalidate every attachment at once.
struct SpanBuffer {
  std::vector<SpanRecord> spans;
};

struct ThreadState {
  SpanBuffer* buffer = nullptr;
  std::uint64_t generation = 0;  // the tracer generation `buffer` belongs to
  std::size_t rank = kDriverTrack;
  std::uint32_t depth = 0;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

/// Tracer-private storage, kept out of the header so the hot path stays a
/// single atomic load. One process-wide instance (matching tracer()).
struct TracerState {
  Clock::time_point epoch = Clock::now();
  mutable std::mutex mu;
  std::vector<std::unique_ptr<SpanBuffer>> buffers;
  std::atomic<std::uint64_t> generation{1};
};

TracerState& state() {
  static TracerState s;
  return s;
}

SpanBuffer& attach(ThreadState& ts) {
  TracerState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.buffers.push_back(std::make_unique<SpanBuffer>());
  ts.buffer = s.buffers.back().get();
  ts.generation = s.generation.load(std::memory_order_relaxed);
  return *ts.buffer;
}

}  // namespace

const char* category_name(Category c) {
  switch (c) {
    case Category::kSuperstep:
      return "superstep";
    case Category::kExchange:
      return "exchange";
    case Category::kKernel:
      return "kernel";
    case Category::kRetry:
      return "retry";
    case Category::kPlanCache:
      return "plan-cache";
    case Category::kEngineFlush:
      return "engine-flush";
    case Category::kPipeline:
      return "pipeline";
    case Category::kServe:
      return "serve";
    case Category::kRecovery:
      return "recovery";
    case Category::kOneSided:
      return "onesided";
    case Category::kOther:
      return "other";
  }
  return "other";
}

Tracer::Tracer() = default;

void Tracer::configure(const Config& config) {
  enabled_.store(kTracingCompiledIn && config.tracing,
                 std::memory_order_relaxed);
}

Config Tracer::config() const { return Config{enabled()}; }

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           state().epoch)
          .count());
}

void Tracer::record(const SpanRecord& span) {
  if (!enabled()) return;
  ThreadState& ts = thread_state();
  if (ts.buffer == nullptr ||
      ts.generation != state().generation.load(std::memory_order_relaxed)) {
    attach(ts);
  }
  ts.buffer->spans.push_back(span);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const TracerState& s = state();
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& buf : s.buffers) {
      out.insert(out.end(), buf->spans.begin(), buf->spans.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.begin_ns != b.begin_ns) {
                       return a.begin_ns < b.begin_ns;
                     }
                     return a.depth < b.depth;
                   });
  return out;
}

void Tracer::clear() {
  TracerState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.buffers.clear();
  s.generation.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Tracer::total_spans() const {
  const TracerState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  std::size_t n = 0;
  for (const auto& buf : s.buffers) n += buf->spans.size();
  return n;
}

std::size_t Tracer::thread_buffers() const {
  const TracerState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.buffers.size();
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

ScopedRank::ScopedRank(std::size_t rank) {
  ThreadState& ts = thread_state();
  saved_ = ts.rank;
  ts.rank = rank;
}

ScopedRank::~ScopedRank() { thread_state().rank = saved_; }

Span::Span(const char* name, Category category, std::uint64_t arg) {
  if constexpr (!kTracingCompiledIn) {
    (void)name;
    (void)category;
    (void)arg;
    return;
  }
  if (!tracer().enabled()) return;
  name_ = name;
  category_ = category;
  arg_ = arg;
  begin_ns_ = tracer().now_ns();
  ++thread_state().depth;
  active_ = true;
}

void Span::close() {
  if (!active_) return;
  active_ = false;
  ThreadState& ts = thread_state();
  --ts.depth;
  SpanRecord rec;
  rec.name = name_;
  rec.category = category_;
  rec.rank = ts.rank;
  rec.begin_ns = begin_ns_;
  rec.end_ns = tracer().now_ns();
  rec.arg = arg_;
  rec.depth = ts.depth;
  tracer().record(rec);
}

}  // namespace sttsv::obs
