#pragma once
// Named metrics registry (DESIGN.md §11): counters, gauges and scalar
// histograms that the instrumented subsystems publish into — the
// CommLedger's two channels (CommLedger::to_metrics), ReliableExchange
// and FaultInjector protocol stats, PlanCache hit rates, batch::Engine
// throughput counters. Benches snapshot a registry into their JSON
// artifacts via obs::write_metrics_json, so every run's breakdown is a
// queryable artifact instead of hand-rolled fields.
//
// Names are flat dotted paths ("ledger.goodput.max_words_sent",
// "rex.retransmitted_frames", "plan_cache.hits"); storage is ordered by
// name so exports are deterministic. Recording takes a mutex — metrics
// publication happens at run boundaries, never inside kernels, so the
// lock is not on any hot path.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sttsv::obs {

/// Scalar histogram: count/sum/min/max summary plus log-spaced buckets
/// (8 sub-buckets per octave) dense enough for percentile extraction with
/// bounded relative error (one sub-bucket ≈ 9%). Serving-path latency
/// reporting (bench_serve, per-tenant queue-wait/service-time) reads
/// p50/p90/p99 straight from a registry snapshot.
struct HistogramStats {
  /// Sub-buckets per power of two; bucket bounds are 2^(e/8).
  static constexpr std::size_t kSubBuckets = 8;
  /// Smallest finite bucket edge exponent: values <= 2^kMinExp (including
  /// zero and negatives) land in the underflow bucket 0.
  static constexpr int kMinExp = -32;
  /// Largest bucket edge exponent: values >= 2^kMaxExp saturate into the
  /// last bucket. Covers nanoseconds through multi-hour seconds.
  static constexpr int kMaxExp = 40;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// buckets[0] is underflow (value <= 2^kMinExp); buckets[i] for i >= 1
  /// counts values in (2^((i-1)/8 + kMinExp), 2^(i/8 + kMinExp)], saturating
  /// at i = (kMaxExp - kMinExp) * 8. Sized lazily up to the highest bucket
  /// touched.
  std::vector<std::uint64_t> buckets;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Bucket index for one observation (0 = underflow).
  [[nodiscard]] static std::size_t bucket_index(double value);
  /// Folds one observation into count/sum/min/max and its bucket.
  void observe(double value);
  /// Nearest-rank percentile estimate for q in [0, 1]: the geometric
  /// midpoint of the bucket holding the rank-q observation, clamped to
  /// the exact [min, max] envelope. 0 when the histogram is empty.
  [[nodiscard]] double percentile(double q) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (created at 0).
  void add_counter(const std::string& name, std::uint64_t delta = 1);
  /// Sets the named counter to an absolute value (for publishing totals
  /// that the producer already accumulated, e.g. ledger word counts).
  void set_counter(const std::string& name, std::uint64_t value);
  void set_gauge(const std::string& name, double value);
  /// Folds one observation into the named histogram.
  void observe(const std::string& name, double value);

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] HistogramStats histogram(const std::string& name) const;
  /// Percentile estimate over the named histogram (0 when absent).
  [[nodiscard]] double percentile(const std::string& name, double q) const;

  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, HistogramStats>>
  histograms() const;

  [[nodiscard]] bool empty() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramStats> histograms_;
};

/// The process-wide registry instrumented subsystems default to when the
/// caller does not pass one explicitly.
MetricsRegistry& metrics();

}  // namespace sttsv::obs
