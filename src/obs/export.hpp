#pragma once
// Exporters for the obs subsystem (DESIGN.md §11):
//
//  * write_chrome_trace — Chrome trace_event JSON, loadable in
//    chrome://tracing and ui.perfetto.dev. One track (tid) per simulated
//    rank plus a driver track; every event carries its category and a
//    "channel" arg ("overhead" for kRetry spans — retransmissions,
//    ACK/NACK rounds, backoff, degraded replay — "goodput" otherwise),
//    mirroring the CommLedger's two-channel split.
//  * write_metrics_json — a MetricsRegistry as one JSON object via the
//    shared repro::JsonWriter (counters / gauges / histograms).
//  * rank_summary — human-readable per-rank critical-path breakdown
//    (time per category from each rank's top-level spans) for benches.

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json_writer.hpp"

namespace sttsv::obs {

/// Writes `spans` (typically tracer().snapshot()) as a complete Chrome
/// trace_event JSON document: {"traceEvents": [...]} with "X" (complete)
/// events in microseconds plus thread_name metadata naming each track.
void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanRecord>& spans);

/// Emits `registry` as an object field `key` in the writer's current
/// scope: {"counters": {...}, "gauges": {...}, "histograms": {name:
/// {count, sum, min, max, mean}}}.
void write_metrics_json(repro::JsonWriter& w, const MetricsRegistry& registry,
                        const char* key = "metrics");

/// Renders a per-rank breakdown table: for every rank track, span count
/// and total milliseconds per category, plus the rank's busy time (sum of
/// its top-level spans) — the per-processor critical-path view the paper
/// argues in. Returns "" when `spans` is empty.
[[nodiscard]] std::string rank_summary(const std::vector<SpanRecord>& spans);

}  // namespace sttsv::obs
