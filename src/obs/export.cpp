#include "obs/export.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "support/table.hpp"

namespace sttsv::obs {

namespace {

/// Chrome wants small integer thread ids; give the driver track 0 and
/// rank p the id p + 1 so ranks sort naturally in the UI.
std::uint64_t track_of(std::size_t rank) {
  return rank == kDriverTrack ? 0 : static_cast<std::uint64_t>(rank) + 1;
}

std::string track_name(std::size_t rank) {
  return rank == kDriverTrack ? "driver" : "rank " + std::to_string(rank);
}

const char* channel_of(Category c) {
  if (c == Category::kRetry) return "overhead";
  if (c == Category::kOneSided) return "onesided";
  return "goodput";
}

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanRecord>& spans) {
  // High precision: timestamps in microseconds can exceed 1e7 and the
  // sub-microsecond fraction carries the event ordering.
  repro::JsonWriter w(out, 15);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.begin_array("traceEvents");

  // Name each track once, ascending, so the viewer orders them.
  std::map<std::uint64_t, std::string> tracks;
  for (const SpanRecord& s : spans) tracks[track_of(s.rank)] = track_name(s.rank);
  for (const auto& [tid, name] : tracks) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", std::uint64_t{0});
    w.field("tid", tid);
    w.begin_object("args");
    w.field("name", name);
    w.end_object();
    w.end_object();
  }

  for (const SpanRecord& s : spans) {
    w.begin_object();
    w.field("name", s.name);
    w.field("cat", category_name(s.category));
    w.field("ph", "X");
    w.field("pid", std::uint64_t{0});
    w.field("tid", track_of(s.rank));
    w.field("ts", to_us(s.begin_ns));
    w.field("dur", to_us(s.end_ns - s.begin_ns));
    w.begin_object("args");
    w.field("arg", s.arg);
    w.field("channel", channel_of(s.category));
    w.field("depth", static_cast<std::uint64_t>(s.depth));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_metrics_json(repro::JsonWriter& w, const MetricsRegistry& registry,
                        const char* key) {
  w.begin_object(key);
  w.begin_object("counters");
  for (const auto& [name, value] : registry.counters()) {
    w.field(name.c_str(), value);
  }
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, value] : registry.gauges()) {
    w.field(name.c_str(), value);
  }
  w.end_object();
  w.begin_object("histograms");
  for (const auto& [name, h] : registry.histograms()) {
    w.begin_object(name.c_str());
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("mean", h.mean());
    w.field("p50", h.percentile(0.50));
    w.field("p90", h.percentile(0.90));
    w.field("p99", h.percentile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string rank_summary(const std::vector<SpanRecord>& spans) {
  if (spans.empty()) return "";

  struct Cell {
    std::size_t count = 0;
    std::uint64_t total_ns = 0;
  };
  // (rank, category) -> aggregate; map keeps ranks/categories ordered.
  std::map<std::size_t, std::map<Category, Cell>> by_rank;
  std::map<std::size_t, std::uint64_t> busy_ns;  // top-level spans only
  for (const SpanRecord& s : spans) {
    Cell& cell = by_rank[s.rank][s.category];
    ++cell.count;
    cell.total_ns += s.end_ns - s.begin_ns;
    if (s.depth == 0) busy_ns[s.rank] += s.end_ns - s.begin_ns;
  }

  TextTable table({"track", "category", "spans", "total ms", "busy ms"},
                  {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
                   Align::kRight});
  for (const auto& [rank, cells] : by_rank) {
    bool first = true;
    for (const auto& [cat, cell] : cells) {
      table.add_row({first ? track_name(rank) : "", category_name(cat),
                     std::to_string(cell.count),
                     format_double(static_cast<double>(cell.total_ns) / 1e6, 3),
                     first ? format_double(
                                 static_cast<double>(busy_ns[rank]) / 1e6, 3)
                           : ""});
      first = false;
    }
  }
  std::ostringstream os;
  os << table;
  return os.str();
}

}  // namespace sttsv::obs
