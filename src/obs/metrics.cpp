#include "obs/metrics.hpp"

#include <algorithm>

namespace sttsv::obs {

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::set_counter(const std::string& name,
                                  std::uint64_t value) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] = value;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  HistogramStats& h = histograms_[name];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramStats MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStats{} : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::pair<std::string, HistogramStats>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {histograms_.begin(), histograms_.end()};
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& metrics() {
  static MetricsRegistry m;
  return m;
}

}  // namespace sttsv::obs
