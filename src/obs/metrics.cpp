#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sttsv::obs {

namespace {

/// Lower edge of bucket index i >= 1: 2^((i - 1) / kSubBuckets + kMinExp).
double bucket_lower(std::size_t i) {
  const double e =
      static_cast<double>(i - 1) /
          static_cast<double>(HistogramStats::kSubBuckets) +
      HistogramStats::kMinExp;
  return std::exp2(e);
}

}  // namespace

std::size_t HistogramStats::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negatives, NaN -> underflow
  // Smallest i >= 1 with value <= 2^(i/8 + kMinExp), i.e. bucket i covers
  // (2^((i-1)/8 + kMinExp), 2^(i/8 + kMinExp)].
  const double scaled =
      (std::log2(value) - kMinExp) * static_cast<double>(kSubBuckets);
  if (scaled <= 0.0) return 0;  // value <= 2^kMinExp: underflow
  const std::size_t last = static_cast<std::size_t>(
      (kMaxExp - kMinExp) * static_cast<int>(kSubBuckets));
  const double i = std::ceil(scaled);
  if (i >= static_cast<double>(last)) return last;  // saturate
  return static_cast<std::size_t>(i);
}

void HistogramStats::observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets.size()) buckets.resize(idx + 1, 0);
  ++buckets[idx];
}

double HistogramStats::percentile(double q) const {
  STTSV_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  if (count == 0) return 0.0;
  // Nearest-rank: the k-th smallest observation, k in [1, count].
  const std::uint64_t k = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= k) {
      if (i == 0) return min;  // underflow bucket: all we know is <= 2^kMinExp
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double lo = bucket_lower(i);
      const double hi = bucket_lower(i + 1);
      return std::clamp(std::sqrt(lo * hi), min, max);
    }
  }
  return max;  // unreachable when buckets are consistent with count
}

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::set_counter(const std::string& name,
                                  std::uint64_t value) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] = value;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  histograms_[name].observe(value);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramStats MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStats{} : it->second;
}

double MetricsRegistry::percentile(const std::string& name, double q) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? 0.0 : it->second.percentile(q);
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::pair<std::string, HistogramStats>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {histograms_.begin(), histograms_.end()};
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& metrics() {
  static MetricsRegistry m;
  return m;
}

}  // namespace sttsv::obs
