#pragma once
// Structured span tracing for the simulated machine (DESIGN.md §11).
//
// A Span brackets one unit of work — a superstep, an exchange, a block
// kernel, a protocol retry — with monotonic timestamps and a category.
// Spans land in per-thread buffers owned by the process-wide Tracer, so
// rank programs running on host threads (simt::parallel_for) record
// without locks; the current simulated rank is carried in thread-local
// state (ScopedRank) so every span is attributed to its rank's track.
//
// Overhead model:
//  * compiled out (STTSV_ENABLE_TRACING=OFF): Span is an empty object,
//    every instrumentation site folds to nothing;
//  * compiled in, runtime-disabled (the default): one relaxed atomic load
//    per span site, no clock reads, no allocation — the state every
//    production run and every tier-1 test measures;
//  * enabled: two steady_clock reads plus one amortized push_back per
//    span. Tracing reads clocks and writes side buffers only, so the
//    computed y and the communication ledger are bitwise identical with
//    tracing on or off (tests/test_obs.cpp proves it).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sttsv::obs {

#if defined(STTSV_OBS_TRACING) && STTSV_OBS_TRACING
inline constexpr bool kTracingCompiledIn = true;
#else
inline constexpr bool kTracingCompiledIn = false;
#endif

/// Rank value for spans recorded outside any rank program (the driver
/// thread running exchanges and packing); rendered as its own track.
inline constexpr std::size_t kDriverTrack = static_cast<std::size_t>(-1);

/// Span categories — the fixed vocabulary the exporters group by. kRetry
/// marks resilience-protocol work (retransmissions, ACK/NACK rounds,
/// backoff, degraded replay): everything the exporter attributes to the
/// ledger's overhead channel. All other categories are goodput-side.
enum class Category : std::uint8_t {
  kSuperstep,
  kExchange,
  kKernel,
  kRetry,
  kPlanCache,
  kEngineFlush,
  kPipeline,
  kServe,
  kRecovery,
  kOneSided,
  kOther,
};

[[nodiscard]] const char* category_name(Category c);

/// One closed span. `name` must point at static storage (string literals
/// at the instrumentation sites) — records never own text.
struct SpanRecord {
  const char* name = "";
  Category category = Category::kOther;
  std::size_t rank = kDriverTrack;
  std::uint64_t begin_ns = 0;  // monotonic, relative to the tracer epoch
  std::uint64_t end_ns = 0;
  std::uint64_t arg = 0;       // site-specific payload (words, lanes, rounds)
  std::uint32_t depth = 0;     // nesting depth within the recording thread
};

struct Config {
  /// Master switch. Ignored (forced false) when tracing is compiled out.
  bool tracing = false;
};

/// Process-wide span collector. Recording is lock-free per thread after a
/// one-time buffer registration; snapshot()/clear() must not race with
/// recording (call them between runs, as the benches and tests do — the
/// simulated machine is driven from one thread).
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void configure(const Config& config);
  [[nodiscard]] Config config() const;

  /// The one word every disabled span site reads.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Monotonic nanoseconds since the tracer's construction.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Appends one closed span to the calling thread's buffer, attributed
  /// to the thread's current rank (see ScopedRank). No-op when disabled.
  void record(const SpanRecord& span);

  /// All spans from every thread buffer, sorted by (rank, begin, depth).
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Drops every recorded span and every thread buffer. Threads re-attach
  /// on their next record. Must not race with recording.
  void clear();

  [[nodiscard]] std::size_t total_spans() const;
  /// Registered per-thread buffers — stays 0 while the tracer is
  /// disabled (the zero-allocation fast path the tests pin down).
  [[nodiscard]] std::size_t thread_buffers() const;

 private:
  friend class Span;
  friend class ScopedRank;

  std::atomic<bool> enabled_{false};
};

/// The process-wide tracer every Span and exporter talks to.
Tracer& tracer();

/// RAII rank attribution: rank programs run under a ScopedRank(p) (the
/// Machine::run_ranks wrapper installs one), so spans opened inside are
/// recorded on rank p's track. Restores the previous rank on destruction.
class ScopedRank {
 public:
  explicit ScopedRank(std::size_t rank);
  ~ScopedRank();
  ScopedRank(const ScopedRank&) = delete;
  ScopedRank& operator=(const ScopedRank&) = delete;

 private:
  std::size_t saved_ = kDriverTrack;
};

/// RAII span. Construction samples the clock and claims a nesting level;
/// destruction (or close()) records the finished span. When the tracer
/// is disabled, construction is a single relaxed load and destruction is
/// a branch on a local flag.
class Span {
 public:
  explicit Span(const char* name, Category category, std::uint64_t arg = 0);
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Updates the payload before the span closes (e.g. a word count known
  /// only after packing).
  void set_arg(std::uint64_t arg) { arg_ = arg; }
  /// Updates the category before the span closes (e.g. an exchange that
  /// turns out to carry pure protocol traffic reclassifies as kRetry).
  void set_category(Category category) { category_ = category; }

  /// Records the span now instead of at end of scope; idempotent.
  void close();

 private:
  const char* name_ = "";
  std::uint64_t begin_ns_ = 0;
  std::uint64_t arg_ = 0;
  Category category_ = Category::kOther;
  bool active_ = false;
};

}  // namespace sttsv::obs
