#include "hier/hier_exchange.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace sttsv::hier {

using simt::Delivery;
using simt::Envelope;

HierarchicalExchange::HierarchicalExchange(
    simt::Machine& machine, Topology topology,
    std::unique_ptr<simt::Exchanger> inter)
    : Exchanger(machine),
      topo_(std::move(topology)),
      inter_(std::move(inter)),
      registry_(machine) {
  STTSV_REQUIRE(inter_ != nullptr,
                "hierarchical transport needs an inner backend");
  STTSV_REQUIRE(&inter_->machine() == &machine,
                "inner backend must wrap the same machine");
  STTSV_REQUIRE(topo_.num_ranks() == machine.num_ranks(),
                "topology must cover every machine rank");
  STTSV_REQUIRE(!inter_->supports_handler_delivery(),
                "hierarchical transport cannot run an active-message inner "
                "backend (handler order would interleave with shared "
                "deliveries); use direct, reliable or onesided inside");
  machine.ledger().set_node_map(topo_.node_map());
}

void HierarchicalExchange::set_phase(const char* phase) {
  inter_->set_phase(phase);
}

void HierarchicalExchange::open_epoch(EpochState& st) {
  st.node_touched.assign(topo_.num_nodes(), 0);
  st.onesided_words = 0;
  st.recovery_words = 0;
  registry_.open_epoch();
}

std::vector<std::vector<Envelope>> HierarchicalExchange::route_part(
    std::vector<std::vector<Envelope>> outboxes, EpochState& st) {
  const std::size_t P = machine_.num_ranks();
  STTSV_REQUIRE(outboxes.size() == P,
                "outboxes must cover every rank exactly once");
  // Validate the whole part before the first hand-off, so a precondition
  // failure leaves segments and ledger untouched.
  for (std::size_t from = 0; from < P; ++from) {
    for (const Envelope& env : outboxes[from]) {
      STTSV_REQUIRE(env.to < P, "envelope destination out of range");
      STTSV_REQUIRE(env.to != from,
                    "self-messages are local copies, not comm");
      if (topo_.same_node(from, env.to)) {
        STTSV_REQUIRE(env.overhead_words == 0,
                      "shared-segment transfers carry no protocol framing");
        STTSV_REQUIRE(!env.data.empty(),
                      "shared-segment transfers need a payload");
      }
    }
  }

  std::vector<std::vector<Envelope>> inter_out(P);
  for (std::size_t from = 0; from < P; ++from) {
    for (Envelope& env : outboxes[from]) {
      if (!topo_.same_node(from, env.to)) {
        stats_.inter_words += env.data.size() - env.overhead_words;
        ++stats_.inter_envelopes;
        inter_out[from].push_back(std::move(env));
        continue;
      }
      // Membership truth mirrors Machine: traffic touching a dead rank
      // is dropped uncharged — shared memory or not, a corpse neither
      // posts nor fences.
      if (!machine_.alive(from) || !machine_.alive(env.to)) continue;
      const std::size_t words = env.data.size();
      const simt::Channel channel = env.recovery ? simt::Channel::kRecovery
                                                 : simt::Channel::kOneSided;
      machine_.ledger().record(channel, from, env.to, words);
      if (env.recovery) {
        st.recovery_words += words;
      } else {
        st.onesided_words += words;
      }
      st.node_touched[topo_.node_of(from)] = 1;
      ++stats_.shared_puts;
      stats_.shared_words += words;
      registry_.put_shared(from, env.to, std::move(env.data));
    }
  }
  return inter_out;
}

void HierarchicalExchange::settle_intra(EpochState& st) {
  if (st.settled) return;
  st.settled = true;
  registry_.close_epoch();
  ++stats_.epochs;
  std::size_t fences = 0;
  for (const char touched : st.node_touched) {
    if (touched != 0) ++fences;
  }
  if (fences == 0) return;
  // The whole α-term of the intra path: one exposure fence per node that
  // moved anything, regardless of how many pairs inside it communicated.
  machine_.ledger().add_sync_ops(simt::Level::kIntra, fences);
  stats_.node_fences += fences;
  // The hand-off itself is one parallel step of each node's crossbar.
  const simt::Channel channel = st.onesided_words > 0
                                    ? simt::Channel::kOneSided
                                    : simt::Channel::kRecovery;
  machine_.ledger().add_rounds(channel, simt::Level::kIntra, 1);
}

std::vector<std::vector<Delivery>> HierarchicalExchange::merge_deliveries(
    std::vector<std::vector<Delivery>> inter_inboxes) {
  const std::size_t P = machine_.num_ranks();
  // Protocol inner backends may defer nothing to finish() and hand back
  // an empty inbox vector (the Parts contract allows it).
  inter_inboxes.resize(P);
  std::vector<std::vector<Delivery>> merged(P);
  for (std::size_t p = 0; p < P; ++p) {
    auto& shared = registry_.shared(p);
    auto& inter = inter_inboxes[p];
    merged[p].reserve(shared.size() + inter.size());
    // Both inputs arrive origin-sorted, and a given origin is exactly one
    // level away from p, so origins never tie across the two lists.
    std::size_t si = 0;
    std::size_t ii = 0;
    while (si < shared.size() || ii < inter.size()) {
      const bool take_shared =
          ii == inter.size() ||
          (si < shared.size() && shared[si].from < inter[ii].from);
      if (take_shared) {
        // Zero-copy view onto the handed-off slab; the registry keeps it
        // alive until the next epoch opens.
        merged[p].push_back(Delivery{
            shared[si].from,
            simt::PooledBuffer::attach_view(shared[si].payload.data(),
                                            shared[si].payload.size())});
        ++si;
      } else {
        merged[p].push_back(std::move(inter[ii]));
        ++ii;
      }
    }
  }
  return merged;
}

std::vector<std::vector<Delivery>> HierarchicalExchange::exchange(
    std::vector<std::vector<Envelope>> outboxes, simt::Transport transport) {
  obs::Span span("hier.epoch", obs::Category::kExchange);
  EpochState st;
  open_epoch(st);
  std::vector<std::vector<Envelope>> inter_out;
  try {
    inter_out = route_part(std::move(outboxes), st);
  } catch (...) {
    settle_intra(st);
    throw;
  }
  std::vector<std::vector<Delivery>> inter_in;
  try {
    inter_in = inter_->exchange(std::move(inter_out), transport);
  } catch (...) {
    // The fabric failed mid-exchange; the intra epoch still settles its
    // accounting (those hand-offs happened) before the fault propagates.
    settle_intra(st);
    throw;
  }
  settle_intra(st);
  span.set_arg(st.onesided_words + st.recovery_words);
  return merge_deliveries(std::move(inter_in));
}

class HierarchicalExchange::PartsImpl final : public simt::Exchanger::Parts {
 public:
  PartsImpl(HierarchicalExchange& ex, simt::Transport transport)
      : ex_(ex),
        inner_(ex.inter_->begin_parts(transport)),
        span_("hier.epoch", obs::Category::kExchange) {
    ex_.open_epoch(st_);
  }

  ~PartsImpl() override {
    // Backstop: an abandoned epoch settles its accounting; deliveries
    // are discarded (the inner Parts' own destructor does the same).
    ex_.settle_intra(st_);
  }

  PartsImpl(const PartsImpl&) = delete;
  PartsImpl& operator=(const PartsImpl&) = delete;

  std::vector<std::vector<Delivery>> part(
      std::vector<std::vector<Envelope>> outboxes) override {
    STTSV_CHECK(!finished_, "hierarchical parts already finished");
    // Intra hand-offs land immediately; inter envelopes stream into the
    // inner backend's Parts (DirectExchange puts them on the wire now —
    // the overlap the pipeline wants). Shared deliveries stay sealed
    // until the fence at finish().
    return inner_->part(ex_.route_part(std::move(outboxes), st_));
  }

  std::vector<std::vector<Delivery>> finish() override {
    STTSV_CHECK(!finished_, "hierarchical parts already finished");
    finished_ = true;
    std::vector<std::vector<Delivery>> inter_in = inner_->finish();
    ex_.settle_intra(st_);
    span_.set_arg(st_.onesided_words + st_.recovery_words);
    return ex_.merge_deliveries(std::move(inter_in));
  }

 private:
  HierarchicalExchange& ex_;
  std::unique_ptr<simt::Exchanger::Parts> inner_;
  EpochState st_;
  obs::Span span_;
  bool finished_ = false;
};

std::unique_ptr<simt::Exchanger::Parts> HierarchicalExchange::begin_parts(
    simt::Transport transport) {
  return std::make_unique<PartsImpl>(*this, transport);
}

void HierarchicalExchange::publish_metrics(obs::MetricsRegistry& out,
                                           const std::string& prefix) const {
  out.set_counter(prefix + ".epochs", stats_.epochs);
  out.set_counter(prefix + ".shared_puts", stats_.shared_puts);
  out.set_counter(prefix + ".shared_words", stats_.shared_words);
  out.set_counter(prefix + ".node_fences", stats_.node_fences);
  out.set_counter(prefix + ".inter_envelopes", stats_.inter_envelopes);
  out.set_counter(prefix + ".inter_words", stats_.inter_words);
  out.set_counter(prefix + ".num_nodes", topo_.num_nodes());
}

}  // namespace sttsv::hier
