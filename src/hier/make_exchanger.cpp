#include "hier/make_exchanger.hpp"

#include <optional>
#include <utility>

#include "hier/hier_exchange.hpp"
#include "hier/topology.hpp"
#include "onesided/onesided_exchange.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

namespace {

std::unique_ptr<Exchanger> make_flat(Machine& machine,
                                     const ExchangerConfig& config,
                                     TransportKind kind) {
  switch (kind) {
    case TransportKind::kDirect:
      return std::make_unique<DirectExchange>(machine);
    case TransportKind::kReliable:
      return std::make_unique<ReliableExchange>(
          machine, config.retry, config.recovery, config.liveness);
    case TransportKind::kOneSidedPut:
      return std::make_unique<onesided::OneSidedExchange>(
          machine, onesided::Mode::kPut);
    case TransportKind::kActiveMessage:
      return std::make_unique<onesided::OneSidedExchange>(
          machine, onesided::Mode::kActiveMessage);
    case TransportKind::kHierarchical:
      break;  // handled by the caller; rejected as an inner kind below
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<Exchanger> make_exchanger(Machine& machine,
                                          const ExchangerConfig& config) {
  // A topology classifies the ledger under every kind (DESIGN.md §17):
  // flat backends run with per-level accounting, which is how the
  // hierarchy bench prices the same traffic both ways.
  if (!config.node_of.empty()) {
    machine.ledger().set_node_map(config.node_of);
  }

  if (config.kind == TransportKind::kHierarchical) {
    STTSV_REQUIRE(config.hier_inter != TransportKind::kHierarchical &&
                      config.hier_inter != TransportKind::kActiveMessage,
                  "hier_inter must be one of direct|reliable|onesided");
    hier::Topology topo =
        config.node_of.empty()
            ? [&] {
                std::optional<hier::Topology> env =
                    hier::Topology::from_env(machine.num_ranks());
                STTSV_REQUIRE(env.has_value(),
                              "hierarchical transport needs a topology: set "
                              "ExchangerConfig::node_of or STTSV_TOPOLOGY=NxM");
                return *std::move(env);
              }()
            : hier::Topology::from_map(config.node_of);
    std::unique_ptr<Exchanger> inner =
        make_flat(machine, config, config.hier_inter);
    STTSV_CHECK(inner != nullptr, "inner transport construction failed");
    return std::make_unique<hier::HierarchicalExchange>(
        machine, std::move(topo), std::move(inner));
  }

  std::unique_ptr<Exchanger> flat = make_flat(machine, config, config.kind);
  // Not a switch fall-through: an out-of-enum value (casted int, stale
  // config) must fail loudly, naming what the factory accepts.
  STTSV_REQUIRE(flat != nullptr,
                "unknown transport kind; accepted transports are "
                "direct|reliable|onesided|am|hier");
  return flat;
}

}  // namespace sttsv::simt
