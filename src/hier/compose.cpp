#include "hier/compose.hpp"

#include <algorithm>
#include <iterator>

#include "support/check.hpp"

namespace sttsv::hier {

namespace {

using partition::TetraPartition;
using partition::VectorDistribution;

/// R_p ∩ R_q, ascending (both R's are sorted by construction).
std::vector<std::size_t> common_blocks(const TetraPartition& part,
                                       std::size_t p, std::size_t q) {
  const auto& a = part.R(p);
  const auto& b = part.R(q);
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Inter-node words of one STTSV under `node_of`, from the pair matrix.
std::uint64_t inter_words_of(
    const std::vector<std::vector<std::uint64_t>>& w,
    const std::vector<std::uint32_t>& node_of) {
  std::uint64_t inter = 0;
  for (std::size_t p = 0; p < w.size(); ++p) {
    for (std::size_t q = p + 1; q < w.size(); ++q) {
      if (node_of[p] != node_of[q]) inter += w[p][q];
    }
  }
  return inter;
}

/// Balanced node capacities, matching Topology::uniform's shape.
std::vector<std::size_t> node_capacities(std::size_t P, std::size_t N) {
  std::vector<std::size_t> cap(N, P / N);
  for (std::size_t v = 0; v < P % N; ++v) ++cap[v];
  return cap;
}

/// Greedy affinity seed: repeatedly open the next node and fill it with
/// the ranks most attached to what is already inside. The first resident
/// of each node is the unplaced rank with the heaviest remaining total
/// traffic, so hot cliques are packed before the leftovers spread out.
std::vector<std::uint32_t> greedy_seed(
    const std::vector<std::vector<std::uint64_t>>& w,
    const std::vector<std::size_t>& cap) {
  const std::size_t P = w.size();
  const std::size_t N = cap.size();
  std::vector<std::uint32_t> node_of(P, 0);
  std::vector<char> placed(P, 0);
  for (std::size_t v = 0; v < N; ++v) {
    std::size_t filled = 0;
    while (filled < cap[v]) {
      std::size_t best = P;
      std::uint64_t best_score = 0;
      for (std::size_t p = 0; p < P; ++p) {
        if (placed[p] != 0) continue;
        // Attachment to this node's residents; for the first resident,
        // total remaining traffic (pick the heaviest hub).
        std::uint64_t score = 0;
        for (std::size_t q = 0; q < P; ++q) {
          if (filled > 0) {
            if (placed[q] != 0 && node_of[q] == v) score += w[p][q];
          } else if (placed[q] == 0) {
            score += w[p][q];
          }
        }
        // Ties break to the lowest rank: deterministic across platforms.
        if (best == P || score > best_score) {
          best = p;
          best_score = score;
        }
      }
      placed[best] = 1;
      node_of[best] = static_cast<std::uint32_t>(v);
      ++filled;
    }
  }
  return node_of;
}

/// Round-robin seed: rank p -> node p mod N, legal for balanced caps.
std::vector<std::uint32_t> cyclic_seed(std::size_t P,
                                       const std::vector<std::size_t>& cap) {
  const std::size_t N = cap.size();
  std::vector<std::uint32_t> node_of(P, 0);
  std::vector<std::size_t> filled(N, 0);
  for (std::size_t p = 0; p < P; ++p) {
    // p mod N, skipping nodes already at capacity (tail of an uneven P).
    std::size_t v = p % N;
    while (filled[v] >= cap[v]) v = (v + 1) % N;
    node_of[p] = static_cast<std::uint32_t>(v);
    ++filled[v];
  }
  return node_of;
}

/// Kernighan–Lin-style refinement: sweep all rank pairs on different
/// nodes, take any swap that strictly reduces inter-node words, repeat
/// until a full sweep finds none. Swaps preserve node sizes exactly, and
/// every accepted swap strictly decreases a nonnegative integer, so the
/// loop terminates. Gains are evaluated exactly from the pair matrix.
void refine_swaps(const std::vector<std::vector<std::uint64_t>>& w,
                  std::vector<std::uint32_t>& node_of) {
  const std::size_t P = w.size();
  // Moving p from node A to node B changes its cut contribution by
  // (attachment to A) - (attachment to B); a p<->q swap combines both
  // deltas and un-double-counts the (p,q) edge itself, which stays cut.
  const auto attachment = [&](std::size_t p, std::uint32_t node) {
    std::uint64_t sum = 0;
    for (std::size_t q = 0; q < P; ++q) {
      if (q != p && node_of[q] == node) sum += w[p][q];
    }
    return sum;
  };
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t p = 0; p < P; ++p) {
      for (std::size_t q = p + 1; q < P; ++q) {
        const std::uint32_t a = node_of[p];
        const std::uint32_t b = node_of[q];
        if (a == b) continue;
        const std::uint64_t cut_now = attachment(p, b) + attachment(q, a) -
                                      2 * w[p][q];
        const std::uint64_t cut_swapped = attachment(p, a) + attachment(q, b);
        if (cut_swapped < cut_now) {
          node_of[p] = b;
          node_of[q] = a;
          improved = true;
        }
      }
    }
  }
}

}  // namespace

std::uint64_t pair_traffic_words(const TetraPartition& part,
                                 const VectorDistribution& dist,
                                 std::size_t p, std::size_t q) {
  if (p == q) return 0;
  std::uint64_t words = 0;
  for (const std::size_t i : common_blocks(part, p, q)) {
    words += dist.share(i, p).length + dist.share(i, q).length;
  }
  // Each direction carries the sender's x-shares plus the receiver's
  // y-partial slices; summed over both directions every share appears
  // twice.
  return 2 * words;
}

std::vector<std::vector<std::uint64_t>> pair_traffic_matrix(
    const TetraPartition& part, const VectorDistribution& dist) {
  const std::size_t P = part.num_processors();
  std::vector<std::vector<std::uint64_t>> w(
      P, std::vector<std::uint64_t>(P, 0));
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t q = p + 1; q < P; ++q) {
      w[p][q] = w[q][p] = pair_traffic_words(part, dist, p, q);
    }
  }
  return w;
}

LevelWords predict_level_words(const TetraPartition& part,
                               const VectorDistribution& dist,
                               const std::vector<std::uint32_t>& node_of) {
  const std::size_t P = part.num_processors();
  STTSV_REQUIRE(node_of.size() == P, "node map must cover every rank");
  LevelWords out;
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t q = p + 1; q < P; ++q) {
      const std::uint64_t w = pair_traffic_words(part, dist, p, q);
      if (node_of[p] == node_of[q]) {
        out.intra += w;
      } else {
        out.inter += w;
      }
    }
  }
  return out;
}

NodeAssignment flat_assignment(const TetraPartition& part,
                               const VectorDistribution& dist,
                               std::size_t num_nodes) {
  const std::size_t P = part.num_processors();
  NodeAssignment out;
  out.node_of = Topology::uniform(P, num_nodes).node_map();
  out.inter_words = predict_level_words(part, dist, out.node_of).inter;
  return out;
}

NodeAssignment compose_assignment(const TetraPartition& part,
                                  const VectorDistribution& dist,
                                  std::size_t num_nodes, IntraLayout layout) {
  const std::size_t P = part.num_processors();
  STTSV_REQUIRE(num_nodes >= 1 && num_nodes <= P,
                "composed partition needs 1 <= nodes <= ranks");
  const std::vector<std::vector<std::uint64_t>> w =
      pair_traffic_matrix(part, dist);
  const std::vector<std::size_t> cap = node_capacities(P, num_nodes);

  std::vector<std::vector<std::uint32_t>> candidates;
  candidates.push_back(Topology::uniform(P, num_nodes).node_map());
  candidates.push_back(layout == IntraLayout::kCyclic
                           ? cyclic_seed(P, cap)
                           : greedy_seed(w, cap));
  for (auto& candidate : candidates) refine_swaps(w, candidate);
  // The unrefined flat map closes the <= guarantee even if refinement
  // were ever a no-op.
  candidates.push_back(Topology::uniform(P, num_nodes).node_map());

  NodeAssignment best;
  bool first = true;
  for (auto& candidate : candidates) {
    const std::uint64_t inter = inter_words_of(w, candidate);
    if (first || inter < best.inter_words) {
      best.node_of = std::move(candidate);
      best.inter_words = inter;
      first = false;
    }
  }
  return best;
}

}  // namespace sttsv::hier
