#pragma once
// Physical topology model for hierarchical communication (DESIGN.md §17).
//
// The simulated machine of Section 3.1 is flat: P ranks, one network.
// Real clusters are not — ranks live on N nodes, and a word moved inside
// a node (shared memory) is orders of magnitude cheaper than one crossing
// the inter-node fabric. A Topology records the surjective rank -> node
// map that drives the two-level machinery: the CommLedger classifies
// every message intra/inter under it, the HierarchicalExchange routes
// node-local traffic through shared segments, and the composed partition
// (hier/compose.hpp) chooses the map that minimizes inter-node words.
//
// Node labels are dense in [0, N): every node hosts at least one rank.
// A topology with one node is legal and equivalent to the flat machine.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace sttsv::hier {

class Topology {
 public:
  /// The contiguous "flat" map: rank p lives on node p / ceil(P/N) — the
  /// assignment a topology-blind launcher produces, and the baseline the
  /// composed partition must beat. Ranks are spread as evenly as
  /// possible (first P mod N nodes get one extra when N does not
  /// divide P). Requires 1 <= num_nodes <= num_ranks.
  [[nodiscard]] static Topology uniform(std::size_t num_ranks,
                                        std::size_t num_nodes);

  /// Wraps an explicit rank -> node map. Requires a non-empty map with
  /// dense node labels in [0, N).
  [[nodiscard]] static Topology from_map(std::vector<std::uint32_t> node_of);

  /// Reads STTSV_TOPOLOGY from the environment. Unset or empty returns
  /// nullopt (flat machine). The accepted form is "NxM" — N nodes of M
  /// ranks each, e.g. STTSV_TOPOLOGY=2x5 for 10 ranks on 2 nodes —
  /// which must satisfy N*M == num_ranks; anything else throws
  /// PreconditionError naming the expected shape.
  [[nodiscard]] static std::optional<Topology> from_env(
      std::size_t num_ranks);

  /// Parses the "NxM" spelling against a rank count (the testable core of
  /// from_env). Throws PreconditionError on malformed text or N*M != P.
  [[nodiscard]] static Topology parse(std::string_view text,
                                      std::size_t num_ranks);

  [[nodiscard]] std::size_t num_ranks() const { return node_of_.size(); }
  [[nodiscard]] std::size_t num_nodes() const { return ranks_on_.size(); }
  [[nodiscard]] std::uint32_t node_of(std::size_t rank) const;
  /// Ranks hosted on `node`, ascending.
  [[nodiscard]] const std::vector<std::size_t>& ranks_on(
      std::size_t node) const;
  /// The raw map, suitable for CommLedger::set_node_map.
  [[nodiscard]] const std::vector<std::uint32_t>& node_map() const {
    return node_of_;
  }

  [[nodiscard]] bool same_node(std::size_t a, std::size_t b) const {
    return node_of(a) == node_of(b);
  }

 private:
  explicit Topology(std::vector<std::uint32_t> node_of);

  std::vector<std::uint32_t> node_of_;
  std::vector<std::vector<std::size_t>> ranks_on_;
};

}  // namespace sttsv::hier
