#include "hier/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "support/check.hpp"

namespace sttsv::hier {

Topology::Topology(std::vector<std::uint32_t> node_of)
    : node_of_(std::move(node_of)) {
  STTSV_REQUIRE(!node_of_.empty(), "topology needs at least one rank");
  std::size_t nodes = 0;
  for (const std::uint32_t node : node_of_) {
    nodes = std::max<std::size_t>(nodes, node + 1);
  }
  ranks_on_.assign(nodes, {});
  for (std::size_t p = 0; p < node_of_.size(); ++p) {
    ranks_on_[node_of_[p]].push_back(p);
  }
  for (std::size_t v = 0; v < nodes; ++v) {
    STTSV_REQUIRE(!ranks_on_[v].empty(),
                  "topology node labels must be dense in [0, N)");
  }
}

Topology Topology::uniform(std::size_t num_ranks, std::size_t num_nodes) {
  STTSV_REQUIRE(num_nodes >= 1, "topology needs at least one node");
  STTSV_REQUIRE(num_nodes <= num_ranks,
                "more nodes than ranks leaves empty nodes");
  // Contiguous runs, first (P mod N) nodes one rank larger: the map a
  // rank-ordered launcher (mpirun-style block placement) would produce.
  std::vector<std::uint32_t> node_of(num_ranks);
  const std::size_t base = num_ranks / num_nodes;
  const std::size_t extra = num_ranks % num_nodes;
  std::size_t p = 0;
  for (std::size_t v = 0; v < num_nodes; ++v) {
    const std::size_t count = base + (v < extra ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k) {
      node_of[p++] = static_cast<std::uint32_t>(v);
    }
  }
  return Topology(std::move(node_of));
}

Topology Topology::from_map(std::vector<std::uint32_t> node_of) {
  return Topology(std::move(node_of));
}

Topology Topology::parse(std::string_view text, std::size_t num_ranks) {
  const auto fail = [&](const char* why) {
    STTSV_REQUIRE(false, std::string("STTSV_TOPOLOGY must be \"NxM\" with "
                                     "N*M == num_ranks (") +
                             why + ", got \"" + std::string(text) + "\" for " +
                             std::to_string(num_ranks) + " ranks)");
  };
  const std::size_t x = text.find('x');
  if (x == std::string_view::npos || x == 0 || x + 1 >= text.size()) {
    fail("expected two x-separated integers");
  }
  const auto parse_int = [&](std::string_view part) -> std::size_t {
    std::size_t value = 0;
    if (part.empty()) fail("empty integer");
    for (const char c : part) {
      if (c < '0' || c > '9') fail("non-digit character");
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
  };
  const std::size_t nodes = parse_int(text.substr(0, x));
  const std::size_t per_node = parse_int(text.substr(x + 1));
  if (nodes == 0 || per_node == 0) fail("zero dimension");
  if (nodes * per_node != num_ranks) fail("N*M != num_ranks");
  return uniform(num_ranks, nodes);
}

std::optional<Topology> Topology::from_env(std::size_t num_ranks) {
  const char* raw = std::getenv("STTSV_TOPOLOGY");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return parse(raw, num_ranks);
}

std::uint32_t Topology::node_of(std::size_t rank) const {
  STTSV_REQUIRE(rank < node_of_.size(), "rank out of range");
  return node_of_[rank];
}

const std::vector<std::size_t>& Topology::ranks_on(std::size_t node) const {
  STTSV_REQUIRE(node < ranks_on_.size(), "node out of range");
  return ranks_on_[node];
}

}  // namespace sttsv::hier
