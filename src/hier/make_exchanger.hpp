#pragma once
// The one transport factory (DESIGN.md §16, §17). Declared in sttsv::simt
// — it completes the TransportKind vocabulary from simt/transport_kind.hpp
// — but lives in src/hier because it must see every concrete Exchanger,
// including the hierarchical one (which itself wraps the one-sided and
// reliable backends, so the factory has to sit at the top of the
// transport stack).

#include <cstdint>
#include <memory>
#include <vector>

#include "simt/reliable_exchange.hpp"
#include "simt/transport_kind.hpp"

namespace sttsv::simt {

/// Everything make_exchanger needs beyond the kind. The protocol knobs
/// only matter for kReliable; the topology fields for kHierarchical.
struct ExchangerConfig {
  TransportKind kind = TransportKind::kDirect;
  RetryPolicy retry{};
  RecoveryPolicy recovery = RecoveryPolicy::kFailFast;
  LivenessPolicy liveness{};
  /// Rank -> node map (DESIGN.md §17). Required for kHierarchical (or
  /// supplied via STTSV_TOPOLOGY=NxM when left empty). When non-empty it
  /// is installed on the machine's ledger for *every* kind, so a flat
  /// backend run under the same topology produces the per-level split
  /// the hierarchy bench compares against.
  std::vector<std::uint32_t> node_of;
  /// Inner backend carrying the inter-node traffic under kHierarchical.
  /// Must be a point-to-point kind: direct, reliable or onesided.
  TransportKind hier_inter = TransportKind::kDirect;
};

/// Constructs the backend for `config.kind` over `machine`:
/// kDirect -> DirectExchange, kReliable -> ReliableExchange,
/// kOneSidedPut / kActiveMessage -> onesided::OneSidedExchange in the
/// corresponding mode, kHierarchical -> hier::HierarchicalExchange over
/// an inner `config.hier_inter` backend. Every bench and the serving
/// stack select their transport through here (plus
/// transport_kind_from_env for the STTSV_TRANSPORT override) instead of
/// naming concrete backends. An unrecognized kind throws
/// PreconditionError naming the accepted spellings — never a silent
/// fallback.
[[nodiscard]] std::unique_ptr<Exchanger> make_exchanger(
    Machine& machine, const ExchangerConfig& config);

[[nodiscard]] inline std::unique_ptr<Exchanger> make_exchanger(
    Machine& machine, TransportKind kind) {
  ExchangerConfig config;
  config.kind = kind;
  return make_exchanger(machine, config);
}

}  // namespace sttsv::simt
