#pragma once
// The two-level composed partition (DESIGN.md §17).
//
// The Steiner tetrahedral partition fixes *what* each rank owns and *who*
// talks to whom: rank p exchanges, per STTSV, exactly
//
//   words(p <-> q) = 2 · Σ_{i ∈ R_p ∩ R_q} (|share(i,p)| + |share(i,q)|)
//
// (x-shares out and back plus y-partials out and back; the Steiner
// property caps |R_p ∩ R_q| at 2). The total is a partition invariant —
// no placement changes it — but the *inter-node* slice of it depends
// entirely on which ranks share a node. Composing the partition with a
// topology therefore means choosing the rank -> node assignment that
// pushes as much pair traffic as possible inside nodes, where the
// shared-segment path moves it for one fence per node instead of α per
// message.
//
// compose_assignment() keeps the identity map between Steiner blocks and
// ranks (so the partition, the distribution, the drivers and the output
// y are bitwise untouched) and optimizes only the placement: a greedy
// affinity seed packs each node with mutually-heavy pairs, then
// Kernighan–Lin-style pairwise swaps refine until no single swap helps.
// The flat contiguous map is always refined as a candidate too and the
// best candidate wins, so the composed inter-node word count is <= the
// flat one by construction; the hierarchy bench checks it is strictly
// smaller at every swept configuration.
//
// predict_level_words() evaluates the same closed form the optimizer
// minimizes, giving the exact per-level word counts a run must produce —
// bench_hierarchy asserts measured == predicted to the word.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hier/topology.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"

namespace sttsv::hier {

/// Layout of ranks within a node for the seeded candidate.
enum class IntraLayout {
  /// Affinity clusters: nodes are packed greedily with the heaviest
  /// remaining pair traffic (triangle blocks of the Steiner pair graph).
  /// The default, and the one that actually chases inter-word minima.
  kTriangleBlock,
  /// Round-robin: rank p seeds node p mod N. A deliberately spread-out
  /// seed — the contrast case for tests and the bench; refinement still
  /// guarantees the result never loses to flat.
  kCyclic,
};

/// Closed-form per-level word counts for one STTSV under an assignment.
struct LevelWords {
  std::uint64_t intra = 0;
  std::uint64_t inter = 0;
  [[nodiscard]] std::uint64_t total() const { return intra + inter; }
};

/// Words both directions of the (p, q) pair move per STTSV (x-shares +
/// y-partials, Section 7.2.2); 0 when R_p ∩ R_q is empty.
[[nodiscard]] std::uint64_t pair_traffic_words(
    const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, std::size_t p, std::size_t q);

/// The full symmetric pair-traffic matrix W[p][q] (W[p][p] = 0).
[[nodiscard]] std::vector<std::vector<std::uint64_t>> pair_traffic_matrix(
    const partition::TetraPartition& part,
    const partition::VectorDistribution& dist);

/// Splits one STTSV's total goodput words by level under `node_of`.
/// Multiply by the batch width B for batched runs — every vector of a
/// batch repeats the identical exchange pattern.
[[nodiscard]] LevelWords predict_level_words(
    const partition::TetraPartition& part,
    const partition::VectorDistribution& dist,
    const std::vector<std::uint32_t>& node_of);

/// A rank -> node placement plus the inter-node words it costs per STTSV.
struct NodeAssignment {
  std::vector<std::uint32_t> node_of;
  std::uint64_t inter_words = 0;  ///< per STTSV, both directions
};

/// The contiguous baseline: Topology::uniform's map, evaluated.
[[nodiscard]] NodeAssignment flat_assignment(
    const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, std::size_t num_nodes);

/// The composed placement: same node sizes as flat_assignment (balanced,
/// first P mod N nodes one larger), inter-node words minimized by greedy
/// seeding + pairwise-swap refinement. Guaranteed
/// inter_words <= flat_assignment(...).inter_words.
[[nodiscard]] NodeAssignment compose_assignment(
    const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, std::size_t num_nodes,
    IntraLayout layout = IntraLayout::kTriangleBlock);

}  // namespace sttsv::hier
