#pragma once
// Topology-aware Exchanger (DESIGN.md §17): the hierarchical transport.
//
// Every envelope is classified by the Topology: node-local traffic takes
// the shared-segment fast path, cross-node traffic rides an inner
// Exchanger (Direct, Reliable, or OneSided — whatever the caller picked
// for the fabric). The split is invisible to the drivers: deliveries
// come back merged per target, origin-ascending, exactly as the flat
// backends hand them over, and the sender-sorted reduction of the
// drivers makes y bitwise identical to a flat DirectExchange run.
//
// The intra-node path is the simulator's PSHM: peers on one node share
// an address space, so a node-local transfer is an ownership hand-off of
// the sender's pool slab (SegmentRegistry::put_shared — zero copies),
// followed by one exposure fence per *node* per epoch. That is the
// α-term win the per-level ledger makes visible: N fences instead of one
// envelope per communicating pair. Word counts are unchanged — the
// ledger charges every intra payload to the onesided channel at the
// intra level (recovery-flagged envelopes to the recovery channel), so
// total payload words match the flat run to the word while the
// *inter-node* words shrink to exactly what the composed partition
// predicts.
//
// Rounds: the intra hand-off of an epoch is one parallel step of each
// node's crossbar — charged as a single intra-level round; the inner
// backend charges its own inter-level rounds through the machinery it
// already has (the per-level ledger classifies them by endpoints).
//
// Limits, by design: no wire fault injection on the intra path (a node's
// shared memory does not drop words; install faults under an inner
// Reliable backend to exercise the fabric), and no handler delivery —
// the drivers' sender-sorted reduction already pins the float order, and
// interleaving an inner AM handler with shared deliveries would not.
// Dead ranks are honoured on both paths.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hier/topology.hpp"
#include "onesided/segment_registry.hpp"
#include "simt/reliable_exchange.hpp"

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::hier {

class HierarchicalExchange final : public simt::Exchanger {
 public:
  struct Stats {
    std::uint64_t epochs = 0;            ///< settled logical exchanges
    std::uint64_t shared_puts = 0;       ///< node-local zero-copy hand-offs
    std::uint64_t shared_words = 0;      ///< payload words moved intra-node
    std::uint64_t node_fences = 0;       ///< intra fences (<= nodes/epoch)
    std::uint64_t inter_envelopes = 0;   ///< envelopes routed to the fabric
    std::uint64_t inter_words = 0;       ///< payload words sent cross-node
  };

  /// Wires the topology into the machine's ledger (set_node_map — the
  /// machine must not have recorded traffic yet) and takes ownership of
  /// the inner backend carrying inter-node traffic. The inner exchanger
  /// must wrap the same machine; the topology must cover its ranks.
  HierarchicalExchange(simt::Machine& machine, Topology topology,
                       std::unique_ptr<simt::Exchanger> inter);

  /// One epoch: route every envelope by level, fence the shared segments,
  /// run the inner exchange, and return the merged (origin-ascending)
  /// inboxes. Intra deliveries are zero-copy views into the handed-off
  /// slabs, valid until the next exchange begins.
  std::vector<std::vector<simt::Delivery>> exchange(
      std::vector<std::vector<simt::Envelope>> outboxes,
      simt::Transport transport) override;

  /// Pipelined form: each part() hands intra traffic to the segments and
  /// inter traffic to the inner backend's own Parts immediately (the
  /// overlap the pipeline wants); deliveries from both paths are merged
  /// at finish(). An abandoned Parts settles accounting, delivers
  /// nothing.
  [[nodiscard]] std::unique_ptr<Exchanger::Parts> begin_parts(
      simt::Transport transport) override;

  void set_phase(const char* phase) override;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] simt::Exchanger& inter() { return *inter_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Publishes Stats into `out` as "<prefix>.*", set absolutely so
  /// re-export is idempotent.
  void publish_metrics(obs::MetricsRegistry& out,
                       const std::string& prefix = "hier") const;

 private:
  class PartsImpl;
  friend class PartsImpl;

  /// Intra-side accounting accumulated across parts, settled at the
  /// node fence.
  struct EpochState {
    std::vector<char> node_touched;  ///< node had an intra endpoint
    std::uint64_t onesided_words = 0;
    std::uint64_t recovery_words = 0;
    bool settled = false;  ///< settle_intra ran (it runs at most once)
  };

  void open_epoch(EpochState& st);
  /// Splits one part: intra envelopes land in the shared segments (and
  /// on the ledger) right away; inter envelopes are returned for the
  /// inner backend. Validates the whole part before touching anything.
  std::vector<std::vector<simt::Envelope>> route_part(
      std::vector<std::vector<simt::Envelope>> outboxes, EpochState& st);
  /// Fences the shared segments: one sync op per touched node, one intra
  /// round for the epoch's hand-off step.
  void settle_intra(EpochState& st);
  /// Merges the fenced shared deliveries into the inner inboxes,
  /// origin-ascending per target (both inputs arrive origin-sorted).
  std::vector<std::vector<simt::Delivery>> merge_deliveries(
      std::vector<std::vector<simt::Delivery>> inter_inboxes);

  Topology topo_;
  std::unique_ptr<simt::Exchanger> inter_;
  onesided::SegmentRegistry registry_;
  Stats stats_;
};

}  // namespace sttsv::hier
