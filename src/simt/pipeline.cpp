#include "simt/pipeline.hpp"

namespace sttsv::simt {

SerialExecutor& SerialExecutor::instance() {
  // Function-local so the worker joins at process exit, after the last
  // pipelined exchange but before static teardown races anything.
  static SerialExecutor executor;
  return executor;
}

SerialExecutor::SerialExecutor() : worker_([this]() { loop(); }) {}

SerialExecutor::~SerialExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void SerialExecutor::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void SerialExecutor::loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop requested and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();  // packaged_task: exceptions land in the caller's future
  }
}

}  // namespace sttsv::simt
