#include "simt/reliable_exchange.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simt/fault_injector.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace sttsv::simt {

namespace {

// Wire format. All header fields are uint64 values bit-cast into the
// double payload stream; no arithmetic ever touches them.
//
// Data frame:  [magic, seq, payload_len, payload_cksum, header_cksum,
//               payload...]
// ACK frame:   [magic, entry_count, cksum, entries...] where an entry is
//              (seq << 1) | ok_bit; ok = accepted, !ok = NACK (payload
//              checksum mismatch, retransmit immediately).
constexpr std::uint64_t kMagicData = 0x5354'5356'4441'5441ULL;  // STSVDATA
constexpr std::uint64_t kMagicAck = 0x5354'5356'4143'4b21ULL;   // STSVACK!
constexpr std::size_t kDataHeaderWords = 5;
constexpr std::size_t kAckHeaderWords = 3;

double enc(std::uint64_t v) { return std::bit_cast<double>(v); }
std::uint64_t dec(double v) { return std::bit_cast<std::uint64_t>(v); }

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t finalize(std::uint64_t h) { return splitmix64(h); }

std::uint64_t payload_checksum(const double* words, std::size_t n) {
  std::uint64_t h = 0x600DC0DEULL;
  for (std::size_t i = 0; i < n; ++i) h = mix(h, dec(words[i]));
  return finalize(h);
}

std::uint64_t pair_id(std::size_t from, std::size_t to) {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

std::uint64_t data_header_checksum(std::uint64_t seq, std::uint64_t len,
                                   std::uint64_t payload_sum,
                                   std::size_t from, std::size_t to) {
  std::uint64_t h = kMagicData;
  h = mix(h, seq);
  h = mix(h, len);
  h = mix(h, payload_sum);
  h = mix(h, from);
  h = mix(h, to);
  return finalize(h);
}

struct PendingFrame {
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint64_t seq = 0;
  PooledBuffer payload;
  bool acked = false;
  std::size_t attempts = 0;
};

/// Wire buffers are leased from the sender's pool shard with the exact
/// frame size, so framing neither reallocates nor over-reserves.
PooledBuffer encode_data(BufferPool& pool, const PendingFrame& f) {
  const std::uint64_t psum =
      payload_checksum(f.payload.data(), f.payload.size());
  PooledBuffer wire = pool.acquire(f.from, kDataHeaderWords + f.payload.size());
  wire.push_back(enc(kMagicData));
  wire.push_back(enc(f.seq));
  wire.push_back(enc(f.payload.size()));
  wire.push_back(enc(psum));
  wire.push_back(
      enc(data_header_checksum(f.seq, f.payload.size(), psum, f.from, f.to)));
  wire.append(f.payload.data(), f.payload.size());
  return wire;
}

struct DecodedData {
  std::uint64_t seq = 0;
  bool payload_ok = false;
  PooledBuffer payload;
};

/// False => frame unparseable (header damaged): no ACK/NACK possible, the
/// sender recovers it via retry on the missing ACK. On a valid payload
/// the delivery's buffer is stolen and the header consumed in place — the
/// payload is never copied off the wire.
bool decode_data(Delivery& d, std::size_t to, DecodedData& out) {
  if (d.data.size() < kDataHeaderWords) return false;
  if (dec(d.data[0]) != kMagicData) return false;
  const std::uint64_t seq = dec(d.data[1]);
  const std::uint64_t len = dec(d.data[2]);
  const std::uint64_t psum = dec(d.data[3]);
  if (dec(d.data[4]) != data_header_checksum(seq, len, psum, d.from, to)) {
    return false;
  }
  if (len != d.data.size() - kDataHeaderWords) return false;
  out.seq = seq;
  out.payload_ok =
      payload_checksum(d.data.data() + kDataHeaderWords, len) == psum;
  if (out.payload_ok) {
    out.payload = std::move(d.data);
    out.payload.consume_front(kDataHeaderWords);
  }
  return true;
}

struct AckEntry {
  std::uint64_t seq = 0;
  bool ok = false;
};

PooledBuffer encode_ack(BufferPool& pool, std::size_t from, std::size_t to,
                        const std::vector<AckEntry>& entries) {
  std::uint64_t h = mix(mix(mix(kMagicAck, entries.size()), from), to);
  PooledBuffer wire = pool.acquire(from, kAckHeaderWords + entries.size());
  wire.resize(kAckHeaderWords);
  for (const AckEntry& e : entries) {
    const std::uint64_t w = (e.seq << 1) | (e.ok ? 1ULL : 0ULL);
    h = mix(h, w);
    wire.push_back(enc(w));
  }
  wire[0] = enc(kMagicAck);
  wire[1] = enc(entries.size());
  wire[2] = enc(finalize(h));
  return wire;
}

bool decode_ack(const Delivery& d, std::size_t to,
                std::vector<AckEntry>& out) {
  if (d.data.size() < kAckHeaderWords) return false;
  if (dec(d.data[0]) != kMagicAck) return false;
  const std::uint64_t count = dec(d.data[1]);
  if (count != d.data.size() - kAckHeaderWords) return false;
  std::uint64_t h = kMagicAck;
  h = mix(h, count);
  h = mix(h, d.from);
  h = mix(h, to);
  for (std::size_t i = 0; i < count; ++i) {
    h = mix(h, dec(d.data[kAckHeaderWords + i]));
  }
  if (finalize(h) != dec(d.data[2])) return false;
  out.clear();
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t w = dec(d.data[kAckHeaderWords + i]);
    out.push_back(AckEntry{w >> 1, (w & 1ULL) != 0});
  }
  return true;
}

std::string describe(const FaultReport& report) {
  std::ostringstream os;
  os << "resilient exchange failed: " << report.undelivered.size()
     << " frame(s) undelivered after " << report.attempts_used
     << " attempt(s) in phase '" << report.phase << "' (exchange #"
     << report.exchange_index << ")";
  return os.str();
}

}  // namespace

FaultError::FaultError(FaultReport report)
    : std::runtime_error(describe(report)), report_(std::move(report)) {}

RankLossError::RankLossError(FaultReport report, RankLossReport loss)
    : FaultError(std::move(report)), loss_(std::move(loss)) {}

namespace {

/// Default Parts: collect every part's envelopes and run one ordinary
/// exchange() at finish(). Envelopes are concatenated per sender in part
/// order; the exchanger's own stable sort by destination then produces
/// the same frame order — and for ReliableExchange the same sequence
/// numbers, checksums, injected-fault pattern and ledger — as if the
/// caller had packed one big outbox set.
class BufferedParts final : public Exchanger::Parts {
 public:
  BufferedParts(Exchanger& exchanger, Transport transport)
      : exchanger_(exchanger), transport_(transport) {}

  std::vector<std::vector<Delivery>> part(
      std::vector<std::vector<Envelope>> outboxes) override {
    STTSV_CHECK(!finished_, "exchange parts already finished");
    if (merged_.empty()) {
      merged_ = std::move(outboxes);
    } else {
      STTSV_REQUIRE(outboxes.size() == merged_.size(),
                    "every part needs one outbox per rank");
      for (std::size_t p = 0; p < merged_.size(); ++p) {
        for (Envelope& env : outboxes[p]) {
          merged_[p].push_back(std::move(env));
        }
      }
    }
    return {};
  }

  std::vector<std::vector<Delivery>> finish() override {
    STTSV_CHECK(!finished_, "exchange parts already finished");
    finished_ = true;
    if (merged_.empty()) return {};
    return exchanger_.exchange(std::move(merged_), transport_);
  }

 private:
  Exchanger& exchanger_;
  Transport transport_;
  std::vector<std::vector<Envelope>> merged_;
  bool finished_ = false;
};

/// DirectExchange Parts: a live Machine::ExchangeSession, so each part
/// hits the wire (and the ledger's word counters) as soon as it is
/// produced while rounds settle over the union at finish().
class DirectParts final : public Exchanger::Parts {
 public:
  DirectParts(Machine& machine, Transport transport)
      : session_(machine.begin_session(transport)) {}

  std::vector<std::vector<Delivery>> part(
      std::vector<std::vector<Envelope>> outboxes) override {
    return session_.part(std::move(outboxes));
  }

  std::vector<std::vector<Delivery>> finish() override {
    session_.finish();
    return {};
  }

 private:
  Machine::ExchangeSession session_;
};

}  // namespace

std::unique_ptr<Exchanger::Parts> Exchanger::begin_parts(Transport transport) {
  return std::make_unique<BufferedParts>(*this, transport);
}

std::unique_ptr<Exchanger::Parts> DirectExchange::begin_parts(
    Transport transport) {
  return std::make_unique<DirectParts>(machine_, transport);
}

ReliableExchange::ReliableExchange(Machine& machine, RetryPolicy retry,
                                   RecoveryPolicy recovery,
                                   LivenessPolicy liveness)
    : Exchanger(machine),
      retry_(retry),
      recovery_(recovery),
      liveness_(liveness) {
  STTSV_REQUIRE(retry_.max_attempts >= 1,
                "retry policy needs at least one attempt");
  STTSV_REQUIRE(!liveness_.enabled || liveness_.suspect_after_attempts >= 1,
                "liveness needs at least one silent attempt to suspect");
}

std::vector<std::vector<Delivery>> ReliableExchange::exchange(
    std::vector<std::vector<Envelope>> outboxes, Transport transport) {
  const std::size_t P = machine_.num_ranks();
  STTSV_REQUIRE(outboxes.size() == P, "one outbox per rank required");
  ++exchange_counter_;
  ++stats_.exchanges;

  obs::Span protocol_span("rex.exchange", obs::Category::kExchange);

  FaultInjector* injector = machine_.fault_injector();
  const std::size_t log_begin =
      injector != nullptr ? injector->log().size() : 0;

  // Frame the outboxes in the raw machine's deterministic order (stable
  // by destination) so per-pair sequence numbers reproduce the fault-free
  // delivery order exactly.
  std::vector<PendingFrame> frames;
  for (std::size_t from = 0; from < P; ++from) {
    for (const Envelope& env : outboxes[from]) {
      STTSV_REQUIRE(env.to < P, "envelope destination out of range");
      STTSV_REQUIRE(env.to != from,
                    "self-sends must be handled as local copies");
      STTSV_REQUIRE(env.overhead_words == 0,
                    "reliable exchange frames raw payloads only");
    }
    std::stable_sort(outboxes[from].begin(), outboxes[from].end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.to < b.to;
                     });
    for (Envelope& env : outboxes[from]) {
      PendingFrame f;
      f.from = from;
      f.to = env.to;
      f.seq = next_seq_[pair_id(from, env.to)]++;
      f.payload = std::move(env.data);
      frames.push_back(std::move(f));
    }
  }
  stats_.data_frames += frames.size();
  protocol_span.set_arg(frames.size());

  // (pair, seq) -> frame index, for settling ACKs.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, std::size_t>>
      frame_index;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    frame_index[pair_id(frames[i].from, frames[i].to)][frames[i].seq] = i;
  }

  struct Accepted {
    std::size_t from = 0;
    std::uint64_t seq = 0;
    PooledBuffer payload;
  };
  std::vector<std::vector<Accepted>> accepted(P);
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      accepted_seqs;

  auto accept_frame = [&](std::size_t receiver, std::size_t sender,
                          std::uint64_t seq,
                          PooledBuffer&& payload) -> bool {
    auto& seen = accepted_seqs[pair_id(sender, receiver)];
    if (seen.contains(seq)) {
      ++stats_.duplicate_frames_ignored;
      return false;
    }
    seen.insert(seq);
    accepted[receiver].push_back(
        Accepted{sender, seq, std::move(payload)});
    return true;
  };

  // Liveness evidence: consecutive protocol attempts in which a probed
  // peer (endpoint of a pending frame) produced no delivery at all. Any
  // observed frame from a rank — data, ACK, even one too damaged to
  // decode — proves it alive, because wire metadata (Delivery::from) is
  // trustworthy in the simulator.
  std::vector<std::size_t> silent(P, 0);

  // One protocol attempt: transmit the given frames, then run an ACK/NACK
  // round. Both wire trips pass through the fault injector.
  auto run_attempt = [&](const std::vector<std::size_t>& send_idx,
                         bool first, Transport t) {
    std::vector<char> probed(P, 0);
    std::vector<char> heard(P, 0);
    for (const std::size_t idx : send_idx) {
      probed[frames[idx].from] = 1;
      probed[frames[idx].to] = 1;
    }
    const auto settle_silence = [&] {
      if (!liveness_.enabled) return;
      for (std::size_t r = 0; r < P; ++r) {
        if (probed[r] == 0) continue;
        if (heard[r] != 0) {
          silent[r] = 0;
        } else {
          ++silent[r];
        }
      }
    };

    std::vector<std::vector<Envelope>> wire_out(P);
    for (const std::size_t idx : send_idx) {
      PendingFrame& f = frames[idx];
      ++f.attempts;
      if (!first) ++stats_.retransmitted_frames;
      Envelope env;
      env.to = f.to;
      env.data = encode_data(machine_.pool(), f);
      // The payload is goodput exactly once, on its first transmission;
      // headers always — and whole retransmissions — are overhead.
      env.overhead_words = first ? kDataHeaderWords : env.data.size();
      wire_out[f.from].push_back(std::move(env));
    }
    auto wire_in = machine_.exchange(std::move(wire_out), t);

    std::vector<std::map<std::size_t, std::vector<AckEntry>>> acks(P);
    for (std::size_t r = 0; r < P; ++r) {
      for (Delivery& d : wire_in[r]) {
        heard[d.from] = 1;
        DecodedData dd;
        if (!decode_data(d, r, dd)) {
          ++stats_.corrupt_frames_detected;
          continue;  // header damaged: silence, the retry recovers it
        }
        if (!dd.payload_ok) {
          ++stats_.corrupt_frames_detected;
          ++stats_.nack_entries;
          acks[r][d.from].push_back(AckEntry{dd.seq, false});
          continue;
        }
        accept_frame(r, d.from, dd.seq, std::move(dd.payload));
        // Accept and duplicate alike are (re-)ACKed, so a lost ACK heals.
        acks[r][d.from].push_back(AckEntry{dd.seq, true});
      }
    }

    bool any_acks = false;
    for (const auto& per_rank : acks) any_acks |= !per_rank.empty();
    if (!any_acks) {
      settle_silence();
      return;
    }

    // ACK/NACK traffic is pure protocol: the round lands on the overhead
    // channel in any exported trace.
    obs::Span ack_span("rex.ack-round", obs::Category::kRetry);
    std::vector<std::vector<Envelope>> ack_out(P);
    for (std::size_t r = 0; r < P; ++r) {
      for (const auto& [sender, entries] : acks[r]) {
        Envelope env;
        env.to = sender;
        env.data = encode_ack(machine_.pool(), r, sender, entries);
        env.overhead_words = env.data.size();
        ack_out[r].push_back(std::move(env));
        ++stats_.ack_frames;
      }
    }
    auto ack_in = machine_.exchange(std::move(ack_out),
                                    Transport::kPointToPoint);
    for (std::size_t s = 0; s < P; ++s) {
      for (const Delivery& d : ack_in[s]) {
        heard[d.from] = 1;
        std::vector<AckEntry> entries;
        if (!decode_ack(d, s, entries)) {
          ++stats_.corrupt_frames_detected;
          continue;
        }
        const auto pit = frame_index.find(pair_id(s, d.from));
        if (pit == frame_index.end()) continue;
        for (const AckEntry& e : entries) {
          if (!e.ok) continue;  // NACK: stays pending, retried next loop
          const auto fit = pit->second.find(e.seq);
          if (fit != pit->second.end()) frames[fit->second].acked = true;
        }
      }
    }
    settle_silence();
  };

  std::size_t attempt = 0;
  while (attempt < retry_.max_attempts) {
    std::vector<std::size_t> unacked;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (!frames[i].acked) unacked.push_back(i);
    }
    if (unacked.empty()) break;
    if (attempt > 0) {
      // Exponential backoff: base << (attempt-1), saturating at the cap.
      std::size_t backoff = retry_.backoff_base_rounds;
      for (std::size_t k = 1; k < attempt && backoff < retry_.backoff_cap_rounds;
           ++k) {
        backoff *= 2;
      }
      backoff = std::min(backoff, retry_.backoff_cap_rounds);
      obs::Span backoff_span("rex.backoff", obs::Category::kRetry, backoff);
      machine_.ledger().add_overhead_rounds(backoff);
      stats_.backoff_rounds += backoff;
    }
    if (attempt == 0) {
      run_attempt(unacked, true, transport);
    } else {
      obs::Span retry_span("rex.retry", obs::Category::kRetry,
                           unacked.size());
      run_attempt(unacked, false, Transport::kPointToPoint);
    }
    ++attempt;
  }

  std::vector<std::size_t> undelivered;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (!frames[i].acked) undelivered.push_back(i);
  }
  if (!undelivered.empty()) {
    FaultReport report;
    report.phase = phase_;
    report.exchange_index = exchange_counter_;
    report.attempts_used = attempt;
    for (const std::size_t idx : undelivered) {
      const PendingFrame& f = frames[idx];
      report.undelivered.push_back(
          FrameFault{f.from, f.to, f.seq, f.payload.size(), f.attempts});
      report.affected_ranks.push_back(f.from);
      report.affected_ranks.push_back(f.to);
    }
    std::sort(report.affected_ranks.begin(), report.affected_ranks.end());
    report.affected_ranks.erase(std::unique(report.affected_ranks.begin(),
                                            report.affected_ranks.end()),
                                report.affected_ranks.end());
    report.injection_log_begin = log_begin;
    report.injection_log_end =
        injector != nullptr ? injector->log().size() : 0;

    if (liveness_.enabled) {
      // Verdict: an undelivered frame's peer that never produced a single
      // delivery for `suspect_after_attempts` consecutive attempts is
      // suspected dead. Silence alone cannot convict: once a peer dies,
      // its neighbours' remaining traffic all targets the corpse, so they
      // go quiet too (nothing deliverable to say) — the membership truth
      // arbitrates, standing in for the out-of-band failure detector a
      // real cluster manager provides. A live-but-quiet rank (fully
      // partitioned link) therefore stays a link fault. The verdict fires
      // under either recovery policy — a degraded replay cannot reach a
      // dead owner.
      std::vector<std::size_t> suspects;
      std::size_t max_silent = 0;
      for (const std::size_t r : report.affected_ranks) {
        if (silent[r] >= liveness_.suspect_after_attempts &&
            !machine_.alive(r)) {
          suspects.push_back(r);
          max_silent = std::max(max_silent, silent[r]);
        }
      }
      if (!suspects.empty()) {
        ++stats_.rank_loss_verdicts;
        for (const std::size_t r : suspects) machine_.mark_dead(r);
        RankLossReport loss;
        loss.dead_ranks = suspects;
        loss.phase = phase_;
        loss.exchange_index = exchange_counter_;
        loss.silent_attempts = max_silent;
        loss.undelivered_frames = report.undelivered.size();
        loss.membership_epoch = machine_.membership_epoch();
        loss.injection_log_begin = report.injection_log_begin;
        loss.injection_log_end = report.injection_log_end;
        machine_.record_rank_loss(loss);
        throw RankLossError(std::move(report), std::move(loss));
      }
    }

    if (recovery_ == RecoveryPolicy::kFailFast) {
      throw FaultError(std::move(report));
    }

    // kDegrade: the sender still owns every undelivered payload (the
    // owner-compute invariant — tensor blocks never travel, so each
    // contribution is deterministically replayable). Replay over a clean
    // channel with the injector bypassed, charged entirely as overhead.
    obs::Span replay_span("rex.degraded-replay", obs::Category::kRetry,
                          undelivered.size());
    machine_.set_fault_injector(nullptr);
    std::vector<std::vector<Envelope>> replay_out(P);
    for (const std::size_t idx : undelivered) {
      const PendingFrame& f = frames[idx];
      Envelope env;
      env.to = f.to;
      env.data = encode_data(machine_.pool(), f);
      env.overhead_words = env.data.size();
      replay_out[f.from].push_back(std::move(env));
    }
    auto replay_in =
        machine_.exchange(std::move(replay_out), Transport::kPointToPoint);
    machine_.set_fault_injector(injector);
    for (std::size_t r = 0; r < P; ++r) {
      for (Delivery& d : replay_in[r]) {
        DecodedData dd;
        STTSV_CHECK(decode_data(d, r, dd) && dd.payload_ok,
                    "degraded replay corrupted on a clean channel");
        // A frame whose ACK (not data) was lost is already accepted;
        // the idempotent accept path absorbs the replay copy.
        accept_frame(r, d.from, dd.seq, std::move(dd.payload));
      }
    }
    stats_.degraded_deliveries += undelivered.size();
    report.degraded = true;
    reports_.push_back(std::move(report));
  }

  // Assemble inboxes in the fault-free machine's order: by sender, then
  // by sequence number (== the sender's post-sort envelope order).
  std::vector<std::vector<Delivery>> inboxes(P);
  std::size_t delivered = 0;
  for (std::size_t r = 0; r < P; ++r) {
    std::sort(accepted[r].begin(), accepted[r].end(),
              [](const Accepted& a, const Accepted& b) {
                return a.from != b.from ? a.from < b.from : a.seq < b.seq;
              });
    inboxes[r].reserve(accepted[r].size());
    for (Accepted& a : accepted[r]) {
      inboxes[r].push_back(Delivery{a.from, std::move(a.payload)});
      ++delivered;
    }
  }
  if (delivered != frames.size()) {
    // Only reachable when a dead endpoint swallowed frames on the clean
    // degraded channel (the machine drops them below the protocol): a
    // replay cannot heal rank loss, so surface a structured failure
    // instead of an internal-invariant crash.
    FaultReport incomplete;
    incomplete.phase = phase_;
    incomplete.exchange_index = exchange_counter_;
    incomplete.attempts_used = retry_.max_attempts;
    incomplete.degraded = true;
    for (const PendingFrame& f : frames) {
      if (!accepted_seqs[pair_id(f.from, f.to)].contains(f.seq)) {
        incomplete.undelivered.push_back(
            FrameFault{f.from, f.to, f.seq, f.payload.size(), f.attempts});
        incomplete.affected_ranks.push_back(f.from);
        incomplete.affected_ranks.push_back(f.to);
      }
    }
    std::sort(incomplete.affected_ranks.begin(),
              incomplete.affected_ranks.end());
    incomplete.affected_ranks.erase(
        std::unique(incomplete.affected_ranks.begin(),
                    incomplete.affected_ranks.end()),
        incomplete.affected_ranks.end());
    incomplete.injection_log_begin = log_begin;
    incomplete.injection_log_end =
        injector != nullptr ? injector->log().size() : 0;
    throw FaultError(std::move(incomplete));
  }
  return inboxes;
}

void ReliableExchange::publish_metrics(obs::MetricsRegistry& out,
                                       const std::string& prefix) const {
  out.set_counter(prefix + ".exchanges", stats_.exchanges);
  out.set_counter(prefix + ".data_frames", stats_.data_frames);
  out.set_counter(prefix + ".retransmitted_frames",
                  stats_.retransmitted_frames);
  out.set_counter(prefix + ".ack_frames", stats_.ack_frames);
  out.set_counter(prefix + ".nack_entries", stats_.nack_entries);
  out.set_counter(prefix + ".corrupt_frames_detected",
                  stats_.corrupt_frames_detected);
  out.set_counter(prefix + ".duplicate_frames_ignored",
                  stats_.duplicate_frames_ignored);
  out.set_counter(prefix + ".degraded_deliveries",
                  stats_.degraded_deliveries);
  out.set_counter(prefix + ".backoff_rounds", stats_.backoff_rounds);
  out.set_counter(prefix + ".rank_loss_verdicts", stats_.rank_loss_verdicts);
  out.set_counter(prefix + ".degraded_reports", reports_.size());
}

}  // namespace sttsv::simt
