#include "simt/collective.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::simt {

std::vector<double> allreduce_sum(
    Machine& machine,
    const std::vector<std::vector<double>>& contributions) {
  const std::size_t P = machine.num_ranks();
  STTSV_REQUIRE(contributions.size() == P,
                "one contribution per rank required");
  const std::size_t L = contributions.empty() ? 0 : contributions[0].size();
  for (const auto& c : contributions) {
    STTSV_REQUIRE(c.size() == L, "contribution lengths must match");
  }
  if (L == 0) return {};

  // Accumulate in place instead of deep-copying all P contributions:
  // `acc[p]` materializes (from the pool) only once rank p actually has
  // to combine or replace its value; until then the rank's current value
  // is its caller-owned contribution, which is never written.
  std::vector<PooledBuffer> acc(P);
  const auto view = [&](std::size_t p) -> const double* {
    return acc[p].empty() ? contributions[p].data() : acc[p].data();
  };

  // Binomial reduce toward rank 0: at step s, ranks with (p % 2s) == s
  // send their partial to p - s.
  for (std::size_t s = 1; s < P; s *= 2) {
    std::vector<std::vector<Envelope>> out(P);
    for (std::size_t p = 0; p < P; ++p) {
      if (p % (2 * s) == s) {
        PooledBuffer msg = machine.pool().acquire(p, L);
        msg.append(view(p), L);
        out[p].push_back(Envelope{p - s, std::move(msg)});
      }
    }
    auto in = machine.exchange(std::move(out), Transport::kPointToPoint);
    for (std::size_t p = 0; p < P; ++p) {
      for (const Delivery& d : in[p]) {
        if (acc[p].empty()) {
          acc[p] = machine.pool().acquire(p, L);
          acc[p].append(contributions[p].data(), L);
        }
        for (std::size_t i = 0; i < L; ++i) acc[p][i] += d.data[i];
      }
    }
  }

  // Binomial broadcast from rank 0; receivers adopt the delivered buffer.
  std::size_t top = 1;
  while (top < P) top *= 2;
  for (std::size_t s = top / 2; s >= 1; s /= 2) {
    std::vector<std::vector<Envelope>> out(P);
    for (std::size_t p = 0; p < P; ++p) {
      if (p % (2 * s) == 0 && p + s < P) {
        PooledBuffer msg = machine.pool().acquire(p, L);
        msg.append(view(p), L);
        out[p].push_back(Envelope{p + s, std::move(msg)});
      }
    }
    auto in = machine.exchange(std::move(out), Transport::kPointToPoint);
    for (std::size_t p = 0; p < P; ++p) {
      for (Delivery& d : in[p]) acc[p] = std::move(d.data);
    }
    if (s == 1) break;
  }

  // All ranks now hold the same sum.
  for (std::size_t p = 1; p < P; ++p) {
    STTSV_DCHECK(std::equal(view(p), view(p) + L, view(0)),
                 "allreduce divergence");
  }
  return std::vector<double>(view(0), view(0) + L);
}

}  // namespace sttsv::simt
