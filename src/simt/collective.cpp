#include "simt/collective.hpp"

#include "support/check.hpp"

namespace sttsv::simt {

std::vector<double> allreduce_sum(
    Machine& machine,
    const std::vector<std::vector<double>>& contributions) {
  const std::size_t P = machine.num_ranks();
  STTSV_REQUIRE(contributions.size() == P,
                "one contribution per rank required");
  const std::size_t L = contributions.empty() ? 0 : contributions[0].size();
  for (const auto& c : contributions) {
    STTSV_REQUIRE(c.size() == L, "contribution lengths must match");
  }
  if (L == 0) return {};

  // Working copy of each rank's partial.
  std::vector<std::vector<double>> partial(contributions);

  // Binomial reduce toward rank 0: at step s, ranks with (p % 2s) == s
  // send their partial to p - s.
  for (std::size_t s = 1; s < P; s *= 2) {
    std::vector<std::vector<Envelope>> out(P);
    for (std::size_t p = 0; p < P; ++p) {
      if (p % (2 * s) == s) {
        out[p].push_back(Envelope{p - s, partial[p]});
      }
    }
    auto in = machine.exchange(std::move(out), Transport::kPointToPoint);
    for (std::size_t p = 0; p < P; ++p) {
      for (const Delivery& d : in[p]) {
        for (std::size_t i = 0; i < L; ++i) partial[p][i] += d.data[i];
      }
    }
  }

  // Binomial broadcast from rank 0.
  std::size_t top = 1;
  while (top < P) top *= 2;
  for (std::size_t s = top / 2; s >= 1; s /= 2) {
    std::vector<std::vector<Envelope>> out(P);
    for (std::size_t p = 0; p < P; ++p) {
      if (p % (2 * s) == 0 && p + s < P) {
        out[p].push_back(Envelope{p + s, partial[p]});
      }
    }
    auto in = machine.exchange(std::move(out), Transport::kPointToPoint);
    for (std::size_t p = 0; p < P; ++p) {
      for (Delivery& d : in[p]) partial[p] = std::move(d.data);
    }
    if (s == 1) break;
  }

  // All ranks now hold the same sum.
  for (std::size_t p = 1; p < P; ++p) {
    STTSV_DCHECK(partial[p] == partial[0], "allreduce divergence");
  }
  return partial[0];
}

}  // namespace sttsv::simt
