#pragma once
// Collective operations on the simulated machine, built from point-to-
// point exchanges so the ledger reflects the real message pattern:
//
//  * allreduce_sum — binomial-tree reduce to rank 0 followed by binomial
//    broadcast: 2·ceil(log₂ P) rounds, <= 2·ceil(log₂ P)·L words per rank
//    for vectors of length L. Used by the fully distributed iterative
//    solvers (norms, dot products) where only O(1)-length reductions
//    cross the network per iteration.

#include <vector>

#include "simt/machine.hpp"

namespace sttsv::simt {

/// contributions[p] is rank p's local vector (all the same length L).
/// Returns the elementwise global sum; every rank "ends" holding it
/// (the broadcast phase is executed and counted).
std::vector<double> allreduce_sum(
    Machine& machine, const std::vector<std::vector<double>>& contributions);

}  // namespace sttsv::simt
