#include "simt/machine.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "simt/fault_injector.hpp"
#include "simt/parallel_for.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

Machine::Machine(std::size_t num_ranks) : P_(num_ranks), ledger_(num_ranks) {
  STTSV_REQUIRE(num_ranks >= 1, "machine needs at least one rank");
}

std::vector<std::vector<Delivery>> Machine::exchange(
    std::vector<std::vector<Envelope>> outboxes, Transport transport) {
  STTSV_REQUIRE(outboxes.size() == P_, "one outbox per rank required");

  // Validate every envelope before touching the ledger or moving any
  // payload: a malformed outbox must fail with the machine state intact.
  for (std::size_t from = 0; from < P_; ++from) {
    for (const Envelope& env : outboxes[from]) {
      STTSV_REQUIRE(env.to < P_, "envelope destination out of range");
      STTSV_REQUIRE(env.to != from,
                    "self-sends must be handled as local copies");
      STTSV_REQUIRE(env.overhead_words <= env.data.size(),
                    "envelope overhead exceeds payload size");
    }
  }

  if (injector_ != nullptr) injector_->begin_exchange();

  // The span's category is settled at the end: an exchange moving no
  // goodput is pure protocol traffic and lands on the overhead channel
  // (kRetry) in any exported trace.
  obs::Span span("machine.exchange", obs::Category::kExchange);

  std::vector<std::vector<Delivery>> inboxes(P_);
  std::vector<std::size_t> sends_per_rank(P_, 0);
  std::vector<std::size_t> recvs_per_rank(P_, 0);
  std::size_t max_pair_words = 0;
  std::size_t total_goodput = 0;
  std::size_t total_overhead = 0;

  for (std::size_t from = 0; from < P_; ++from) {
    // Deterministic delivery order: by destination, then insertion order.
    std::stable_sort(outboxes[from].begin(), outboxes[from].end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.to < b.to;
                     });
    for (auto& env : outboxes[from]) {
      const std::size_t goodput = env.data.size() - env.overhead_words;
      if (goodput > 0) ledger_.record_message(from, env.to, goodput);
      if (env.overhead_words > 0) {
        ledger_.record_overhead(from, env.to, env.overhead_words);
      }
      total_goodput += goodput;
      total_overhead += env.overhead_words;
      max_pair_words = std::max(max_pair_words, env.data.size());
      // Rounds reflect the intended schedule: a dropped frame still held
      // its slot, an injected duplicate rides along without one.
      ++sends_per_rank[from];
      ++recvs_per_rank[env.to];

      if (injector_ != nullptr) {
        switch (injector_->on_frame(from, env.to, env.data)) {
          case FaultInjector::Action::kDrop:
            continue;  // charged, never delivered
          case FaultInjector::Action::kDuplicate:
            ledger_.record_overhead(from, env.to, env.data.size());
            inboxes[env.to].push_back(Delivery{from, env.data});
            break;
          case FaultInjector::Action::kDeliver:
            break;
        }
      }
      inboxes[env.to].push_back(Delivery{from, std::move(env.data)});
    }
  }
  for (auto& inbox : inboxes) {
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const Delivery& a, const Delivery& b) {
                       return a.from < b.from;
                     });
  }
  if (injector_ != nullptr) {
    for (std::size_t p = 0; p < P_; ++p) {
      injector_->maybe_reorder(p, inboxes[p]);
    }
  }

  // An exchange that moves no goodput at all is pure protocol traffic
  // (ACK rounds, retransmissions): its steps are resilience overhead.
  const bool overhead_only = total_goodput == 0 && total_overhead > 0;
  span.set_arg(total_goodput + total_overhead);
  if (overhead_only) span.set_category(obs::Category::kRetry);
  switch (transport) {
    case Transport::kPointToPoint: {
      // König: a bipartite multigraph with max degree Δ is Δ-edge-
      // colorable, so the exchange completes in Δ steps where
      // Δ = max over ranks of max(#sends, #receives).
      std::size_t delta = 0;
      for (std::size_t p = 0; p < P_; ++p) {
        delta = std::max({delta, sends_per_rank[p], recvs_per_rank[p]});
      }
      if (overhead_only) {
        ledger_.add_overhead_rounds(delta);
      } else {
        ledger_.add_rounds(delta);
      }
      break;
    }
    case Transport::kAllToAll: {
      // Bandwidth-optimal All-to-All: P-1 steps, every step charged the
      // largest per-pair buffer (empty slots still occupy the schedule).
      if (P_ > 1) {
        if (overhead_only) {
          ledger_.add_overhead_rounds(P_ - 1);
        } else {
          ledger_.add_rounds(P_ - 1);
        }
        ledger_.add_modeled_collective_words((P_ - 1) * max_pair_words);
      }
      break;
    }
  }
  return inboxes;
}

void Machine::run_ranks(const std::function<void(std::size_t)>& body) const {
  obs::Span step("machine.run_ranks", obs::Category::kSuperstep, P_);
  parallel_for(P_, [&body](std::size_t p) {
    // Attribute everything the rank program records — including the
    // kernel spans below it — to rank p's track.
    obs::ScopedRank as_rank(p);
    obs::Span compute("rank.compute", obs::Category::kSuperstep, p);
    body(p);
  });
}

void Machine::reset_ledger() { ledger_ = CommLedger(P_); }

}  // namespace sttsv::simt
