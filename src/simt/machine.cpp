#include "simt/machine.hpp"

#include <algorithm>

#include "simt/fault_injector.hpp"
#include "simt/parallel_for.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

Machine::Machine(std::size_t num_ranks)
    : P_(num_ranks),
      ledger_(num_ranks),
      pool_(num_ranks == 0 ? 1 : num_ranks),
      dead_flags_(num_ranks, 0),
      num_alive_(num_ranks) {
  STTSV_REQUIRE(num_ranks >= 1, "machine needs at least one rank");
}

void Machine::mark_dead(std::size_t rank) {
  STTSV_REQUIRE(rank < P_, "rank out of range");
  if (dead_flags_[rank] != 0) return;
  STTSV_REQUIRE(num_alive_ > 1, "cannot kill the last live rank");
  dead_flags_[rank] = 1;
  --num_alive_;
  ++membership_epoch_;
}

std::vector<std::size_t> Machine::dead_ranks() const {
  std::vector<std::size_t> dead;
  for (std::size_t p = 0; p < P_; ++p) {
    if (dead_flags_[p] != 0) dead.push_back(p);
  }
  return dead;
}

void Machine::record_rank_loss(RankLossReport report) {
  rank_loss_reports_.push_back(std::move(report));
}

Machine::ExchangeSession::ExchangeSession(Machine& machine, Transport transport)
    : machine_(machine), transport_(transport) {
  for (auto& level : sends_per_rank_) level.assign(machine.P_, 0);
  for (auto& level : recvs_per_rank_) level.assign(machine.P_, 0);
  // The span's category is settled at finish(): an exchange moving no
  // goodput is pure protocol traffic and lands on the overhead channel
  // (kRetry) in any exported trace. Opened here, on the driver thread, so
  // begin/close both run where the trace buffers live.
  span_.emplace("machine.exchange", obs::Category::kExchange);
}

Machine::ExchangeSession::~ExchangeSession() { finish(); }

std::vector<std::vector<Delivery>> Machine::ExchangeSession::part(
    std::vector<std::vector<Envelope>> outboxes) {
  STTSV_CHECK(!finished_, "exchange session already finished");
  const std::size_t P = machine_.P_;
  STTSV_REQUIRE(outboxes.size() == P, "one outbox per rank required");

  // Validate every envelope before touching the ledger or moving any
  // payload: a malformed outbox must fail with the machine state intact.
  for (std::size_t from = 0; from < P; ++from) {
    for (const Envelope& env : outboxes[from]) {
      STTSV_REQUIRE(env.to < P, "envelope destination out of range");
      STTSV_REQUIRE(env.to != from,
                    "self-sends must be handled as local copies");
      STTSV_REQUIRE(env.overhead_words <= env.data.size(),
                    "envelope overhead exceeds payload size");
      STTSV_REQUIRE(!env.recovery || env.overhead_words == 0,
                    "recovery envelopes carry no protocol overhead");
    }
  }

  FaultInjector* injector = machine_.injector_;
  if (injector != nullptr && !injector_started_) {
    // One injector epoch per logical exchange, regardless of part count:
    // stall rolls and the injection-log window cover the whole session.
    injector->begin_exchange();
    injector_started_ = true;
  }
  if (injector != nullptr) {
    // Sync injector-rolled crashes into machine membership. Deaths rolled
    // mid-exchange by on_frame are picked up here at the next exchange:
    // death is detected at exchange granularity (interim frames are still
    // dropped by the injector's own is_dead check).
    for (const std::size_t r : injector->dead_ranks()) {
      machine_.mark_dead(r);
    }
  }

  CommLedger& ledger = machine_.ledger_;
  std::vector<std::vector<Delivery>> inboxes(P);

  // Round slots accumulate per level: the frame occupies a step of its
  // own network (node-local crossbar or inter-node fabric).
  const auto count_slot = [&](std::size_t from, std::size_t to) {
    const auto lvl = static_cast<std::size_t>(ledger.level_of(from, to));
    ++sends_per_rank_[lvl][from];
    ++recvs_per_rank_[lvl][to];
  };

  for (std::size_t from = 0; from < P; ++from) {
    // Deterministic delivery order: by destination, then insertion order.
    std::stable_sort(outboxes[from].begin(), outboxes[from].end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.to < b.to;
                     });
    for (auto& env : outboxes[from]) {
      // Dead endpoints: the frame silently vanishes, charging nothing and
      // holding no round slot. Skipping both the send and the receive
      // side together preserves ledger conservation (record_message
      // increments sender and receiver atomically). This sits below the
      // injector, so a degraded replay with the injector detached still
      // cannot reach a dead peer.
      if (machine_.dead_flags_[from] != 0 ||
          machine_.dead_flags_[env.to] != 0) {
        continue;
      }
      if (env.recovery) {
        ledger.record_recovery(from, env.to, env.data.size());
        total_recovery_ += env.data.size();
        max_pair_words_ = std::max(max_pair_words_, env.data.size());
        count_slot(from, env.to);
        if (injector != nullptr) {
          switch (injector->on_frame(from, env.to, env.data)) {
            case FaultInjector::Action::kDrop:
              continue;
            case FaultInjector::Action::kDuplicate:
              ledger.record_recovery(from, env.to, env.data.size());
              inboxes[env.to].push_back(Delivery{from, env.data.clone()});
              break;
            case FaultInjector::Action::kDeliver:
              break;
          }
        }
        inboxes[env.to].push_back(Delivery{from, std::move(env.data)});
        continue;
      }
      const std::size_t goodput = env.data.size() - env.overhead_words;
      if (goodput > 0) ledger.record_message(from, env.to, goodput);
      if (env.overhead_words > 0) {
        ledger.record_overhead(from, env.to, env.overhead_words);
      }
      total_goodput_ += goodput;
      total_overhead_ += env.overhead_words;
      max_pair_words_ = std::max(max_pair_words_, env.data.size());
      // Rounds reflect the intended schedule: a dropped frame still held
      // its slot, an injected duplicate rides along without one.
      count_slot(from, env.to);

      if (injector != nullptr) {
        switch (injector->on_frame(from, env.to, env.data)) {
          case FaultInjector::Action::kDrop:
            continue;  // charged, never delivered
          case FaultInjector::Action::kDuplicate:
            ledger.record_overhead(from, env.to, env.data.size());
            inboxes[env.to].push_back(Delivery{from, env.data.clone()});
            break;
          case FaultInjector::Action::kDeliver:
            break;
        }
      }
      inboxes[env.to].push_back(Delivery{from, std::move(env.data)});
    }
  }
  for (auto& inbox : inboxes) {
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const Delivery& a, const Delivery& b) {
                       return a.from < b.from;
                     });
  }
  if (injector != nullptr) {
    for (std::size_t p = 0; p < P; ++p) {
      injector->maybe_reorder(p, inboxes[p]);
    }
  }
  ++parts_;
  return inboxes;
}

void Machine::ExchangeSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (parts_ == 0) {
    // Nothing ever flowed (the only part failed validation, or the
    // session was abandoned): the ledger must stay untouched so the
    // strong exception guarantee of exchange() holds.
    span_.reset();
    return;
  }

  CommLedger& ledger = machine_.ledger_;
  // Round classification follows the dominant channel: an exchange that
  // moves goodput is an algorithm step; one that moves only recovery
  // traffic is a redistribution step; one that moves only protocol
  // overhead (ACK rounds, retransmissions) is resilience overhead.
  const bool goodput_rounds = total_goodput_ > 0;
  const bool recovery_rounds = !goodput_rounds && total_recovery_ > 0;
  const bool overhead_only =
      !goodput_rounds && !recovery_rounds && total_overhead_ > 0;
  if (span_.has_value()) {
    span_->set_arg(total_goodput_ + total_overhead_ + total_recovery_);
    if (recovery_rounds) span_->set_category(obs::Category::kRecovery);
    if (overhead_only) span_->set_category(obs::Category::kRetry);
  }
  const Channel round_channel = recovery_rounds ? Channel::kRecovery
                                : overhead_only ? Channel::kOverhead
                                                : Channel::kGoodput;
  switch (transport_) {
    case Transport::kPointToPoint: {
      // König: a bipartite multigraph with max degree Δ is Δ-edge-
      // colorable, so the exchange completes in Δ steps where
      // Δ = max over ranks of max(#sends, #receives). The degrees are
      // summed over every part, so a pipelined session charges exactly
      // the rounds of the equivalent single exchange. Each level is
      // colored independently (DESIGN.md §17): node-local frames occupy
      // intra steps, cross-node frames inter steps. A flat machine puts
      // every frame on kIntra, reproducing the historical single charge.
      for (std::size_t lvl = 0; lvl < kNumLevels; ++lvl) {
        std::size_t delta = 0;
        for (std::size_t p = 0; p < machine_.P_; ++p) {
          delta = std::max(
              {delta, sends_per_rank_[lvl][p], recvs_per_rank_[lvl][p]});
        }
        if (delta > 0) {
          ledger.add_rounds(round_channel, static_cast<Level>(lvl), delta);
        }
      }
      break;
    }
    case Transport::kAllToAll: {
      // Bandwidth-optimal All-to-All: P-1 steps, every step charged the
      // largest per-pair buffer (empty slots still occupy the schedule).
      // The collective is one machine-wide operation, so its steps are
      // charged once, to the slowest level it touched (inter if any
      // frame crossed nodes, intra otherwise).
      if (machine_.P_ > 1) {
        bool any_inter = false;
        const std::size_t inter = static_cast<std::size_t>(Level::kInter);
        for (std::size_t p = 0; p < machine_.P_; ++p) {
          any_inter = any_inter || sends_per_rank_[inter][p] > 0;
        }
        ledger.add_rounds(round_channel,
                          any_inter ? Level::kInter : Level::kIntra,
                          machine_.P_ - 1);
        ledger.add_modeled_collective_words((machine_.P_ - 1) *
                                            max_pair_words_);
      }
      break;
    }
  }
  span_.reset();  // closes the span
}

Machine::ExchangeSession Machine::begin_session(Transport transport) {
  return ExchangeSession(*this, transport);
}

std::vector<std::vector<Delivery>> Machine::exchange(
    std::vector<std::vector<Envelope>> outboxes, Transport transport) {
  ExchangeSession session = begin_session(transport);
  auto inboxes = session.part(std::move(outboxes));
  session.finish();
  return inboxes;
}

void Machine::run_ranks(const std::function<void(std::size_t)>& body) const {
  obs::Span step("machine.run_ranks", obs::Category::kSuperstep, P_);
  parallel_for(P_, [&body](std::size_t p) {
    // Attribute everything the rank program records — including the
    // kernel spans below it — to rank p's track.
    obs::ScopedRank as_rank(p);
    obs::Span compute("rank.compute", obs::Category::kSuperstep, p);
    body(p);
  });
}

void Machine::run_ranks(const std::vector<std::size_t>& ranks,
                        const std::function<void(std::size_t)>& body) const {
  obs::Span step("machine.run_ranks", obs::Category::kSuperstep, ranks.size());
  parallel_for(ranks.size(), [&body, &ranks](std::size_t i) {
    const std::size_t p = ranks[i];
    obs::ScopedRank as_rank(p);
    obs::Span compute("rank.compute", obs::Category::kSuperstep, p);
    body(p);
  });
}

void Machine::first_touch() {
  run_ranks([this](std::size_t p) { pool_.touch(p); });
}

void Machine::reset_ledger() {
  std::vector<std::uint32_t> node_map = ledger_.node_map();
  ledger_ = CommLedger(P_);
  if (!node_map.empty()) ledger_.set_node_map(std::move(node_map));
}

}  // namespace sttsv::simt
