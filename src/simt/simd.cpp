#include "simt/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sttsv::simt {

namespace {

CpuFeatures probe_cpu() {
  CpuFeatures f;
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  __builtin_cpu_init();
  f.sse2 = __builtin_cpu_supports("sse2") != 0;
  f.avx = __builtin_cpu_supports("avx") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return f;
}

bool env_disables_simd() {
  const char* v = std::getenv("STTSV_SIMD");
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "scalar") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{!env_disables_simd()};
  return enabled;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe_cpu();
  return f;
}

std::string cpu_features_string() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  const auto add = [&s](bool have, const char* name) {
    if (!have) return;
    if (!s.empty()) s += ' ';
    s += name;
  };
  add(f.sse2, "sse2");
  add(f.avx, "avx");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  return s.empty() ? "none" : s;
}

const char* isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool simd_compiled() {
#ifdef STTSV_HAVE_AVX2_KERNELS
  return true;
#else
  return false;
#endif
}

void set_simd_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

bool simd_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

KernelIsa preferred_isa() {
  // FMA is required alongside AVX2: the AVX2 kernel TU is compiled with
  // -mfma, so its compressed-math kernels emit FMA instructions.
  if (simd_compiled() && simd_enabled() && cpu_features().avx2 &&
      cpu_features().fma) {
    return KernelIsa::kAvx2;
  }
  return KernelIsa::kScalar;
}

}  // namespace sttsv::simt
