#include "simt/buffer_pool.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <new>

#include "support/check.hpp"

namespace sttsv::simt {

namespace {

std::atomic<std::uint64_t> g_unpooled_allocations{0};

double* allocate_aligned(std::size_t words) {
  void* raw = ::operator new(words * sizeof(double),
                             std::align_val_t{BufferPool::kAlignment});
  return static_cast<double*>(raw);
}

void free_aligned(double* slab) {
  ::operator delete(slab, std::align_val_t{BufferPool::kAlignment});
}

}  // namespace

std::uint64_t unpooled_buffer_allocations() {
  return g_unpooled_allocations.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// PooledBuffer

PooledBuffer::PooledBuffer(std::initializer_list<double> init) {
  append(init.begin(), init.size());
}

PooledBuffer::PooledBuffer(const std::vector<double>& values) {
  append(values.data(), values.size());
}

PooledBuffer::PooledBuffer(std::size_t count, double value) {
  resize(count);
  std::fill(begin(), end(), value);
}

PooledBuffer::~PooledBuffer() { release(); }

PooledBuffer PooledBuffer::attach_view(double* storage, std::size_t words) {
  STTSV_REQUIRE(storage != nullptr || words == 0,
                "view needs storage unless empty");
  PooledBuffer buf;
  buf.base_ = storage;
  buf.size_ = words;
  buf.capacity_ = words;
  buf.view_ = true;
  return buf;
}

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept
    : base_(other.base_),
      offset_(other.offset_),
      size_(other.size_),
      capacity_(other.capacity_),
      pool_(other.pool_),
      shard_(other.shard_),
      bucket_(other.bucket_),
      view_(other.view_) {
  other.base_ = nullptr;
  other.offset_ = other.size_ = other.capacity_ = 0;
  other.pool_ = nullptr;
  other.view_ = false;
}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    release();
    base_ = other.base_;
    offset_ = other.offset_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    pool_ = other.pool_;
    shard_ = other.shard_;
    bucket_ = other.bucket_;
    view_ = other.view_;
    other.base_ = nullptr;
    other.offset_ = other.size_ = other.capacity_ = 0;
    other.pool_ = nullptr;
    other.view_ = false;
  }
  return *this;
}

void PooledBuffer::release() {
  if (base_ != nullptr && !view_) {
    if (pool_ != nullptr) {
      pool_->release_slab(shard_, bucket_, base_);
    } else {
      free_aligned(base_);
    }
  }
  base_ = nullptr;
  offset_ = size_ = capacity_ = 0;
  pool_ = nullptr;
  view_ = false;
}

void PooledBuffer::grow(std::size_t min_capacity) {
  // Doubling keeps unsized packing amortized-O(1); pooled buffers trade
  // up within their own shard so the old slab is immediately reusable.
  const std::size_t want =
      std::max({min_capacity, capacity() * 2, BufferPool::kMinSlabWords});
  if (pool_ != nullptr) {
    PooledBuffer bigger = pool_->acquire(shard_, want);
    std::memcpy(bigger.base_, data(), size_ * sizeof(double));
    bigger.size_ = size_;
    *this = std::move(bigger);
    return;
  }
  double* fresh = allocate_aligned(want);
  g_unpooled_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size_ > 0) std::memcpy(fresh, data(), size_ * sizeof(double));
  // A view's storage belongs to someone else: detach instead of freeing.
  if (base_ != nullptr && !view_) free_aligned(base_);
  base_ = fresh;
  offset_ = 0;
  capacity_ = want;
  view_ = false;
}

void PooledBuffer::reserve(std::size_t capacity_words) {
  if (capacity_words > capacity()) grow(capacity_words);
}

void PooledBuffer::push_back(double value) {
  if (size_ == capacity()) grow(size_ + 1);
  data()[size_++] = value;
}

void PooledBuffer::append(const double* src, std::size_t count) {
  if (count == 0) return;
  if (size_ + count > capacity()) grow(size_ + count);
  std::memcpy(data() + size_, src, count * sizeof(double));
  size_ += count;
}

void PooledBuffer::resize(std::size_t count) {
  if (count > capacity()) grow(count);
  if (count > size_) std::fill(data() + size_, data() + count, 0.0);
  size_ = count;
}

void PooledBuffer::consume_front(std::size_t count) {
  STTSV_REQUIRE(count <= size_, "consume_front past the end of the buffer");
  offset_ += count;
  size_ -= count;
}

PooledBuffer PooledBuffer::clone() const {
  PooledBuffer copy =
      pool_ != nullptr ? pool_->acquire(shard_, size_) : PooledBuffer();
  copy.append(data(), size_);
  return copy;
}

void PooledBuffer::insert_position_error() {
  STTSV_REQUIRE(false, "PooledBuffer::insert only supports inserting at end()");
}

bool operator==(const PooledBuffer& a, const PooledBuffer& b) {
  return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
}

bool operator==(const PooledBuffer& a, const std::vector<double>& b) {
  return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::ostream& operator<<(std::ostream& os, const PooledBuffer& buf) {
  os << '[';
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (i) os << ", ";
    os << buf[i];
  }
  return os << ']';
}

// ---------------------------------------------------------------------------
// BufferPool

BufferPool::BufferPool(std::size_t shards) {
  STTSV_REQUIRE(shards >= 1, "buffer pool needs at least one shard");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BufferPool::~BufferPool() { trim(); }

std::uint32_t BufferPool::bucket_for(std::size_t capacity_words) {
  std::uint32_t bucket = 0;
  std::size_t cap = kMinSlabWords;
  while (cap < capacity_words) {
    cap <<= 1;
    ++bucket;
  }
  return bucket;
}

std::size_t BufferPool::bucket_capacity(std::size_t capacity_words) {
  return kMinSlabWords << bucket_for(capacity_words);
}

double* BufferPool::pop_or_allocate(std::size_t shard, std::uint32_t bucket) {
  Shard& s = *shards_[shard];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (bucket < s.free_lists.size() && !s.free_lists[bucket].empty()) {
      double* slab = s.free_lists[bucket].back();
      s.free_lists[bucket].pop_back();
      reuses_.fetch_add(1, std::memory_order_relaxed);
      return slab;
    }
  }
  const std::size_t words = kMinSlabWords << bucket;
  double* slab = allocate_aligned(words);
  slab_allocations_.fetch_add(1, std::memory_order_relaxed);
  slabs_live_.fetch_add(1, std::memory_order_relaxed);
  words_capacity_.fetch_add(words, std::memory_order_relaxed);
  return slab;
}

void BufferPool::release_slab(std::size_t shard, std::uint32_t bucket,
                              double* slab) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.free_lists.size() <= bucket) s.free_lists.resize(bucket + 1);
  s.free_lists[bucket].push_back(slab);
}

PooledBuffer BufferPool::acquire(std::size_t shard,
                                 std::size_t capacity_words) {
  STTSV_REQUIRE(shard < shards_.size(), "buffer pool shard out of range");
  const std::uint32_t bucket = bucket_for(capacity_words);
  acquires_.fetch_add(1, std::memory_order_relaxed);
  PooledBuffer buf;
  buf.base_ = pop_or_allocate(shard, bucket);
  buf.capacity_ = kMinSlabWords << bucket;
  buf.pool_ = this;
  buf.shard_ = static_cast<std::uint32_t>(shard);
  buf.bucket_ = bucket;
  return buf;
}

void BufferPool::reserve(std::size_t shard, std::size_t capacity_words,
                         std::size_t count) {
  STTSV_REQUIRE(shard < shards_.size(), "buffer pool shard out of range");
  const std::uint32_t bucket = bucket_for(capacity_words);
  const std::size_t words = kMinSlabWords << bucket;
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.free_lists.size() <= bucket) s.free_lists.resize(bucket + 1);
  while (s.free_lists[bucket].size() < count) {
    s.free_lists[bucket].push_back(allocate_aligned(words));
    slab_allocations_.fetch_add(1, std::memory_order_relaxed);
    slabs_live_.fetch_add(1, std::memory_order_relaxed);
    words_capacity_.fetch_add(words, std::memory_order_relaxed);
  }
}

void BufferPool::touch(std::size_t shard) {
  STTSV_REQUIRE(shard < shards_.size(), "buffer pool shard out of range");
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  for (std::size_t b = 0; b < s.free_lists.size(); ++b) {
    const std::size_t words = kMinSlabWords << b;
    for (double* slab : s.free_lists[b]) {
      std::fill(slab, slab + words, 0.0);
    }
  }
}

void BufferPool::trim() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (std::size_t b = 0; b < shard->free_lists.size(); ++b) {
      for (double* slab : shard->free_lists[b]) {
        free_aligned(slab);
        slabs_live_.fetch_sub(1, std::memory_order_relaxed);
        words_capacity_.fetch_sub(kMinSlabWords << b,
                                  std::memory_order_relaxed);
      }
      shard->free_lists[b].clear();
    }
  }
}

BufferPool::Stats BufferPool::stats() const {
  Stats out;
  out.slab_allocations = slab_allocations_.load(std::memory_order_relaxed);
  out.slabs_live = slabs_live_.load(std::memory_order_relaxed);
  out.acquires = acquires_.load(std::memory_order_relaxed);
  out.reuses = reuses_.load(std::memory_order_relaxed);
  out.words_capacity = words_capacity_.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// AllocationGuard

AllocationGuard::AllocationGuard(const BufferPool& pool)
    : pool_(pool),
      slab_baseline_(pool.stats().slab_allocations),
      unpooled_baseline_(unpooled_buffer_allocations()) {}

std::uint64_t AllocationGuard::new_slab_allocations() const {
  return pool_.stats().slab_allocations - slab_baseline_;
}

std::uint64_t AllocationGuard::new_unpooled_allocations() const {
  return unpooled_buffer_allocations() - unpooled_baseline_;
}

void AllocationGuard::check() const {
  STTSV_DCHECK(new_slab_allocations() == 0,
               "steady-state superstep allocated pool slabs");
  STTSV_DCHECK(new_unpooled_allocations() == 0,
               "steady-state superstep allocated unpooled buffers");
}

AllocationGuard::~AllocationGuard() noexcept(false) {
#if defined(STTSV_DEBUG_CHECKS)
  if (armed_ && std::uncaught_exceptions() == 0) check();
#endif
}

}  // namespace sttsv::simt
