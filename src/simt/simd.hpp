#pragma once
// Portable SIMD layer for the local kernels (DESIGN.md §13).
//
// Two pieces live here:
//
//  1. Runtime CPU-feature detection and kernel-ISA selection. The build
//     may compile AVX2/FMA kernel translation units (STTSV_ENABLE_SIMD,
//     defines STTSV_HAVE_AVX2_KERNELS); whether they are *used* is decided
//     at runtime from a cached CPUID probe plus an explicit kill switch
//     (set_simd_enabled / environment variable STTSV_SIMD=off). Scalar
//     fallback kernels are always built, so a binary compiled with SIMD
//     on still runs correctly on a machine without AVX2.
//
//  2. A 4-lane double vector abstraction. The kernel bodies are written
//     once as templates over a vector type V and instantiated twice:
//     VecScalar (plain double[4], compiles everywhere) in the portable
//     translation unit, and VecAvx2 (__m256d) in a TU compiled with
//     -mavx2 -mfma. Both types implement each operation with the same
//     IEEE arithmetic per lane and the same combination order, so the two
//     instantiations produce bitwise-identical results — the repo's
//     bitwise-`y` invariant holds whichever path the dispatcher picks.
//     The only deliberately looser operation is fmadd(), which contracts
//     to a single-rounding FMA on the AVX2 path; it is used exclusively
//     by the opt-in compressed-math kernels whose results are documented
//     as reassociating (DESIGN.md §13.4).
//
// Both kernel TUs are compiled with -ffp-contract=off so the compiler
// cannot fuse the mul/add pairs below behind our back and silently break
// the bitwise contract.

#include <cstddef>
#include <cstdint>
#include <string>

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))
#include <immintrin.h>
#define STTSV_SIMD_TU_HAS_AVX2 1
#endif

namespace sttsv::simt {

/// Cached CPUID probe (satellite: self-describing BENCH artifacts print
/// these). All fields false on non-x86 hosts or unknown compilers.
struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// Returns the host CPU features; the probe runs once and is cached.
const CpuFeatures& cpu_features();

/// Space-separated feature list, e.g. "sse2 avx avx2 fma" ("none" if the
/// probe found nothing).
std::string cpu_features_string();

/// Which kernel implementation the dispatcher runs.
enum class KernelIsa : std::uint8_t { kScalar = 0, kAvx2 = 1 };

const char* isa_name(KernelIsa isa);

/// True when the AVX2/FMA kernel translation units were compiled into
/// this binary (STTSV_ENABLE_SIMD build option).
bool simd_compiled();

/// Runtime kill switch. Starts from the environment: STTSV_SIMD=off|0|
/// scalar forces the scalar fallback (CI uses this to exercise it on
/// AVX2 hosts). Thread-safe.
void set_simd_enabled(bool enabled);
bool simd_enabled();

/// The ISA the kernel dispatchers use by default: kAvx2 iff the AVX2
/// kernels are compiled in, the CPU reports AVX2 *and* FMA, and the
/// runtime switch is on; kScalar otherwise.
KernelIsa preferred_isa();

namespace simd {

/// Number of lanes in the kernel vector type — also the number of
/// partial accumulators in the canonical reduction order (DESIGN.md
/// §13.1), so it is fixed at 4 for every instantiation.
inline constexpr std::size_t kLanes = 4;

/// Portable 4-lane vector: the scalar fallback instantiation. Each
/// operation performs exactly one IEEE arithmetic op per lane, mirroring
/// the AVX2 instructions lane-for-lane.
struct VecScalar {
  double v[kLanes];

  static VecScalar zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
  static VecScalar broadcast(double s) { return {{s, s, s, s}}; }
  static VecScalar load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  /// First m lanes from p, remaining lanes zero. Never reads p[m..].
  static VecScalar load_partial(const double* p, std::size_t m) {
    VecScalar r = zero();
    for (std::size_t t = 0; t < m; ++t) r.v[t] = p[t];
    return r;
  }
  void store(double* p) const {
    for (std::size_t t = 0; t < kLanes; ++t) p[t] = v[t];
  }
  /// Stores the first m lanes only.
  void store_partial(double* p, std::size_t m) const {
    for (std::size_t t = 0; t < m; ++t) p[t] = v[t];
  }
  friend VecScalar operator+(VecScalar a, VecScalar b) {
    return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
             a.v[3] + b.v[3]}};
  }
  friend VecScalar operator-(VecScalar a, VecScalar b) {
    return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2],
             a.v[3] - b.v[3]}};
  }
  friend VecScalar operator*(VecScalar a, VecScalar b) {
    return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
             a.v[3] * b.v[3]}};
  }
  /// a*b + c. On this instantiation: two roundings (mul then add) — the
  /// TU is compiled with -ffp-contract=off so this can never silently
  /// become an FMA. Only the compressed-math kernels may call this.
  static VecScalar fmadd(VecScalar a, VecScalar b, VecScalar c) {
    return (a * b) + c;
  }
  /// Canonical horizontal sum: (v0 + v1) + (v2 + v3). Every
  /// instantiation must combine in exactly this order.
  double reduce() const { return (v[0] + v[1]) + (v[2] + v[3]); }
};

#ifdef STTSV_SIMD_TU_HAS_AVX2

/// AVX2 instantiation: one ymm register. Compiled only in TUs built with
/// -mavx2 -mfma; executed only when preferred_isa() == kAvx2.
struct VecAvx2 {
  __m256d v;

  static VecAvx2 zero() { return {_mm256_setzero_pd()}; }
  static VecAvx2 broadcast(double s) { return {_mm256_set1_pd(s)}; }
  static VecAvx2 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static __m256i partial_mask(std::size_t m) {
    // Lane t is active iff t < m; maskload/maskstore never touch memory
    // of inactive lanes, which is what makes padded tails safe.
    alignas(32) static const std::int64_t table[8] = {-1, -1, -1, -1,
                                                      0,  0,  0,  0};
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(table + (4 - m)));
  }
  static VecAvx2 load_partial(const double* p, std::size_t m) {
    return {_mm256_maskload_pd(p, partial_mask(m))};
  }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  void store_partial(double* p, std::size_t m) const {
    _mm256_maskstore_pd(p, partial_mask(m), v);
  }
  friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  /// Single-rounding FMA (compressed-math kernels only; see VecScalar).
  static VecAvx2 fmadd(VecAvx2 a, VecAvx2 b, VecAvx2 c) {
#ifdef __FMA__
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
    return (a * b) + c;
#endif
  }
  /// (v0 + v1) + (v2 + v3), bitwise identical to VecScalar::reduce.
  double reduce() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_hadd_pd(lo, hi);  // (v0+v1, v2+v3)
    return _mm_cvtsd_f64(
        _mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  }
};

#endif  // STTSV_SIMD_TU_HAS_AVX2

}  // namespace simd
}  // namespace sttsv::simt
