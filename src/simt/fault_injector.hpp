#pragma once
// Seeded, deterministic network-fault model for the simulated machine
// (DESIGN.md §10). When installed on a Machine, every wire frame of every
// exchange passes through the injector, which may
//
//  * drop the frame (it is charged to the ledger but never delivered),
//  * corrupt it (flip one bit of one payload/header word in flight),
//  * duplicate it (deliver a second copy, charged as overhead),
//  * stall a rank (straggler model: every frame the rank sends in the
//    current exchange misses the round and is lost),
//  * reorder an inbox (permute delivery order after the deterministic
//    by-sender sort), or
//  * crash a rank (permanent: from its crash exchange on, every frame the
//    rank sends or should receive silently vanishes — the fail-stop model,
//    distinct from the transient stall). Crashes can be scheduled at an
//    exact exchange index for replayable property tests, or rolled
//    probabilistically per rank per exchange.
//
// All decisions come from one seeded xoshiro stream consumed in the
// machine's deterministic iteration order, so a (seed, config, traffic)
// triple always produces the identical fault pattern — the injection log
// records every event for replay and for FaultReport references.
//
// The raw Machine::exchange makes no attempt to hide these faults; the
// recovery protocol lives one layer up in simt::ReliableExchange.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/rng.hpp"

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::simt {

struct Delivery;
class PooledBuffer;

/// Per-fault-class probabilities in [0, 1], rolled independently per
/// frame (drop, corrupt, duplicate), per sending rank per exchange
/// (stall), and per inbox per exchange (reorder).
struct FaultConfig {
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double stall = 0.0;
  /// Probability that a sending rank dies permanently, rolled once per
  /// rank per exchange (first frame it sends). Guarded so zero-crash
  /// configs consume no RNG — existing seeded fault patterns are stable.
  double crash = 0.0;
  std::uint64_t seed = 0xFA017ULL;
};

enum class FaultKind : std::uint8_t {
  kDrop,
  kCorrupt,
  kDuplicate,
  kReorder,
  kStall,
  kCrash,
};

/// One injected fault, enough to replay or audit the run. `detail` is
/// kind-specific: corrupt = flipped word index, reorder = inbox size,
/// stall/drop/duplicate = frame word count, crash = 0.
struct FaultEvent {
  std::uint64_t exchange_index = 0;
  FaultKind kind = FaultKind::kDrop;
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t detail = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  /// What the wire did to a frame; kDeliver may still have corrupted it
  /// in place.
  enum class Action { kDeliver, kDrop, kDuplicate };

  /// Called by Machine::exchange before each exchange's frames flow.
  /// Applies any crash scheduled for the new exchange index.
  void begin_exchange();

  /// Schedules rank to die at the start of exchange `exchange_index`
  /// (1-based, matching exchanges_seen() after begin_exchange). The
  /// deterministic complement of the probabilistic `crash` rate: property
  /// tests pin the crash site exactly. Scheduling the past is an error.
  void schedule_crash(std::size_t rank, std::uint64_t exchange_index);

  /// True once rank has crashed. Dead ranks' frames (sent or received)
  /// are dropped without log entries — death is one event, not a stream.
  [[nodiscard]] bool is_dead(std::size_t rank) const;

  /// Sorted ranks that have crashed so far.
  [[nodiscard]] const std::vector<std::size_t>& dead_ranks() const {
    return dead_;
  }

  /// Rolls the fate of one frame from -> to; may flip a bit of `data`
  /// in place (corrupt). Stalled senders lose every frame this exchange.
  Action on_frame(std::size_t from, std::size_t to, PooledBuffer& data);

  /// Possibly permutes rank's inbox (called after the by-sender sort).
  void maybe_reorder(std::size_t rank, std::vector<Delivery>& inbox);

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<FaultEvent>& log() const { return log_; }
  [[nodiscard]] std::uint64_t exchanges_seen() const { return exchange_; }
  void clear_log() { log_.clear(); }

  /// Publishes per-kind injected-fault counts from the log (plus the
  /// total and exchanges seen) into `out` as "<prefix>.*" counters, set
  /// absolutely so re-export is idempotent.
  void publish_metrics(obs::MetricsRegistry& out,
                       const std::string& prefix = "faults") const;

 private:
  [[nodiscard]] bool stalled(std::size_t rank);
  void kill(std::size_t rank);

  FaultConfig config_;
  Rng rng_;
  std::uint64_t exchange_ = 0;
  // Stall fate of each sending rank, rolled once per exchange on first use.
  std::unordered_map<std::size_t, bool> stall_this_exchange_;
  // Crash fate of each sending rank, rolled once per exchange on first use
  // (only when config_.crash > 0).
  std::unordered_map<std::size_t, bool> crash_rolled_;
  // Sorted, permanently dead ranks.
  std::vector<std::size_t> dead_;
  // rank -> exchange index at which a scheduled crash fires.
  std::unordered_map<std::size_t, std::uint64_t> scheduled_crashes_;
  std::vector<FaultEvent> log_;
};

}  // namespace sttsv::simt
