#include "simt/transport_kind.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace sttsv::simt {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kDirect:
      return "direct";
    case TransportKind::kReliable:
      return "reliable";
    case TransportKind::kOneSidedPut:
      return "onesided";
    case TransportKind::kActiveMessage:
      return "am";
    case TransportKind::kHierarchical:
      return "hier";
  }
  return "direct";
}

std::optional<TransportKind> parse_transport_kind(std::string_view text) {
  if (text == "direct") return TransportKind::kDirect;
  if (text == "reliable") return TransportKind::kReliable;
  if (text == "onesided") return TransportKind::kOneSidedPut;
  if (text == "am") return TransportKind::kActiveMessage;
  if (text == "hier") return TransportKind::kHierarchical;
  return std::nullopt;
}

TransportKind transport_kind_from_env(TransportKind fallback) {
  const char* raw = std::getenv("STTSV_TRANSPORT");
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const std::optional<TransportKind> parsed = parse_transport_kind(raw);
  STTSV_REQUIRE(parsed.has_value(),
                std::string("STTSV_TRANSPORT must be one of "
                            "direct|reliable|onesided|am|hier, got \"") +
                    raw + "\"");
  return *parsed;
}

}  // namespace sttsv::simt
