#include "simt/ledger.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

namespace {

std::uint64_t pair_key(std::size_t from, std::size_t to) {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

constexpr std::array<Channel, kNumChannels> kAllChannels = {
    Channel::kGoodput, Channel::kOverhead, Channel::kRecovery,
    Channel::kOneSided};

constexpr std::array<Level, kNumLevels> kAllLevels = {Level::kIntra,
                                                      Level::kInter};

}  // namespace

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kGoodput:
      return "goodput";
    case Channel::kOverhead:
      return "overhead";
    case Channel::kRecovery:
      return "recovery";
    case Channel::kOneSided:
      return "onesided";
  }
  return "unknown";
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kIntra:
      return "intra";
    case Level::kInter:
      return "inter";
  }
  return "unknown";
}

CommLedger::CommLedger(std::size_t num_ranks) : num_ranks_(num_ranks) {
  STTSV_REQUIRE(num_ranks >= 1, "ledger needs at least one rank");
  STTSV_REQUIRE(num_ranks < (1ULL << 32), "too many ranks for pair keys");
  for (auto& levels : chan_) {
    for (auto& c : levels) {
      c.sent.assign(num_ranks, 0);
      c.received.assign(num_ranks, 0);
      c.msg_sent.assign(num_ranks, 0);
      c.msg_received.assign(num_ranks, 0);
    }
  }
}

bool CommLedger::empty() const {
  for (const auto& levels : chan_) {
    for (const auto& c : levels) {
      if (c.rounds != 0) return false;
      for (std::size_t p = 0; p < num_ranks_; ++p) {
        if (c.sent[p] != 0 || c.received[p] != 0 || c.msg_sent[p] != 0 ||
            c.msg_received[p] != 0) {
          return false;
        }
      }
    }
  }
  return sync_ops_[0] == 0 && sync_ops_[1] == 0;
}

void CommLedger::set_node_map(std::vector<std::uint32_t> node_of) {
  if (node_of == node_of_) return;  // idempotent re-install
  STTSV_REQUIRE(node_of.size() == num_ranks_,
                "node map must cover every rank");
  std::size_t nodes = 0;
  for (const std::uint32_t node : node_of) {
    nodes = std::max<std::size_t>(nodes, node + 1);
  }
  STTSV_REQUIRE(nodes >= 1, "node map needs at least one node");
  // Dense labels: every node in [0, nodes) must host at least one rank,
  // so per-node iteration (fences, cost model) never sees a hole.
  std::vector<char> seen(nodes, 0);
  for (const std::uint32_t node : node_of) seen[node] = 1;
  for (std::size_t v = 0; v < nodes; ++v) {
    STTSV_REQUIRE(seen[v] != 0, "node labels must be dense in [0, N)");
  }
  STTSV_REQUIRE(empty(),
                "node map must be installed before any traffic is recorded");
  node_of_ = std::move(node_of);
  num_nodes_ = nodes;
}

void CommLedger::record(Channel channel, std::size_t from, std::size_t to,
                        std::size_t words) {
  STTSV_REQUIRE(from < num_ranks_ && to < num_ranks_, "rank out of range");
  STTSV_REQUIRE(from != to, "self-messages are local copies, not comm");
  ChannelCounters& c = chan(channel, level_of(from, to));
  c.sent[from] += words;
  c.received[to] += words;
  ++c.msg_sent[from];
  ++c.msg_received[to];
  if (channel == Channel::kGoodput) pair_[pair_key(from, to)] += words;
}

void CommLedger::add_rounds(Channel channel, Level level, std::size_t k) {
  chan(channel, level).rounds += k;
}

void CommLedger::add_modeled_collective_words(std::size_t words_per_rank) {
  modeled_words_ += words_per_rank;
}

std::uint64_t CommLedger::words_sent(Channel channel,
                                     std::size_t rank) const {
  return words_sent(channel, Level::kIntra, rank) +
         words_sent(channel, Level::kInter, rank);
}

std::uint64_t CommLedger::words_received(Channel channel,
                                         std::size_t rank) const {
  return words_received(channel, Level::kIntra, rank) +
         words_received(channel, Level::kInter, rank);
}

std::uint64_t CommLedger::words_sent(Channel channel, Level level,
                                     std::size_t rank) const {
  const ChannelCounters& c = chan(channel, level);
  STTSV_REQUIRE(rank < c.sent.size(), "rank out of range");
  return c.sent[rank];
}

std::uint64_t CommLedger::words_received(Channel channel, Level level,
                                         std::size_t rank) const {
  const ChannelCounters& c = chan(channel, level);
  STTSV_REQUIRE(rank < c.received.size(), "rank out of range");
  return c.received[rank];
}

std::uint64_t CommLedger::messages_sent(std::size_t rank) const {
  STTSV_REQUIRE(rank < num_ranks_, "rank out of range");
  std::uint64_t total = 0;
  for (const Level lv : kAllLevels) {
    total += chan(Channel::kGoodput, lv).msg_sent[rank];
  }
  return total;
}

std::uint64_t CommLedger::messages_received(std::size_t rank) const {
  STTSV_REQUIRE(rank < num_ranks_, "rank out of range");
  std::uint64_t total = 0;
  for (const Level lv : kAllLevels) {
    total += chan(Channel::kGoodput, lv).msg_received[rank];
  }
  return total;
}

std::uint64_t CommLedger::max_words_sent(Channel channel) const {
  std::uint64_t best = 0;
  for (std::size_t p = 0; p < num_ranks_; ++p) {
    best = std::max(best, words_sent(channel, p));
  }
  return best;
}

std::uint64_t CommLedger::max_words_received(Channel channel) const {
  std::uint64_t best = 0;
  for (std::size_t p = 0; p < num_ranks_; ++p) {
    best = std::max(best, words_received(channel, p));
  }
  return best;
}

std::uint64_t CommLedger::max_words_sent(Channel channel, Level level) const {
  const ChannelCounters& c = chan(channel, level);
  return *std::max_element(c.sent.begin(), c.sent.end());
}

std::uint64_t CommLedger::max_words_received(Channel channel,
                                             Level level) const {
  const ChannelCounters& c = chan(channel, level);
  return *std::max_element(c.received.begin(), c.received.end());
}

std::uint64_t CommLedger::total_words(Channel channel) const {
  return total_words(channel, Level::kIntra) +
         total_words(channel, Level::kInter);
}

std::uint64_t CommLedger::total_words(Channel channel, Level level) const {
  std::uint64_t total = 0;
  for (const auto w : chan(channel, level).sent) total += w;
  return total;
}

std::uint64_t CommLedger::total_messages(Channel channel) const {
  return total_messages(channel, Level::kIntra) +
         total_messages(channel, Level::kInter);
}

std::uint64_t CommLedger::total_messages(Channel channel,
                                         Level level) const {
  std::uint64_t total = 0;
  for (const auto m : chan(channel, level).msg_sent) total += m;
  return total;
}

std::uint64_t CommLedger::rounds(Channel channel) const {
  return rounds(channel, Level::kIntra) + rounds(channel, Level::kInter);
}

std::uint64_t CommLedger::rounds(Channel channel, Level level) const {
  return chan(channel, level).rounds;
}

std::uint64_t CommLedger::total_payload_words(Level level) const {
  return total_words(Channel::kGoodput, level) +
         total_words(Channel::kRecovery, level) +
         total_words(Channel::kOneSided, level);
}

LedgerMaxima CommLedger::maxima() const {
  return LedgerMaxima{max_words_sent(Channel::kGoodput),
                      max_words_received(Channel::kGoodput),
                      max_words_sent(Channel::kOverhead),
                      max_words_received(Channel::kOverhead),
                      max_words_sent(Channel::kRecovery),
                      max_words_received(Channel::kRecovery),
                      max_words_sent(Channel::kOneSided),
                      max_words_received(Channel::kOneSided)};
}

std::uint64_t CommLedger::pair_words(std::size_t from, std::size_t to) const {
  const auto it = pair_.find(pair_key(from, to));
  return it == pair_.end() ? 0 : it->second;
}

void CommLedger::to_metrics(obs::MetricsRegistry& out,
                            const std::string& prefix) const {
  for (const Channel ch : kAllChannels) {
    const std::string base = prefix + "." + channel_name(ch);
    out.set_counter(base + ".max_words_sent", max_words_sent(ch));
    out.set_counter(base + ".max_words_received", max_words_received(ch));
    out.set_counter(base + ".total_words", total_words(ch));
    out.set_counter(base + ".total_messages", total_messages(ch));
    out.set_counter(base + ".rounds", rounds(ch));
    for (const Level lv : kAllLevels) {
      const std::string lvl = base + "." + level_name(lv);
      out.set_counter(lvl + ".total_words", total_words(ch, lv));
      out.set_counter(lvl + ".total_messages", total_messages(ch, lv));
      out.set_counter(lvl + ".rounds", rounds(ch, lv));
    }
    for (std::size_t p = 0; p < num_ranks_; ++p) {
      const std::string rank = ".r" + std::to_string(p);
      out.set_counter(base + ".words_sent" + rank, words_sent(ch, p));
      out.set_counter(base + ".words_received" + rank, words_received(ch, p));
      if (ch == Channel::kGoodput) {
        out.set_counter(base + ".messages_sent" + rank, messages_sent(p));
      }
    }
  }
  out.set_counter(prefix + ".onesided.sync_ops", sync_ops());
  for (const Level lv : kAllLevels) {
    out.set_counter(
        prefix + ".sync_ops." + level_name(lv),
        sync_ops_[static_cast<std::size_t>(lv)]);
  }
  out.set_counter(prefix + ".num_nodes", num_nodes_);
  out.set_counter(prefix + ".modeled_collective_words", modeled_words_);
  out.set_counter(prefix + ".active_pairs", pair_.size());
}

void CommLedger::verify_conservation() const {
  for (const Channel ch : kAllChannels) {
    for (const Level lv : kAllLevels) {
      const ChannelCounters& c = chan(ch, lv);
      std::uint64_t s = 0;
      std::uint64_t r = 0;
      for (std::size_t p = 0; p < num_ranks_; ++p) {
        s += c.sent[p];
        r += c.received[p];
      }
      // Keep the historical message for the goodput channel's default
      // (flat) arm; the others name themselves down to the level.
      const std::string what =
          ch == Channel::kGoodput && lv == Level::kIntra
              ? std::string(
                    "ledger conservation violated (sent != received)")
              : std::string("ledger conservation violated (") +
                    channel_name(ch) + " " + level_name(lv) +
                    " sent != received)";
      STTSV_CHECK(s == r, what.c_str());
    }
  }
}

void CommLedger::debug_skew_sent_for_test(Channel channel, Level level,
                                          std::size_t rank,
                                          std::uint64_t words) {
  ChannelCounters& c = chan(channel, level);
  STTSV_REQUIRE(rank < c.sent.size(), "rank out of range");
  c.sent[rank] += words;
}

}  // namespace sttsv::simt
