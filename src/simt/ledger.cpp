#include "simt/ledger.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

namespace {

std::uint64_t pair_key(std::size_t from, std::size_t to) {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

constexpr std::array<Channel, kNumChannels> kAllChannels = {
    Channel::kGoodput, Channel::kOverhead, Channel::kRecovery,
    Channel::kOneSided};

}  // namespace

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kGoodput:
      return "goodput";
    case Channel::kOverhead:
      return "overhead";
    case Channel::kRecovery:
      return "recovery";
    case Channel::kOneSided:
      return "onesided";
  }
  return "unknown";
}

CommLedger::CommLedger(std::size_t num_ranks) {
  STTSV_REQUIRE(num_ranks >= 1, "ledger needs at least one rank");
  STTSV_REQUIRE(num_ranks < (1ULL << 32), "too many ranks for pair keys");
  for (auto& c : chan_) {
    c.sent.assign(num_ranks, 0);
    c.received.assign(num_ranks, 0);
    c.msg_sent.assign(num_ranks, 0);
    c.msg_received.assign(num_ranks, 0);
  }
}

void CommLedger::record(Channel channel, std::size_t from, std::size_t to,
                        std::size_t words) {
  ChannelCounters& c = chan(channel);
  STTSV_REQUIRE(from < c.sent.size() && to < c.sent.size(),
                "rank out of range");
  STTSV_REQUIRE(from != to, "self-messages are local copies, not comm");
  c.sent[from] += words;
  c.received[to] += words;
  ++c.msg_sent[from];
  ++c.msg_received[to];
  if (channel == Channel::kGoodput) pair_[pair_key(from, to)] += words;
}

void CommLedger::add_rounds(Channel channel, std::size_t k) {
  chan(channel).rounds += k;
}

void CommLedger::add_modeled_collective_words(std::size_t words_per_rank) {
  modeled_words_ += words_per_rank;
}

std::uint64_t CommLedger::words_sent(Channel channel,
                                     std::size_t rank) const {
  const ChannelCounters& c = chan(channel);
  STTSV_REQUIRE(rank < c.sent.size(), "rank out of range");
  return c.sent[rank];
}

std::uint64_t CommLedger::words_received(Channel channel,
                                         std::size_t rank) const {
  const ChannelCounters& c = chan(channel);
  STTSV_REQUIRE(rank < c.received.size(), "rank out of range");
  return c.received[rank];
}

std::uint64_t CommLedger::messages_sent(std::size_t rank) const {
  const ChannelCounters& c = chan(Channel::kGoodput);
  STTSV_REQUIRE(rank < c.msg_sent.size(), "rank out of range");
  return c.msg_sent[rank];
}

std::uint64_t CommLedger::messages_received(std::size_t rank) const {
  const ChannelCounters& c = chan(Channel::kGoodput);
  STTSV_REQUIRE(rank < c.msg_received.size(), "rank out of range");
  return c.msg_received[rank];
}

std::uint64_t CommLedger::max_words_sent(Channel channel) const {
  const ChannelCounters& c = chan(channel);
  return *std::max_element(c.sent.begin(), c.sent.end());
}

std::uint64_t CommLedger::max_words_received(Channel channel) const {
  const ChannelCounters& c = chan(channel);
  return *std::max_element(c.received.begin(), c.received.end());
}

std::uint64_t CommLedger::total_words(Channel channel) const {
  std::uint64_t total = 0;
  for (const auto w : chan(channel).sent) total += w;
  return total;
}

std::uint64_t CommLedger::total_messages(Channel channel) const {
  std::uint64_t total = 0;
  for (const auto m : chan(channel).msg_sent) total += m;
  return total;
}

std::uint64_t CommLedger::rounds(Channel channel) const {
  return chan(channel).rounds;
}

LedgerMaxima CommLedger::maxima() const {
  return LedgerMaxima{max_words_sent(Channel::kGoodput),
                      max_words_received(Channel::kGoodput),
                      max_words_sent(Channel::kOverhead),
                      max_words_received(Channel::kOverhead),
                      max_words_sent(Channel::kRecovery),
                      max_words_received(Channel::kRecovery),
                      max_words_sent(Channel::kOneSided),
                      max_words_received(Channel::kOneSided)};
}

std::uint64_t CommLedger::pair_words(std::size_t from, std::size_t to) const {
  const auto it = pair_.find(pair_key(from, to));
  return it == pair_.end() ? 0 : it->second;
}

void CommLedger::to_metrics(obs::MetricsRegistry& out,
                            const std::string& prefix) const {
  for (const Channel ch : kAllChannels) {
    const std::string base = prefix + "." + channel_name(ch);
    out.set_counter(base + ".max_words_sent", max_words_sent(ch));
    out.set_counter(base + ".max_words_received", max_words_received(ch));
    out.set_counter(base + ".total_words", total_words(ch));
    out.set_counter(base + ".total_messages", total_messages(ch));
    out.set_counter(base + ".rounds", rounds(ch));
    const ChannelCounters& c = chan(ch);
    for (std::size_t p = 0; p < c.sent.size(); ++p) {
      const std::string rank = ".r" + std::to_string(p);
      out.set_counter(base + ".words_sent" + rank, c.sent[p]);
      out.set_counter(base + ".words_received" + rank, c.received[p]);
      if (ch == Channel::kGoodput) {
        out.set_counter(base + ".messages_sent" + rank, c.msg_sent[p]);
      }
    }
  }
  out.set_counter(prefix + ".onesided.sync_ops", sync_ops_);
  out.set_counter(prefix + ".modeled_collective_words", modeled_words_);
  out.set_counter(prefix + ".active_pairs", pair_.size());
}

void CommLedger::verify_conservation() const {
  for (const Channel ch : kAllChannels) {
    const ChannelCounters& c = chan(ch);
    std::uint64_t s = 0;
    std::uint64_t r = 0;
    for (std::size_t p = 0; p < c.sent.size(); ++p) {
      s += c.sent[p];
      r += c.received[p];
    }
    // Keep the historical message for the goodput channel; the others
    // name themselves.
    const std::string what =
        ch == Channel::kGoodput
            ? std::string("ledger conservation violated (sent != received)")
            : std::string("ledger conservation violated (") +
                  channel_name(ch) + " sent != received)";
    STTSV_CHECK(s == r, what.c_str());
  }
}

void CommLedger::debug_skew_sent_for_test(Channel channel, std::size_t rank,
                                          std::uint64_t words) {
  ChannelCounters& c = chan(channel);
  STTSV_REQUIRE(rank < c.sent.size(), "rank out of range");
  c.sent[rank] += words;
}

}  // namespace sttsv::simt
