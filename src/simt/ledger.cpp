#include "simt/ledger.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

namespace {
std::uint64_t pair_key(std::size_t from, std::size_t to) {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}
}  // namespace

CommLedger::CommLedger(std::size_t num_ranks)
    : sent_(num_ranks, 0),
      received_(num_ranks, 0),
      msg_sent_(num_ranks, 0),
      msg_received_(num_ranks, 0),
      overhead_sent_(num_ranks, 0),
      overhead_received_(num_ranks, 0),
      recovery_sent_(num_ranks, 0),
      recovery_received_(num_ranks, 0) {
  STTSV_REQUIRE(num_ranks >= 1, "ledger needs at least one rank");
  STTSV_REQUIRE(num_ranks < (1ULL << 32), "too many ranks for pair keys");
}

void CommLedger::record_message(std::size_t from, std::size_t to,
                                std::size_t words) {
  STTSV_REQUIRE(from < sent_.size() && to < sent_.size(),
                "rank out of range");
  STTSV_REQUIRE(from != to, "self-messages are local copies, not comm");
  sent_[from] += words;
  received_[to] += words;
  ++msg_sent_[from];
  ++msg_received_[to];
  pair_[pair_key(from, to)] += words;
}

void CommLedger::record_overhead(std::size_t from, std::size_t to,
                                 std::size_t words) {
  STTSV_REQUIRE(from < sent_.size() && to < sent_.size(),
                "rank out of range");
  STTSV_REQUIRE(from != to, "self-messages are local copies, not comm");
  overhead_sent_[from] += words;
  overhead_received_[to] += words;
  ++overhead_msgs_;
}

void CommLedger::record_recovery(std::size_t from, std::size_t to,
                                 std::size_t words) {
  STTSV_REQUIRE(from < sent_.size() && to < sent_.size(),
                "rank out of range");
  STTSV_REQUIRE(from != to, "self-messages are local copies, not comm");
  recovery_sent_[from] += words;
  recovery_received_[to] += words;
  ++recovery_msgs_;
}

void CommLedger::add_rounds(std::size_t k) { rounds_ += k; }

void CommLedger::add_overhead_rounds(std::size_t k) { overhead_rounds_ += k; }

void CommLedger::add_recovery_rounds(std::size_t k) { recovery_rounds_ += k; }

void CommLedger::add_modeled_collective_words(std::size_t words_per_rank) {
  modeled_words_ += words_per_rank;
}

std::uint64_t CommLedger::words_sent(std::size_t rank) const {
  STTSV_REQUIRE(rank < sent_.size(), "rank out of range");
  return sent_[rank];
}

std::uint64_t CommLedger::words_received(std::size_t rank) const {
  STTSV_REQUIRE(rank < received_.size(), "rank out of range");
  return received_[rank];
}

std::uint64_t CommLedger::messages_sent(std::size_t rank) const {
  STTSV_REQUIRE(rank < msg_sent_.size(), "rank out of range");
  return msg_sent_[rank];
}

std::uint64_t CommLedger::messages_received(std::size_t rank) const {
  STTSV_REQUIRE(rank < msg_received_.size(), "rank out of range");
  return msg_received_[rank];
}

std::uint64_t CommLedger::overhead_words_sent(std::size_t rank) const {
  STTSV_REQUIRE(rank < overhead_sent_.size(), "rank out of range");
  return overhead_sent_[rank];
}

std::uint64_t CommLedger::overhead_words_received(std::size_t rank) const {
  STTSV_REQUIRE(rank < overhead_received_.size(), "rank out of range");
  return overhead_received_[rank];
}

std::uint64_t CommLedger::recovery_words_sent(std::size_t rank) const {
  STTSV_REQUIRE(rank < recovery_sent_.size(), "rank out of range");
  return recovery_sent_[rank];
}

std::uint64_t CommLedger::recovery_words_received(std::size_t rank) const {
  STTSV_REQUIRE(rank < recovery_received_.size(), "rank out of range");
  return recovery_received_[rank];
}

std::uint64_t CommLedger::max_words_sent() const {
  return *std::max_element(sent_.begin(), sent_.end());
}

std::uint64_t CommLedger::max_words_received() const {
  return *std::max_element(received_.begin(), received_.end());
}

std::uint64_t CommLedger::max_overhead_words_sent() const {
  return *std::max_element(overhead_sent_.begin(), overhead_sent_.end());
}

std::uint64_t CommLedger::max_overhead_words_received() const {
  return *std::max_element(overhead_received_.begin(),
                           overhead_received_.end());
}

std::uint64_t CommLedger::max_recovery_words_sent() const {
  return *std::max_element(recovery_sent_.begin(), recovery_sent_.end());
}

std::uint64_t CommLedger::max_recovery_words_received() const {
  return *std::max_element(recovery_received_.begin(),
                           recovery_received_.end());
}

LedgerMaxima CommLedger::maxima() const {
  return LedgerMaxima{max_words_sent(),
                      max_words_received(),
                      max_overhead_words_sent(),
                      max_overhead_words_received(),
                      max_recovery_words_sent(),
                      max_recovery_words_received()};
}

std::uint64_t CommLedger::total_words() const {
  std::uint64_t total = 0;
  for (const auto w : sent_) total += w;
  return total;
}

std::uint64_t CommLedger::total_messages() const {
  std::uint64_t total = 0;
  for (const auto m : msg_sent_) total += m;
  return total;
}

std::uint64_t CommLedger::total_overhead_words() const {
  std::uint64_t total = 0;
  for (const auto w : overhead_sent_) total += w;
  return total;
}

std::uint64_t CommLedger::total_recovery_words() const {
  std::uint64_t total = 0;
  for (const auto w : recovery_sent_) total += w;
  return total;
}

std::uint64_t CommLedger::pair_words(std::size_t from, std::size_t to) const {
  const auto it = pair_.find(pair_key(from, to));
  return it == pair_.end() ? 0 : it->second;
}

void CommLedger::to_metrics(obs::MetricsRegistry& out,
                            const std::string& prefix) const {
  const LedgerMaxima m = maxima();
  out.set_counter(prefix + ".goodput.max_words_sent", m.words_sent);
  out.set_counter(prefix + ".goodput.max_words_received", m.words_received);
  out.set_counter(prefix + ".overhead.max_words_sent", m.overhead_words_sent);
  out.set_counter(prefix + ".overhead.max_words_received",
                  m.overhead_words_received);
  out.set_counter(prefix + ".goodput.total_words", total_words());
  out.set_counter(prefix + ".goodput.total_messages", total_messages());
  out.set_counter(prefix + ".goodput.rounds", rounds_);
  out.set_counter(prefix + ".overhead.total_words", total_overhead_words());
  out.set_counter(prefix + ".overhead.total_messages", overhead_msgs_);
  out.set_counter(prefix + ".overhead.rounds", overhead_rounds_);
  out.set_counter(prefix + ".recovery.max_words_sent",
                  m.recovery_words_sent);
  out.set_counter(prefix + ".recovery.max_words_received",
                  m.recovery_words_received);
  out.set_counter(prefix + ".recovery.total_words", total_recovery_words());
  out.set_counter(prefix + ".recovery.total_messages", recovery_msgs_);
  out.set_counter(prefix + ".recovery.rounds", recovery_rounds_);
  out.set_counter(prefix + ".modeled_collective_words", modeled_words_);
  out.set_counter(prefix + ".active_pairs", pair_.size());
  for (std::size_t p = 0; p < sent_.size(); ++p) {
    const std::string rank = ".r" + std::to_string(p);
    out.set_counter(prefix + ".goodput.words_sent" + rank, sent_[p]);
    out.set_counter(prefix + ".goodput.words_received" + rank, received_[p]);
    out.set_counter(prefix + ".goodput.messages_sent" + rank, msg_sent_[p]);
    out.set_counter(prefix + ".overhead.words_sent" + rank,
                    overhead_sent_[p]);
    out.set_counter(prefix + ".overhead.words_received" + rank,
                    overhead_received_[p]);
    out.set_counter(prefix + ".recovery.words_sent" + rank,
                    recovery_sent_[p]);
  }
}

void CommLedger::verify_conservation() const {
  std::uint64_t s = 0;
  std::uint64_t r = 0;
  std::uint64_t os = 0;
  std::uint64_t orx = 0;
  std::uint64_t rs = 0;
  std::uint64_t rr = 0;
  for (std::size_t p = 0; p < sent_.size(); ++p) {
    s += sent_[p];
    r += received_[p];
    os += overhead_sent_[p];
    orx += overhead_received_[p];
    rs += recovery_sent_[p];
    rr += recovery_received_[p];
  }
  STTSV_CHECK(s == r, "ledger conservation violated (sent != received)");
  STTSV_CHECK(os == orx,
              "ledger conservation violated (overhead sent != received)");
  STTSV_CHECK(rs == rr,
              "ledger conservation violated (recovery sent != received)");
}

void CommLedger::debug_skew_sent_for_test(std::size_t rank,
                                          std::uint64_t words) {
  STTSV_REQUIRE(rank < sent_.size(), "rank out of range");
  sent_[rank] += words;
}

void CommLedger::debug_skew_recovery_sent_for_test(std::size_t rank,
                                                   std::uint64_t words) {
  STTSV_REQUIRE(rank < recovery_sent_.size(), "rank out of range");
  recovery_sent_[rank] += words;
}

}  // namespace sttsv::simt
