#pragma once
// A simulated distributed-memory machine in the α-β-γ (MPI) model of the
// paper's Section 3.1: P ranks with private memories, a fully connected
// network, at most one message sent and one received per rank per step.
//
// Substitution note (see DESIGN.md §2): there is no MPI runtime in this
// environment. Algorithms execute in BSP-style supersteps — local compute
// phases loop over ranks, communication phases are machine-wide exchanges.
// The semantics (who knows what, when) are identical to the per-rank MPI
// program, and the ledger counts exactly the words the α-β-γ model counts.
//
// Payloads live in PooledBuffers drawn from the machine's per-rank
// BufferPool (DESIGN.md §12): mailbox traffic moves slabs, never copies,
// and a steady-state superstep performs zero heap allocations.
//
// An optional FaultInjector (DESIGN.md §10) sits on the wire: frames may
// be dropped, corrupted, duplicated, delayed by a stalled sender, or
// reordered within an inbox. The ledger charges traffic at send time, so
// its conservation invariant holds under every fault pattern; recovering
// the delivered data is the job of simt::ReliableExchange one layer up.
//
// The machine also owns membership truth (DESIGN.md §15): once a rank is
// marked dead — by the injector's crash model, synced at exchange start —
// every frame it sends or should receive is silently discarded *below*
// the injector and the fault-hiding protocols, charging nothing. Death is
// therefore indistinguishable from permanent silence on the wire, which
// is exactly what the liveness detector in ReliableExchange keys on, and
// degraded-mode replays (which bypass the injector) cannot resurrect a
// dead peer. Detected losses are recorded as RankLossReports here, and
// each death bumps a membership epoch that invalidates cached plans.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "simt/buffer_pool.hpp"
#include "simt/ledger.hpp"

namespace sttsv::simt {

class FaultInjector;

/// One outgoing message: destination rank plus payload words. The first
/// `overhead_words` words are protocol framing (sequence numbers,
/// checksums, ACK entries) and are charged to the ledger's overhead
/// channel; the rest are goodput. Raw algorithm traffic leaves it 0.
/// `recovery` marks rank-loss redistribution traffic: the whole payload
/// is charged to the ledger's recovery channel instead (overhead_words
/// must be 0 — redistribution uses the raw exchange, not the protocol).
struct Envelope {
  std::size_t to = 0;
  PooledBuffer data;
  std::size_t overhead_words = 0;
  bool recovery = false;
};

/// One delivered message: source rank plus payload words. Deliveries are
/// handed to the receiver sorted by sender, so execution is deterministic
/// (a fault injector may reorder them afterwards).
struct Delivery {
  std::size_t from = 0;
  PooledBuffer data;
};

/// Structured verdict of the liveness detector (DESIGN.md §15): which
/// peers were declared dead, where in the run, and the evidence — how
/// many consecutive silent attempts each accumulated and how many frames
/// were still undelivered when the verdict fired. The injection-log
/// window [begin, end) points into FaultInjector::log() for replay.
struct RankLossReport {
  std::vector<std::size_t> dead_ranks;
  std::string phase;
  std::uint64_t exchange_index = 0;
  std::size_t silent_attempts = 0;
  std::size_t undelivered_frames = 0;
  std::uint64_t membership_epoch = 0;
  std::size_t injection_log_begin = 0;
  std::size_t injection_log_end = 0;
};

/// How a communication phase is realized on the wire; affects the rounds
/// and modeled-cost accounting (Section 7.2.2), not the delivered data.
enum class Transport {
  /// Direct point-to-point sends scheduled in König rounds: the number of
  /// steps charged is the max over ranks of max(#sends, #receives), which
  /// is achievable by edge coloring (paper Theorem 7.2.2 via Lemma 7.2.1).
  kPointToPoint,
  /// A bandwidth-optimal All-to-All collective: P-1 steps, each charged
  /// the maximum per-pair buffer size (paper's "All-to-All collectives"
  /// cost model at the end of Section 7.2.2).
  kAllToAll,
};

class Machine {
 public:
  explicit Machine(std::size_t num_ranks);
  // The pool's shard mutexes make the machine non-copyable; every use in
  // the tree either constructs in place or returns a prvalue (guaranteed
  // elision), so nothing is lost.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] std::size_t num_ranks() const { return P_; }

  /// One logical machine-wide exchange delivered in parts, so a driver
  /// can put pair-block t+1 on the wire while kernels consume pair-block
  /// t (DESIGN.md §12). Ledger accounting is deferred to finish(): sends,
  /// receives, and per-pair maxima accumulate across parts and the
  /// rounds/modeled-cost/overhead-only classification are computed over
  /// their union — exactly what a single exchange() of the concatenated
  /// outboxes would charge, which is why the pipeline leaves the ledger
  /// bitwise unchanged.
  class ExchangeSession {
   public:
    ~ExchangeSession();
    ExchangeSession(const ExchangeSession&) = delete;
    ExchangeSession& operator=(const ExchangeSession&) = delete;

    /// Validates and delivers one partial outbox set. A validation
    /// failure throws PreconditionError and charges nothing for the
    /// offending part (earlier parts stay charged — they were sent).
    std::vector<std::vector<Delivery>> part(
        std::vector<std::vector<Envelope>> outboxes);

    /// Settles rounds/modeled cost over the union of all parts. Runs at
    /// most once; the destructor calls it as a backstop.
    void finish();

    [[nodiscard]] bool finished() const { return finished_; }

   private:
    friend class Machine;
    ExchangeSession(Machine& machine, Transport transport);

    Machine& machine_;
    Transport transport_;
    std::optional<obs::Span> span_;
    bool injector_started_ = false;
    bool finished_ = false;
    std::size_t parts_ = 0;
    /// Per-level König degrees (DESIGN.md §17): the intra networks of the
    /// nodes and the inter-node network schedule independently, so each
    /// level gets its own Δ. On a flat machine everything lands on
    /// kIntra and the totals match the historical single-level charge.
    std::array<std::vector<std::size_t>, kNumLevels> sends_per_rank_;
    std::array<std::vector<std::size_t>, kNumLevels> recvs_per_rank_;
    std::size_t max_pair_words_ = 0;
    std::size_t total_goodput_ = 0;
    std::size_t total_overhead_ = 0;
    std::size_t total_recovery_ = 0;
  };

  /// Opens a multi-part exchange session on this machine.
  [[nodiscard]] ExchangeSession begin_session(Transport transport);

  /// Executes one machine-wide exchange: outboxes[p] holds rank p's
  /// outgoing messages. Returns inboxes[p]. Every outbox is validated
  /// up front — destinations in range, no self-sends, overhead_words
  /// within the payload — and a PreconditionError leaves the ledger and
  /// all payloads untouched. Ledger records every word (split into
  /// goodput and overhead channels); rounds/modeled cost depend on the
  /// transport and are charged to the overhead channel when the exchange
  /// carries no goodput at all (pure protocol traffic). Equivalent to a
  /// one-part session.
  std::vector<std::vector<Delivery>> exchange(
      std::vector<std::vector<Envelope>> outboxes, Transport transport);

  /// Runs body(p) once for every rank p — the local compute half of a
  /// superstep. Rank programs are independent between exchanges (each
  /// reads/writes only rank-p state), so they may execute on host threads
  /// (simt::parallel_for); the ledger is untouched and results are bitwise
  /// identical to the sequential rank-order schedule.
  void run_ranks(const std::function<void(std::size_t)>& body) const;

  /// Same, over an explicit subset of ranks — the pipelined drivers run
  /// one half-superstep per pair-block chunk.
  void run_ranks(const std::vector<std::size_t>& ranks,
                 const std::function<void(std::size_t)>& body) const;

  [[nodiscard]] const CommLedger& ledger() const { return ledger_; }
  CommLedger& ledger() { return ledger_; }

  /// Message-slab arena, one shard per rank. Drivers acquire outgoing
  /// payload buffers from the sender's shard; buffers return there when
  /// the receiver drops them.
  [[nodiscard]] BufferPool& pool() { return pool_; }
  [[nodiscard]] const BufferPool& pool() const { return pool_; }

  /// NUMA-friendly first touch (DESIGN.md §17): writes every idle slab of
  /// each rank's pool shard from a worker thread via run_ranks, so the
  /// pages backing rank-local message buffers are faulted on the socket
  /// that will drive them — not on whichever thread happened to call
  /// prewarm. Call after BufferPool::reserve / Plan::prewarm_pool;
  /// idempotent and allocation-free (it only touches what is already
  /// reserved).
  void first_touch();

  /// Installs (or with nullptr removes) a wire fault injector. Non-owning;
  /// the injector must outlive its installation.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Marks rank permanently dead (idempotent). From now on every frame to
  /// or from it is discarded uncharged, below injector and protocol, so a
  /// dead peer stays silent even on degraded-mode replays. Each newly
  /// dead rank bumps the membership epoch. At least one rank must stay
  /// alive. Crash-injected deaths are synced here automatically at the
  /// start of each exchange; detectors call it directly on a verdict.
  void mark_dead(std::size_t rank);

  [[nodiscard]] bool alive(std::size_t rank) const {
    return !dead_flags_.empty() ? dead_flags_[rank] == 0 : true;
  }
  [[nodiscard]] std::size_t num_alive() const { return num_alive_; }
  /// Sorted ranks marked dead so far.
  [[nodiscard]] std::vector<std::size_t> dead_ranks() const;
  /// Bumped once per newly-dead rank; plan caches key on it.
  [[nodiscard]] std::uint64_t membership_epoch() const {
    return membership_epoch_;
  }

  /// Files a detector verdict for later audit / recovery planning.
  void record_rank_loss(RankLossReport report);
  [[nodiscard]] const std::vector<RankLossReport>& rank_loss_reports() const {
    return rank_loss_reports_;
  }

  /// Resets accounting (e.g. to ignore a warm-up distribution phase).
  /// An installed node map survives the reset: the machine's topology is
  /// physical, not per-run.
  void reset_ledger();

 private:
  std::size_t P_;
  CommLedger ledger_;
  FaultInjector* injector_ = nullptr;
  BufferPool pool_;
  std::vector<char> dead_flags_;
  std::size_t num_alive_;
  std::uint64_t membership_epoch_ = 0;
  std::vector<RankLossReport> rank_loss_reports_;
};

}  // namespace sttsv::simt
