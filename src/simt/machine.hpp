#pragma once
// A simulated distributed-memory machine in the α-β-γ (MPI) model of the
// paper's Section 3.1: P ranks with private memories, a fully connected
// network, at most one message sent and one received per rank per step.
//
// Substitution note (see DESIGN.md §2): there is no MPI runtime in this
// environment. Algorithms execute in BSP-style supersteps — local compute
// phases loop over ranks, communication phases are machine-wide exchanges.
// The semantics (who knows what, when) are identical to the per-rank MPI
// program, and the ledger counts exactly the words the α-β-γ model counts.
//
// An optional FaultInjector (DESIGN.md §10) sits on the wire: frames may
// be dropped, corrupted, duplicated, delayed by a stalled sender, or
// reordered within an inbox. The ledger charges traffic at send time, so
// its conservation invariant holds under every fault pattern; recovering
// the delivered data is the job of simt::ReliableExchange one layer up.

#include <cstddef>
#include <functional>
#include <vector>

#include "simt/ledger.hpp"

namespace sttsv::simt {

class FaultInjector;

/// One outgoing message: destination rank plus payload words. The first
/// `overhead_words` words are protocol framing (sequence numbers,
/// checksums, ACK entries) and are charged to the ledger's overhead
/// channel; the rest are goodput. Raw algorithm traffic leaves it 0.
struct Envelope {
  std::size_t to = 0;
  std::vector<double> data;
  std::size_t overhead_words = 0;
};

/// One delivered message: source rank plus payload words. Deliveries are
/// handed to the receiver sorted by sender, so execution is deterministic
/// (a fault injector may reorder them afterwards).
struct Delivery {
  std::size_t from = 0;
  std::vector<double> data;
};

/// How a communication phase is realized on the wire; affects the rounds
/// and modeled-cost accounting (Section 7.2.2), not the delivered data.
enum class Transport {
  /// Direct point-to-point sends scheduled in König rounds: the number of
  /// steps charged is the max over ranks of max(#sends, #receives), which
  /// is achievable by edge coloring (paper Theorem 7.2.2 via Lemma 7.2.1).
  kPointToPoint,
  /// A bandwidth-optimal All-to-All collective: P-1 steps, each charged
  /// the maximum per-pair buffer size (paper's "All-to-All collectives"
  /// cost model at the end of Section 7.2.2).
  kAllToAll,
};

class Machine {
 public:
  explicit Machine(std::size_t num_ranks);

  [[nodiscard]] std::size_t num_ranks() const { return P_; }

  /// Executes one machine-wide exchange: outboxes[p] holds rank p's
  /// outgoing messages. Returns inboxes[p]. Every outbox is validated
  /// up front — destinations in range, no self-sends, overhead_words
  /// within the payload — and a PreconditionError leaves the ledger and
  /// all payloads untouched. Ledger records every word (split into
  /// goodput and overhead channels); rounds/modeled cost depend on the
  /// transport and are charged to the overhead channel when the exchange
  /// carries no goodput at all (pure protocol traffic).
  std::vector<std::vector<Delivery>> exchange(
      std::vector<std::vector<Envelope>> outboxes, Transport transport);

  /// Runs body(p) once for every rank p — the local compute half of a
  /// superstep. Rank programs are independent between exchanges (each
  /// reads/writes only rank-p state), so they may execute on host threads
  /// (simt::parallel_for); the ledger is untouched and results are bitwise
  /// identical to the sequential rank-order schedule.
  void run_ranks(const std::function<void(std::size_t)>& body) const;

  [[nodiscard]] const CommLedger& ledger() const { return ledger_; }
  CommLedger& ledger() { return ledger_; }

  /// Installs (or with nullptr removes) a wire fault injector. Non-owning;
  /// the injector must outlive its installation.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return injector_; }

  /// Resets accounting (e.g. to ignore a warm-up distribution phase).
  void reset_ledger();

 private:
  std::size_t P_;
  CommLedger ledger_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace sttsv::simt
