#pragma once
// Communication accounting for the simulated α-β-γ machine.
//
// "Words" are vector/tensor elements (doubles), matching the unit of the
// paper's bounds. The ledger tracks, per rank: words and messages sent and
// received, plus per-pair traffic, plus two cost models:
//
//  * measured words: what was actually placed on the network;
//  * modeled collective words: the paper's Section 7.2.2 accounting, where
//    a bandwidth-optimal All-to-All takes P-1 steps each costing the
//    maximum per-pair message size (so empty slots still pay).
//
// Measured traffic is split into four channels (DESIGN.md §10, §15, §16),
// each with identical per-rank counters kept in one Channel-indexed array
// so adding a channel is one enum entry, not another copy of the
// counters, maxima and conservation arms:
//
//  * goodput — unique useful payload words, the quantity Theorem 5.2
//    bounds. Under the resilient protocol each logical payload is charged
//    here exactly once (on its first transmission attempt), so goodput is
//    identical to the fault-free ledger by construction.
//  * overhead — everything resilience costs on top: protocol framing
//    (sequence numbers, checksums), ACK/NACK frames, retransmissions,
//    injected duplicate deliveries, and degraded-mode replays. Overhead
//    rounds (ACK rounds, retries, backoff) are counted separately from
//    goodput rounds for the same reason.
//  * recovery — rank-loss redistribution traffic: the vector slices moved
//    when orphaned Steiner blocks are re-homed onto survivors after a
//    crash (DESIGN.md §15). Kept apart from overhead so the measured
//    redistribution cost can be checked word-for-word against the
//    block-movement diff computed by the elastic planner.
//  * onesided — payload words Put directly into a peer's registered
//    segment (DESIGN.md §16). One-sided writes carry no per-message
//    framing and no mailbox hop, so the channel's "messages" count the
//    Puts themselves while the α-term cost lives in the separate
//    synchronization counter (sync_ops): epoch fences at origins plus
//    exposure notifications at targets. Conservation holds per channel
//    exactly as for two-sided traffic.
//
// Every channel is additionally split by *level* (DESIGN.md §17): a
// topology-aware run installs a rank -> node map (set_node_map) and from
// then on every record() is classified intra-node (both endpoints on one
// node) or inter-node. Counters, rounds, sync ops and the conservation
// check all exist per (channel, level); the level-agnostic accessors sum
// the two levels, so a flat machine (no map, or one node) behaves exactly
// as before — everything lands on the intra level and the aggregate
// numbers are unchanged. This is what lets the per-level α-β cost model
// price intra-node words at shared-memory rates and inter-node words at
// network rates, and lets the planner minimize inter-node words
// specifically.

#include <cstddef>
#include <cstdint>
#include <array>
#include <string>
#include <unordered_map>
#include <vector>

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::simt {

/// The measured-traffic channels, in declaration order of their history:
/// goodput (PR 0), overhead (PR 3), recovery (PR 8), onesided (PR 9).
enum class Channel : std::uint8_t {
  kGoodput = 0,
  kOverhead = 1,
  kRecovery = 2,
  kOneSided = 3,
};

inline constexpr std::size_t kNumChannels = 4;

/// The two topology levels of DESIGN.md §17. A flat machine (no node map)
/// classifies everything kIntra — one node holds all ranks.
enum class Level : std::uint8_t {
  kIntra = 0,  ///< both endpoints on the same node (shared-segment fast path)
  kInter = 1,  ///< endpoints on different nodes (full α-β network price)
};

inline constexpr std::size_t kNumLevels = 2;

/// Stable lowercase name, used for metric keys and error messages.
[[nodiscard]] const char* channel_name(Channel c);

/// Stable lowercase name: "intra" | "inter".
[[nodiscard]] const char* level_name(Level level);

/// The per-run maxima bounded by the paper's Theorem 5.2: max over ranks
/// of words sent and of words received (equal for symmetric exchanges).
/// The overhead/recovery/onesided maxima cover the channels the bound
/// does not constrain but the benches plot.
struct LedgerMaxima {
  std::uint64_t words_sent = 0;
  std::uint64_t words_received = 0;
  std::uint64_t overhead_words_sent = 0;
  std::uint64_t overhead_words_received = 0;
  std::uint64_t recovery_words_sent = 0;
  std::uint64_t recovery_words_received = 0;
  std::uint64_t onesided_words_sent = 0;
  std::uint64_t onesided_words_received = 0;
};

class CommLedger {
 public:
  explicit CommLedger(std::size_t num_ranks);

  /// Installs the rank -> node map that classifies every subsequent
  /// record() by level. Must cover every rank; node labels must be dense
  /// in [0, num_nodes). Legal only while the ledger is empty (or with a
  /// map identical to the installed one — re-installation is idempotent),
  /// so no traffic is ever classified under two different topologies.
  void set_node_map(std::vector<std::uint32_t> node_of);

  /// The installed map; empty when the machine is flat.
  [[nodiscard]] const std::vector<std::uint32_t>& node_map() const {
    return node_of_;
  }

  /// Nodes in the installed map; 1 when flat.
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }

  /// Level of a from -> to message under the installed map (kIntra when
  /// the machine is flat).
  [[nodiscard]] Level level_of(std::size_t from, std::size_t to) const {
    if (node_of_.empty()) return Level::kIntra;
    return node_of_[from] == node_of_[to] ? Level::kIntra : Level::kInter;
  }

  /// Records one message from -> to of `words` payload words on the given
  /// channel, classified by level under the installed node map. Goodput
  /// messages additionally feed the per-pair table.
  void record(Channel channel, std::size_t from, std::size_t to,
              std::size_t words);

  /// Adds k communication rounds to the given channel and level (steps in
  /// the paper's sense: in one round a rank sends at most one message and
  /// receives at most one; the two levels schedule independently — the
  /// intra-node network of each node and the inter-node network are
  /// disjoint resources).
  void add_rounds(Channel channel, Level level, std::size_t k);

  /// Level-agnostic overload for flat call sites: charges the default
  /// level (kIntra on a flat machine, kInter once a topology is
  /// installed — protocol rounds with no per-pair attribution are
  /// network-side work).
  void add_rounds(Channel channel, std::size_t k) {
    add_rounds(channel, default_level(), k);
  }

  // Named per-channel entry points, kept for the existing call sites.
  void record_message(std::size_t from, std::size_t to, std::size_t words) {
    record(Channel::kGoodput, from, to, words);
  }

  /// Records protocol-overhead words from -> to (framing, ACKs,
  /// retransmissions, duplicates). Kept out of the goodput counters so
  /// the Theorem 5.2 check stays phrased on goodput alone.
  void record_overhead(std::size_t from, std::size_t to, std::size_t words) {
    record(Channel::kOverhead, from, to, words);
  }

  /// Records rank-loss redistribution words from -> to (x-share slices
  /// re-homed onto survivors, DESIGN.md §15).
  void record_recovery(std::size_t from, std::size_t to, std::size_t words) {
    record(Channel::kRecovery, from, to, words);
  }

  /// Records a one-sided Put of `words` payload words landing directly in
  /// `to`'s registered segment (DESIGN.md §16).
  void record_onesided(std::size_t from, std::size_t to, std::size_t words) {
    record(Channel::kOneSided, from, to, words);
  }

  void add_rounds(std::size_t k) { add_rounds(Channel::kGoodput, k); }
  void add_overhead_rounds(std::size_t k) {
    add_rounds(Channel::kOverhead, k);
  }
  void add_recovery_rounds(std::size_t k) {
    add_rounds(Channel::kRecovery, k);
  }
  void add_onesided_rounds(std::size_t k) {
    add_rounds(Channel::kOneSided, k);
  }

  /// Counts k one-sided synchronization operations at the given level:
  /// epoch fences issued by origins and exposure notifications observed
  /// by targets. This is the α-term cost of the one-sided channel — Puts
  /// themselves pay only bandwidth — so bench_transport compares Direct's
  /// message count against the Put count plus this. The hierarchical
  /// shared-segment path charges one intra fence per *node* per epoch,
  /// which is why its α-term beats per-pair mailbox envelopes.
  void add_sync_ops(Level level, std::size_t k) {
    sync_ops_[static_cast<std::size_t>(level)] += k;
  }
  void add_sync_ops(std::size_t k) { add_sync_ops(default_level(), k); }

  /// Adds modeled collective cost: per-rank words the paper's model charges
  /// for a collective phase (e.g. (P-1) * max message size for All-to-All).
  void add_modeled_collective_words(std::size_t words_per_rank);

  [[nodiscard]] std::size_t num_ranks() const { return num_ranks_; }

  // Generic per-channel accessors (aggregated over both levels).
  [[nodiscard]] std::uint64_t words_sent(Channel channel,
                                         std::size_t rank) const;
  [[nodiscard]] std::uint64_t words_received(Channel channel,
                                             std::size_t rank) const;
  [[nodiscard]] std::uint64_t max_words_sent(Channel channel) const;
  [[nodiscard]] std::uint64_t max_words_received(Channel channel) const;
  [[nodiscard]] std::uint64_t total_words(Channel channel) const;
  [[nodiscard]] std::uint64_t total_messages(Channel channel) const;
  [[nodiscard]] std::uint64_t rounds(Channel channel) const;

  // Per-(channel, level) accessors — the DESIGN.md §17 split.
  [[nodiscard]] std::uint64_t words_sent(Channel channel, Level level,
                                         std::size_t rank) const;
  [[nodiscard]] std::uint64_t words_received(Channel channel, Level level,
                                             std::size_t rank) const;
  [[nodiscard]] std::uint64_t max_words_sent(Channel channel,
                                             Level level) const;
  [[nodiscard]] std::uint64_t max_words_received(Channel channel,
                                                 Level level) const;
  [[nodiscard]] std::uint64_t total_words(Channel channel, Level level) const;
  [[nodiscard]] std::uint64_t total_messages(Channel channel,
                                             Level level) const;
  [[nodiscard]] std::uint64_t rounds(Channel channel, Level level) const;
  [[nodiscard]] std::uint64_t sync_ops(Level level) const {
    return sync_ops_[static_cast<std::size_t>(level)];
  }

  /// Payload words (goodput + onesided + recovery, no protocol framing)
  /// at one level, summed over ranks — the quantity the hierarchy bench
  /// compares against the composed partition's closed-form prediction.
  [[nodiscard]] std::uint64_t total_payload_words(Level level) const;

  // Goodput shorthands (the Theorem 5.2 quantities).
  [[nodiscard]] std::uint64_t words_sent(std::size_t rank) const {
    return words_sent(Channel::kGoodput, rank);
  }
  [[nodiscard]] std::uint64_t words_received(std::size_t rank) const {
    return words_received(Channel::kGoodput, rank);
  }
  [[nodiscard]] std::uint64_t messages_sent(std::size_t rank) const;
  [[nodiscard]] std::uint64_t messages_received(std::size_t rank) const;
  [[nodiscard]] std::uint64_t overhead_words_sent(std::size_t rank) const {
    return words_sent(Channel::kOverhead, rank);
  }
  [[nodiscard]] std::uint64_t overhead_words_received(std::size_t rank) const {
    return words_received(Channel::kOverhead, rank);
  }
  [[nodiscard]] std::uint64_t recovery_words_sent(std::size_t rank) const {
    return words_sent(Channel::kRecovery, rank);
  }
  [[nodiscard]] std::uint64_t recovery_words_received(std::size_t rank) const {
    return words_received(Channel::kRecovery, rank);
  }
  [[nodiscard]] std::uint64_t onesided_words_sent(std::size_t rank) const {
    return words_sent(Channel::kOneSided, rank);
  }
  [[nodiscard]] std::uint64_t onesided_words_received(std::size_t rank) const {
    return words_received(Channel::kOneSided, rank);
  }

  /// max_p (words sent by p + nothing else): the paper's "number of words
  /// sent or received by any processor" uses max over ranks of send (==
  /// receive for our symmetric exchanges); expose both.
  [[nodiscard]] std::uint64_t max_words_sent() const {
    return max_words_sent(Channel::kGoodput);
  }
  [[nodiscard]] std::uint64_t max_words_received() const {
    return max_words_received(Channel::kGoodput);
  }
  [[nodiscard]] std::uint64_t max_overhead_words_sent() const {
    return max_words_sent(Channel::kOverhead);
  }
  [[nodiscard]] std::uint64_t max_overhead_words_received() const {
    return max_words_received(Channel::kOverhead);
  }
  [[nodiscard]] std::uint64_t max_recovery_words_sent() const {
    return max_words_sent(Channel::kRecovery);
  }
  [[nodiscard]] std::uint64_t max_recovery_words_received() const {
    return max_words_received(Channel::kRecovery);
  }
  [[nodiscard]] std::uint64_t max_onesided_words_sent() const {
    return max_words_sent(Channel::kOneSided);
  }
  [[nodiscard]] std::uint64_t max_onesided_words_received() const {
    return max_words_received(Channel::kOneSided);
  }

  /// All channel maxima in one reduction — the set every run result reports.
  [[nodiscard]] LedgerMaxima maxima() const;
  [[nodiscard]] std::uint64_t total_words() const {
    return total_words(Channel::kGoodput);
  }
  [[nodiscard]] std::uint64_t total_messages() const {
    return total_messages(Channel::kGoodput);
  }
  [[nodiscard]] std::uint64_t total_overhead_words() const {
    return total_words(Channel::kOverhead);
  }
  [[nodiscard]] std::uint64_t total_recovery_words() const {
    return total_words(Channel::kRecovery);
  }
  [[nodiscard]] std::uint64_t total_onesided_words() const {
    return total_words(Channel::kOneSided);
  }
  [[nodiscard]] std::uint64_t overhead_messages() const {
    return total_messages(Channel::kOverhead);
  }
  [[nodiscard]] std::uint64_t recovery_messages() const {
    return total_messages(Channel::kRecovery);
  }
  [[nodiscard]] std::uint64_t onesided_messages() const {
    return total_messages(Channel::kOneSided);
  }
  [[nodiscard]] std::uint64_t rounds() const {
    return rounds(Channel::kGoodput);
  }
  [[nodiscard]] std::uint64_t overhead_rounds() const {
    return rounds(Channel::kOverhead);
  }
  [[nodiscard]] std::uint64_t recovery_rounds() const {
    return rounds(Channel::kRecovery);
  }
  [[nodiscard]] std::uint64_t onesided_rounds() const {
    return rounds(Channel::kOneSided);
  }
  [[nodiscard]] std::uint64_t sync_ops() const {
    return sync_ops_[0] + sync_ops_[1];
  }
  [[nodiscard]] std::uint64_t modeled_collective_words() const {
    return modeled_words_;
  }

  /// Goodput words sent from -> to so far (0 if never communicated).
  [[nodiscard]] std::uint64_t pair_words(std::size_t from,
                                         std::size_t to) const;

  /// Distinct ordered pairs that exchanged at least one goodput word.
  [[nodiscard]] std::size_t active_pairs() const { return pair_.size(); }

  /// Publishes the full ledger state into `out` under `prefix` (DESIGN.md
  /// §11): per channel the maxima, totals, message counts and rounds plus
  /// per-rank words as "<prefix>.<channel>.words_sent.r<p>" counters, the
  /// per-level split as "<prefix>.<channel>.<level>.*", the one-sided
  /// sync-op count (total and per level), modeled collective words and
  /// the active pair count. Values are set absolutely (set_counter), so
  /// exporting twice is idempotent. The Theorem 5.2 quantities remain
  /// phrased on the goodput channel alone.
  void to_metrics(obs::MetricsRegistry& out,
                  const std::string& prefix = "ledger") const;

  /// Conservation check on every (channel, level) pair: Σ sent ==
  /// Σ received for goodput, overhead, recovery and onesided at both the
  /// intra and inter level (throws InternalError on violation). Eight
  /// arms total; the aggregate per-channel invariant follows.
  void verify_conservation() const;

  /// Test-only mutation hook: skews rank's sent-words counter on the
  /// given channel and level without a matching receive so
  /// failure-injection tests can prove that verify_conservation actually
  /// fires on every channel at every level. Never call outside tests.
  void debug_skew_sent_for_test(Channel channel, Level level,
                                std::size_t rank, std::uint64_t words);
  void debug_skew_sent_for_test(Channel channel, std::size_t rank,
                                std::uint64_t words) {
    debug_skew_sent_for_test(channel, default_level(), rank, words);
  }
  void debug_skew_sent_for_test(std::size_t rank, std::uint64_t words) {
    debug_skew_sent_for_test(Channel::kGoodput, rank, words);
  }
  void debug_skew_recovery_sent_for_test(std::size_t rank,
                                         std::uint64_t words) {
    debug_skew_sent_for_test(Channel::kRecovery, rank, words);
  }

 private:
  /// One (channel, level)'s complete account: per-rank words and messages
  /// in both directions plus the rounds spent moving them.
  struct ChannelCounters {
    std::vector<std::uint64_t> sent;
    std::vector<std::uint64_t> received;
    std::vector<std::uint64_t> msg_sent;
    std::vector<std::uint64_t> msg_received;
    std::uint64_t rounds = 0;
  };

  [[nodiscard]] const ChannelCounters& chan(Channel channel,
                                            Level level) const {
    return chan_[static_cast<std::size_t>(channel)]
                [static_cast<std::size_t>(level)];
  }
  [[nodiscard]] ChannelCounters& chan(Channel channel, Level level) {
    return chan_[static_cast<std::size_t>(channel)]
                [static_cast<std::size_t>(level)];
  }

  /// Where level-agnostic charges (rounds, sync ops, legacy skew hooks)
  /// land: the single level of a flat machine, the network level of a
  /// topology-mapped one.
  [[nodiscard]] Level default_level() const {
    return num_nodes_ <= 1 ? Level::kIntra : Level::kInter;
  }

  [[nodiscard]] bool empty() const;

  std::size_t num_ranks_;
  std::array<std::array<ChannelCounters, kNumLevels>, kNumChannels> chan_;
  std::unordered_map<std::uint64_t, std::uint64_t> pair_;
  std::array<std::uint64_t, kNumLevels> sync_ops_ = {0, 0};
  std::uint64_t modeled_words_ = 0;
  std::vector<std::uint32_t> node_of_;  ///< empty: flat machine
  std::size_t num_nodes_ = 1;
};

}  // namespace sttsv::simt
