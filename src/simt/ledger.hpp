#pragma once
// Communication accounting for the simulated α-β-γ machine.
//
// "Words" are vector/tensor elements (doubles), matching the unit of the
// paper's bounds. The ledger tracks, per rank: words and messages sent and
// received, plus per-pair traffic, plus two cost models:
//
//  * measured words: what was actually placed on the network;
//  * modeled collective words: the paper's Section 7.2.2 accounting, where
//    a bandwidth-optimal All-to-All takes P-1 steps each costing the
//    maximum per-pair message size (so empty slots still pay).
//
// Measured traffic is split into three channels (DESIGN.md §10, §15):
//
//  * goodput — unique useful payload words, the quantity Theorem 5.2
//    bounds. Under the resilient protocol each logical payload is charged
//    here exactly once (on its first transmission attempt), so goodput is
//    identical to the fault-free ledger by construction.
//  * overhead — everything resilience costs on top: protocol framing
//    (sequence numbers, checksums), ACK/NACK frames, retransmissions,
//    injected duplicate deliveries, and degraded-mode replays. Overhead
//    rounds (ACK rounds, retries, backoff) are counted separately from
//    goodput rounds for the same reason.
//  * recovery — rank-loss redistribution traffic: the vector slices moved
//    when orphaned Steiner blocks are re-homed onto survivors after a
//    crash (DESIGN.md §15). Kept apart from overhead so the measured
//    redistribution cost can be checked word-for-word against the
//    block-movement diff computed by the elastic planner.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::simt {

/// The per-run maxima bounded by the paper's Theorem 5.2: max over ranks
/// of words sent and of words received (equal for symmetric exchanges).
/// The overhead maxima cover the resilience channel, which the bound does
/// not constrain but the resilience benches plot against fault rate.
struct LedgerMaxima {
  std::uint64_t words_sent = 0;
  std::uint64_t words_received = 0;
  std::uint64_t overhead_words_sent = 0;
  std::uint64_t overhead_words_received = 0;
  std::uint64_t recovery_words_sent = 0;
  std::uint64_t recovery_words_received = 0;
};

class CommLedger {
 public:
  explicit CommLedger(std::size_t num_ranks);

  void record_message(std::size_t from, std::size_t to, std::size_t words);

  /// Records protocol-overhead words from -> to (framing, ACKs,
  /// retransmissions, duplicates). Kept out of the goodput counters so
  /// the Theorem 5.2 check stays phrased on goodput alone.
  void record_overhead(std::size_t from, std::size_t to, std::size_t words);

  /// Adds k communication rounds (steps in the paper's sense: in one round
  /// a rank sends at most one message and receives at most one).
  void add_rounds(std::size_t k);

  /// Adds k rounds spent purely on resilience (ACK rounds, retransmission
  /// rounds, backoff waits) rather than on goodput delivery.
  void add_overhead_rounds(std::size_t k);

  /// Records rank-loss redistribution words from -> to (x-share slices
  /// re-homed onto survivors, DESIGN.md §15). A third channel so the
  /// elastic planner's modeled diff can be checked against measured
  /// traffic without touching the Theorem 5.2 goodput quantity.
  void record_recovery(std::size_t from, std::size_t to, std::size_t words);

  /// Adds k rounds spent moving redistribution traffic after a shrink.
  void add_recovery_rounds(std::size_t k);

  /// Adds modeled collective cost: per-rank words the paper's model charges
  /// for a collective phase (e.g. (P-1) * max message size for All-to-All).
  void add_modeled_collective_words(std::size_t words_per_rank);

  [[nodiscard]] std::size_t num_ranks() const { return sent_.size(); }

  [[nodiscard]] std::uint64_t words_sent(std::size_t rank) const;
  [[nodiscard]] std::uint64_t words_received(std::size_t rank) const;
  [[nodiscard]] std::uint64_t messages_sent(std::size_t rank) const;
  [[nodiscard]] std::uint64_t messages_received(std::size_t rank) const;
  [[nodiscard]] std::uint64_t overhead_words_sent(std::size_t rank) const;
  [[nodiscard]] std::uint64_t overhead_words_received(std::size_t rank) const;
  [[nodiscard]] std::uint64_t recovery_words_sent(std::size_t rank) const;
  [[nodiscard]] std::uint64_t recovery_words_received(std::size_t rank) const;

  /// max_p (words sent by p + nothing else): the paper's "number of words
  /// sent or received by any processor" uses max over ranks of send (==
  /// receive for our symmetric exchanges); expose both.
  [[nodiscard]] std::uint64_t max_words_sent() const;
  [[nodiscard]] std::uint64_t max_words_received() const;
  [[nodiscard]] std::uint64_t max_overhead_words_sent() const;
  [[nodiscard]] std::uint64_t max_overhead_words_received() const;
  [[nodiscard]] std::uint64_t max_recovery_words_sent() const;
  [[nodiscard]] std::uint64_t max_recovery_words_received() const;

  /// All channel maxima in one reduction — the set every run result reports.
  [[nodiscard]] LedgerMaxima maxima() const;
  [[nodiscard]] std::uint64_t total_words() const;
  [[nodiscard]] std::uint64_t total_messages() const;
  [[nodiscard]] std::uint64_t total_overhead_words() const;
  [[nodiscard]] std::uint64_t total_recovery_words() const;
  [[nodiscard]] std::uint64_t overhead_messages() const {
    return overhead_msgs_;
  }
  [[nodiscard]] std::uint64_t recovery_messages() const {
    return recovery_msgs_;
  }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t overhead_rounds() const {
    return overhead_rounds_;
  }
  [[nodiscard]] std::uint64_t recovery_rounds() const {
    return recovery_rounds_;
  }
  [[nodiscard]] std::uint64_t modeled_collective_words() const {
    return modeled_words_;
  }

  /// Goodput words sent from -> to so far (0 if never communicated).
  [[nodiscard]] std::uint64_t pair_words(std::size_t from,
                                         std::size_t to) const;

  /// Distinct ordered pairs that exchanged at least one goodput word.
  [[nodiscard]] std::size_t active_pairs() const { return pair_.size(); }

  /// Publishes the full ledger state into `out` under `prefix` (DESIGN.md
  /// §11): per-rank goodput and overhead words/messages as
  /// "<prefix>.goodput.words_sent.r<p>" counters, the four maxima()
  /// values, totals, rounds and modeled collective words. Values are set
  /// absolutely (set_counter), so exporting twice is idempotent. The
  /// Theorem 5.2 quantities remain phrased on the goodput channel alone.
  void to_metrics(obs::MetricsRegistry& out,
                  const std::string& prefix = "ledger") const;

  /// Conservation check on all three channels: Σ sent == Σ received for
  /// goodput, overhead and recovery (throws InternalError on violation).
  void verify_conservation() const;

  /// Test-only mutation hook: skews rank's sent-words counter without a
  /// matching receive so failure-injection tests can prove that
  /// verify_conservation actually fires. Never call outside tests.
  void debug_skew_sent_for_test(std::size_t rank, std::uint64_t words);

  /// Same, for the recovery channel's sent counter.
  void debug_skew_recovery_sent_for_test(std::size_t rank,
                                         std::uint64_t words);

 private:
  std::vector<std::uint64_t> sent_;
  std::vector<std::uint64_t> received_;
  std::vector<std::uint64_t> msg_sent_;
  std::vector<std::uint64_t> msg_received_;
  std::vector<std::uint64_t> overhead_sent_;
  std::vector<std::uint64_t> overhead_received_;
  std::vector<std::uint64_t> recovery_sent_;
  std::vector<std::uint64_t> recovery_received_;
  std::unordered_map<std::uint64_t, std::uint64_t> pair_;
  std::uint64_t overhead_msgs_ = 0;
  std::uint64_t recovery_msgs_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t overhead_rounds_ = 0;
  std::uint64_t recovery_rounds_ = 0;
  std::uint64_t modeled_words_ = 0;
};

}  // namespace sttsv::simt
