#include "simt/fault_injector.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "simt/machine.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

namespace {
bool valid_prob(double p) { return p >= 0.0 && p <= 1.0; }
}  // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_(config.seed) {
  STTSV_REQUIRE(valid_prob(config_.drop) && valid_prob(config_.corrupt) &&
                    valid_prob(config_.duplicate) &&
                    valid_prob(config_.reorder) &&
                    valid_prob(config_.stall) && valid_prob(config_.crash),
                "fault probabilities must be in [0, 1]");
}

void FaultInjector::begin_exchange() {
  ++exchange_;
  stall_this_exchange_.clear();
  crash_rolled_.clear();
  for (const auto& [rank, at] : scheduled_crashes_) {
    if (at == exchange_) kill(rank);
  }
}

void FaultInjector::schedule_crash(std::size_t rank,
                                   std::uint64_t exchange_index) {
  STTSV_REQUIRE(exchange_index > exchange_,
                "crash must be scheduled for a future exchange");
  scheduled_crashes_[rank] = exchange_index;
}

bool FaultInjector::is_dead(std::size_t rank) const {
  return std::binary_search(dead_.begin(), dead_.end(), rank);
}

void FaultInjector::kill(std::size_t rank) {
  if (is_dead(rank)) return;
  dead_.insert(std::lower_bound(dead_.begin(), dead_.end(), rank), rank);
  log_.push_back({exchange_, FaultKind::kCrash, rank, rank, 0});
}

bool FaultInjector::stalled(std::size_t rank) {
  const auto it = stall_this_exchange_.find(rank);
  if (it != stall_this_exchange_.end()) return it->second;
  const bool s = config_.stall > 0.0 && rng_.next_unit() < config_.stall;
  stall_this_exchange_.emplace(rank, s);
  return s;
}

FaultInjector::Action FaultInjector::on_frame(std::size_t from,
                                              std::size_t to,
                                              PooledBuffer& data) {
  if (is_dead(from) || is_dead(to)) return Action::kDrop;
  if (config_.crash > 0.0 && !crash_rolled_.count(from)) {
    crash_rolled_.emplace(from, true);
    if (rng_.next_unit() < config_.crash) {
      kill(from);
      return Action::kDrop;
    }
  }
  if (stalled(from)) {
    log_.push_back(
        {exchange_, FaultKind::kStall, from, to, data.size()});
    return Action::kDrop;
  }
  if (config_.drop > 0.0 && rng_.next_unit() < config_.drop) {
    log_.push_back({exchange_, FaultKind::kDrop, from, to, data.size()});
    return Action::kDrop;
  }
  if (config_.corrupt > 0.0 && !data.empty() &&
      rng_.next_unit() < config_.corrupt) {
    const auto word = static_cast<std::size_t>(rng_.next_below(data.size()));
    const auto bit = static_cast<unsigned>(rng_.next_below(64));
    const std::uint64_t flipped =
        std::bit_cast<std::uint64_t>(data[word]) ^ (std::uint64_t{1} << bit);
    data[word] = std::bit_cast<double>(flipped);
    log_.push_back({exchange_, FaultKind::kCorrupt, from, to, word});
  }
  if (config_.duplicate > 0.0 && rng_.next_unit() < config_.duplicate) {
    log_.push_back(
        {exchange_, FaultKind::kDuplicate, from, to, data.size()});
    return Action::kDuplicate;
  }
  return Action::kDeliver;
}

void FaultInjector::maybe_reorder(std::size_t rank,
                                  std::vector<Delivery>& inbox) {
  if (inbox.size() < 2 || config_.reorder <= 0.0) return;
  if (rng_.next_unit() >= config_.reorder) return;
  rng_.shuffle(inbox);
  log_.push_back({exchange_, FaultKind::kReorder, rank, rank, inbox.size()});
}

void FaultInjector::publish_metrics(obs::MetricsRegistry& out,
                                    const std::string& prefix) const {
  std::uint64_t drops = 0;
  std::uint64_t corrupts = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t stalls = 0;
  std::uint64_t crashes = 0;
  for (const FaultEvent& e : log_) {
    switch (e.kind) {
      case FaultKind::kDrop: ++drops; break;
      case FaultKind::kCorrupt: ++corrupts; break;
      case FaultKind::kDuplicate: ++duplicates; break;
      case FaultKind::kReorder: ++reorders; break;
      case FaultKind::kStall: ++stalls; break;
      case FaultKind::kCrash: ++crashes; break;
    }
  }
  out.set_counter(prefix + ".drop", drops);
  out.set_counter(prefix + ".corrupt", corrupts);
  out.set_counter(prefix + ".duplicate", duplicates);
  out.set_counter(prefix + ".reorder", reorders);
  out.set_counter(prefix + ".stall", stalls);
  out.set_counter(prefix + ".crash", crashes);
  out.set_counter(prefix + ".dead_ranks", dead_.size());
  out.set_counter(prefix + ".total", log_.size());
  out.set_counter(prefix + ".exchanges_seen", exchange_);
}

}  // namespace sttsv::simt
