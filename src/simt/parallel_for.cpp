#include "simt/parallel_for.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sttsv::simt {

namespace {

std::size_t env_or_hardware_concurrency() {
  if (const char* env = std::getenv("STTSV_HOST_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::atomic<std::size_t> g_override{0};  // 0 = automatic

/// Persistent superstep pool. Workers sleep between jobs; a job is a
/// (count, body) pair plus a shared index counter. No per-thread queues:
/// every participant pulls the next index until the counter is exhausted.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  /// Precondition: threads >= 2 and count >= 1 (caller runs count <= 1 or
  /// single-threaded loops inline).
  void run(std::size_t count, const std::function<void(std::size_t)>& body,
           std::size_t threads) {
    std::size_t helpers = std::min(threads, count) - 1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      spawn_up_to(helpers);
      helpers = std::min(helpers, workers_.size());
      body_ = &body;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      helper_slots_ = helpers;
      ++generation_;
    }
    job_cv_.notify_all();
    work();  // the calling thread participates
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return running_ == 0 && next_.load(std::memory_order_relaxed) >= count_;
    });
    body_ = nullptr;
    if (error_ != nullptr) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      lk.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void spawn_up_to(std::size_t helpers) {
    // Never more helpers than the machine could run; the cap also bounds
    // the cost of an absurd set_host_concurrency value.
    const std::size_t cap =
        std::max<std::size_t>(env_or_hardware_concurrency(), 1) * 4;
    helpers = std::min(helpers, std::max<std::size_t>(cap, 8));
    while (workers_.size() < helpers) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void work() {
    for (;;) {
      const std::size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
      if (idx >= count_) return;
      try {
        (*body_)(idx);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (error_ == nullptr) error_ = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t seen = 0;
    for (;;) {
      job_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (helper_slots_ == 0) continue;  // job already fully staffed
      --helper_slots_;
      ++running_;
      lk.unlock();
      work();
      lk.lock();
      if (--running_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t helper_slots_ = 0;
  std::size_t running_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_ = nullptr;
  bool stop_ = false;
};

}  // namespace

std::size_t host_concurrency() {
  const std::size_t n = g_override.load(std::memory_order_relaxed);
  return n > 0 ? n : env_or_hardware_concurrency();
}

void set_host_concurrency(std::size_t n) {
  g_override.store(n, std::memory_order_relaxed);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t threads = host_concurrency();
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  Pool::instance().run(count, body, threads);
}

ConcurrencyGuard::ConcurrencyGuard(std::size_t n)
    : saved_(g_override.load(std::memory_order_relaxed)) {
  set_host_concurrency(n);
}

ConcurrencyGuard::~ConcurrencyGuard() { set_host_concurrency(saved_); }

}  // namespace sttsv::simt
