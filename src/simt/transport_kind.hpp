#pragma once
// Transport selection vocabulary (DESIGN.md §16, §17). The enum lives in
// simt so the batch/serve option structs can name a backend without
// pulling in the one-sided subsystem; the factory that actually
// constructs backends is simt::make_exchanger in
// src/hier/make_exchanger.hpp (declared there because it must see every
// concrete Exchanger, including the hierarchical one).

#include <optional>
#include <string>
#include <string_view>

namespace sttsv::simt {

/// The five exchange backends a driver can run on. Spelled exactly like
/// the STTSV_TRANSPORT environment values and bench CLI flags.
enum class TransportKind {
  kDirect,         // "direct":   raw machine semantics, zero overhead
  kReliable,       // "reliable": framed/ACKed protocol (ReliableExchange)
  kOneSidedPut,    // "onesided": Puts into registered segments, view
                   //             deliveries, no framing round
  kActiveMessage,  // "am":       onesided + remote-reduce handler at the
                   //             target (no unpack-and-reduce at all)
  kHierarchical,   // "hier":     topology-split — node-local traffic via
                   //             shared segments, cross-node via an inner
                   //             backend (DESIGN.md §17)
};

/// Stable lowercase spelling: direct | reliable | onesided | am | hier.
[[nodiscard]] const char* transport_kind_name(TransportKind kind);

/// Parses the spellings above; nullopt for anything else.
[[nodiscard]] std::optional<TransportKind> parse_transport_kind(
    std::string_view text);

/// Reads STTSV_TRANSPORT from the environment: unset or empty returns
/// `fallback`; an unparsable value throws PreconditionError naming the
/// accepted spellings. Benches and serving call this once at startup so
/// one env var swaps the backend under every driver.
[[nodiscard]] TransportKind transport_kind_from_env(
    TransportKind fallback = TransportKind::kDirect);

}  // namespace sttsv::simt
