#pragma once
// Resilient exchange protocol over the simulated machine (DESIGN.md §10).
//
// The raw Machine::exchange delivers whatever the (possibly faulty) wire
// produced. ReliableExchange layers a protocol on top that makes the
// delivered inboxes bitwise identical to a fault-free run:
//
//  * every data frame carries a header — magic word, per-ordered-pair
//    sequence number, payload length, payload checksum, header checksum;
//  * receivers validate frames, accept each sequence number at most once
//    (redelivery is idempotent), and answer with ACK/NACK frames that are
//    themselves checksummed (and themselves subject to wire faults);
//  * senders retransmit unacknowledged frames with exponential backoff,
//    up to a bounded number of attempts.
//
// Ledger accounting keeps the paper's Theorem 5.2 check meaningful under
// faults: each frame's payload is charged to the goodput channel exactly
// once (on the first attempt), while headers, ACKs, retransmissions and
// backoff rounds go to the overhead channel. Goodput therefore equals the
// fault-free ledger by construction; overhead is the measured price of
// resilience.
//
// When a frame exhausts the retry budget the policy decides: kFailFast
// throws FaultError carrying a structured FaultReport (never a hang or a
// silent wrong answer); kDegrade falls back on the owner-compute
// invariant — the sender still holds the payload (tensor blocks are never
// communicated, so every contribution is deterministically recomputable)
// and replays it over a clean out-of-band channel, charged as overhead.
//
// An opt-in liveness detector (DESIGN.md §15) distinguishes a dead *peer*
// from a flaky *link*: every attempt the protocol tracks which ranks it
// probed (endpoints of pending frames) and which it heard from (any
// delivery — data, ACK, even an undecodable frame proves the sender
// lives). A probed rank heard from resets its silence counter; one that
// stays silent accumulates. When the retry budget runs out and a silent
// counter has reached the policy bound, the peer is *suspected* dead;
// the machine's membership truth arbitrates the verdict (the simulator's
// stand-in for a cluster manager's out-of-band failure detector), since
// a dead peer's neighbours also go quiet once their only remaining
// traffic targets the corpse. A confirmed suspect turns the failure into
// "peer dead", not "link flaky": the ranks are marked dead on the Machine, a structured
// RankLossReport is filed there, and RankLossError is thrown — under
// either recovery policy, because a degraded replay cannot resurrect a
// dead owner. Rank-loss recovery proper (elastic shrink, redistribution)
// lives one layer up in src/elastic/.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "simt/machine.hpp"

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::simt {

/// Seam between the Algorithm-5 drivers and the wire: callers hand over
/// outboxes exactly as they would to Machine::exchange and receive the
/// logically delivered inboxes. DirectExchange forwards verbatim;
/// ReliableExchange runs the recovery protocol.
class Exchanger {
 public:
  explicit Exchanger(Machine& machine) : machine_(machine) {}
  virtual ~Exchanger() = default;
  Exchanger(const Exchanger&) = delete;
  Exchanger& operator=(const Exchanger&) = delete;

  virtual std::vector<std::vector<Delivery>> exchange(
      std::vector<std::vector<Envelope>> outboxes, Transport transport) = 0;

  /// One logical exchange fed in parts, the seam the pipelined drivers
  /// overlap on (DESIGN.md §12). Each part() hands over a partial outbox
  /// set (every envelope exactly once across all parts); finish() ends
  /// the logical exchange and returns any deliveries the protocol
  /// deferred. Ledger totals are identical to one exchange() of the
  /// concatenated outboxes.
  class Parts {
   public:
    virtual ~Parts() = default;
    virtual std::vector<std::vector<Delivery>> part(
        std::vector<std::vector<Envelope>> outboxes) = 0;
    virtual std::vector<std::vector<Delivery>> finish() = 0;
  };

  /// Opens a multi-part logical exchange. The default implementation
  /// buffers every part and runs one exchange() at finish() — protocol
  /// exchangers (ReliableExchange) keep their wire behaviour, sequence
  /// numbers, and fault consumption bit-identical to the serialized
  /// path. DirectExchange overrides it with a true streaming machine
  /// session so parts hit the wire as they are produced. An abandoned
  /// Parts (destroyed unfinished) discards buffered traffic.
  [[nodiscard]] virtual std::unique_ptr<Parts> begin_parts(
      Transport transport);

  /// Labels subsequent exchanges for FaultReports; no-op by default.
  virtual void set_phase(const char* phase) { (void)phase; }

  /// Active-message delivery seam (DESIGN.md §16). Runs at the *target*
  /// for one landed payload: `target` is the receiving rank, `from` the
  /// origin, [data, data+words) the payload inside the target's exposed
  /// segment. A backend that supports handler delivery invokes the
  /// handler — targets ascending, then origins ascending, matching the
  /// sender-sorted reduction order of the two-sided drivers — *instead*
  /// of returning those payloads as deliveries.
  using DeliveryHandler = std::function<void(
      std::size_t target, std::size_t from, const double* data,
      std::size_t words)>;

  /// True for backends that can run a DeliveryHandler at the target
  /// (OneSidedExchange in active-message mode). Drivers that see `true`
  /// register a reduction handler and skip their own unpack-and-reduce.
  [[nodiscard]] virtual bool supports_handler_delivery() const {
    return false;
  }

  /// Installs (or with an empty function removes) the delivery handler.
  /// Default backends ignore it: they always return deliveries.
  virtual void set_delivery_handler(DeliveryHandler handler) {
    (void)handler;
  }

  [[nodiscard]] Machine& machine() const { return machine_; }

 protected:
  Machine& machine_;
};

/// The identity protocol: raw machine semantics, zero overhead words.
class DirectExchange final : public Exchanger {
 public:
  using Exchanger::Exchanger;
  std::vector<std::vector<Delivery>> exchange(
      std::vector<std::vector<Envelope>> outboxes,
      Transport transport) override {
    return machine_.exchange(std::move(outboxes), transport);
  }
  /// Streams parts through one Machine::ExchangeSession.
  [[nodiscard]] std::unique_ptr<Parts> begin_parts(
      Transport transport) override;
};

/// Bounded retry with exponential backoff: attempt k >= 1 waits
/// min(backoff_cap_rounds, backoff_base_rounds << (k-1)) rounds before
/// retransmitting (charged as overhead rounds).
struct RetryPolicy {
  std::size_t max_attempts = 8;
  std::size_t backoff_base_rounds = 1;
  std::size_t backoff_cap_rounds = 64;
};

enum class RecoveryPolicy {
  kFailFast,  // throw FaultError once the retry budget is exhausted
  kDegrade,   // owner-compute replay over a clean channel, report attached
};

/// One frame that exhausted the retry budget.
struct FrameFault {
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint64_t seq = 0;
  std::size_t payload_words = 0;
  std::size_t attempts = 0;
};

/// Structured account of a failed (or degraded) logical exchange: which
/// ranks, which phase, which protocol round, and where in the installed
/// FaultInjector's log the injected faults for this exchange live.
struct FaultReport {
  std::string phase;
  std::uint64_t exchange_index = 0;  // ordinal within this ReliableExchange
  std::size_t attempts_used = 0;
  bool degraded = false;
  std::vector<FrameFault> undelivered;
  std::vector<std::size_t> affected_ranks;  // sorted unique senders+receivers
  std::size_t injection_log_begin = 0;  // [begin, end) into injector log,
  std::size_t injection_log_end = 0;    // both 0 when no injector installed
};

class FaultError : public std::runtime_error {
 public:
  explicit FaultError(FaultReport report);
  [[nodiscard]] const FaultReport& report() const { return report_; }

 private:
  FaultReport report_;
};

/// Bounded failure detection (off by default so pure link-fault tests
/// keep their semantics). A probed peer silent for `suspect_after_attempts`
/// consecutive protocol attempts while the retry budget runs out is
/// declared dead rather than flaky.
struct LivenessPolicy {
  bool enabled = false;
  std::size_t suspect_after_attempts = 3;
};

/// The liveness verdict: undelivered frames whose peers stayed silent
/// past the policy bound. Derives from FaultError so callers that only
/// understand link faults still fail fast instead of hanging; recovery-
/// aware callers catch this type and trigger the elastic shrink. The
/// same RankLossReport is also filed on the Machine.
class RankLossError : public FaultError {
 public:
  RankLossError(FaultReport report, RankLossReport loss);
  [[nodiscard]] const RankLossReport& rank_loss() const { return loss_; }

 private:
  RankLossReport loss_;
};

class ReliableExchange final : public Exchanger {
 public:
  struct Stats {
    std::uint64_t exchanges = 0;
    std::uint64_t data_frames = 0;
    std::uint64_t retransmitted_frames = 0;
    std::uint64_t ack_frames = 0;
    std::uint64_t nack_entries = 0;
    std::uint64_t corrupt_frames_detected = 0;
    std::uint64_t duplicate_frames_ignored = 0;
    std::uint64_t degraded_deliveries = 0;
    std::uint64_t backoff_rounds = 0;
    std::uint64_t rank_loss_verdicts = 0;
  };

  explicit ReliableExchange(Machine& machine, RetryPolicy retry = {},
                            RecoveryPolicy recovery = RecoveryPolicy::kFailFast,
                            LivenessPolicy liveness = {});

  /// Runs the protocol until every frame is delivered exactly once, then
  /// returns inboxes bitwise identical to a fault-free Machine::exchange
  /// of the same outboxes. Throws FaultError (kFailFast) or degrades
  /// (kDegrade, see reports()) when the retry budget runs out.
  std::vector<std::vector<Delivery>> exchange(
      std::vector<std::vector<Envelope>> outboxes,
      Transport transport) override;

  void set_phase(const char* phase) override { phase_ = phase; }

  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }
  [[nodiscard]] RecoveryPolicy recovery_policy() const { return recovery_; }
  [[nodiscard]] const LivenessPolicy& liveness_policy() const {
    return liveness_;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// One report per degraded logical exchange (kDegrade only; kFailFast
  /// reports travel inside the thrown FaultError).
  [[nodiscard]] const std::vector<FaultReport>& reports() const {
    return reports_;
  }

  /// Publishes Stats (plus the degraded-report count) into `out` as
  /// "<prefix>.*" counters, set absolutely so re-export is idempotent.
  void publish_metrics(obs::MetricsRegistry& out,
                       const std::string& prefix = "rex") const;

 private:
  RetryPolicy retry_;
  RecoveryPolicy recovery_;
  LivenessPolicy liveness_;
  std::string phase_ = "unlabeled";
  std::uint64_t exchange_counter_ = 0;
  // Next sequence number per ordered rank pair, monotone over the session.
  std::unordered_map<std::uint64_t, std::uint64_t> next_seq_;
  Stats stats_;
  std::vector<FaultReport> reports_;
};

}  // namespace sttsv::simt
