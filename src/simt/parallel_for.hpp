#pragma once
// Host-side threaded executor for the simulated machine's compute phases.
//
// The simulator runs P rank programs in BSP supersteps (machine.hpp): the
// per-rank local compute of a phase is embarrassingly parallel — each rank
// reads only its own gathered inputs and writes only its own partial
// buffers — so it may run on host threads without changing a single word
// of the communication ledger. Indices are handed out dynamically from a
// shared counter (no work stealing, no per-thread queues); because rank
// outputs are disjoint, results are bitwise identical to the sequential
// schedule no matter which thread executes which rank.
//
// Host threading is a *simulation speedup* only: the paper's cost model is
// untouched (see DESIGN.md §8 on simulated- vs host-parallelism).

#include <cstddef>
#include <functional>

namespace sttsv::simt {

/// Number of host threads parallel_for may use. Resolution order: the
/// last set_host_concurrency(n > 0) value, else the STTSV_HOST_THREADS
/// environment variable, else std::thread::hardware_concurrency().
std::size_t host_concurrency();

/// Overrides the host thread count; 0 restores automatic resolution.
void set_host_concurrency(std::size_t n);

/// Runs body(0) … body(count-1), each exactly once, on up to
/// host_concurrency() threads (the calling thread participates). Returns
/// after every iteration completed; the first exception thrown by any
/// iteration is rethrown on the caller. With host_concurrency() == 1 the
/// loop runs inline.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

/// RAII override of host_concurrency for tests: pins the thread count on
/// construction, restores the previous setting on destruction.
class ConcurrencyGuard {
 public:
  explicit ConcurrencyGuard(std::size_t n);
  ~ConcurrencyGuard();
  ConcurrencyGuard(const ConcurrencyGuard&) = delete;
  ConcurrencyGuard& operator=(const ConcurrencyGuard&) = delete;

 private:
  std::size_t saved_;
};

}  // namespace sttsv::simt
