#pragma once
// Compute/communication overlap for the Algorithm-5 drivers
// (DESIGN.md §12). A phase's traffic is split into pair-block chunks and
// fed through an Exchanger::Parts session: while the wire carries chunk
// t, the driver packs (or runs kernels for) chunk t+1 — classic double
// buffering. The wire work runs on one persistent background thread
// (SerialExecutor), so parts execute strictly in submission order and
// every RNG/ledger/sequence-number consumer sees exactly the serialized
// order of events. That, plus Machine::ExchangeSession deferring rounds
// to the union of parts, is why y stays bitwise identical and the
// CommLedger reports the same words/messages/rounds with the pipeline on
// or off.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "simt/reliable_exchange.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

/// How a driver schedules each communication phase.
enum class PipelineMode {
  /// Pack everything, run one exchange, then consume — the historical
  /// schedule; kept as the A/B baseline for tests and bench_exchange.
  kSerialized,
  /// Overlap: chunk t+1 packs/computes while chunk t is on the wire.
  kDoubleBuffered,
};

/// One persistent FIFO worker thread shared by every pipelined exchange
/// in the process. Strict submission order makes the wire-side work a
/// deterministic serialization regardless of driver timing.
class SerialExecutor {
 public:
  static SerialExecutor& instance();

  SerialExecutor(const SerialExecutor&) = delete;
  SerialExecutor& operator=(const SerialExecutor&) = delete;

  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

 private:
  SerialExecutor();
  ~SerialExecutor();
  void enqueue(std::function<void()> job);
  void loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stop_ = false;
  std::thread worker_;
};

/// Runs one logical exchange as `chunks` parts with double buffering.
///
///   pack(c)    -> outboxes for chunk c (may run kernels first); driver
///                 thread, overlapped with chunk c-1's wire time.
///   consume(in)-> handle one part's deliveries; driver thread. Called
///                 once per completed part and once for finish()'s
///                 deferred deliveries (protocol exchangers deliver
///                 everything there; the vector may be empty).
///
/// kSerialized (or a single chunk) collapses to pack-all + one
/// exchange() + consume — the historical schedule.
template <class PackFn, class ConsumeFn>
void pipelined_exchange(Exchanger& exchanger, Transport transport,
                        std::size_t chunks, PipelineMode mode, PackFn&& pack,
                        ConsumeFn&& consume) {
  STTSV_REQUIRE(chunks >= 1, "pipelined exchange needs at least one chunk");
  if (mode == PipelineMode::kSerialized || chunks == 1) {
    std::vector<std::vector<Envelope>> merged;
    for (std::size_t c = 0; c < chunks; ++c) {
      std::vector<std::vector<Envelope>> out = pack(c);
      if (merged.empty()) {
        merged = std::move(out);
      } else {
        STTSV_CHECK(out.size() == merged.size(),
                    "pack produced inconsistent outbox counts");
        for (std::size_t p = 0; p < merged.size(); ++p) {
          for (Envelope& env : out[p]) merged[p].push_back(std::move(env));
        }
      }
    }
    consume(exchanger.exchange(std::move(merged), transport));
    return;
  }

  auto parts = exchanger.begin_parts(transport);
  SerialExecutor& wire = SerialExecutor::instance();
  std::future<std::vector<std::vector<Delivery>>> inflight;
  std::vector<std::vector<Delivery>> ready;
  bool have_inflight = false;
  bool have_ready = false;
  try {
    for (std::size_t c = 0; c < chunks; ++c) {
      std::vector<std::vector<Envelope>> out;
      {
        obs::Span pack_span("pipeline.pack", obs::Category::kPipeline, c);
        out = pack(c);
      }
      if (have_inflight) {
        obs::Span wait_span("pipeline.wait", obs::Category::kPipeline, c - 1);
        ready = inflight.get();
        have_inflight = false;
        have_ready = true;
      }
      {
        obs::Span post_span("pipeline.post", obs::Category::kPipeline, c);
        inflight = wire.submit(
            [raw = parts.get(), boxed = std::move(out)]() mutable {
              return raw->part(std::move(boxed));
            });
        have_inflight = true;
      }
      if (have_ready) {
        obs::Span consume_span("pipeline.consume", obs::Category::kPipeline,
                               c - 1);
        consume(std::move(ready));
        have_ready = false;
      }
    }
    if (have_inflight) {
      obs::Span wait_span("pipeline.wait", obs::Category::kPipeline,
                          chunks - 1);
      ready = inflight.get();
      have_inflight = false;
      consume(std::move(ready));
    }
  } catch (...) {
    // Never let `parts` die while the wire thread may still touch it.
    if (have_inflight) inflight.wait();
    throw;
  }
  obs::Span finish_span("pipeline.finish", obs::Category::kPipeline, chunks);
  consume(parts->finish());
}

}  // namespace sttsv::simt
