#pragma once
// Zero-copy message storage for the simulated machine (DESIGN.md §12).
//
// Every payload that crosses the wire — x-share panels, partial-y panels,
// ReliableExchange data/ACK frames — lives in a PooledBuffer: a move-only
// handle onto a 64-byte-aligned slab leased from a per-rank BufferPool
// shard. Slabs are size-bucketed in powers of two and returned to their
// shard's free list on destruction, so a steady-state superstep (same
// partition, same message sizes) recycles the slabs of the previous one
// and performs zero heap allocations on the message path. The pool only
// manages storage; the CommLedger keeps counting every word exactly as
// before — pooling changes where bytes live, never how many move.
//
// A PooledBuffer can also exist unpooled (default-constructed, grown from
// an initializer list or copied from a std::vector) for cold call sites
// and tests; those allocations are tallied in a process-wide counter so
// the allocation guard can prove the hot path never takes that branch.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace sttsv::simt {

class BufferPool;

/// Move-only handle onto message storage. Holds `size()` doubles starting
/// at `data()`; the words before `data()` (see consume_front) and after
/// `capacity()` belong to the slab but are not part of the message.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(std::initializer_list<double> init);
  /// Implicit by design: cold call sites keep writing
  /// `Envelope{peer, some_vector}` and pay one copy, exactly as before.
  PooledBuffer(const std::vector<double>& values);  // NOLINT(google-explicit-constructor)
  PooledBuffer(std::size_t count, double value);
  ~PooledBuffer();

  /// Non-owning window onto externally owned storage — how one-sided
  /// deliveries expose a slice of a registered segment without copying
  /// (DESIGN.md §16). The view reads and writes the caller's words in
  /// place; destruction and release() drop the reference without freeing,
  /// while any growing operation (reserve/append past `words`) detaches
  /// into owned storage first, so a view can never free or realloc memory
  /// it does not own. The caller keeps the storage alive for the view's
  /// useful lifetime (segment windows: until the next exchange epoch).
  [[nodiscard]] static PooledBuffer attach_view(double* storage,
                                                std::size_t words);
  [[nodiscard]] bool is_view() const { return view_; }

  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Words available from data() without growing.
  [[nodiscard]] std::size_t capacity() const { return capacity_ - offset_; }

  [[nodiscard]] double* data() { return base_ + offset_; }
  [[nodiscard]] const double* data() const { return base_ + offset_; }
  double& operator[](std::size_t i) { return data()[i]; }
  const double& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] double* begin() { return data(); }
  [[nodiscard]] double* end() { return data() + size_; }
  [[nodiscard]] const double* begin() const { return data(); }
  [[nodiscard]] const double* end() const { return data() + size_; }

  void reserve(std::size_t capacity_words);
  void push_back(double value);
  void append(const double* src, std::size_t count);
  /// Grows (zero-filling) or shrinks the logical size.
  void resize(std::size_t count);
  void clear() { size_ = 0; }

  /// Append-only shim for std::vector-style packing loops:
  /// `buf.insert(buf.end(), first, last)`. `pos` must be end().
  template <class It>
  void insert(const double* pos, It first, It last);
  template <class It>
  void assign(It first, It last);

  /// Drops the first `count` words in O(1) by advancing the view into the
  /// slab — how ReliableExchange strips wire headers without copying the
  /// payload. The words stay part of the slab and return with it.
  void consume_front(std::size_t count);

  /// Deep copy into the same pool shard (or unpooled if this is unpooled).
  [[nodiscard]] PooledBuffer clone() const;

  /// Releases the storage immediately (pooled slabs go back to their
  /// shard); the buffer becomes empty and unpooled.
  void release();

  friend bool operator==(const PooledBuffer& a, const PooledBuffer& b);
  friend bool operator==(const PooledBuffer& a, const std::vector<double>& b);
  friend std::ostream& operator<<(std::ostream& os, const PooledBuffer& buf);

 private:
  friend class BufferPool;

  /// Moves the contents into storage with room for `min_capacity` words.
  void grow(std::size_t min_capacity);
  [[noreturn]] static void insert_position_error();

  double* base_ = nullptr;
  std::size_t offset_ = 0;    ///< words consumed from the slab front
  std::size_t size_ = 0;      ///< logical words, starting at data()
  std::size_t capacity_ = 0;  ///< slab words measured from base_
  BufferPool* pool_ = nullptr;  ///< nullptr: privately allocated storage
  std::uint32_t shard_ = 0;
  std::uint32_t bucket_ = 0;
  bool view_ = false;  ///< storage is borrowed; never freed or pooled
};

/// Per-rank arena of size-bucketed, 64-byte-aligned slabs. Shard s serves
/// rank s: acquire() pops a free slab of the right bucket (or allocates
/// one), and the PooledBuffer returns it on destruction — possibly from a
/// different thread, hence the per-shard mutex. Slabs never shrink and
/// are only freed by trim() or the pool destructor, so a warmed pool
/// serves every steady-state superstep allocation-free.
class BufferPool {
 public:
  /// Smallest slab, in words. Buckets are kMinSlabWords << b.
  static constexpr std::size_t kMinSlabWords = 32;
  static constexpr std::size_t kAlignment = 64;

  struct Stats {
    std::uint64_t slab_allocations = 0;  ///< heap allocations ever made
    std::uint64_t slabs_live = 0;        ///< slabs currently owned
    std::uint64_t acquires = 0;          ///< acquire() calls served
    std::uint64_t reuses = 0;            ///< acquires served from a free list
    std::uint64_t words_capacity = 0;    ///< total words across owned slabs
  };

  explicit BufferPool(std::size_t shards);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  [[nodiscard]] std::size_t shards() const { return shards_.size(); }

  /// Leases a buffer with capacity >= capacity_words and logical size 0,
  /// charged to (and eventually returned to) the given shard.
  [[nodiscard]] PooledBuffer acquire(std::size_t shard,
                                     std::size_t capacity_words);

  /// Pre-sizes a shard: tops up the free list of the bucket serving
  /// `capacity_words`-word requests to at least `count` slabs. Plans call
  /// this once so steady-state supersteps never hit the allocator.
  void reserve(std::size_t shard, std::size_t capacity_words,
               std::size_t count);

  /// Frees every cached (idle) slab; outstanding buffers are unaffected.
  void trim();

  /// NUMA first touch (DESIGN.md §17): zero-fills every idle slab on the
  /// shard's free lists from the calling thread, faulting their pages on
  /// that thread's socket. Machine::first_touch runs this per rank from
  /// the worker that will drive the rank, so reserve()d slabs — which
  /// malloc lazily maps wherever the reserving thread ran — end up local
  /// to their consumer. Touches storage only; never allocates or frees.
  void touch(std::size_t shard);

  [[nodiscard]] Stats stats() const;

  /// Slab capacity a request for `capacity_words` is rounded up to.
  [[nodiscard]] static std::size_t bucket_capacity(std::size_t capacity_words);

 private:
  friend class PooledBuffer;

  struct Shard {
    std::mutex mu;
    std::vector<std::vector<double*>> free_lists;  ///< indexed by bucket
  };

  static std::uint32_t bucket_for(std::size_t capacity_words);
  double* pop_or_allocate(std::size_t shard, std::uint32_t bucket);
  void release_slab(std::size_t shard, std::uint32_t bucket, double* slab);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> slab_allocations_{0};
  std::atomic<std::uint64_t> slabs_live_{0};
  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> reuses_{0};
  std::atomic<std::uint64_t> words_capacity_{0};
};

/// Process-wide count of heap allocations made by unpooled PooledBuffers
/// (cold paths, vector conversions). The steady-state message path must
/// not move this counter.
[[nodiscard]] std::uint64_t unpooled_buffer_allocations();

/// RAII witness that a scope performed zero slab allocations against a
/// pool and zero unpooled buffer allocations. check() (also run by the
/// destructor as an STTSV_DCHECK in Debug builds) reports violations;
/// new_slab_allocations()/new_unpooled_allocations() expose the deltas so
/// tests can assert them in every build type.
class AllocationGuard {
 public:
  explicit AllocationGuard(const BufferPool& pool);
  ~AllocationGuard() noexcept(false);
  AllocationGuard(const AllocationGuard&) = delete;
  AllocationGuard& operator=(const AllocationGuard&) = delete;

  [[nodiscard]] std::uint64_t new_slab_allocations() const;
  [[nodiscard]] std::uint64_t new_unpooled_allocations() const;
  /// Debug builds: throws InternalError if anything was allocated.
  void check() const;
  /// Disarms the destructor check — for scopes that expect allocations
  /// and assert on the deltas instead.
  void dismiss() { armed_ = false; }

 private:
  const BufferPool& pool_;
  std::uint64_t slab_baseline_;
  std::uint64_t unpooled_baseline_;
  bool armed_ = true;
};

template <class It>
void PooledBuffer::insert(const double* pos, It first, It last) {
  // Only the append form is supported: every packing loop in the tree
  // inserts at end(), and anything else would shuffle slab contents.
  if (pos != data() + size_) insert_position_error();
  for (; first != last; ++first) push_back(*first);
}

template <class It>
void PooledBuffer::assign(It first, It last) {
  clear();
  for (; first != last; ++first) push_back(*first);
}

}  // namespace sttsv::simt
