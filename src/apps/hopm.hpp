#pragma once
// Higher-Order Power Method (paper Algorithm 1) for Z-eigenpairs of a
// symmetric 3-tensor: iterate y = A ×₂ x ×₃ x (+ optional shift α·x for
// the SS-HOPM variant, which guarantees monotone convergence for α large
// enough), x = y/||y||, until the iterate stabilizes; then
// λ = A ×₁ x ×₂ x ×₃ x.
//
// STTSV is the bottleneck of every iteration — exactly the paper's
// motivation — so both a sequential and a simulated-parallel driver are
// provided; the parallel driver's per-iteration communication equals one
// STTSV exchange.

#include <cstdint>
#include <vector>

#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::apps {

struct HopmOptions {
  std::size_t max_iterations = 500;
  double tolerance = 1e-12;  // sign-invariant iterate distance
  double shift = 0.0;        // SS-HOPM shift α (0 = plain HOPM)
  std::uint64_t seed = 42;   // random unit start vector
};

struct HopmResult {
  std::vector<double> eigenvector;
  double eigenvalue = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  /// ||A ×₂x ×₃x − λx||, the Z-eigenpair residual at the final iterate.
  double residual = 0.0;
};

HopmResult hopm(const tensor::SymTensor3& a, const HopmOptions& opts = {});

/// Same iteration with each STTSV executed by Algorithm 5 on the machine.
HopmResult hopm_parallel(simt::Machine& machine,
                         const partition::TetraPartition& part,
                         const partition::VectorDistribution& dist,
                         const tensor::SymTensor3& a,
                         const HopmOptions& opts = {},
                         simt::Transport transport =
                             simt::Transport::kPointToPoint);

/// Fully distributed HOPM: the iterate never leaves its per-rank shares.
/// Each iteration costs one STTSV exchange plus O(log P) words of scalar
/// allreduces (norm + convergence test) — the message pattern a real MPI
/// implementation of Algorithm 1 would have.
HopmResult hopm_fully_distributed(simt::Machine& machine,
                                  const partition::TetraPartition& part,
                                  const partition::VectorDistribution& dist,
                                  const tensor::SymTensor3& a,
                                  const HopmOptions& opts = {},
                                  simt::Transport transport =
                                      simt::Transport::kPointToPoint);

}  // namespace sttsv::apps
