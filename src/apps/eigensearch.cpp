#include "apps/eigensearch.hpp"

#include <algorithm>
#include <cmath>

#include "apps/vec_ops.hpp"
#include "batch/engine.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace sttsv::apps {

namespace {

/// Canonical representative of the (x, λ)/(-x, -λ) couple: make the
/// entry of largest magnitude positive; flip λ in step.
void canonicalize(std::vector<double>& x, double& lambda) {
  std::size_t arg = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (std::abs(x[i]) > std::abs(x[arg])) arg = i;
  }
  if (x[arg] < 0.0) {
    for (auto& v : x) v = -v;
    lambda = -lambda;
  }
}

/// Folds one converged start into the deduplicated set (shared by the
/// sequential and batched drivers so both apply identical policy).
void merge_eigenpair(std::vector<Eigenpair>& found, HopmResult res,
                     const EigenSearchOptions& opts) {
  canonicalize(res.eigenvector, res.eigenvalue);
  for (Eigenpair& pair : found) {
    if (std::abs(pair.value - res.eigenvalue) <= opts.dedup_value_tol &&
        sign_invariant_distance(pair.vector, res.eigenvector) <=
            opts.dedup_vector_tol) {
      ++pair.hits;
      // Keep the better-converged representative.
      if (res.residual < pair.residual) {
        pair.value = res.eigenvalue;
        pair.vector = std::move(res.eigenvector);
        pair.residual = res.residual;
      }
      return;
    }
  }
  found.push_back(Eigenpair{res.eigenvalue, std::move(res.eigenvector),
                            res.residual, 1});
}

void sort_by_magnitude(std::vector<Eigenpair>& found) {
  std::sort(found.begin(), found.end(),
            [](const Eigenpair& a_, const Eigenpair& b_) {
              return std::abs(a_.value) > std::abs(b_.value);
            });
}

}  // namespace

std::vector<Eigenpair> find_eigenpairs(const tensor::SymTensor3& a,
                                       const EigenSearchOptions& opts) {
  std::vector<Eigenpair> found;
  for (std::size_t start = 0; start < opts.num_starts; ++start) {
    HopmOptions run = opts.hopm;
    run.seed = opts.seed_base + start;
    HopmResult res = hopm(a, run);
    if (!res.converged) continue;
    merge_eigenpair(found, std::move(res), opts);
  }
  sort_by_magnitude(found);
  return found;
}

std::vector<Eigenpair> find_eigenpairs_batched(
    simt::Machine& machine, std::shared_ptr<const batch::Plan> plan,
    const tensor::SymTensor3& a, const EigenSearchOptions& opts) {
  STTSV_REQUIRE(plan != nullptr, "batched search needs a plan");
  STTSV_REQUIRE(plan->key().n == a.dim(),
                "plan dimension must match the tensor");
  const std::size_t n = a.dim();
  const HopmOptions& hopts = opts.hopm;

  // Per-start SS-HOPM state, initialized exactly as hopm() would.
  struct Start {
    std::vector<double> x;
    std::size_t iterations = 0;
    bool converged = false;
  };
  std::vector<Start> starts(opts.num_starts);
  for (std::size_t s = 0; s < opts.num_starts; ++s) {
    Rng rng(opts.seed_base + s);
    starts[s].x = rng.uniform_vector(n, -1.0, 1.0);
    normalize(starts[s].x);
  }

  batch::EngineOptions eopts;
  eopts.max_batch_size = std::max<std::size_t>(opts.num_starts, 1);
  batch::Engine engine(machine, plan, a, eopts);

  // One batched apply of the iterates of every start in `active`;
  // results land in ys[s] (callbacks fire in submission order).
  std::vector<std::vector<double>> ys(opts.num_starts);
  const auto batched_wave = [&](const std::vector<std::size_t>& wave) {
    for (const std::size_t s : wave) {
      engine.submit(starts[s].x,
                    [&ys, s](std::size_t, std::vector<double> y) {
                      ys[s] = std::move(y);
                    });
    }
    engine.flush();
  };

  // Lockstep iteration waves: each wave is one aggregated exchange for
  // every start still iterating, mirroring hopm_loop step for step.
  std::vector<std::size_t> active(opts.num_starts);
  for (std::size_t s = 0; s < opts.num_starts; ++s) active[s] = s;
  for (std::size_t it = 1; it <= hopts.max_iterations && !active.empty();
       ++it) {
    batched_wave(active);
    std::vector<std::size_t> still_active;
    for (const std::size_t s : active) {
      std::vector<double> y = std::move(ys[s]);
      if (hopts.shift != 0.0) y = axpy(y, hopts.shift, starts[s].x);
      normalize(y);
      const double delta = sign_invariant_distance(starts[s].x, y);
      starts[s].x = std::move(y);
      starts[s].iterations = it;
      if (delta < hopts.tolerance) {
        starts[s].converged = true;
      } else {
        still_active.push_back(s);
      }
    }
    active = std::move(still_active);
  }

  // Final batched apply for the Rayleigh quotient and residual of every
  // converged start (non-converged starts are dropped, as in
  // find_eigenpairs).
  std::vector<std::size_t> converged;
  for (std::size_t s = 0; s < opts.num_starts; ++s) {
    if (starts[s].converged) converged.push_back(s);
  }
  if (converged.empty()) return {};
  batched_wave(converged);

  std::vector<Eigenpair> found;
  for (const std::size_t s : converged) {
    const std::vector<double>& x = starts[s].x;
    const std::vector<double>& ax = ys[s];
    HopmResult res;
    res.eigenvalue = dot(x, ax);
    double res2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = ax[i] - res.eigenvalue * x[i];
      res2 += r * r;
    }
    res.residual = std::sqrt(res2);
    res.iterations = starts[s].iterations;
    res.converged = true;
    res.eigenvector = starts[s].x;
    merge_eigenpair(found, std::move(res), opts);
  }
  sort_by_magnitude(found);
  return found;
}

}  // namespace sttsv::apps
