#include "apps/eigensearch.hpp"

#include <algorithm>
#include <cmath>

#include "apps/vec_ops.hpp"

namespace sttsv::apps {

namespace {

/// Canonical representative of the (x, λ)/(-x, -λ) couple: make the
/// entry of largest magnitude positive; flip λ in step.
void canonicalize(std::vector<double>& x, double& lambda) {
  std::size_t arg = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (std::abs(x[i]) > std::abs(x[arg])) arg = i;
  }
  if (x[arg] < 0.0) {
    for (auto& v : x) v = -v;
    lambda = -lambda;
  }
}

}  // namespace

std::vector<Eigenpair> find_eigenpairs(const tensor::SymTensor3& a,
                                       const EigenSearchOptions& opts) {
  std::vector<Eigenpair> found;
  for (std::size_t start = 0; start < opts.num_starts; ++start) {
    HopmOptions run = opts.hopm;
    run.seed = opts.seed_base + start;
    HopmResult res = hopm(a, run);
    if (!res.converged) continue;

    canonicalize(res.eigenvector, res.eigenvalue);
    bool merged = false;
    for (Eigenpair& pair : found) {
      if (std::abs(pair.value - res.eigenvalue) <= opts.dedup_value_tol &&
          sign_invariant_distance(pair.vector, res.eigenvector) <=
              opts.dedup_vector_tol) {
        ++pair.hits;
        // Keep the better-converged representative.
        if (res.residual < pair.residual) {
          pair.value = res.eigenvalue;
          pair.vector = res.eigenvector;
          pair.residual = res.residual;
        }
        merged = true;
        break;
      }
    }
    if (!merged) {
      found.push_back(Eigenpair{res.eigenvalue, std::move(res.eigenvector),
                                res.residual, 1});
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Eigenpair& a_, const Eigenpair& b_) {
              return std::abs(a_.value) > std::abs(b_.value);
            });
  return found;
}

}  // namespace sttsv::apps
