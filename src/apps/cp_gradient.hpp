#pragma once
// Symmetric CP gradient (paper Algorithm 2): given factor columns
// x_1..x_r, the gradient of f(X) = 1/6 ||A - Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ||² is
//   Y = X·G - Ỹ,   G = (XᵀX) ∗ (XᵀX),   Ỹ[:,ℓ] = A ×₂ x_ℓ ×₃ x_ℓ.
// The r STTSV calls dominate; the parallel variant runs each via
// Algorithm 5.

#include <vector>

#include "batch/plan.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::apps {

/// Gradient columns Y (same shape as the factor columns X).
std::vector<std::vector<double>> cp_gradient(
    const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns);

std::vector<std::vector<double>> cp_gradient_parallel(
    simt::Machine& machine, const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns,
    simt::Transport transport = simt::Transport::kPointToPoint);

/// The r STTSV calls of Algorithm 2 as ONE batched Algorithm-5 pass:
/// all r column exchanges aggregate into a single message per rank pair
/// per phase (words unchanged, messages ~r× fewer). Gradient values are
/// bitwise identical to cp_gradient_parallel with the plan's transport.
std::vector<std::vector<double>> cp_gradient_batched(
    simt::Machine& machine, const batch::Plan& plan,
    const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns);

/// The CP objective f(X) = 1/6 ||A - Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ||², evaluated without
/// materializing the rank-r tensor:
/// ||A||² - 2 Σ_ℓ A×₁x_ℓ×₂x_ℓ×₃x_ℓ + Σ_{ℓ,ℓ'} (x_ℓᵀx_ℓ')³, all /6.
double cp_objective(const tensor::SymTensor3& a,
                    const std::vector<std::vector<double>>& columns);

}  // namespace sttsv::apps
