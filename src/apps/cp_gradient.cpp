#include "apps/cp_gradient.hpp"

#include <functional>

#include "apps/vec_ops.hpp"
#include "batch/batched_run.hpp"
#include "core/parallel_sttsv.hpp"
#include "core/sttsv_seq.hpp"
#include "support/check.hpp"

namespace sttsv::apps {

namespace {

using SttsvFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

void check_columns(const tensor::SymTensor3& a,
                   const std::vector<std::vector<double>>& columns) {
  STTSV_REQUIRE(!columns.empty(), "need at least one factor column");
  for (const auto& col : columns) {
    STTSV_REQUIRE(col.size() == a.dim(), "factor column length mismatch");
  }
}

/// Algorithm 2 lines 3 and 7 given the STTSV results of line 5:
/// G = (XᵀX) ∗ (XᵀX), then Y = X·G - Ỹ.
std::vector<std::vector<double>> gradient_from_ytilde(
    std::size_t n, const std::vector<std::vector<double>>& columns,
    const std::vector<std::vector<double>>& y_tilde) {
  const std::size_t r = columns.size();
  const auto g = hadamard_squared_gram(columns);
  std::vector<std::vector<double>> grad(r, std::vector<double>(n, 0.0));
  for (std::size_t l = 0; l < r; ++l) {
    for (std::size_t lp = 0; lp < r; ++lp) {
      const double w = g[lp][l];
      for (std::size_t i = 0; i < n; ++i) {
        grad[l][i] += columns[lp][i] * w;
      }
    }
    for (std::size_t i = 0; i < n; ++i) grad[l][i] -= y_tilde[l][i];
  }
  return grad;
}

/// Ỹ[:,ℓ] = A ×₂ x_ℓ ×₃ x_ℓ — the r STTSV calls (Algorithm 2 line 5).
std::vector<std::vector<double>> gradient_impl(
    const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns, const SttsvFn& sttsv) {
  check_columns(a, columns);
  std::vector<std::vector<double>> y_tilde(columns.size());
  for (std::size_t l = 0; l < columns.size(); ++l) {
    y_tilde[l] = sttsv(columns[l]);
  }
  return gradient_from_ytilde(a.dim(), columns, y_tilde);
}

}  // namespace

std::vector<std::vector<double>> cp_gradient(
    const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns) {
  return gradient_impl(a, columns, [&a](const std::vector<double>& x) {
    return core::sttsv_packed(a, x);
  });
}

std::vector<std::vector<double>> cp_gradient_parallel(
    simt::Machine& machine, const partition::TetraPartition& part,
    const partition::VectorDistribution& dist, const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns,
    simt::Transport transport) {
  return gradient_impl(a, columns, [&](const std::vector<double>& x) {
    return core::parallel_sttsv(machine, part, dist, a, x, transport).y;
  });
}

std::vector<std::vector<double>> cp_gradient_batched(
    simt::Machine& machine, const batch::Plan& plan,
    const tensor::SymTensor3& a,
    const std::vector<std::vector<double>>& columns) {
  check_columns(a, columns);
  batch::BatchRunResult run =
      batch::parallel_sttsv_batch(machine, plan, a, columns);
  return gradient_from_ytilde(a.dim(), columns, run.y);
}

double cp_objective(const tensor::SymTensor3& a,
                    const std::vector<std::vector<double>>& columns) {
  const double norm_a = a.frobenius_norm();
  double cross = 0.0;
  for (const auto& col : columns) {
    cross += core::full_contraction(a, col);
  }
  double model = 0.0;
  for (const auto& ca : columns) {
    for (const auto& cb : columns) {
      const double inner = dot(ca, cb);
      model += inner * inner * inner;
    }
  }
  return (norm_a * norm_a - 2.0 * cross + model) / 6.0;
}

}  // namespace sttsv::apps
