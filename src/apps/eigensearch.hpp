#pragma once
// Multi-start Z-eigenpair search: SS-HOPM converges to different robust
// eigenpairs from different starts (Kolda & Mayo); running many seeded
// starts and deduplicating recovers the spectrum reachable by power
// iterations. Z-eigenpairs of odd-order tensors come in (x, λ)/(-x, -λ)
// couples, which we canonicalize before deduplication.

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/hopm.hpp"
#include "batch/plan.hpp"
#include "simt/machine.hpp"
#include "tensor/sym_tensor.hpp"

namespace sttsv::apps {

struct Eigenpair {
  double value = 0.0;
  std::vector<double> vector;
  double residual = 0.0;
  std::size_t hits = 0;  // how many starts converged to this pair
};

struct EigenSearchOptions {
  std::size_t num_starts = 12;
  HopmOptions hopm;              // per-start options (seed is overridden)
  double dedup_value_tol = 1e-6;
  double dedup_vector_tol = 1e-5;
  std::uint64_t seed_base = 5000;
};

/// Runs num_starts SS-HOPM instances and returns the distinct converged
/// eigenpairs, sorted by |value| descending. Non-converged starts are
/// dropped.
std::vector<Eigenpair> find_eigenpairs(const tensor::SymTensor3& a,
                                       const EigenSearchOptions& opts = {});

/// Multi-start search on the simulated machine through the batched STTSV
/// engine: the starts iterate in lockstep waves, each wave submitting all
/// active iterates as one engine batch, so every Algorithm-5 exchange is
/// aggregated across starts (per-rank message count independent of the
/// number of active starts). Per start, the iteration is arithmetically
/// identical to hopm_parallel with seed opts.seed_base + start, so the
/// returned eigenpairs match a start-by-start parallel loop bitwise.
std::vector<Eigenpair> find_eigenpairs_batched(
    simt::Machine& machine, std::shared_ptr<const batch::Plan> plan,
    const tensor::SymTensor3& a, const EigenSearchOptions& opts = {});

}  // namespace sttsv::apps
