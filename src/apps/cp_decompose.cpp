#include "apps/cp_decompose.hpp"

#include <cmath>

#include "apps/cp_gradient.hpp"
#include "apps/vec_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace sttsv::apps {

CpResult cp_decompose(const tensor::SymTensor3& a, const CpOptions& opts) {
  STTSV_REQUIRE(opts.rank >= 1, "rank must be >= 1");
  const std::size_t n = a.dim();
  Rng rng(opts.seed);

  CpResult result;
  result.columns.assign(opts.rank, {});
  for (auto& col : result.columns) {
    col = rng.uniform_vector(n, -0.5, 0.5);
  }

  double step = opts.initial_step;
  double loss = cp_objective(a, result.columns);
  result.loss_history.push_back(loss);

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    const auto grad = cp_gradient(a, result.columns);

    // Backtracking: halve the step until the objective decreases.
    bool improved = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      std::vector<std::vector<double>> trial(opts.rank);
      for (std::size_t l = 0; l < opts.rank; ++l) {
        trial[l] = axpy(result.columns[l], -step, grad[l]);
      }
      const double trial_loss = cp_objective(a, trial);
      if (trial_loss < loss) {
        result.columns = std::move(trial);
        loss = trial_loss;
        improved = true;
        // Gentle growth keeps steps near the stable edge.
        step *= 1.2;
        break;
      }
      step *= 0.5;
    }
    result.loss_history.push_back(loss);
    result.iterations = it;
    if (!improved) {
      result.converged = true;  // no descent direction progress left
      break;
    }
    const double prev = result.loss_history[result.loss_history.size() - 2];
    if (prev > 0.0 && (prev - loss) / prev < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

double cp_relative_error(const tensor::SymTensor3& a,
                         const std::vector<std::vector<double>>& columns) {
  const double norm_a = a.frobenius_norm();
  STTSV_REQUIRE(norm_a > 0.0, "relative error of the zero tensor");
  const double obj = cp_objective(a, columns);
  // cp_objective = ||A - M||²/6; undo the 1/6.
  return std::sqrt(std::max(0.0, 6.0 * obj)) / norm_a;
}

}  // namespace sttsv::apps
