#pragma once
// Gradient-descent symmetric CP decomposition built on Algorithm 2's
// gradient: A ≈ Σ_ℓ x_ℓ ∘ x_ℓ ∘ x_ℓ. A deliberately simple first-order
// optimizer (fixed step with backtracking halving) — the point of the
// example is that every iteration's cost is r STTSV calls, the paper's
// bottleneck kernel.

#include <cstdint>
#include <vector>

#include "tensor/sym_tensor.hpp"

namespace sttsv::apps {

struct CpOptions {
  std::size_t rank = 2;
  std::size_t max_iterations = 500;
  double initial_step = 0.5;
  double tolerance = 1e-10;  // stop when relative loss improvement is below
  std::uint64_t seed = 7;
};

struct CpResult {
  std::vector<std::vector<double>> columns;  // factor columns x_ℓ
  std::vector<double> loss_history;          // objective per iteration
  bool converged = false;
  std::size_t iterations = 0;
};

CpResult cp_decompose(const tensor::SymTensor3& a, const CpOptions& opts);

/// Relative reconstruction error ||A - Σ x∘x∘x||_F / ||A||_F.
double cp_relative_error(const tensor::SymTensor3& a,
                         const std::vector<std::vector<double>>& columns);

}  // namespace sttsv::apps
