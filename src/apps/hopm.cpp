#include "apps/hopm.hpp"

#include <cmath>
#include <functional>

#include "apps/vec_ops.hpp"
#include "core/distributed_vector.hpp"
#include "core/parallel_sttsv.hpp"
#include "core/sttsv_seq.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace sttsv::apps {

namespace {

using SttsvFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

HopmResult hopm_loop(const tensor::SymTensor3& a, const HopmOptions& opts,
                     const SttsvFn& sttsv) {
  const std::size_t n = a.dim();
  Rng rng(opts.seed);
  std::vector<double> x = rng.uniform_vector(n, -1.0, 1.0);
  normalize(x);

  HopmResult result;
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    std::vector<double> y = sttsv(x);
    if (opts.shift != 0.0) y = axpy(y, opts.shift, x);
    normalize(y);
    const double delta = sign_invariant_distance(x, y);
    x = std::move(y);
    result.iterations = it;
    if (delta < opts.tolerance) {
      result.converged = true;
      break;
    }
  }

  // λ = A ×₁x ×₂x ×₃x = xᵀ(A ×₂x ×₃x); residual of the Z-eigen equation.
  std::vector<double> ax = sttsv(x);
  result.eigenvalue = dot(x, ax);
  double res2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ax[i] - result.eigenvalue * x[i];
    res2 += r * r;
  }
  result.residual = std::sqrt(res2);
  result.eigenvector = std::move(x);
  return result;
}

}  // namespace

HopmResult hopm(const tensor::SymTensor3& a, const HopmOptions& opts) {
  return hopm_loop(a, opts, [&a](const std::vector<double>& x) {
    return core::sttsv_packed(a, x);
  });
}

HopmResult hopm_parallel(simt::Machine& machine,
                         const partition::TetraPartition& part,
                         const partition::VectorDistribution& dist,
                         const tensor::SymTensor3& a,
                         const HopmOptions& opts,
                         simt::Transport transport) {
  STTSV_REQUIRE(dist.logical_n() == a.dim(),
                "distribution/tensor dimension mismatch");
  return hopm_loop(a, opts, [&](const std::vector<double>& x) {
    return core::parallel_sttsv(machine, part, dist, a, x, transport).y;
  });
}

HopmResult hopm_fully_distributed(simt::Machine& machine,
                                  const partition::TetraPartition& part,
                                  const partition::VectorDistribution& dist,
                                  const tensor::SymTensor3& a,
                                  const HopmOptions& opts,
                                  simt::Transport transport) {
  using core::DistributedVector;
  STTSV_REQUIRE(dist.logical_n() == a.dim(),
                "distribution/tensor dimension mismatch");
  const std::size_t n = a.dim();
  Rng rng(opts.seed);

  // Initial iterate: the same start vector as the other drivers,
  // scattered into shares and normalized with a counted allreduce.
  std::vector<double> x0 = rng.uniform_vector(n, -1.0, 1.0);
  DistributedVector x = DistributedVector::scatter(dist, x0);
  {
    const double norm2_x = DistributedVector::dot(machine, x, x);
    x.scale(1.0 / std::sqrt(norm2_x));
  }

  HopmResult result;
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    DistributedVector y =
        core::parallel_sttsv_dist(machine, part, a, x, transport);
    if (opts.shift != 0.0) y.axpy(opts.shift, x);
    const double norm2_y = DistributedVector::dot(machine, y, y);
    STTSV_CHECK(norm2_y > 0.0, "HOPM iterate collapsed to zero");
    y.scale(1.0 / std::sqrt(norm2_y));
    const auto [dm, dp] = DistributedVector::diff_norms2(machine, x, y);
    const double delta = std::sqrt(std::min(dm, dp));
    x = std::move(y);
    result.iterations = it;
    if (delta < opts.tolerance) {
      result.converged = true;
      break;
    }
  }

  // λ = xᵀ(A ×₂x ×₃x), residual ||Ax² − λx|| — all in shares.
  DistributedVector ax =
      core::parallel_sttsv_dist(machine, part, a, x, transport);
  result.eigenvalue = DistributedVector::dot(machine, x, ax);
  DistributedVector r = ax;
  r.axpy(-result.eigenvalue, x);
  result.residual = std::sqrt(DistributedVector::dot(machine, r, r));
  result.eigenvector = x.gather();
  return result;
}

}  // namespace sttsv::apps
