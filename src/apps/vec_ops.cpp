#include "apps/vec_ops.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace sttsv::apps {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  STTSV_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double normalize(std::vector<double>& a) {
  const double n = norm2(a);
  STTSV_REQUIRE(n > 0.0, "cannot normalize the zero vector");
  for (auto& x : a) x /= n;
  return n;
}

std::vector<double> axpy(const std::vector<double>& a, double s,
                         const std::vector<double>& b) {
  STTSV_REQUIRE(a.size() == b.size(), "axpy: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

double sign_invariant_distance(const std::vector<double>& a,
                               const std::vector<double>& b) {
  STTSV_REQUIRE(a.size() == b.size(), "distance: size mismatch");
  double dm = 0.0;
  double dp = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dm += (a[i] - b[i]) * (a[i] - b[i]);
    dp += (a[i] + b[i]) * (a[i] + b[i]);
  }
  return std::sqrt(std::min(dm, dp));
}

std::vector<std::vector<double>> hadamard_squared_gram(
    const std::vector<std::vector<double>>& columns) {
  const std::size_t r = columns.size();
  std::vector<std::vector<double>> g(r, std::vector<double>(r, 0.0));
  for (std::size_t a = 0; a < r; ++a) {
    for (std::size_t b = a; b < r; ++b) {
      const double inner = dot(columns[a], columns[b]);
      g[a][b] = g[b][a] = inner * inner;
    }
  }
  return g;
}

}  // namespace sttsv::apps
