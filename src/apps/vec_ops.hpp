#pragma once
// Small dense vector/matrix helpers shared by the applications.

#include <cstddef>
#include <vector>

namespace sttsv::apps {

double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm2(const std::vector<double>& a);

/// a <- a / ||a||; returns the norm (throws on zero vector).
double normalize(std::vector<double>& a);

/// a + s·b.
std::vector<double> axpy(const std::vector<double>& a, double s,
                         const std::vector<double>& b);

/// Distance up to sign: min(||a-b||, ||a+b||) — eigenvectors are defined
/// up to sign, so convergence checks use this.
double sign_invariant_distance(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Gram-like matrix G = (XᵀX) ∗ (XᵀX) (elementwise square of the Gram
/// matrix) for columns X (Algorithm 2 line 3). X is a vector of columns.
std::vector<std::vector<double>> hadamard_squared_gram(
    const std::vector<std::vector<double>>& columns);

}  // namespace sttsv::apps
