#include "onesided/make_exchanger.hpp"

#include "onesided/onesided_exchange.hpp"
#include "support/check.hpp"

namespace sttsv::simt {

std::unique_ptr<Exchanger> make_exchanger(Machine& machine,
                                          const ExchangerConfig& config) {
  switch (config.kind) {
    case TransportKind::kDirect:
      return std::make_unique<DirectExchange>(machine);
    case TransportKind::kReliable:
      return std::make_unique<ReliableExchange>(
          machine, config.retry, config.recovery, config.liveness);
    case TransportKind::kOneSidedPut:
      return std::make_unique<onesided::OneSidedExchange>(
          machine, onesided::Mode::kPut);
    case TransportKind::kActiveMessage:
      return std::make_unique<onesided::OneSidedExchange>(
          machine, onesided::Mode::kActiveMessage);
  }
  STTSV_CHECK(false, "unknown transport kind");
  return nullptr;
}

}  // namespace sttsv::simt
