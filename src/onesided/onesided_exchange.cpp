#include "onesided/onesided_exchange.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace sttsv::onesided {

namespace {

std::uint64_t pair_key(std::size_t from, std::size_t to) {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

}  // namespace

OneSidedExchange::OneSidedExchange(simt::Machine& machine, Mode mode)
    : Exchanger(machine), mode_(mode), registry_(machine) {}

void OneSidedExchange::open_epoch(EpochState& st) {
  const std::size_t P = machine_.num_ranks();
  for (auto& level : st.puts_issued) level.assign(P, 0);
  for (auto& level : st.puts_received) level.assign(P, 0);
  st.pair_words.clear();
  st.max_pair_words = 0;
  st.onesided_words = 0;
  st.recovery_words = 0;
  registry_.open_epoch();
}

void OneSidedExchange::put_part(
    std::vector<std::vector<simt::Envelope>> outboxes, EpochState& st) {
  const std::size_t P = machine_.num_ranks();
  STTSV_REQUIRE(outboxes.size() == P,
                "outboxes must cover every rank exactly once");
  // Validate the whole part before the first Put lands, so a
  // precondition failure leaves windows and ledger untouched.
  for (std::size_t from = 0; from < P; ++from) {
    for (const simt::Envelope& env : outboxes[from]) {
      STTSV_REQUIRE(env.to < P, "envelope destination out of range");
      STTSV_REQUIRE(env.to != from,
                    "self-messages are local copies, not comm");
      STTSV_REQUIRE(env.overhead_words == 0,
                    "one-sided transport carries no protocol framing");
      STTSV_REQUIRE(!env.data.empty(), "one-sided puts need a payload");
    }
  }
  // Deterministic landing order: origins ascending, each origin's
  // envelopes sorted by destination (stable), like the mailbox path.
  for (std::size_t from = 0; from < P; ++from) {
    std::stable_sort(outboxes[from].begin(), outboxes[from].end(),
                     [](const simt::Envelope& a, const simt::Envelope& b) {
                       return a.to < b.to;
                     });
    for (simt::Envelope& env : outboxes[from]) {
      // Membership truth mirrors Machine: traffic touching a dead rank
      // is dropped uncharged.
      if (!machine_.alive(from) || !machine_.alive(env.to)) continue;
      const std::size_t words = env.data.size();
      registry_.put(from, env.to, env.data.data(), words);
      if (env.recovery) {
        machine_.ledger().record(simt::Channel::kRecovery, from, env.to,
                                 words);
        st.recovery_words += words;
      } else {
        machine_.ledger().record(simt::Channel::kOneSided, from, env.to,
                                 words);
        st.onesided_words += words;
      }
      const auto lvl = static_cast<std::size_t>(
          machine_.ledger().level_of(from, env.to));
      ++st.puts_issued[lvl][from];
      ++st.puts_received[lvl][env.to];
      const std::size_t pair =
          (st.pair_words[pair_key(from, env.to)] += words);
      st.max_pair_words = std::max(st.max_pair_words, pair);
      ++stats_.puts;
      stats_.put_words += words;
      // The sender's slab frees here (back to its shard) — the window
      // now owns the only live copy, the zero-copy end of the path.
      env.data.release();
    }
  }
}

std::vector<std::vector<simt::Delivery>> OneSidedExchange::settle(
    simt::Transport transport, EpochState& st, bool deliver) {
  const std::size_t P = machine_.num_ranks();
  registry_.close_epoch();
  ++stats_.epochs;

  std::vector<std::vector<simt::Delivery>> inboxes(P);
  std::size_t total_puts = 0;
  for (const auto& level : st.puts_issued) {
    for (const std::size_t k : level) total_puts += k;
  }
  if (total_puts > 0) {
    // The α-term: one fence per active origin, one exposure notification
    // per active target, charged per level (DESIGN.md §17) — a rank that
    // Put on both networks fences each of them. On a flat machine every
    // Put lands on kIntra and the totals match the historical charge.
    const simt::Channel channel = st.onesided_words > 0
                                      ? simt::Channel::kOneSided
                                      : simt::Channel::kRecovery;
    for (std::size_t lvl = 0; lvl < simt::kNumLevels; ++lvl) {
      std::size_t fences = 0;
      std::size_t notifications = 0;
      std::size_t delta = 0;
      for (std::size_t p = 0; p < P; ++p) {
        if (st.puts_issued[lvl][p] > 0) ++fences;
        if (st.puts_received[lvl][p] > 0) ++notifications;
        delta = std::max(
            {delta, st.puts_issued[lvl][p], st.puts_received[lvl][p]});
      }
      if (fences + notifications > 0) {
        machine_.ledger().add_sync_ops(static_cast<simt::Level>(lvl),
                                       fences + notifications);
        stats_.fences += fences;
        stats_.notifications += notifications;
      }
      // König rounds per level under the point-to-point schedule; the
      // All-to-All collective is charged once below.
      if (transport == simt::Transport::kPointToPoint && delta > 0) {
        machine_.ledger().add_rounds(channel, static_cast<simt::Level>(lvl),
                                     delta);
      }
    }
    if (transport == simt::Transport::kAllToAll && P > 1) {
      // One machine-wide collective: its steps are charged to the slowest
      // level it touched (inter if any Put crossed nodes).
      bool any_inter = false;
      const std::size_t inter = static_cast<std::size_t>(simt::Level::kInter);
      for (std::size_t p = 0; p < P; ++p) {
        any_inter = any_inter || st.puts_issued[inter][p] > 0;
      }
      machine_.ledger().add_rounds(
          channel, any_inter ? simt::Level::kInter : simt::Level::kIntra,
          P - 1);
      machine_.ledger().add_modeled_collective_words((P - 1) *
                                                     st.max_pair_words);
    }
  }

  if (!deliver) return inboxes;

  if (mode_ == Mode::kActiveMessage && handler_) {
    // Remote reduce: targets ascending, origins ascending within each
    // target (the registry sorted extents at the fence) — bitwise the
    // two-sided drivers' sender-sorted reduction order.
    for (std::size_t p = 0; p < P; ++p) {
      const double* base = registry_.window_data(p);
      for (const Extent& e : registry_.extents(p)) {
        handler_(p, e.from, base + e.offset, e.words);
        ++stats_.am_deliveries;
      }
    }
    return inboxes;
  }

  for (std::size_t p = 0; p < P; ++p) {
    double* base = registry_.window_data(p);
    for (const Extent& e : registry_.extents(p)) {
      inboxes[p].push_back(simt::Delivery{
          e.from, simt::PooledBuffer::attach_view(base + e.offset,
                                                  e.words)});
      ++stats_.view_deliveries;
    }
  }
  return inboxes;
}

std::vector<std::vector<simt::Delivery>> OneSidedExchange::exchange(
    std::vector<std::vector<simt::Envelope>> outboxes,
    simt::Transport transport) {
  obs::Span span("onesided.epoch", obs::Category::kOneSided);
  EpochState st;
  open_epoch(st);
  try {
    put_part(std::move(outboxes), st);
  } catch (...) {
    // Settle the abandoned epoch (charging whatever already landed, like
    // an abandoned machine session) and re-raise.
    settle(transport, st, /*deliver=*/false);
    throw;
  }
  span.set_arg(st.onesided_words + st.recovery_words);
  return settle(transport, st, /*deliver=*/true);
}

class OneSidedExchange::PartsImpl final : public simt::Exchanger::Parts {
 public:
  PartsImpl(OneSidedExchange& ex, simt::Transport transport)
      : ex_(ex),
        transport_(transport),
        span_("onesided.epoch", obs::Category::kOneSided) {
    ex_.open_epoch(st_);
  }

  ~PartsImpl() override {
    // Backstop, mirroring Machine::ExchangeSession's destructor: an
    // abandoned epoch settles its accounting; deliveries are discarded.
    if (!finished_) ex_.settle(transport_, st_, /*deliver=*/false);
  }

  PartsImpl(const PartsImpl&) = delete;
  PartsImpl& operator=(const PartsImpl&) = delete;

  std::vector<std::vector<simt::Delivery>> part(
      std::vector<std::vector<simt::Envelope>> outboxes) override {
    STTSV_CHECK(!finished_, "one-sided parts already finished");
    ex_.put_part(std::move(outboxes), st_);
    return std::vector<std::vector<simt::Delivery>>(
        ex_.machine().num_ranks());
  }

  std::vector<std::vector<simt::Delivery>> finish() override {
    STTSV_CHECK(!finished_, "one-sided parts already finished");
    finished_ = true;
    span_.set_arg(st_.onesided_words + st_.recovery_words);
    return ex_.settle(transport_, st_, /*deliver=*/true);
  }

 private:
  OneSidedExchange& ex_;
  simt::Transport transport_;
  EpochState st_;
  obs::Span span_;
  bool finished_ = false;
};

std::unique_ptr<simt::Exchanger::Parts> OneSidedExchange::begin_parts(
    simt::Transport transport) {
  return std::make_unique<PartsImpl>(*this, transport);
}

void OneSidedExchange::publish_metrics(obs::MetricsRegistry& out,
                                       const std::string& prefix) const {
  out.set_counter(prefix + ".epochs", stats_.epochs);
  out.set_counter(prefix + ".puts", stats_.puts);
  out.set_counter(prefix + ".put_words", stats_.put_words);
  out.set_counter(prefix + ".fences", stats_.fences);
  out.set_counter(prefix + ".notifications", stats_.notifications);
  out.set_counter(prefix + ".am_deliveries", stats_.am_deliveries);
  out.set_counter(prefix + ".view_deliveries", stats_.view_deliveries);
  out.set_counter(prefix + ".window_grows", registry_.stats().window_grows);
}

}  // namespace sttsv::onesided
