#pragma once
// Forwarding header: the transport factory moved to src/hier (it must
// see the hierarchical backend, which depends on this library). Kept so
// existing includes of "onesided/make_exchanger.hpp" stay valid.
#include "hier/make_exchanger.hpp"  // IWYU pragma: export
