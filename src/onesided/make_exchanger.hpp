#pragma once
// The one transport factory (DESIGN.md §16). Declared in sttsv::simt —
// it completes the TransportKind vocabulary from simt/transport_kind.hpp
// — but lives in src/onesided because it must see every concrete
// Exchanger, including the one-sided backends.

#include <memory>

#include "simt/reliable_exchange.hpp"
#include "simt/transport_kind.hpp"

namespace sttsv::simt {

/// Everything make_exchanger needs beyond the kind. The protocol knobs
/// only matter for kReliable; the others ignore them.
struct ExchangerConfig {
  TransportKind kind = TransportKind::kDirect;
  RetryPolicy retry{};
  RecoveryPolicy recovery = RecoveryPolicy::kFailFast;
  LivenessPolicy liveness{};
};

/// Constructs the backend for `config.kind` over `machine`:
/// kDirect -> DirectExchange, kReliable -> ReliableExchange,
/// kOneSidedPut / kActiveMessage -> onesided::OneSidedExchange in the
/// corresponding mode. Every bench and the serving stack select their
/// transport through here (plus transport_kind_from_env for the
/// STTSV_TRANSPORT override) instead of naming concrete backends.
[[nodiscard]] std::unique_ptr<Exchanger> make_exchanger(
    Machine& machine, const ExchangerConfig& config);

[[nodiscard]] inline std::unique_ptr<Exchanger> make_exchanger(
    Machine& machine, TransportKind kind) {
  ExchangerConfig config;
  config.kind = kind;
  return make_exchanger(machine, config);
}

}  // namespace sttsv::simt
