#pragma once
// Registered communication segments for one-sided transport
// (DESIGN.md §16).
//
// Each rank registers one window: a 64-byte-aligned slab carved from that
// rank's BufferPool shard (the same arena the mailbox path leases from,
// so a warmed machine serves one-sided epochs allocation-free). Remote
// ranks write into the window with put() — the simulator's stand-in for
// an RDMA write — and the registry hands out the landed extents only
// after the epoch closes.
//
// Epoch-fenced exposure, modeled on MPI RMA / GASNet access epochs:
//
//   open_epoch()   — clears the landing tables; puts become legal.
//   put(...)       — reserves a fresh extent at the window cursor and
//                    copies the payload in. Extents are disjoint by
//                    construction (bump allocation), which is what makes
//                    direct remote writes into y-slices safe (the PR-5
//                    disjoint-slice delivery argument).
//   close_epoch()  — the exposure fence: extents become readable, sorted
//                    by origin (stable, so multiple puts from one origin
//                    keep their posting order — exactly the order the
//                    two-sided mailbox path delivers in).
//
// Reading extents or window memory during an open epoch throws: a target
// must never observe a half-landed epoch. Windows grow between puts when
// an epoch outgrows them (contents are preserved; growth trades slabs up
// within the owner's pool shard) — steady state never grows, which the
// allocation guard can assert.
//
// Shared-segment delivery (DESIGN.md §17): peers living on the same node
// share an address space, so a node-local transfer need not be copied
// into the target's window at all. put_shared() instead hands the
// sender's PooledBuffer itself across — a zero-copy ownership transfer,
// the PSHM fast path of real MPI stacks. Shared deliveries follow the
// same epoch fence: they are posted during an open epoch, become
// readable (origin-sorted) at close_epoch(), and the adopted slabs are
// released back to their origin shards when the next epoch opens.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simt/buffer_pool.hpp"

namespace sttsv::simt {
class Machine;
}  // namespace sttsv::simt

namespace sttsv::onesided {

/// One landed put: origin rank and the [offset, offset+words) slice of
/// the target's window it occupies.
struct Extent {
  std::size_t from = 0;
  std::size_t offset = 0;
  std::size_t words = 0;
};

/// One node-local zero-copy delivery: the origin rank and the sender's
/// payload buffer, adopted whole. The receiver reads (or views into) the
/// words in place; the slab returns to the origin's pool shard when the
/// next epoch opens.
struct SharedDelivery {
  std::size_t from = 0;
  simt::PooledBuffer payload;
};

class SegmentRegistry {
 public:
  struct Stats {
    std::uint64_t epochs = 0;        ///< close_epoch() calls
    std::uint64_t puts = 0;          ///< put() calls ever
    std::uint64_t put_words = 0;     ///< payload words ever put
    std::uint64_t window_grows = 0;  ///< mid-epoch window growths
    std::uint64_t shared_puts = 0;   ///< put_shared() calls ever
    std::uint64_t shared_words = 0;  ///< payload words handed off shared
  };

  /// Registers one (initially empty) window per machine rank, carved
  /// from the machine's pool on first use.
  explicit SegmentRegistry(simt::Machine& machine);

  [[nodiscard]] std::size_t num_ranks() const { return windows_.size(); }
  [[nodiscard]] bool epoch_open() const { return open_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Pre-sizes rank's window to at least `words` (rounded to the pool
  /// bucket). Legal only between epochs; plans may call it so even the
  /// first epoch never grows mid-flight.
  void ensure_window(std::size_t rank, std::size_t words);

  /// Registered capacity of rank's window, in words.
  [[nodiscard]] std::size_t window_words(std::size_t rank) const;

  /// Starts an access epoch. Requires the previous one to be closed.
  void open_epoch();

  /// The one-sided write: reserves the next `words`-word extent in `to`'s
  /// window and copies [src, src+words) into it. Requires an open epoch,
  /// from != to, and words >= 1. Returns the landed extent.
  Extent put(std::size_t from, std::size_t to, const double* src,
             std::size_t words);

  /// The node-local zero-copy write (DESIGN.md §17): hands `payload`
  /// itself to `to`'s shared-delivery list, no copy and no window extent.
  /// Requires an open epoch, from != to, and a non-empty payload. The
  /// registry does not know the topology — the hierarchical backend is
  /// responsible for routing only same-node traffic here.
  void put_shared(std::size_t from, std::size_t to,
                  simt::PooledBuffer payload);

  /// The exposure fence: landed extents become readable, sorted by
  /// origin (stable). Requires an open epoch.
  void close_epoch();

  /// Extents landed in rank's window during the last closed epoch,
  /// origin-ascending. Throws while an epoch is open.
  [[nodiscard]] const std::vector<Extent>& extents(std::size_t rank) const;

  /// Shared deliveries handed to rank during the last closed epoch,
  /// origin-ascending (stable within an origin). Throws while an epoch
  /// is open. Buffers stay valid until the next open_epoch().
  [[nodiscard]] const std::vector<SharedDelivery>& shared(
      std::size_t rank) const;
  /// Non-const overload for the delivering backend: the views it hands
  /// the receiver alias this storage.
  [[nodiscard]] std::vector<SharedDelivery>& shared(std::size_t rank) {
    return const_cast<std::vector<SharedDelivery>&>(
        static_cast<const SegmentRegistry*>(this)->shared(rank));
  }

  /// Base of rank's window storage — valid until the next growth (i.e.
  /// at least until the next epoch opens). Throws while an epoch is open.
  [[nodiscard]] double* window_data(std::size_t rank);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Window {
    simt::PooledBuffer storage;      ///< slab from the owner's pool shard
    std::size_t cursor = 0;          ///< next free word this epoch
    std::vector<Extent> landed;      ///< posting order; origin-sorted at close
    std::vector<SharedDelivery> shared;  ///< same discipline, zero-copy
  };

  void grow_window(std::size_t rank, std::size_t min_words);

  simt::Machine& machine_;
  std::vector<Window> windows_;
  std::uint64_t epoch_ = 0;
  bool open_ = false;
  Stats stats_;
};

}  // namespace sttsv::onesided
