#include "onesided/segment_registry.hpp"

#include <algorithm>
#include <cstring>

#include "simt/machine.hpp"
#include "support/check.hpp"

namespace sttsv::onesided {

SegmentRegistry::SegmentRegistry(simt::Machine& machine)
    : machine_(machine), windows_(machine.num_ranks()) {}

void SegmentRegistry::ensure_window(std::size_t rank, std::size_t words) {
  STTSV_REQUIRE(rank < windows_.size(), "rank out of range");
  STTSV_REQUIRE(!open_, "cannot resize a window during an open epoch");
  if (words > windows_[rank].storage.capacity()) grow_window(rank, words);
}

std::size_t SegmentRegistry::window_words(std::size_t rank) const {
  STTSV_REQUIRE(rank < windows_.size(), "rank out of range");
  return windows_[rank].storage.capacity();
}

void SegmentRegistry::grow_window(std::size_t rank, std::size_t min_words) {
  Window& w = windows_[rank];
  simt::PooledBuffer bigger = machine_.pool().acquire(rank, min_words);
  // Expose the whole slab: window capacity is the registered extent and
  // the contents must survive growth (earlier puts already landed).
  bigger.resize(bigger.capacity());
  if (w.cursor > 0) {
    std::memcpy(bigger.data(), w.storage.data(),
                w.cursor * sizeof(double));
  }
  w.storage = std::move(bigger);
  if (open_) ++stats_.window_grows;
}

void SegmentRegistry::open_epoch() {
  STTSV_REQUIRE(!open_, "epoch already open");
  for (Window& w : windows_) {
    w.cursor = 0;
    w.landed.clear();
    // Adopted slabs go home to their origin shards here — the receiver's
    // read window ended when it stopped being the "last closed epoch".
    w.shared.clear();
  }
  ++epoch_;
  open_ = true;
}

Extent SegmentRegistry::put(std::size_t from, std::size_t to,
                            const double* src, std::size_t words) {
  STTSV_REQUIRE(open_, "put outside an access epoch");
  STTSV_REQUIRE(from < windows_.size() && to < windows_.size(),
                "rank out of range");
  STTSV_REQUIRE(from != to, "self-puts are local copies, not comm");
  STTSV_REQUIRE(words >= 1 && src != nullptr, "put needs a payload");
  Window& w = windows_[to];
  if (w.cursor + words > w.storage.capacity()) {
    grow_window(to, w.cursor + words);
  }
  const Extent extent{from, w.cursor, words};
  std::memcpy(w.storage.data() + w.cursor, src, words * sizeof(double));
  w.cursor += words;
  w.landed.push_back(extent);
  ++stats_.puts;
  stats_.put_words += words;
  return extent;
}

void SegmentRegistry::put_shared(std::size_t from, std::size_t to,
                                 simt::PooledBuffer payload) {
  STTSV_REQUIRE(open_, "put_shared outside an access epoch");
  STTSV_REQUIRE(from < windows_.size() && to < windows_.size(),
                "rank out of range");
  STTSV_REQUIRE(from != to, "self-puts are local copies, not comm");
  STTSV_REQUIRE(!payload.empty(), "put_shared needs a payload");
  ++stats_.shared_puts;
  stats_.shared_words += payload.size();
  windows_[to].shared.push_back(SharedDelivery{from, std::move(payload)});
}

void SegmentRegistry::close_epoch() {
  STTSV_REQUIRE(open_, "no epoch to close");
  for (Window& w : windows_) {
    // Stable: multiple puts from one origin keep their posting order,
    // matching the mailbox path's per-pair delivery order.
    std::stable_sort(w.landed.begin(), w.landed.end(),
                     [](const Extent& a, const Extent& b) {
                       return a.from < b.from;
                     });
    std::stable_sort(w.shared.begin(), w.shared.end(),
                     [](const SharedDelivery& a, const SharedDelivery& b) {
                       return a.from < b.from;
                     });
  }
  open_ = false;
  ++stats_.epochs;
}

const std::vector<Extent>& SegmentRegistry::extents(std::size_t rank) const {
  STTSV_REQUIRE(rank < windows_.size(), "rank out of range");
  STTSV_REQUIRE(!open_, "extents are unreadable until the epoch closes");
  return windows_[rank].landed;
}

const std::vector<SharedDelivery>& SegmentRegistry::shared(
    std::size_t rank) const {
  STTSV_REQUIRE(rank < windows_.size(), "rank out of range");
  STTSV_REQUIRE(!open_,
                "shared deliveries are unreadable until the epoch closes");
  return windows_[rank].shared;
}

double* SegmentRegistry::window_data(std::size_t rank) {
  STTSV_REQUIRE(rank < windows_.size(), "rank out of range");
  STTSV_REQUIRE(!open_, "window is unreadable until the epoch closes");
  return windows_[rank].storage.data();
}

}  // namespace sttsv::onesided
