#pragma once
// One-sided Exchanger backend (DESIGN.md §16): the third transport beside
// DirectExchange and ReliableExchange.
//
// Instead of mailbox envelopes, every payload is Put straight from the
// sender's pool slab into the destination's registered segment window —
// one copy, no mailbox hop, no per-pair framing round. A logical exchange
// is one access epoch on the SegmentRegistry:
//
//   begin (open_epoch) -> Puts, any number of parts -> fence (close_epoch)
//
// Accounting (CommLedger, DESIGN.md §16): every Put's payload words go to
// the ledger's onesided channel (recovery-flagged envelopes to the
// recovery channel, so elastic redistribution stays checkable to the
// word). Puts pay bandwidth only; the α-term is the per-epoch
// synchronization — one fence per origin that issued a Put plus one
// exposure notification per target that received one — counted by
// CommLedger::add_sync_ops. Rounds follow the same König/All-to-All
// schedule as the two-sided path, charged to the onesided channel.
// Because sync ops scale with |active ranks| while Direct's envelope
// count scales with |active pairs|, the one-sided "message count"
// (puts excluded, sync ops counted) drops below Direct whenever ranks
// talk to more than one peer — the quantity bench_transport sweeps.
//
// Delivery modes:
//
//  * Mode::kPut — after the fence, each target's inbox holds zero-copy
//    PooledBuffer *views* into its window, origin-ascending. Views stay
//    valid until the next epoch opens; the drivers consume deliveries
//    before starting another exchange, which the registry's epoch guard
//    enforces.
//  * Mode::kActiveMessage — a registered DeliveryHandler runs the
//    reduction at the target (targets ascending, then origins ascending,
//    multiple puts per origin in posting order). That is exactly the
//    sender-sorted order the two-sided drivers reduce in, so y stays
//    bitwise identical. With no handler installed the mode degrades to
//    view deliveries (the x-gather phase needs none).
//
// Not supported: wire fault injection (the model is a reliable RDMA
// fabric; install faults under Direct/Reliable instead). Dead ranks are
// honoured: Puts to or from a dead rank are dropped uncharged, mirroring
// Machine's membership semantics.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "onesided/segment_registry.hpp"
#include "simt/ledger.hpp"
#include "simt/reliable_exchange.hpp"

namespace sttsv::obs {
class MetricsRegistry;
}  // namespace sttsv::obs

namespace sttsv::onesided {

enum class Mode {
  kPut,            // zero-copy view deliveries after the fence
  kActiveMessage,  // remote-reduce handler at the target
};

class OneSidedExchange final : public simt::Exchanger {
 public:
  struct Stats {
    std::uint64_t epochs = 0;            ///< settled logical exchanges
    std::uint64_t puts = 0;              ///< one-sided writes issued
    std::uint64_t put_words = 0;         ///< payload words written
    std::uint64_t fences = 0;            ///< origin-side epoch fences
    std::uint64_t notifications = 0;     ///< target-side exposure notices
    std::uint64_t am_deliveries = 0;     ///< extents fed to the handler
    std::uint64_t view_deliveries = 0;   ///< extents returned as views
  };

  explicit OneSidedExchange(simt::Machine& machine, Mode mode = Mode::kPut);

  /// One epoch: open, Put every envelope, fence, deliver (views or
  /// handler runs). Inboxes are empty in active-message mode once a
  /// handler is installed.
  std::vector<std::vector<simt::Delivery>> exchange(
      std::vector<std::vector<simt::Envelope>> outboxes,
      simt::Transport transport) override;

  /// One epoch fed in parts: each part() Puts immediately (the wire-side
  /// work the pipeline overlaps) and returns empty inboxes; finish() is
  /// the fence and returns every delivery. An abandoned Parts settles
  /// the accounting but delivers nothing, like an abandoned machine
  /// session.
  [[nodiscard]] std::unique_ptr<Exchanger::Parts> begin_parts(
      simt::Transport transport) override;

  void set_phase(const char* phase) override { phase_ = phase; }

  [[nodiscard]] bool supports_handler_delivery() const override {
    return mode_ == Mode::kActiveMessage;
  }
  void set_delivery_handler(DeliveryHandler handler) override {
    handler_ = std::move(handler);
  }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] SegmentRegistry& registry() { return registry_; }
  [[nodiscard]] const SegmentRegistry& registry() const { return registry_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Publishes Stats plus the registry's counters into `out` as
  /// "<prefix>.*", set absolutely so re-export is idempotent.
  void publish_metrics(obs::MetricsRegistry& out,
                       const std::string& prefix = "onesided") const;

 private:
  class PartsImpl;
  friend class PartsImpl;

  /// Per-epoch accounting accumulated across parts and settled at the
  /// fence — the analogue of Machine::ExchangeSession's deferred rounds.
  /// Put counts are kept per topology level (DESIGN.md §17) so fences,
  /// notifications and König rounds are charged to the network that
  /// actually carried each Put; a flat machine puts everything on kIntra
  /// and the totals match the historical single-level charge.
  struct EpochState {
    /// [level][rank] Puts issued by / received at the rank.
    std::array<std::vector<std::size_t>, simt::kNumLevels> puts_issued;
    std::array<std::vector<std::size_t>, simt::kNumLevels> puts_received;
    std::unordered_map<std::uint64_t, std::size_t> pair_words;
    std::size_t max_pair_words = 0;
    std::uint64_t onesided_words = 0;
    std::uint64_t recovery_words = 0;
  };

  void open_epoch(EpochState& st);
  /// Validates one part's outboxes (strong guarantee: throws before any
  /// Put), then writes every payload into its destination window.
  void put_part(std::vector<std::vector<simt::Envelope>> outboxes,
                EpochState& st);
  /// The fence: closes the epoch, charges sync ops and rounds, and (when
  /// `deliver`) runs the handler or builds the view inboxes.
  std::vector<std::vector<simt::Delivery>> settle(simt::Transport transport,
                                                  EpochState& st,
                                                  bool deliver);

  Mode mode_;
  SegmentRegistry registry_;
  DeliveryHandler handler_;
  const char* phase_ = "unlabeled";
  Stats stats_;
};

}  // namespace sttsv::onesided
