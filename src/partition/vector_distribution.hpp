#pragma once
// Distribution of the vectors x and y over processors (Section 6.1.2):
// the (possibly padded) vector of length n' = b·m is cut into m row blocks
// of length b; row block i is split evenly across the processors Q_i that
// need it, so each processor starts with exactly Σ_{i∈R_p} b/|Q_i| ≈ n/P
// elements of x and ends with the same share of y.

#include <cstddef>
#include <vector>

#include "partition/tetra_partition.hpp"

namespace sttsv::partition {

/// A contiguous slice of a row block: [offset, offset + length) within the
/// b-length block.
struct Share {
  std::size_t offset = 0;
  std::size_t length = 0;
};

class VectorDistribution {
 public:
  /// Lays out a vector of logical length n over the given partition.
  /// If m does not divide n the vector is padded to the next multiple
  /// (paper Section 6.1: pad the tensor/vector, b = n'/m).
  VectorDistribution(const TetraPartition& part, std::size_t n);

  [[nodiscard]] std::size_t logical_n() const { return n_; }
  [[nodiscard]] std::size_t padded_n() const { return b_ * m_; }
  [[nodiscard]] std::size_t block_length_b() const { return b_; }
  [[nodiscard]] std::size_t num_row_blocks() const { return m_; }
  [[nodiscard]] std::size_t num_processors() const { return P_; }

  /// The slice of row block i owned by processor p; p must be in Q_i.
  /// When b is not divisible by |Q_i| the first b mod |Q_i| members get
  /// one extra element.
  [[nodiscard]] Share share(std::size_t row_block, std::size_t p) const;

  /// Owner of element `offset` within row block i.
  [[nodiscard]] std::size_t owner_in_block(std::size_t row_block,
                                           std::size_t offset) const;

  /// Owner of a global (padded) vector index.
  [[nodiscard]] std::size_t owner_of(std::size_t global_index) const;

  /// Elements of one vector owned by processor p (= Σ_{i∈R_p} share).
  [[nodiscard]] std::size_t local_elements(std::size_t p) const;

  /// Row blocks required by p, i.e. R_p (ascending).
  [[nodiscard]] const std::vector<std::size_t>& required_blocks(
      std::size_t p) const;

  /// Processors requiring row block i, i.e. Q_i (ascending).
  [[nodiscard]] const std::vector<std::size_t>& requirers(
      std::size_t i) const;

  /// Position of p within Q_i (its rank among the requirers); p ∈ Q_i.
  [[nodiscard]] std::size_t rank_in_block(std::size_t row_block,
                                          std::size_t p) const;

  /// Sanity: shares of each row block tile [0, b) without gaps/overlap and
  /// per-processor totals match. Throws on violation.
  void validate() const;

 private:
  const TetraPartition* part_;
  std::size_t n_;
  std::size_t m_;
  std::size_t P_;
  std::size_t b_;
};

}  // namespace sttsv::partition
