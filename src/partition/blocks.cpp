#include "partition/blocks.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::partition {

BlockType classify(const BlockCoord& c) {
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k, "block coordinate must be sorted");
  if (c.i == c.j && c.j == c.k) return BlockType::kCentralDiagonal;
  if (c.i == c.j || c.j == c.k) return BlockType::kNonCentralDiagonal;
  return BlockType::kOffDiagonal;
}

std::vector<BlockCoord> tetrahedral_block(
    const std::vector<std::size_t>& R) {
  STTSV_REQUIRE(std::is_sorted(R.begin(), R.end()) &&
                    std::adjacent_find(R.begin(), R.end()) == R.end(),
                "index set must be strictly increasing");
  std::vector<BlockCoord> out;
  out.reserve(R.size() * (R.size() - 1) * (R.size() - 2) / 6);
  for (std::size_t a = 0; a < R.size(); ++a) {
    for (std::size_t b = a + 1; b < R.size(); ++b) {
      for (std::size_t c = b + 1; c < R.size(); ++c) {
        // R is ascending, so (R[c], R[b], R[a]) is descending i > j > k.
        out.push_back(BlockCoord{R[c], R[b], R[a]});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockCoord> all_lower_blocks(std::size_t m) {
  std::vector<BlockCoord> out;
  out.reserve(m * (m + 1) * (m + 2) / 6);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k <= j; ++k) {
        out.push_back(BlockCoord{i, j, k});
      }
    }
  }
  return out;
}

std::size_t num_off_diagonal_blocks(std::size_t m) {
  if (m < 3) return 0;
  return m * (m - 1) * (m - 2) / 6;
}

std::size_t num_non_central_diagonal_blocks(std::size_t m) {
  if (m < 2) return 0;
  return m * (m - 1);
}

std::size_t num_central_diagonal_blocks(std::size_t m) { return m; }

std::size_t entries_in_block(BlockType type, std::size_t b) {
  switch (type) {
    case BlockType::kOffDiagonal:
      return b * b * b;
    case BlockType::kNonCentralDiagonal:
      return b * b * (b + 1) / 2;
    case BlockType::kCentralDiagonal:
      return b * (b + 1) * (b + 2) / 6;
  }
  STTSV_CHECK(false, "unreachable block type");
}

std::size_t ternary_mults_in_block(BlockType type, std::size_t b) {
  switch (type) {
    case BlockType::kOffDiagonal:
      // Every entry contributes updates to y[i], y[j], y[k]: 3 b³.
      return 3 * b * b * b;
    case BlockType::kNonCentralDiagonal:
      // b²(b-1)/2 strict entries at 3 each + b² two-equal entries at 2.
      return 3 * b * b * (b - 1) / 2 + 2 * b * b;
    case BlockType::kCentralDiagonal:
      // Strict entries 3 each, two-equal entries 2 each, center 1 each.
      return 3 * (b * (b - 1) * (b - 2) / 6) + 2 * (b * (b - 1)) + b;
  }
  STTSV_CHECK(false, "unreachable block type");
}

}  // namespace sttsv::partition
