#pragma once
// Block-index level concepts of Section 6: the tensor is tiled into
// m³ blocks of size b×b×b; only blocks with sorted index (i >= j >= k)
// in the lower tetrahedron are materialized. Blocks are classified as
// off-diagonal (i > j > k), non-central diagonal (exactly two equal),
// or central diagonal (i == j == k).

#include <cstddef>
#include <vector>

namespace sttsv::partition {

/// Coordinates of a lower-tetrahedral block: i >= j >= k, all < m.
struct BlockCoord {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;

  friend bool operator==(const BlockCoord&, const BlockCoord&) = default;
  friend auto operator<=>(const BlockCoord&, const BlockCoord&) = default;
};

enum class BlockType {
  kOffDiagonal,         // i > j > k
  kNonCentralDiagonal,  // exactly two indices equal
  kCentralDiagonal,     // i == j == k
};

/// Classifies a sorted block coordinate (throws on unsorted input).
BlockType classify(const BlockCoord& c);

/// TB₃(R) (paper Section 6): all {(i,j,k) : i > j > k, i,j,k ∈ R}, sorted.
/// R must be strictly increasing.
std::vector<BlockCoord> tetrahedral_block(const std::vector<std::size_t>& R);

/// All lower-tetrahedral block coordinates for m row blocks, sorted;
/// m(m+1)(m+2)/6 of them. Intended for validation sweeps at modest m.
std::vector<BlockCoord> all_lower_blocks(std::size_t m);

/// Counts from Section 6.1: off-diagonal m(m-1)(m-2)/6, non-central
/// diagonal m(m-1), central diagonal m.
std::size_t num_off_diagonal_blocks(std::size_t m);
std::size_t num_non_central_diagonal_blocks(std::size_t m);
std::size_t num_central_diagonal_blocks(std::size_t m);

/// Entry counts per block type for block edge length b (Section 6.1.3):
/// off-diagonal blocks hold b³ lower-tetra entries, non-central diagonal
/// blocks b²(b+1)/2, central diagonal blocks b(b+1)(b+2)/6.
std::size_t entries_in_block(BlockType type, std::size_t b);

/// Ternary multiplications Algorithm 5 performs per block (Section 7.1).
std::size_t ternary_mults_in_block(BlockType type, std::size_t b);

}  // namespace sttsv::partition
