#include "partition/vector_distribution.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sttsv::partition {

VectorDistribution::VectorDistribution(const TetraPartition& part,
                                       std::size_t n)
    : part_(&part),
      n_(n),
      m_(part.num_row_blocks()),
      P_(part.num_processors()),
      b_((n + m_ - 1) / m_) {
  STTSV_REQUIRE(n >= 1, "vector length must be >= 1");
}

Share VectorDistribution::share(std::size_t row_block, std::size_t p) const {
  const std::size_t pos = rank_in_block(row_block, p);
  const auto& Qi = part_->Q(row_block);
  const std::size_t w = Qi.size();
  const std::size_t base = b_ / w;
  const std::size_t extra = b_ % w;
  // First `extra` requirers get base+1 elements.
  const std::size_t offset = pos * base + std::min(pos, extra);
  const std::size_t length = base + (pos < extra ? 1 : 0);
  return Share{offset, length};
}

std::size_t VectorDistribution::owner_in_block(std::size_t row_block,
                                               std::size_t offset) const {
  STTSV_REQUIRE(offset < b_, "offset beyond row block");
  const auto& Qi = part_->Q(row_block);
  const std::size_t w = Qi.size();
  const std::size_t base = b_ / w;
  const std::size_t extra = b_ % w;
  // Invert the share() layout.
  std::size_t pos;
  if (offset < extra * (base + 1)) {
    pos = offset / (base + 1);
  } else {
    STTSV_CHECK(base > 0, "zero-length shares cannot own offsets");
    pos = extra + (offset - extra * (base + 1)) / base;
  }
  return Qi[pos];
}

std::size_t VectorDistribution::owner_of(std::size_t global_index) const {
  STTSV_REQUIRE(global_index < padded_n(), "global index out of range");
  return owner_in_block(global_index / b_, global_index % b_);
}

std::size_t VectorDistribution::local_elements(std::size_t p) const {
  std::size_t total = 0;
  for (const std::size_t i : part_->R(p)) {
    total += share(i, p).length;
  }
  return total;
}

const std::vector<std::size_t>& VectorDistribution::required_blocks(
    std::size_t p) const {
  return part_->R(p);
}

const std::vector<std::size_t>& VectorDistribution::requirers(
    std::size_t i) const {
  return part_->Q(i);
}

std::size_t VectorDistribution::rank_in_block(std::size_t row_block,
                                              std::size_t p) const {
  const auto& Qi = part_->Q(row_block);
  const auto it = std::lower_bound(Qi.begin(), Qi.end(), p);
  STTSV_REQUIRE(it != Qi.end() && *it == p,
                "processor does not require this row block");
  return static_cast<std::size_t>(it - Qi.begin());
}

void VectorDistribution::validate() const {
  // Shares of each row block tile [0, b) exactly.
  for (std::size_t i = 0; i < m_; ++i) {
    std::size_t cursor = 0;
    for (const std::size_t p : part_->Q(i)) {
      const Share s = share(i, p);
      STTSV_CHECK(s.offset == cursor, "share gap or overlap");
      cursor += s.length;
      // Round-trip through owner_in_block.
      for (std::size_t off = s.offset; off < s.offset + s.length; ++off) {
        STTSV_CHECK(owner_in_block(i, off) == p, "owner lookup mismatch");
      }
    }
    STTSV_CHECK(cursor == b_, "shares do not cover the row block");
  }
  // Per-processor totals sum to the padded vector length (each element
  // owned exactly once is implied by the tiling above).
  std::size_t total = 0;
  for (std::size_t p = 0; p < P_; ++p) total += local_elements(p);
  STTSV_CHECK(total == padded_n(), "local element totals mismatch");
}

}  // namespace sttsv::partition
