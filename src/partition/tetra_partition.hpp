#pragma once
// The tetrahedral block partition of Section 6: given a Steiner (m, r, 3)
// system with P blocks, assign every lower-tetrahedral b×b×b block of the
// symmetric tensor to exactly one of P processors such that
//
//   * processor p owns TB₃(R_p) (all off-diagonal blocks within its
//     Steiner subset R_p)                                   — Section 6.1.1,
//   * non-central diagonal blocks (a,a,b)/(a,b,b) go to a processor whose
//     R_p contains both a and b, balanced via Hall quotas    — Section 6.1.3,
//   * central diagonal blocks (a,a,a) go to a processor with a ∈ R_p,
//     at most one each, via a Hall matching                  — Section 6.1.3.
//
// The upshot (paper): computations of every owned block touch only row
// blocks x[i], y[i] with i ∈ R_p, so no tensor data and no extra vector row
// blocks are ever communicated.

#include <cstddef>
#include <vector>

#include "partition/blocks.hpp"
#include "steiner/steiner.hpp"

namespace sttsv::partition {

class TetraPartition {
 public:
  /// Builds the partition from a Steiner system (copied in).
  /// Requires m <= P so central diagonal blocks fit one-per-processor.
  static TetraPartition build(steiner::SteinerSystem system);

  [[nodiscard]] const steiner::SteinerSystem& system() const { return sys_; }
  [[nodiscard]] std::size_t num_processors() const;      // P (= #blocks)
  [[nodiscard]] std::size_t num_row_blocks() const;      // m
  [[nodiscard]] std::size_t steiner_block_size() const;  // r = |R_p|

  /// R_p: the Steiner subset of row-block indices owned by processor p.
  [[nodiscard]] const std::vector<std::size_t>& R(std::size_t p) const;

  /// N_p: non-central diagonal blocks assigned to p.
  [[nodiscard]] const std::vector<BlockCoord>& N(std::size_t p) const;

  /// D_p: central diagonal blocks assigned to p (zero or more; exactly
  /// zero-or-one when m <= P, which build() enforces).
  [[nodiscard]] const std::vector<BlockCoord>& D(std::size_t p) const;

  /// Q_i: sorted processors requiring row block i (those with i ∈ R_p).
  [[nodiscard]] const std::vector<std::size_t>& Q(std::size_t i) const;

  /// All blocks owned by p: TB₃(R_p) ∪ N_p ∪ D_p, sorted.
  [[nodiscard]] std::vector<BlockCoord> owned_blocks(std::size_t p) const;

  /// Owner of an arbitrary lower-tetra block coordinate.
  [[nodiscard]] std::size_t owner(const BlockCoord& c) const;

  /// Stored lower-tetra tensor entries of processor p for block edge b
  /// (Section 6.1.3 storage bound ≈ n³/(6P)).
  [[nodiscard]] std::size_t stored_entries(std::size_t p,
                                           std::size_t b) const;

  /// Ternary multiplications processor p performs for block edge b
  /// (Section 7.1).
  [[nodiscard]] std::size_t ternary_mults(std::size_t p,
                                          std::size_t b) const;

  /// Exhaustive validation: every lower-tetra block owned exactly once,
  /// each owner compatible (its R_p contains the distinct indices of the
  /// block), |N_p| quotas within ±ceil bound, |D_p| <= 1, Q consistency.
  void validate() const;

 private:
  explicit TetraPartition(steiner::SteinerSystem system);

  void assign_non_central_diagonals();
  void assign_central_diagonals();

  steiner::SteinerSystem sys_;
  std::size_t nc_quota_ = 0;  // per-processor cap achieved by the flow
  std::vector<std::vector<BlockCoord>> N_;
  std::vector<std::vector<BlockCoord>> D_;
  // Owner lookup for diagonal blocks: pair (a > b) -> processor.
  std::vector<std::size_t> aab_owner_;  // block (a,a,b), index a*m+b
  std::vector<std::size_t> abb_owner_;  // block (a,b,b), index a*m+b
  std::vector<std::size_t> central_owner_;  // block (a,a,a), index a
};

}  // namespace sttsv::partition
