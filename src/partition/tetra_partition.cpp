#include "partition/tetra_partition.hpp"

#include <algorithm>

#include "graph/bipartite.hpp"
#include "graph/max_flow.hpp"
#include "support/check.hpp"

namespace sttsv::partition {

TetraPartition TetraPartition::build(steiner::SteinerSystem system) {
  STTSV_REQUIRE(system.num_points() <= system.num_blocks(),
                "need m <= P so central diagonal blocks fit 1-per-processor");
  TetraPartition part(std::move(system));
  part.assign_non_central_diagonals();
  part.assign_central_diagonals();
  return part;
}

TetraPartition::TetraPartition(steiner::SteinerSystem system)
    : sys_(std::move(system)),
      N_(sys_.num_blocks()),
      D_(sys_.num_blocks()),
      aab_owner_(sys_.num_points() * sys_.num_points(), graph::kNone),
      abb_owner_(sys_.num_points() * sys_.num_points(), graph::kNone),
      central_owner_(sys_.num_points(), graph::kNone) {}

std::size_t TetraPartition::num_processors() const {
  return sys_.num_blocks();
}

std::size_t TetraPartition::num_row_blocks() const {
  return sys_.num_points();
}

std::size_t TetraPartition::steiner_block_size() const {
  return sys_.block_size();
}

const std::vector<std::size_t>& TetraPartition::R(std::size_t p) const {
  return sys_.block(p);
}

const std::vector<BlockCoord>& TetraPartition::N(std::size_t p) const {
  STTSV_REQUIRE(p < N_.size(), "processor out of range");
  return N_[p];
}

const std::vector<BlockCoord>& TetraPartition::D(std::size_t p) const {
  STTSV_REQUIRE(p < D_.size(), "processor out of range");
  return D_[p];
}

const std::vector<std::size_t>& TetraPartition::Q(std::size_t i) const {
  STTSV_REQUIRE(i < sys_.num_points(), "row block out of range");
  return sys_.point_blocks()[i];
}

std::vector<BlockCoord> TetraPartition::owned_blocks(std::size_t p) const {
  std::vector<BlockCoord> out = tetrahedral_block(R(p));
  out.insert(out.end(), N_[p].begin(), N_[p].end());
  out.insert(out.end(), D_[p].begin(), D_[p].end());
  std::sort(out.begin(), out.end());
  return out;
}

void TetraPartition::assign_non_central_diagonals() {
  const std::size_t m = sys_.num_points();
  const std::size_t P = sys_.num_blocks();

  // Items: all non-central diagonal blocks, enumerated deterministically:
  // item 2*(pair index) = (a,a,b), +1 = (a,b,b), over pairs a > b.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;  // (a, b), a > b
  pairs.reserve(m * (m - 1) / 2);
  for (std::size_t a = 1; a < m; ++a) {
    for (std::size_t b = 0; b < a; ++b) pairs.emplace_back(a, b);
  }
  const std::size_t items = 2 * pairs.size();

  // Edges: processor p is a candidate for any diagonal block over a pair
  // contained in R_p (Section 6.1.3's bipartite graph).
  graph::BipartiteGraph g(P, items);
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    const auto [a, b] = pairs[idx];
    for (const std::size_t p : sys_.blocks_containing_pair(a, b)) {
      g.add_edge(p, 2 * idx);
      g.add_edge(p, 2 * idx + 1);
    }
  }

  // Quota: ceil(items / P). For the spherical family this is exactly q and
  // the flow saturates every processor at q (Corollary 6.7). Families with
  // less regular replication (e.g. the trivial S(m,3,3)) may need a
  // slightly larger cap for Hall's condition; feasibility is monotone in
  // the quota, so step it up until the flow saturates.
  std::vector<std::size_t> owners;
  for (std::size_t quota = (items + P - 1) / P; quota <= items; ++quota) {
    try {
      owners =
          graph::assign_with_quotas(g, std::vector<std::size_t>(P, quota));
      nc_quota_ = quota;
      break;
    } catch (const InternalError&) {
      STTSV_CHECK(quota < items, "diagonal assignment infeasible");
    }
  }

  const std::size_t mm = m;
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    const auto [a, b] = pairs[idx];
    const std::size_t p_aab = owners[2 * idx];
    const std::size_t p_abb = owners[2 * idx + 1];
    N_[p_aab].push_back(BlockCoord{a, a, b});
    N_[p_abb].push_back(BlockCoord{a, b, b});
    aab_owner_[a * mm + b] = p_aab;
    abb_owner_[a * mm + b] = p_abb;
  }
  for (auto& blocks : N_) std::sort(blocks.begin(), blocks.end());
}

void TetraPartition::assign_central_diagonals() {
  const std::size_t m = sys_.num_points();
  const std::size_t P = sys_.num_blocks();

  graph::BipartiteGraph g(P, m);
  for (std::size_t a = 0; a < m; ++a) {
    for (const std::size_t p : sys_.point_blocks()[a]) {
      g.add_edge(p, a);
    }
  }
  const std::vector<std::size_t> owners =
      graph::assign_with_quotas(g, std::vector<std::size_t>(P, 1));

  for (std::size_t a = 0; a < m; ++a) {
    D_[owners[a]].push_back(BlockCoord{a, a, a});
    central_owner_[a] = owners[a];
  }
}

std::size_t TetraPartition::owner(const BlockCoord& c) const {
  const std::size_t m = sys_.num_points();
  STTSV_REQUIRE(c.i >= c.j && c.j >= c.k && c.i < m,
                "block coordinate must be sorted and in range");
  switch (classify(c)) {
    case BlockType::kCentralDiagonal:
      return central_owner_[c.i];
    case BlockType::kNonCentralDiagonal:
      return c.i == c.j ? aab_owner_[c.i * m + c.k]
                        : abb_owner_[c.i * m + c.j];
    case BlockType::kOffDiagonal: {
      // The unique Steiner block containing {i, j, k}: intersect the
      // λ₂ blocks of pair (i, j) with membership of k.
      for (const std::size_t p : sys_.blocks_containing_pair(c.i, c.j)) {
        const auto& blk = sys_.block(p);
        if (std::binary_search(blk.begin(), blk.end(), c.k)) return p;
      }
      STTSV_CHECK(false, "triple not covered by any Steiner block");
    }
  }
  STTSV_CHECK(false, "unreachable");
}

std::size_t TetraPartition::stored_entries(std::size_t p,
                                           std::size_t b) const {
  const std::size_t r = sys_.block_size();
  const std::size_t off_blocks = r * (r - 1) * (r - 2) / 6;
  std::size_t total =
      off_blocks * entries_in_block(BlockType::kOffDiagonal, b);
  total += N(p).size() * entries_in_block(BlockType::kNonCentralDiagonal, b);
  total += D(p).size() * entries_in_block(BlockType::kCentralDiagonal, b);
  return total;
}

std::size_t TetraPartition::ternary_mults(std::size_t p,
                                          std::size_t b) const {
  const std::size_t r = sys_.block_size();
  const std::size_t off_blocks = r * (r - 1) * (r - 2) / 6;
  std::size_t total =
      off_blocks * ternary_mults_in_block(BlockType::kOffDiagonal, b);
  total +=
      N(p).size() * ternary_mults_in_block(BlockType::kNonCentralDiagonal, b);
  total +=
      D(p).size() * ternary_mults_in_block(BlockType::kCentralDiagonal, b);
  return total;
}

void TetraPartition::validate() const {
  const std::size_t m = sys_.num_points();
  const std::size_t P = sys_.num_blocks();

  // Every lower-tetra block is owned exactly once by a compatible owner.
  std::size_t counted = 0;
  for (const auto& c : all_lower_blocks(m)) {
    const std::size_t p = owner(c);
    STTSV_CHECK(p < P, "owner out of range");
    const auto& Rp = R(p);
    auto contains = [&](std::size_t v) {
      return std::binary_search(Rp.begin(), Rp.end(), v);
    };
    STTSV_CHECK(contains(c.i) && contains(c.j) && contains(c.k),
                "owner's R_p does not cover the block's indices");
    ++counted;
  }
  STTSV_CHECK(counted == m * (m + 1) * (m + 2) / 6, "block count mismatch");

  // Per-processor ownership lists agree with the owner() map and quotas.
  const std::size_t nc_quota = nc_quota_;
  std::size_t total_nc = 0;
  std::size_t total_c = 0;
  for (std::size_t p = 0; p < P; ++p) {
    STTSV_CHECK(N(p).size() <= nc_quota,
                "non-central diagonal quota exceeded");
    STTSV_CHECK(D(p).size() <= 1, "more than one central diagonal block");
    for (const auto& c : N(p)) {
      STTSV_CHECK(classify(c) == BlockType::kNonCentralDiagonal,
                  "N_p holds a non-diagonal block");
      STTSV_CHECK(owner(c) == p, "N_p inconsistent with owner map");
    }
    for (const auto& c : D(p)) {
      STTSV_CHECK(classify(c) == BlockType::kCentralDiagonal,
                  "D_p holds a non-central block");
      STTSV_CHECK(owner(c) == p, "D_p inconsistent with owner map");
    }
    total_nc += N(p).size();
    total_c += D(p).size();
  }
  STTSV_CHECK(total_nc == num_non_central_diagonal_blocks(m),
              "non-central diagonal blocks not all assigned");
  STTSV_CHECK(total_c == num_central_diagonal_blocks(m),
              "central diagonal blocks not all assigned");

  // Q_i lists exactly the processors with i in R_p.
  for (std::size_t i = 0; i < m; ++i) {
    const auto& Qi = Q(i);
    STTSV_CHECK(std::is_sorted(Qi.begin(), Qi.end()), "Q_i not sorted");
    STTSV_CHECK(Qi.size() == sys_.point_replication(),
                "Q_i size violates Lemma 6.4");
    for (const std::size_t p : Qi) {
      const auto& Rp = R(p);
      STTSV_CHECK(std::binary_search(Rp.begin(), Rp.end(), i),
                  "Q_i lists a processor without i in R_p");
    }
  }
}

}  // namespace sttsv::partition
