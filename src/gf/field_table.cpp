#include "gf/field_table.hpp"

#include <algorithm>

#include "gf/primes.hpp"
#include "support/check.hpp"

namespace sttsv::gf {

namespace {

/// Packs polynomial coefficients (mod p) into an integer, base p.
std::uint64_t pack(const Poly& f, std::uint64_t p) {
  std::uint64_t value = 0;
  for (std::size_t i = f.size(); i-- > 0;) {
    value = value * p + f[i];
  }
  return value;
}

}  // namespace

FieldTable FieldTable::make(std::uint64_t p, unsigned k) {
  STTSV_REQUIRE(k >= 1, "field degree must be >= 1");
  const PrimeField F(p);
  Poly mod = find_primitive_poly(F, k);
  return FieldTable(p, k, std::move(mod));
}

FieldTable FieldTable::make_order(std::uint64_t q) {
  std::uint64_t p = 0;
  unsigned k = 0;
  STTSV_REQUIRE(is_prime_power(q, p, k), "field order must be a prime power");
  return make(p, k);
}

FieldTable::FieldTable(std::uint64_t p, unsigned k, Poly mod)
    : base_(p), k_(k), q_(checked_pow(p, k)), mod_(std::move(mod)) {
  // Keep tables to a sane size: GF(q^2) for q <= 127 is the practical need.
  STTSV_REQUIRE(q_ <= (1ULL << 24), "field too large for table arithmetic");
  exp_.assign(q_ - 1, 0);
  log_.assign(q_, 0);

  // Walk powers of x, reducing modulo the primitive polynomial.
  Poly power{1};
  for (std::uint64_t i = 0; i < q_ - 1; ++i) {
    const std::uint64_t packed = pack(power, p);
    exp_[i] = packed;
    log_[packed] = i;
    power = poly_mod(base_, poly_mul(base_, power, Poly{0, 1}), mod_);
  }
  STTSV_CHECK(exp_[0] == 1, "x^0 must pack to 1");
}

std::uint64_t FieldTable::add(std::uint64_t a, std::uint64_t b) const {
  STTSV_DCHECK(a < q_ && b < q_, "operands out of range");
  const std::uint64_t p = base_.modulus();
  if (p == 2) return a ^ b;
  std::uint64_t out = 0;
  std::uint64_t mult = 1;
  while (a > 0 || b > 0) {
    const std::uint64_t da = a % p;
    const std::uint64_t db = b % p;
    out += base_.add(da, db) * mult;
    a /= p;
    b /= p;
    mult *= p;
  }
  return out;
}

std::uint64_t FieldTable::neg(std::uint64_t a) const {
  STTSV_DCHECK(a < q_, "operand out of range");
  const std::uint64_t p = base_.modulus();
  if (p == 2) return a;
  std::uint64_t out = 0;
  std::uint64_t mult = 1;
  while (a > 0) {
    out += base_.neg(a % p) * mult;
    a /= p;
    mult *= p;
  }
  return out;
}

std::uint64_t FieldTable::sub(std::uint64_t a, std::uint64_t b) const {
  return add(a, neg(b));
}

std::uint64_t FieldTable::mul(std::uint64_t a, std::uint64_t b) const {
  STTSV_DCHECK(a < q_ && b < q_, "operands out of range");
  if (a == 0 || b == 0) return 0;
  const std::uint64_t e = (log_[a] + log_[b]) % (q_ - 1);
  return exp_[e];
}

std::uint64_t FieldTable::inv(std::uint64_t a) const {
  STTSV_REQUIRE(a != 0, "inverse of zero");
  STTSV_DCHECK(a < q_, "operand out of range");
  const std::uint64_t e = (q_ - 1 - log_[a]) % (q_ - 1);
  return exp_[e];
}

std::uint64_t FieldTable::div(std::uint64_t a, std::uint64_t b) const {
  return mul(a, inv(b));
}

std::uint64_t FieldTable::pow(std::uint64_t a, std::uint64_t e) const {
  STTSV_DCHECK(a < q_, "operand out of range");
  if (a == 0) return e == 0 ? 1 : 0;
  const std::uint64_t exp_index = static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(log_[a]) * (e % (q_ - 1))) % (q_ - 1));
  return exp_[exp_index];
}

std::uint64_t FieldTable::frobenius(std::uint64_t a) const {
  return pow(a, base_.modulus());
}

std::uint64_t FieldTable::from_base(std::uint64_t c) const {
  STTSV_REQUIRE(c < base_.modulus(), "scalar out of base field range");
  return c;
}

std::vector<std::uint64_t> FieldTable::subfield(std::uint64_t sub) const {
  std::uint64_t p = 0;
  unsigned e = 0;
  STTSV_REQUIRE(is_prime_power(sub, p, e) && p == base_.modulus() &&
                    k_ % e == 0,
                "subfield order must be p^e with e dividing k");
  std::vector<std::uint64_t> elems;
  elems.reserve(sub);
  elems.push_back(0);
  // Nonzero subfield elements are the (q-1)/(sub-1)-th powers:
  // x^(i * step) for i = 0..sub-2.
  const std::uint64_t step = (q_ - 1) / (sub - 1);
  for (std::uint64_t i = 0; i < sub - 1; ++i) {
    elems.push_back(exp_[i * step]);
  }
  std::sort(elems.begin(), elems.end());
  STTSV_CHECK(elems.size() == sub, "subfield size mismatch");
  // Sanity: closed under the defining identity a^sub == a.
  for (const auto a : elems) {
    STTSV_CHECK(pow(a, sub) == a, "subfield element fails a^sub == a");
  }
  return elems;
}

std::uint64_t FieldTable::log(std::uint64_t a) const {
  STTSV_REQUIRE(a != 0 && a < q_, "log of zero or out-of-range element");
  return log_[a];
}

}  // namespace sttsv::gf
