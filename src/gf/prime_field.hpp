#pragma once
// Arithmetic in GF(p) for prime p, plus dense polynomials over GF(p).
//
// The polynomial layer is only used at field-construction time (finding a
// primitive polynomial for GF(p^k)), so clarity is preferred over speed.

#include <cstdint>
#include <vector>

namespace sttsv::gf {

/// The prime field GF(p). Elements are canonical residues 0..p-1.
class PrimeField {
 public:
  explicit PrimeField(std::uint64_t p);

  [[nodiscard]] std::uint64_t modulus() const { return p_; }

  [[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] std::uint64_t sub(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] std::uint64_t neg(std::uint64_t a) const;
  [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;
  /// Multiplicative inverse of a != 0 (extended Euclid).
  [[nodiscard]] std::uint64_t inv(std::uint64_t a) const;

 private:
  std::uint64_t p_;
};

/// Dense polynomial over GF(p); coefficients low-degree first, normalized
/// so the leading coefficient is nonzero (the zero polynomial is empty).
using Poly = std::vector<std::uint64_t>;

/// Drops trailing zero coefficients.
Poly poly_trim(Poly f);

/// Degree; the zero polynomial has degree -1 by convention here (-1 as int).
int poly_degree(const Poly& f);

Poly poly_add(const PrimeField& F, const Poly& a, const Poly& b);
Poly poly_mul(const PrimeField& F, const Poly& a, const Poly& b);
/// Remainder of a modulo monic-or-not divisor m (m nonzero).
Poly poly_mod(const PrimeField& F, Poly a, const Poly& m);
/// (base^e) mod m.
Poly poly_powmod(const PrimeField& F, Poly base, std::uint64_t e,
                 const Poly& m);
Poly poly_gcd(const PrimeField& F, Poly a, Poly b);

/// Rabin's irreducibility test for monic f of degree >= 1 over GF(p).
bool poly_is_irreducible(const PrimeField& F, const Poly& f);

/// True if f is irreducible AND x generates the multiplicative group of
/// GF(p)[x]/(f), i.e. f is a primitive polynomial.
bool poly_is_primitive(const PrimeField& F, const Poly& f);

/// Finds the lexicographically-least monic primitive polynomial of the
/// given degree over GF(p). Deterministic, so field layouts are stable.
Poly find_primitive_poly(const PrimeField& F, unsigned degree);

}  // namespace sttsv::gf
