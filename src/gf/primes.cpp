#include "gf/primes.hpp"

#include "support/check.hpp"

namespace sttsv::gf {

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (std::uint64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

std::vector<std::uint64_t> prime_factors(std::uint64_t n) {
  STTSV_REQUIRE(n >= 2, "prime_factors requires n >= 2");
  std::vector<std::uint64_t> factors;
  std::uint64_t m = n;
  for (std::uint64_t d = 2; d * d <= m; d == 2 ? d = 3 : d += 2) {
    if (m % d == 0) {
      factors.push_back(d);
      while (m % d == 0) m /= d;
    }
  }
  if (m > 1) factors.push_back(m);
  return factors;
}

bool is_prime_power(std::uint64_t n, std::uint64_t& p, unsigned& k) {
  if (n < 2) return false;
  const auto factors = prime_factors(n);
  if (factors.size() != 1) return false;
  p = factors[0];
  k = 0;
  std::uint64_t m = n;
  while (m > 1) {
    m /= p;
    ++k;
  }
  return true;
}

bool is_prime_power(std::uint64_t n) {
  std::uint64_t p = 0;
  unsigned k = 0;
  return is_prime_power(n, p, k);
}

std::uint64_t checked_pow(std::uint64_t p, unsigned e) {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < e; ++i) {
    STTSV_REQUIRE(result <= UINT64_MAX / p, "checked_pow overflow");
    result *= p;
  }
  return result;
}

std::vector<std::uint64_t> prime_powers_in(std::uint64_t lo,
                                           std::uint64_t hi) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t q = lo < 2 ? 2 : lo; q <= hi; ++q) {
    if (is_prime_power(q)) out.push_back(q);
  }
  return out;
}

}  // namespace sttsv::gf
