#pragma once
// GF(p^k) with table-based arithmetic.
//
// Elements are packed integers 0..q-1: the base-p digits of the integer are
// the coefficients of the residue polynomial (low digit = constant term).
// Multiplication/inversion go through discrete exp/log tables of the
// primitive element x, so they are O(1); addition is digitwise mod p
// (a single XOR when p == 2).

#include <cstdint>
#include <vector>

#include "gf/prime_field.hpp"

namespace sttsv::gf {

class FieldTable {
 public:
  /// Builds GF(p^k) with the deterministic primitive polynomial of
  /// find_primitive_poly, so packed element values are stable across runs.
  static FieldTable make(std::uint64_t p, unsigned k);

  /// Builds GF(q) for a prime power q.
  static FieldTable make_order(std::uint64_t q);

  [[nodiscard]] std::uint64_t order() const { return q_; }
  [[nodiscard]] std::uint64_t characteristic() const { return base_.modulus(); }
  [[nodiscard]] unsigned degree() const { return k_; }

  [[nodiscard]] std::uint64_t zero() const { return 0; }
  [[nodiscard]] std::uint64_t one() const { return 1; }
  /// The primitive element x (a multiplicative generator). For GF(2) the
  /// unit group is trivial and the generator is 1.
  [[nodiscard]] std::uint64_t generator() const {
    return exp_[1 % (q_ - 1)];
  }

  [[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] std::uint64_t sub(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] std::uint64_t neg(std::uint64_t a) const;
  [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] std::uint64_t inv(std::uint64_t a) const;
  [[nodiscard]] std::uint64_t div(std::uint64_t a, std::uint64_t b) const;
  [[nodiscard]] std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;

  /// Frobenius p-power map a -> a^p.
  [[nodiscard]] std::uint64_t frobenius(std::uint64_t a) const;

  /// Embeds a GF(p) scalar c (0 <= c < p) as a field element.
  [[nodiscard]] std::uint64_t from_base(std::uint64_t c) const;

  /// The unique subfield of order sub = p^e (e | k), as sorted packed
  /// elements: exactly the solutions of a^sub == a. This is how the
  /// spherical Steiner construction finds the subline F_q inside F_{q^2}.
  [[nodiscard]] std::vector<std::uint64_t> subfield(std::uint64_t sub) const;

  /// discrete log of a != 0 w.r.t. the primitive element.
  [[nodiscard]] std::uint64_t log(std::uint64_t a) const;

  /// The defining primitive polynomial (monic, degree k).
  [[nodiscard]] const Poly& modulus_poly() const { return mod_; }

 private:
  FieldTable(std::uint64_t p, unsigned k, Poly mod);

  PrimeField base_;
  unsigned k_;
  std::uint64_t q_;
  Poly mod_;
  std::vector<std::uint64_t> exp_;  // exp_[i] = x^i packed, i in [0, q-1)
  std::vector<std::uint64_t> log_;  // log_[a] for a != 0; log_[0] unused
};

}  // namespace sttsv::gf
