#include "gf/prime_field.hpp"

#include <algorithm>
#include <utility>

#include "gf/primes.hpp"
#include "support/check.hpp"

namespace sttsv::gf {

PrimeField::PrimeField(std::uint64_t p) : p_(p) {
  STTSV_REQUIRE(is_prime(p), "PrimeField modulus must be prime");
  // Keep p small enough that products fit in 64 bits without __int128.
  STTSV_REQUIRE(p < (1ULL << 31), "PrimeField modulus too large");
}

std::uint64_t PrimeField::add(std::uint64_t a, std::uint64_t b) const {
  STTSV_DCHECK(a < p_ && b < p_, "operands out of range");
  const std::uint64_t s = a + b;
  return s >= p_ ? s - p_ : s;
}

std::uint64_t PrimeField::sub(std::uint64_t a, std::uint64_t b) const {
  STTSV_DCHECK(a < p_ && b < p_, "operands out of range");
  return a >= b ? a - b : a + p_ - b;
}

std::uint64_t PrimeField::neg(std::uint64_t a) const {
  STTSV_DCHECK(a < p_, "operand out of range");
  return a == 0 ? 0 : p_ - a;
}

std::uint64_t PrimeField::mul(std::uint64_t a, std::uint64_t b) const {
  STTSV_DCHECK(a < p_ && b < p_, "operands out of range");
  return (a * b) % p_;
}

std::uint64_t PrimeField::pow(std::uint64_t a, std::uint64_t e) const {
  std::uint64_t base = a % p_;
  std::uint64_t result = 1;
  while (e > 0) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

std::uint64_t PrimeField::inv(std::uint64_t a) const {
  STTSV_REQUIRE(a % p_ != 0, "inverse of zero");
  // Extended Euclid on (a, p); signed intermediate values.
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(p_);
  std::int64_t new_r = static_cast<std::int64_t>(a % p_);
  while (new_r != 0) {
    const std::int64_t quotient = r / new_r;
    t = std::exchange(new_t, t - quotient * new_t);
    r = std::exchange(new_r, r - quotient * new_r);
  }
  STTSV_CHECK(r == 1, "gcd(a, p) != 1 in prime field");
  if (t < 0) t += static_cast<std::int64_t>(p_);
  return static_cast<std::uint64_t>(t);
}

Poly poly_trim(Poly f) {
  while (!f.empty() && f.back() == 0) f.pop_back();
  return f;
}

int poly_degree(const Poly& f) { return static_cast<int>(f.size()) - 1; }

Poly poly_add(const PrimeField& F, const Poly& a, const Poly& b) {
  Poly out(std::max(a.size(), b.size()), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t x = i < a.size() ? a[i] : 0;
    const std::uint64_t y = i < b.size() ? b[i] : 0;
    out[i] = F.add(x, y);
  }
  return poly_trim(std::move(out));
}

Poly poly_mul(const PrimeField& F, const Poly& a, const Poly& b) {
  if (a.empty() || b.empty()) return {};
  Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = F.add(out[i + j], F.mul(a[i], b[j]));
    }
  }
  return poly_trim(std::move(out));
}

Poly poly_mod(const PrimeField& F, Poly a, const Poly& m) {
  STTSV_REQUIRE(!m.empty(), "polynomial modulus must be nonzero");
  a = poly_trim(std::move(a));
  const std::uint64_t lead_inv = F.inv(m.back());
  while (a.size() >= m.size()) {
    const std::uint64_t factor = F.mul(a.back(), lead_inv);
    const std::size_t shift = a.size() - m.size();
    for (std::size_t i = 0; i < m.size(); ++i) {
      a[shift + i] = F.sub(a[shift + i], F.mul(factor, m[i]));
    }
    a = poly_trim(std::move(a));
    if (a.empty()) break;
  }
  return a;
}

Poly poly_powmod(const PrimeField& F, Poly base, std::uint64_t e,
                 const Poly& m) {
  Poly result{1};
  base = poly_mod(F, std::move(base), m);
  while (e > 0) {
    if (e & 1) result = poly_mod(F, poly_mul(F, result, base), m);
    base = poly_mod(F, poly_mul(F, base, base), m);
    e >>= 1;
  }
  return result;
}

Poly poly_gcd(const PrimeField& F, Poly a, Poly b) {
  a = poly_trim(std::move(a));
  b = poly_trim(std::move(b));
  while (!b.empty()) {
    Poly r = poly_mod(F, a, b);
    a = std::move(b);
    b = std::move(r);
  }
  // Normalize monic for stable comparisons.
  if (!a.empty()) {
    const std::uint64_t lead_inv = F.inv(a.back());
    for (auto& c : a) c = F.mul(c, lead_inv);
  }
  return a;
}

bool poly_is_irreducible(const PrimeField& F, const Poly& f) {
  const int deg = poly_degree(f);
  STTSV_REQUIRE(deg >= 1, "irreducibility test needs degree >= 1");
  const auto d = static_cast<unsigned>(deg);
  const std::uint64_t p = F.modulus();

  // Rabin: f irreducible over GF(p) iff
  //   x^(p^d) == x (mod f), and
  //   gcd(x^(p^(d/r)) - x, f) == 1 for each prime r | d.
  const Poly x{0, 1};
  Poly xp = poly_powmod(F, x, checked_pow(p, d), f);
  // x^(p^d) - x must be 0 mod f (reduce: for d == 1, x itself reduces).
  Poly diff = poly_mod(F, poly_add(F, xp, Poly{0, F.neg(1)}), f);
  if (!diff.empty()) return false;

  if (d > 1) {
    for (const std::uint64_t r : prime_factors(d)) {
      const auto sub_deg = d / static_cast<unsigned>(r);
      Poly xq = poly_powmod(F, x, checked_pow(p, sub_deg), f);
      Poly g = poly_gcd(F, poly_add(F, xq, Poly{0, F.neg(1)}), f);
      if (poly_degree(g) != 0) return false;
    }
  }
  return true;
}

bool poly_is_primitive(const PrimeField& F, const Poly& f) {
  if (!poly_is_irreducible(F, f)) return false;
  const auto d = static_cast<unsigned>(poly_degree(f));
  const std::uint64_t group_order = checked_pow(F.modulus(), d) - 1;
  if (group_order == 1) return true;  // GF(2): trivial unit group
  const Poly x{0, 1};
  // x is primitive iff x^(order/r) != 1 for each prime r | order.
  for (const std::uint64_t r : prime_factors(group_order)) {
    const Poly probe = poly_powmod(F, x, group_order / r, f);
    if (probe == Poly{1}) return false;
  }
  return true;
}

Poly find_primitive_poly(const PrimeField& F, unsigned degree) {
  STTSV_REQUIRE(degree >= 1, "primitive polynomial needs degree >= 1");
  const std::uint64_t p = F.modulus();
  if (degree == 1) {
    // x - g for a generator g of GF(p)^*; then "x" == g is primitive.
    for (std::uint64_t g = 1; g < p; ++g) {
      const Poly f{F.neg(g), 1};
      if (poly_is_primitive(F, f)) return f;
    }
    STTSV_CHECK(false, "no degree-1 primitive polynomial found");
  }
  // Enumerate monic f = x^degree + c_{d-1} x^{d-1} + ... + c_0 by counting
  // in base p over the low coefficients.
  const std::uint64_t combos = checked_pow(p, degree);
  for (std::uint64_t code = 1; code < combos; ++code) {
    Poly f(degree + 1, 0);
    std::uint64_t rest = code;
    for (unsigned i = 0; i < degree; ++i) {
      f[i] = rest % p;
      rest /= p;
    }
    f[degree] = 1;
    if (f[0] == 0) continue;  // reducible: divisible by x
    if (poly_is_primitive(F, f)) return f;
  }
  STTSV_CHECK(false, "no primitive polynomial found (unreachable)");
}

}  // namespace sttsv::gf
