#pragma once
// Elementary number theory used by the finite-field and Steiner layers.

#include <cstdint>
#include <vector>

namespace sttsv::gf {

/// Deterministic primality (trial division; inputs here are tiny).
bool is_prime(std::uint64_t n);

/// Distinct prime factors of n >= 2, ascending.
std::vector<std::uint64_t> prime_factors(std::uint64_t n);

/// If n == p^k with p prime and k >= 1, returns true and fills p, k.
bool is_prime_power(std::uint64_t n, std::uint64_t& p, unsigned& k);

/// Convenience overload: just the predicate.
bool is_prime_power(std::uint64_t n);

/// p^e with overflow check (throws PreconditionError on overflow).
std::uint64_t checked_pow(std::uint64_t p, unsigned e);

/// All prime powers q with lo <= q <= hi, ascending. Useful for sweeps
/// over admissible processor counts P = q(q^2+1).
std::vector<std::uint64_t> prime_powers_in(std::uint64_t lo,
                                           std::uint64_t hi);

}  // namespace sttsv::gf
