// Tensor/vector serialization tests: exact round trips, format errors.

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"
#include "tensor/io.hpp"

namespace sttsv::tensor {
namespace {

TEST(TensorIo, RoundTripExact) {
  Rng rng(5);
  const auto a = random_symmetric(9, rng);
  std::stringstream ss;
  write_tensor(ss, a);
  const auto b = read_tensor(ss);
  ASSERT_EQ(b.dim(), a.dim());
  for (std::size_t idx = 0; idx < a.packed_size(); ++idx) {
    EXPECT_EQ(a.packed(idx), b.packed(idx)) << "idx=" << idx;
  }
}

TEST(TensorIo, RoundTripExtremeValues) {
  SymTensor3 a(3);
  a.at(0, 0, 0) = 1e-300;
  a.at(2, 1, 0) = -1e300;
  a.at(2, 2, 2) = 0.1;  // not exactly representable in decimal
  std::stringstream ss;
  write_tensor(ss, a);
  const auto b = read_tensor(ss);
  for (std::size_t idx = 0; idx < a.packed_size(); ++idx) {
    EXPECT_EQ(a.packed(idx), b.packed(idx));
  }
}

TEST(TensorIo, RejectsWrongMagic) {
  std::stringstream ss("not-a-tensor v1\n3\n");
  EXPECT_THROW(read_tensor(ss), PreconditionError);
}

TEST(TensorIo, RejectsTruncatedStream) {
  SymTensor3 a(4);
  std::stringstream ss;
  write_tensor(ss, a);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(read_tensor(cut), PreconditionError);
}

TEST(TensorIo, FileRoundTrip) {
  Rng rng(6);
  const auto a = random_symmetric(5, rng);
  const std::string path = "/tmp/sttsv_io_test.tensor";
  save_tensor(path, a);
  const auto b = load_tensor(path);
  for (std::size_t idx = 0; idx < a.packed_size(); ++idx) {
    EXPECT_EQ(a.packed(idx), b.packed(idx));
  }
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(load_tensor("/nonexistent/dir/x.tensor"), PreconditionError);
}

TEST(VectorIo, RoundTrip) {
  Rng rng(7);
  const auto v = rng.uniform_vector(17, -3.0, 3.0);
  std::stringstream ss;
  write_vector(ss, v);
  const auto w = read_vector(ss);
  EXPECT_EQ(v, w);
}

TEST(VectorIo, EmptyVector) {
  std::stringstream ss;
  write_vector(ss, {});
  EXPECT_TRUE(read_vector(ss).empty());
}

TEST(VectorIo, RejectsWrongMagic) {
  std::stringstream ss("sttsv-symtensor3 v1\n1\n0\n");
  EXPECT_THROW(read_vector(ss), PreconditionError);
}

}  // namespace
}  // namespace sttsv::tensor
