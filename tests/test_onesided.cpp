// One-sided transport subsystem tests (DESIGN.md §16): segment-registry
// epoch semantics, PooledBuffer views, Put and active-message delivery
// bitwise-equivalence against DirectExchange, the four-way cross-transport
// property sweep, sync-op metering (the α-term the paper's message-count
// bound prices), per-channel ledger conservation, the make_exchanger
// factory and STTSV_TRANSPORT parsing, and the engine/serve plumbing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include "batch/engine.hpp"
#include "batch/plan.hpp"
#include "core/parallel_sttsv.hpp"
#include "core/sttsv_seq.hpp"
#include "obs/metrics.hpp"
#include "onesided/make_exchanger.hpp"
#include "onesided/onesided_exchange.hpp"
#include "onesided/segment_registry.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "serve/frontend.hpp"
#include "simt/buffer_pool.hpp"
#include "simt/machine.hpp"
#include "simt/transport_kind.hpp"
#include "steiner/constructions.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv {
namespace {

using onesided::Extent;
using onesided::Mode;
using onesided::OneSidedExchange;
using onesided::SegmentRegistry;
using simt::Channel;
using simt::Delivery;
using simt::Envelope;
using simt::Machine;
using simt::PooledBuffer;
using simt::TransportKind;

// --- Segment registry -------------------------------------------------------

TEST(SegmentRegistry, EpochGatingAndDisjointExtents) {
  Machine machine(4);
  SegmentRegistry reg(machine);
  EXPECT_EQ(reg.num_ranks(), 4u);
  EXPECT_FALSE(reg.epoch_open());

  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0};
  EXPECT_THROW(reg.put(0, 1, a.data(), a.size()), PreconditionError);

  reg.open_epoch();
  EXPECT_TRUE(reg.epoch_open());
  EXPECT_THROW(reg.open_epoch(), PreconditionError);  // no nesting
  // Reads are illegal while the epoch is open: no half-landed exposure.
  EXPECT_THROW((void)reg.extents(1), PreconditionError);
  EXPECT_THROW((void)reg.window_data(1), PreconditionError);

  const Extent e1 = reg.put(2, 1, a.data(), a.size());
  const Extent e2 = reg.put(0, 1, b.data(), b.size());
  // Bump allocation: extents are disjoint by construction.
  EXPECT_EQ(e1.offset, 0u);
  EXPECT_EQ(e1.words, 3u);
  EXPECT_EQ(e2.offset, 3u);
  EXPECT_EQ(e2.words, 1u);
  EXPECT_THROW(reg.put(1, 1, a.data(), a.size()), PreconditionError);  // self
  EXPECT_THROW(reg.put(0, 9, a.data(), a.size()), PreconditionError);

  reg.close_epoch();
  EXPECT_FALSE(reg.epoch_open());
  EXPECT_EQ(reg.epoch(), 1u);
  // The fence sorted extents by origin (0 before 2) but the data stayed
  // where it landed.
  const std::vector<Extent>& landed = reg.extents(1);
  ASSERT_EQ(landed.size(), 2u);
  EXPECT_EQ(landed[0].from, 0u);
  EXPECT_EQ(landed[1].from, 2u);
  const double* win = reg.window_data(1);
  EXPECT_EQ(win[landed[0].offset], 4.0);
  EXPECT_EQ(win[landed[1].offset], 1.0);
  EXPECT_EQ(win[landed[1].offset + 2], 3.0);
  EXPECT_TRUE(reg.extents(0).empty());
}

TEST(SegmentRegistry, WindowGrowthPreservesLandedContents) {
  Machine machine(2);
  SegmentRegistry reg(machine);
  reg.open_epoch();
  std::vector<double> chunk(100);
  std::iota(chunk.begin(), chunk.end(), 0.0);
  // Land enough traffic to force at least one mid-epoch growth.
  for (int k = 0; k < 40; ++k) reg.put(0, 1, chunk.data(), chunk.size());
  reg.close_epoch();
  EXPECT_GE(reg.stats().window_grows, 1u);
  EXPECT_GE(reg.window_words(1), 4000u);
  const double* win = reg.window_data(1);
  for (const Extent& e : reg.extents(1)) {
    for (std::size_t i = 0; i < e.words; ++i) {
      ASSERT_EQ(win[e.offset + i], static_cast<double>(i));
    }
  }
}

TEST(SegmentRegistry, EnsureWindowPreSizesBetweenEpochs) {
  Machine machine(2);
  SegmentRegistry reg(machine);
  reg.ensure_window(1, 512);
  EXPECT_GE(reg.window_words(1), 512u);
  reg.open_epoch();
  EXPECT_THROW(reg.ensure_window(1, 1024), PreconditionError);
  std::vector<double> payload(512, 7.0);
  reg.put(0, 1, payload.data(), payload.size());
  reg.close_epoch();
  // The pre-sized window absorbed the full epoch without growing.
  EXPECT_EQ(reg.stats().window_grows, 0u);
}

// --- PooledBuffer views -----------------------------------------------------

TEST(PooledBufferView, AliasesWithoutOwning) {
  std::vector<double> storage{1.0, 2.0, 3.0, 4.0};
  {
    PooledBuffer view = PooledBuffer::attach_view(storage.data(), 3);
    EXPECT_TRUE(view.is_view());
    EXPECT_EQ(view.size(), 3u);
    EXPECT_EQ(view.data(), storage.data());
    view[1] = 20.0;  // writes land in the caller's storage
    PooledBuffer moved = std::move(view);
    EXPECT_TRUE(moved.is_view());
    EXPECT_EQ(moved.data(), storage.data());
    moved.release();  // must not free the borrowed words
    EXPECT_FALSE(moved.is_view());
  }  // nor may the destructor
  EXPECT_EQ(storage[1], 20.0);
  EXPECT_EQ(storage[3], 4.0);
}

// --- Exchanger semantics ----------------------------------------------------

TEST(OneSidedExchange, PutModeDeliversViewsSenderSorted) {
  Machine machine(3);
  OneSidedExchange ex(machine, Mode::kPut);
  EXPECT_FALSE(ex.supports_handler_delivery());

  std::vector<std::vector<Envelope>> out(3);
  out[2].push_back(Envelope{0, PooledBuffer{5.0, 6.0}});
  out[1].push_back(Envelope{0, PooledBuffer{7.0}});
  auto in = ex.exchange(std::move(out), simt::Transport::kPointToPoint);
  ASSERT_EQ(in[0].size(), 2u);
  EXPECT_EQ(in[0][0].from, 1u);  // origin-ascending like the mailbox path
  EXPECT_EQ(in[0][1].from, 2u);
  EXPECT_TRUE(in[0][0].data.is_view());
  EXPECT_EQ(in[0][0].data[0], 7.0);
  EXPECT_EQ(in[0][1].data[1], 6.0);

  // Payload words hit the onesided channel, not goodput; conservation
  // holds per channel.
  const simt::CommLedger& led = machine.ledger();
  EXPECT_EQ(led.total_words(), 0u);
  EXPECT_EQ(led.total_onesided_words(), 3u);
  EXPECT_EQ(led.onesided_messages(), 2u);
  // α-term: two origins fenced, one target notified.
  EXPECT_EQ(led.sync_ops(), 3u);
  EXPECT_EQ(ex.stats().fences, 2u);
  EXPECT_EQ(ex.stats().notifications, 1u);
  led.verify_conservation();
}

TEST(OneSidedExchange, ActiveMessageRunsHandlerInsteadOfDelivering) {
  Machine machine(3);
  OneSidedExchange ex(machine, Mode::kActiveMessage);
  EXPECT_TRUE(ex.supports_handler_delivery());
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (target, from)
  double sum = 0.0;
  ex.set_delivery_handler([&](std::size_t target, std::size_t from,
                              const double* data, std::size_t words) {
    order.emplace_back(target, from);
    for (std::size_t i = 0; i < words; ++i) sum += data[i];
  });
  std::vector<std::vector<Envelope>> out(3);
  out[2].push_back(Envelope{0, PooledBuffer{1.0, 2.0}});
  out[0].push_back(Envelope{1, PooledBuffer{4.0}});
  out[1].push_back(Envelope{0, PooledBuffer{8.0}});
  auto in = ex.exchange(std::move(out), simt::Transport::kPointToPoint);
  for (const auto& inbox : in) EXPECT_TRUE(inbox.empty());
  // Targets ascending, then origins ascending within each target.
  const std::vector<std::pair<std::size_t, std::size_t>> want{
      {0, 1}, {0, 2}, {1, 0}};
  EXPECT_EQ(order, want);
  EXPECT_EQ(sum, 15.0);
  EXPECT_EQ(ex.stats().am_deliveries, 3u);
  EXPECT_EQ(ex.stats().view_deliveries, 0u);
}

TEST(OneSidedExchange, DeadEndpointsDropUncharged) {
  Machine machine(3);
  machine.mark_dead(2);
  OneSidedExchange ex(machine, Mode::kPut);
  std::vector<std::vector<Envelope>> out(3);
  out[0].push_back(Envelope{2, PooledBuffer{1.0}});  // to the dead rank
  out[2].push_back(Envelope{0, PooledBuffer{2.0}});  // from the dead rank
  out[0].push_back(Envelope{1, PooledBuffer{3.0}});  // alive pair
  auto in = ex.exchange(std::move(out), simt::Transport::kPointToPoint);
  EXPECT_TRUE(in[0].empty());
  ASSERT_EQ(in[1].size(), 1u);
  EXPECT_EQ(machine.ledger().total_onesided_words(), 1u);
  EXPECT_EQ(ex.stats().puts, 1u);
  machine.ledger().verify_conservation();
}

TEST(OneSidedExchange, RecoveryFlaggedPutsChargeRecoveryChannel) {
  Machine machine(2);
  OneSidedExchange ex(machine, Mode::kPut);
  std::vector<std::vector<Envelope>> out(2);
  out[0].push_back(Envelope{1, PooledBuffer{1.0, 2.0}, 0, /*recovery=*/true});
  (void)ex.exchange(std::move(out), simt::Transport::kPointToPoint);
  const simt::CommLedger& led = machine.ledger();
  EXPECT_EQ(led.total_onesided_words(), 0u);
  EXPECT_EQ(led.total_recovery_words(), 2u);
  EXPECT_EQ(led.recovery_rounds(), 1u);  // pure-recovery epoch's rounds
  led.verify_conservation();
}

TEST(OneSidedExchange, RejectsFramedEnvelopesBeforeAnyPut) {
  Machine machine(2);
  OneSidedExchange ex(machine, Mode::kPut);
  std::vector<std::vector<Envelope>> out(2);
  out[0].push_back(Envelope{1, PooledBuffer{1.0, 2.0}, /*overhead_words=*/1});
  EXPECT_THROW(ex.exchange(std::move(out), simt::Transport::kPointToPoint),
               PreconditionError);
  // Strong guarantee: nothing landed, nothing charged, epoch settled.
  EXPECT_EQ(machine.ledger().total_onesided_words(), 0u);
  EXPECT_EQ(machine.ledger().sync_ops(), 0u);
  EXPECT_FALSE(ex.registry().epoch_open());
}

// --- Driver equivalence -----------------------------------------------------

struct DriverSetup {
  std::unique_ptr<partition::TetraPartition> part;
  std::unique_ptr<partition::VectorDistribution> dist;
  tensor::SymTensor3 a;
  std::vector<double> x;
};

DriverSetup make_setup(steiner::SteinerSystem sys, std::size_t n,
                 std::uint64_t seed) {
  auto part = std::make_unique<partition::TetraPartition>(
      partition::TetraPartition::build(std::move(sys)));
  auto dist = std::make_unique<partition::VectorDistribution>(*part, n);
  Rng rng(seed);
  auto a = tensor::random_symmetric(n, rng);
  auto x = rng.uniform_vector(n);
  return DriverSetup{std::move(part), std::move(dist), std::move(a), std::move(x)};
}

std::vector<double> run_with(const DriverSetup& s, TransportKind kind,
                             simt::Transport transport,
                             simt::PipelineMode pipeline) {
  Machine machine(s.part->num_processors());
  auto ex = simt::make_exchanger(machine, kind);
  return core::parallel_sttsv(*ex, *s.part, *s.dist, s.a, s.x, transport,
                              pipeline)
      .y;
}

TEST(DriverEquivalence, PutAndAmMatchDirectBitwise) {
  const DriverSetup s = make_setup(steiner::spherical_system(2), 61, 11);
  for (const simt::Transport transport :
       {simt::Transport::kPointToPoint, simt::Transport::kAllToAll}) {
    for (const simt::PipelineMode pipeline :
         {simt::PipelineMode::kSerialized,
          simt::PipelineMode::kDoubleBuffered}) {
      const auto want =
          run_with(s, TransportKind::kDirect, transport, pipeline);
      const auto put =
          run_with(s, TransportKind::kOneSidedPut, transport, pipeline);
      const auto am =
          run_with(s, TransportKind::kActiveMessage, transport, pipeline);
      ASSERT_EQ(want.size(), put.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(put[i], want[i]) << "put i=" << i;
        ASSERT_EQ(am[i], want[i]) << "am i=" << i;
      }
    }
  }
}

TEST(DriverEquivalence, ThirtyTwoSeedCrossTransportSweep) {
  // Satellite 3: 32 seeds, all four backends, y bitwise identical and
  // per-channel conservation after every run. Double-buffered throughout,
  // serialized re-checked on a subset (the pipeline must be unobservable).
  const struct {
    steiner::SteinerSystem sys;
    std::size_t n;
  } cases[] = {
      {steiner::spherical_system(2), 53},          // P = 10
      {steiner::boolean_quadruple_system(3), 43},  // P = 14
  };
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const auto& c = cases[seed % 2];
    const DriverSetup s = make_setup(c.sys, c.n, 1000 + seed);
    std::vector<double> want;
    for (const TransportKind kind :
         {TransportKind::kDirect, TransportKind::kReliable,
          TransportKind::kOneSidedPut, TransportKind::kActiveMessage}) {
      Machine machine(s.part->num_processors());
      auto ex = simt::make_exchanger(machine, kind);
      const auto result = core::parallel_sttsv(
          *ex, *s.part, *s.dist, s.a, s.x, simt::Transport::kPointToPoint,
          simt::PipelineMode::kDoubleBuffered);
      machine.ledger().verify_conservation();
      for (const Channel ch : {Channel::kGoodput, Channel::kOverhead,
                               Channel::kRecovery, Channel::kOneSided}) {
        std::uint64_t sent = 0;
        std::uint64_t received = 0;
        for (std::size_t p = 0; p < machine.num_ranks(); ++p) {
          sent += machine.ledger().words_sent(ch, p);
          received += machine.ledger().words_received(ch, p);
        }
        ASSERT_EQ(sent, received)
            << "seed=" << seed << " channel=" << simt::channel_name(ch);
      }
      if (want.empty()) {
        want = result.y;
      } else {
        ASSERT_EQ(result.y.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(result.y[i], want[i])
              << "seed=" << seed << " kind="
              << simt::transport_kind_name(kind) << " i=" << i;
        }
      }
      if (seed % 8 == 0) {  // serialized subset
        Machine machine2(s.part->num_processors());
        auto ex2 = simt::make_exchanger(machine2, kind);
        const auto serial = core::parallel_sttsv(
            *ex2, *s.part, *s.dist, s.a, s.x, simt::Transport::kPointToPoint,
            simt::PipelineMode::kSerialized);
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(serial.y[i], want[i]) << "serialized seed=" << seed;
        }
      }
    }
  }
}

TEST(DriverEquivalence, OneSidedSyncOpsBelowDirectMessages) {
  // The acceptance criterion: at equal payload words, the one-sided
  // α-term (sync ops) is strictly below Direct's envelope count whenever
  // ranks average more than one peer — here P = 10, every rank talks to
  // 6 peers per phase.
  const DriverSetup s = make_setup(steiner::spherical_system(2), 60, 21);

  Machine direct_machine(s.part->num_processors());
  simt::DirectExchange direct(direct_machine);
  (void)core::parallel_sttsv(direct, *s.part, *s.dist, s.a, s.x,
                             simt::Transport::kPointToPoint);

  Machine os_machine(s.part->num_processors());
  OneSidedExchange put(os_machine, Mode::kPut);
  (void)core::parallel_sttsv(put, *s.part, *s.dist, s.a, s.x,
                             simt::Transport::kPointToPoint);

  // Equal payload words, just accounted on different channels.
  EXPECT_EQ(os_machine.ledger().total_onesided_words(),
            direct_machine.ledger().total_words());
  EXPECT_LT(os_machine.ledger().sync_ops(),
            direct_machine.ledger().total_messages());
  // And the sync count scales with ranks, not pairs: two phases, at most
  // 2 sync ops per rank each (fence + notification).
  EXPECT_LE(os_machine.ledger().sync_ops(),
            2 * 2 * os_machine.num_ranks());
  // Rounds match the same König schedule on the onesided channel.
  EXPECT_EQ(os_machine.ledger().onesided_rounds(),
            direct_machine.ledger().rounds());
}

TEST(DriverEquivalence, WarmedOneSidedRunIsAllocationFree) {
  const DriverSetup s = make_setup(steiner::spherical_system(2), 60, 31);
  Machine machine(s.part->num_processors());
  OneSidedExchange ex(machine, Mode::kPut);
  (void)core::parallel_sttsv(ex, *s.part, *s.dist, s.a, s.x,
                             simt::Transport::kPointToPoint);
  const std::uint64_t grows_after_warmup = ex.registry().stats().window_grows;
  simt::AllocationGuard guard(machine.pool());
  (void)core::parallel_sttsv(ex, *s.part, *s.dist, s.a, s.x,
                             simt::Transport::kPointToPoint);
  EXPECT_EQ(guard.new_slab_allocations(), 0u);
  // Windows reached steady state during warm-up: no mid-epoch growth.
  EXPECT_EQ(ex.registry().stats().window_grows, grows_after_warmup);
}

// --- Ledger channels --------------------------------------------------------

TEST(LedgerChannels, ConservationFiresOnEveryChannel) {
  for (const Channel ch : {Channel::kGoodput, Channel::kOverhead,
                           Channel::kRecovery, Channel::kOneSided}) {
    Machine machine(3);
    machine.ledger().verify_conservation();
    machine.ledger().debug_skew_sent_for_test(ch, 1, 5);
    EXPECT_THROW(machine.ledger().verify_conservation(), InternalError)
        << simt::channel_name(ch);
  }
}

TEST(LedgerChannels, OneSidedMetricsExported) {
  Machine machine(2);
  machine.ledger().record_onesided(0, 1, 7);
  machine.ledger().add_onesided_rounds(2);
  machine.ledger().add_sync_ops(3);
  obs::MetricsRegistry reg;
  machine.ledger().to_metrics(reg);
  EXPECT_EQ(reg.counter("ledger.onesided.total_words"), 7u);
  EXPECT_EQ(reg.counter("ledger.onesided.rounds"), 2u);
  EXPECT_EQ(reg.counter("ledger.onesided.sync_ops"), 3u);
  // The goodput names tests and dashboards key on are unchanged.
  EXPECT_EQ(reg.counter("ledger.goodput.total_words"), 0u);
}

// --- Factory and environment selection --------------------------------------

TEST(TransportKindSelection, ParsesTheFiveSpellings) {
  EXPECT_EQ(simt::parse_transport_kind("direct"), TransportKind::kDirect);
  EXPECT_EQ(simt::parse_transport_kind("reliable"), TransportKind::kReliable);
  EXPECT_EQ(simt::parse_transport_kind("onesided"),
            TransportKind::kOneSidedPut);
  EXPECT_EQ(simt::parse_transport_kind("am"), TransportKind::kActiveMessage);
  EXPECT_EQ(simt::parse_transport_kind("hier"),
            TransportKind::kHierarchical);
  EXPECT_EQ(simt::parse_transport_kind("rdma"), std::nullopt);
  for (const TransportKind kind :
       {TransportKind::kDirect, TransportKind::kReliable,
        TransportKind::kOneSidedPut, TransportKind::kActiveMessage,
        TransportKind::kHierarchical}) {
    EXPECT_EQ(simt::parse_transport_kind(simt::transport_kind_name(kind)),
              kind);
  }
}

TEST(TransportKindSelection, EnvOverrideAndFallback) {
  ::unsetenv("STTSV_TRANSPORT");
  EXPECT_EQ(simt::transport_kind_from_env(TransportKind::kReliable),
            TransportKind::kReliable);
  ::setenv("STTSV_TRANSPORT", "am", 1);
  EXPECT_EQ(simt::transport_kind_from_env(), TransportKind::kActiveMessage);
  ::setenv("STTSV_TRANSPORT", "bogus", 1);
  EXPECT_THROW((void)simt::transport_kind_from_env(), PreconditionError);
  ::unsetenv("STTSV_TRANSPORT");
}

TEST(TransportKindSelection, FactoryBuildsEachBackend) {
  Machine machine(4);
  auto direct = simt::make_exchanger(machine, TransportKind::kDirect);
  auto reliable = simt::make_exchanger(machine, TransportKind::kReliable);
  auto put = simt::make_exchanger(machine, TransportKind::kOneSidedPut);
  auto am = simt::make_exchanger(machine, TransportKind::kActiveMessage);
  EXPECT_FALSE(direct->supports_handler_delivery());
  EXPECT_FALSE(reliable->supports_handler_delivery());
  EXPECT_FALSE(put->supports_handler_delivery());
  EXPECT_TRUE(am->supports_handler_delivery());
  EXPECT_EQ(&direct->machine(), &machine);
  EXPECT_EQ(&am->machine(), &machine);
}

TEST(TransportKindSelection, FactoryRejectsUnknownKindNamingTheTokens) {
  // An out-of-enum kind (casted int, stale config) must fail loudly with
  // the accepted spellings — never fall back to direct silently.
  Machine machine(4);
  bool threw = false;
  try {
    (void)simt::make_exchanger(machine, static_cast<TransportKind>(99));
  } catch (const PreconditionError& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("direct|reliable|onesided|am|hier"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(threw);
}

TEST(TransportKindSelection, HierarchicalNeedsATopology) {
  ::unsetenv("STTSV_TOPOLOGY");
  Machine machine(4);
  // No node_of and no STTSV_TOPOLOGY: the factory must say what to set.
  bool threw = false;
  try {
    (void)simt::make_exchanger(machine, TransportKind::kHierarchical);
  } catch (const PreconditionError& e) {
    threw = true;
    const std::string what = e.what();
    EXPECT_NE(what.find("node_of"), std::string::npos) << what;
    EXPECT_NE(what.find("STTSV_TOPOLOGY"), std::string::npos) << what;
  }
  EXPECT_TRUE(threw);

  // With the env override set, the same call builds the backend (and the
  // ledger now splits by level).
  ::setenv("STTSV_TOPOLOGY", "2x2", 1);
  Machine machine2(4);
  auto hier = simt::make_exchanger(machine2, TransportKind::kHierarchical);
  EXPECT_FALSE(hier->supports_handler_delivery());
  EXPECT_EQ(machine2.ledger().num_nodes(), 2u);
  ::unsetenv("STTSV_TOPOLOGY");

  // An active-message fabric under the hierarchy is rejected: its handler
  // order would interleave with shared deliveries.
  simt::ExchangerConfig config;
  config.kind = TransportKind::kHierarchical;
  config.node_of = {0, 0, 1, 1};
  config.hier_inter = TransportKind::kActiveMessage;
  Machine machine3(4);
  EXPECT_THROW((void)simt::make_exchanger(machine3, config),
               PreconditionError);
}

// --- Engine and serve plumbing ----------------------------------------------

TEST(EnginePlumbing, OneSidedTransportMatchesDirectBitwise) {
  const std::size_t n = 60;
  const auto plan = batch::Plan::build(batch::plan_key(
      n, batch::Family::kSpherical, 2, simt::Transport::kPointToPoint));
  Rng rng(41);
  const auto a = tensor::random_symmetric(n, rng);
  std::vector<std::vector<double>> xs;
  for (int k = 0; k < 5; ++k) xs.push_back(rng.uniform_vector(n));

  const auto run = [&](TransportKind kind) {
    Machine machine(plan->num_processors());
    batch::EngineOptions opts;
    opts.max_batch_size = 4;
    opts.transport = kind;
    batch::Engine engine(machine, plan, a, opts);
    std::vector<std::vector<double>> ys(xs.size());
    for (const auto& x : xs) {
      engine.submit(x, [&ys](std::size_t id, std::vector<double> y) {
        ys[id] = std::move(y);
      });
    }
    engine.flush();
    if (kind != TransportKind::kDirect) {
      EXPECT_GT(machine.ledger().total_onesided_words(), 0u) << "engine";
      EXPECT_EQ(machine.ledger().total_words(), 0u);
    }
    machine.ledger().verify_conservation();
    return ys;
  };

  const auto want = run(TransportKind::kDirect);
  const auto put = run(TransportKind::kOneSidedPut);
  const auto am = run(TransportKind::kActiveMessage);
  for (std::size_t v = 0; v < want.size(); ++v) {
    ASSERT_EQ(put[v], want[v]) << "put v=" << v;
    ASSERT_EQ(am[v], want[v]) << "am v=" << v;
  }
}

TEST(ServePlumbing, TenantOneSidedAttributionSumsToLedger) {
  const std::size_t n = 36;
  const auto plan = batch::Plan::build(batch::plan_key(
      n, batch::Family::kTrivial, 5, simt::Transport::kPointToPoint));
  Machine machine(plan->num_processors());
  Rng rng(2026);
  const auto a = tensor::random_symmetric(n, rng);
  serve::FrontendOptions opts;
  opts.batch_width = 4;
  opts.transport = TransportKind::kActiveMessage;
  serve::Frontend fe(machine, plan, a, opts);
  const serve::TenantId t0 = fe.add_tenant("alpha");
  const serve::TenantId t1 = fe.add_tenant("beta");
  for (std::size_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(fe.submit(k % 2 == 0 ? t0 : t1, rng.uniform_vector(n),
                          nullptr)
                    .admitted);
  }
  fe.drain();
  const std::uint64_t attributed = fe.tenant_stats(t0).onesided_words +
                                   fe.tenant_stats(t1).onesided_words;
  EXPECT_GT(attributed, 0u);
  EXPECT_EQ(attributed, machine.ledger().total_onesided_words());
  EXPECT_EQ(machine.ledger().total_words(), 0u);  // no mailbox goodput
  obs::MetricsRegistry reg;
  fe.publish_metrics(reg);
  EXPECT_EQ(reg.counter("serve.tenant.alpha.onesided_words"),
            fe.tenant_stats(t0).onesided_words);
}

}  // namespace
}  // namespace sttsv
