// Edge-case and determinism tests across the stack: degenerate inputs,
// bit-for-bit reproducibility of parallel runs, and documented failure
// modes (e.g. HOPM on the zero tensor).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "apps/hopm.hpp"
#include "core/parallel_sttsv.hpp"
#include "core/sttsv_seq.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "steiner/constructions.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv {
namespace {

TEST(EdgeCases, DimensionOneTensor) {
  tensor::SymTensor3 a(1);
  a.at(0, 0, 0) = 3.0;
  const auto y = core::sttsv_packed(a, {2.0});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 12.0);  // 3 · 2 · 2
}

TEST(EdgeCases, ZeroTensorGivesZeroOutput) {
  tensor::SymTensor3 a(6);
  const auto y = core::sttsv_packed(a, std::vector<double>(6, 1.0));
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, ZeroVectorGivesZeroOutput) {
  Rng rng(1);
  const auto a = tensor::random_symmetric(5, rng);
  const auto y = core::sttsv_packed(a, std::vector<double>(5, 0.0));
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, HopmOnZeroTensorThrowsWithoutShift) {
  // Plain HOPM on the zero tensor collapses the iterate to zero; the
  // normalization precondition fires rather than dividing by zero.
  tensor::SymTensor3 a(4);
  apps::HopmOptions opts;
  opts.shift = 0.0;
  opts.max_iterations = 5;
  EXPECT_THROW(apps::hopm(a, opts), PreconditionError);
}

TEST(EdgeCases, HopmOnZeroTensorWithShiftFindsZeroEigenvalue) {
  // SS-HOPM's shift keeps the iterate alive: y = αx, x converges to the
  // start direction with λ = 0.
  tensor::SymTensor3 a(4);
  apps::HopmOptions opts;
  opts.shift = 1.0;
  opts.max_iterations = 50;
  const auto res = apps::hopm(a, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.eigenvalue, 0.0, 1e-12);
}

TEST(EdgeCases, HopmZeroIterationsStillReportsRayleighQuotient) {
  Rng rng(2);
  const auto a = tensor::random_symmetric(6, rng);
  apps::HopmOptions opts;
  opts.max_iterations = 0;
  const auto res = apps::hopm(a, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_EQ(res.eigenvector.size(), 6u);  // the (normalized) start vector
}

TEST(EdgeCases, ParallelRunIsBitForBitDeterministic) {
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(2));
  const std::size_t n = 47;
  const partition::VectorDistribution dist(part, n);
  Rng rng(3);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);

  simt::Machine m1(10);
  const auto r1 = core::parallel_sttsv(m1, part, dist, a, x,
                                       simt::Transport::kPointToPoint);
  simt::Machine m2(10);
  const auto r2 = core::parallel_sttsv(m2, part, dist, a, x,
                                       simt::Transport::kPointToPoint);
  // Exact equality, not tolerance: the deterministic exchange and
  // reduction order guarantee identical floating-point results.
  ASSERT_EQ(r1.y.size(), r2.y.size());
  EXPECT_EQ(0, std::memcmp(r1.y.data(), r2.y.data(),
                           r1.y.size() * sizeof(double)));
  EXPECT_EQ(r1.ternary_mults, r2.ternary_mults);
  EXPECT_EQ(m1.ledger().total_words(), m2.ledger().total_words());
}

TEST(EdgeCases, TransportsGiveSameWordsDifferentModel) {
  // Both transports move the SAME data; they differ only in rounds and
  // modeled collective cost. (q = 3: the step counts differ strictly;
  // q = 2 is the paper's equality edge case 9 = P-1.)
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(3));
  const std::size_t n = 120;
  const partition::VectorDistribution dist(part, n);
  Rng rng(4);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);

  simt::Machine p2p(30), a2a(30);
  (void)core::parallel_sttsv(p2p, part, dist, a, x,
                             simt::Transport::kPointToPoint);
  (void)core::parallel_sttsv(a2a, part, dist, a, x,
                             simt::Transport::kAllToAll);
  EXPECT_EQ(p2p.ledger().total_words(), a2a.ledger().total_words());
  EXPECT_LT(p2p.ledger().rounds(), a2a.ledger().rounds());
  EXPECT_EQ(p2p.ledger().modeled_collective_words(), 0u);
  EXPECT_GT(a2a.ledger().modeled_collective_words(), 0u);
}

TEST(EdgeCases, TinyNWithLargePartition) {
  // n smaller than the number of row blocks: most blocks are pure
  // padding; the answer must still be exact.
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(3));
  const std::size_t n = 7;  // m = 10 > n
  const partition::VectorDistribution dist(part, n);
  Rng rng(5);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  simt::Machine machine(30);
  const auto result = core::parallel_sttsv(
      machine, part, dist, a, x, simt::Transport::kPointToPoint);
  const auto y_ref = core::sttsv_packed(a, x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.y[i], y_ref[i], 1e-12);
  }
}

TEST(EdgeCases, NegativeAndHugeValues) {
  // Magnitude extremes flow through packing, kernels, and exchange.
  tensor::SymTensor3 a(3);
  a.at(0, 0, 0) = 1e150;
  a.at(2, 1, 0) = -1e-150;
  a.at(2, 2, 2) = -1e150;
  const std::vector<double> x{1e-75, 2.0, -1e-75};
  const auto y = core::sttsv_packed(a, x);
  EXPECT_DOUBLE_EQ(y[0], 1e150 * 1e-75 * 1e-75 +
                             2.0 * (-1e-150) * 2.0 * (-1e-75));
  EXPECT_TRUE(std::isfinite(y[1]));
  EXPECT_TRUE(std::isfinite(y[2]));
}

}  // namespace
}  // namespace sttsv
