// SIMD kernel contract tests (DESIGN.md §13): the AVX2 instantiation,
// every register-block shape, and the panel kernels must produce output
// bitwise identical to the portable scalar instantiation — across block
// classes, padded tails, and aliased diagonal buffers. The opt-in
// compressed bilinear math is the one documented exception: it
// reassociates, so it is checked against the seed kernel within rounding
// bounds plus an exact multiplication-count formula.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "batch/panel_kernels.hpp"
#include "core/block_kernels.hpp"
#include "core/kernel_autotune.hpp"
#include "partition/blocks.hpp"
#include "simt/simd.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv {
namespace {

// ---------------------------------------------------------------------------
// CPU feature probing.
// ---------------------------------------------------------------------------

TEST(CpuFeatures, ProbeIsCachedAndConsistent) {
  const simt::CpuFeatures& f1 = simt::cpu_features();
  const simt::CpuFeatures& f2 = simt::cpu_features();
  EXPECT_EQ(&f1, &f2);  // one cached probe per process
  // avx2 without sse2 (or fma without avx) would mean a broken probe.
  if (f1.avx2) {
    EXPECT_TRUE(f1.sse2);
  }
  if (f1.fma) {
    EXPECT_TRUE(f1.avx);
  }
  const std::string s = simt::cpu_features_string();
  EXPECT_FALSE(s.empty());
  if (f1.avx2) {
    EXPECT_NE(s.find("avx2"), std::string::npos);
  }
}

TEST(CpuFeatures, PreferredIsaRespectsRuntimeSwitch) {
  const bool was_enabled = simt::simd_enabled();  // may start off via env
  simt::set_simd_enabled(false);
  EXPECT_EQ(simt::preferred_isa(), simt::KernelIsa::kScalar);
  simt::set_simd_enabled(true);
  const simt::CpuFeatures& f = simt::cpu_features();
  const simt::KernelIsa expect = simt::simd_compiled() && f.avx2 && f.fma
                                     ? simt::KernelIsa::kAvx2
                                     : simt::KernelIsa::kScalar;
  EXPECT_EQ(simt::preferred_isa(), expect);
  simt::set_simd_enabled(was_enabled);
}

TEST(CpuFeatures, IsaNames) {
  EXPECT_STREQ(simt::isa_name(simt::KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(simt::isa_name(simt::KernelIsa::kAvx2), "avx2");
}

// ---------------------------------------------------------------------------
// Golden bitwise tests: AVX2 vs scalar, all classes, all RJ shapes.
// ---------------------------------------------------------------------------

/// Applies one block under the given options into a fresh padded y and
/// returns (y, mults). Buffer slots alias exactly as the tiling drivers
/// alias them for diagonal blocks.
std::pair<std::vector<double>, std::uint64_t> run_block(
    const tensor::SymTensor3& a, const partition::BlockCoord& c,
    std::size_t m, std::size_t b, const std::vector<double>& x_pad,
    const core::KernelOptions& opts) {
  std::vector<double> y_pad(m * b, 0.0);
  core::BlockBuffers buf;
  buf.x[0] = x_pad.data() + c.i * b;
  buf.x[1] = x_pad.data() + c.j * b;
  buf.x[2] = x_pad.data() + c.k * b;
  buf.y[0] = y_pad.data() + c.i * b;
  buf.y[1] = y_pad.data() + c.j * b;
  buf.y[2] = y_pad.data() + c.k * b;
  const std::uint64_t mults = core::apply_block_ex(a, c, b, buf, opts);
  return {std::move(y_pad), mults};
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Bitwise, not EXPECT_DOUBLE_EQ: the contract is exact replay.
    std::uint64_t gb = 0, wb = 0;
    std::memcpy(&gb, &got[i], 8);
    std::memcpy(&wb, &want[i], 8);
    ASSERT_EQ(gb, wb) << what << " differs at element " << i << " (got "
                      << got[i] << ", want " << want[i] << ")";
  }
}

/// One representative block per class: interior, face_ij, face_jk,
/// central (diagonal blocks get aliased slots via run_block).
const partition::BlockCoord kClassBlocks[] = {
    {2, 1, 0},  // interior
    {1, 1, 0},  // face_ij
    {2, 0, 0},  // face_jk
    {1, 1, 1},  // central
};

class SimdGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimdGolden, Avx2MatchesScalarBitwise) {
  const std::size_t b = GetParam();
  const std::size_t m = 3;
  // Full tiling and a padded one (n not a multiple of b) so the masked
  // tail path of every class is exercised. b == 1 pads to n == 2.
  std::vector<std::size_t> dims = {m * b};
  if (m * b >= 2) dims.push_back(m * b - 1);
  if (b >= 3) dims.push_back(m * b - (b - 2));  // short last block
  for (const std::size_t n : dims) {
    Rng rng(7 * n + b);
    const auto a = tensor::random_symmetric(n, rng);
    std::vector<double> x_pad(m * b, 0.0);
    for (std::size_t i = 0; i < n; ++i) x_pad[i] = rng.next_in(-1.0, 1.0);

    for (const auto& c : kClassBlocks) {
      core::KernelOptions scalar_opts;
      scalar_opts.isa = simt::KernelIsa::kScalar;
      core::KernelOptions simd_opts = scalar_opts;
      simd_opts.isa = simt::KernelIsa::kAvx2;  // falls back if unsupported
      const auto [y_scalar, m_scalar] = run_block(a, c, m, b, x_pad,
                                                  scalar_opts);
      const auto [y_simd, m_simd] = run_block(a, c, m, b, x_pad, simd_opts);
      EXPECT_EQ(m_scalar, m_simd);
      expect_bitwise_equal(y_simd, y_scalar, "avx2 vs scalar");
    }
  }
}

TEST_P(SimdGolden, RegisterBlockShapeIsBitwiseInvariant) {
  const std::size_t b = GetParam();
  const std::size_t m = 3;
  const std::size_t n = m * b > 1 ? m * b - 1 : 1;  // padded tail too
  Rng rng(11 * b + 3);
  const auto a = tensor::random_symmetric(n, rng);
  std::vector<double> x_pad(m * b, 0.0);
  for (std::size_t i = 0; i < n; ++i) x_pad[i] = rng.next_in(-1.0, 1.0);

  for (const simt::KernelIsa isa :
       {simt::KernelIsa::kScalar, simt::KernelIsa::kAvx2}) {
    for (const auto& c : kClassBlocks) {
      core::KernelOptions ref_opts;
      ref_opts.isa = isa;
      ref_opts.rj_interior = 1;
      ref_opts.rj_face_ij = 1;
      const auto [y_ref, m_ref] = run_block(a, c, m, b, x_pad, ref_opts);
      for (const std::uint8_t rj : {std::uint8_t{2}, std::uint8_t{4}}) {
        core::KernelOptions opts = ref_opts;
        opts.rj_interior = rj;
        opts.rj_face_ij = rj;
        const auto [y, mults] = run_block(a, c, m, b, x_pad, opts);
        EXPECT_EQ(mults, m_ref);
        expect_bitwise_equal(y, y_ref, "register-block shape");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockEdges, SimdGolden,
                         ::testing::Values(1, 3, 8, 13, 16, 17));

// The default options must route every class through the same arithmetic
// as the explicit scalar request — the ISA is a speed knob, never a
// semantics knob (ROADMAP: default path stays bitwise reproducible).
TEST(SimdGolden, DefaultOptionsMatchScalarBitwise) {
  const std::size_t m = 3, b = 16, n = 46;
  Rng rng(99);
  const auto a = tensor::random_symmetric(n, rng);
  std::vector<double> x_pad(m * b, 0.0);
  for (std::size_t i = 0; i < n; ++i) x_pad[i] = rng.next_in(-1.0, 1.0);
  for (const auto& c : kClassBlocks) {
    core::KernelOptions scalar_opts = core::kernel_options();
    scalar_opts.isa = simt::KernelIsa::kScalar;
    const auto [y_scalar, m_scalar] = run_block(a, c, m, b, x_pad,
                                                scalar_opts);
    const auto [y_def, m_def] =
        run_block(a, c, m, b, x_pad, core::kernel_options());
    EXPECT_EQ(m_scalar, m_def);
    expect_bitwise_equal(y_def, y_scalar, "default options vs scalar");
  }
}

// ---------------------------------------------------------------------------
// Compressed bilinear math (opt-in, reassociating).
// ---------------------------------------------------------------------------

TEST(CompressedMath, InteriorMatchesSeedWithinRoundingBounds) {
  for (const std::size_t b : {std::size_t{5}, std::size_t{16},
                              std::size_t{24}}) {
    const std::size_t m = 3, n = m * b - (b > 1 ? 1 : 0);
    Rng rng(17 * b);
    const auto a = tensor::random_symmetric(n, rng);
    std::vector<double> x_pad(m * b, 0.0);
    for (std::size_t i = 0; i < n; ++i) x_pad[i] = rng.next_in(-1.0, 1.0);
    const partition::BlockCoord c{2, 1, 0};

    const auto [y_seed, m_seed] =
        run_block(a, c, m, b, x_pad, core::KernelOptions{});
    for (const simt::KernelIsa isa :
         {simt::KernelIsa::kScalar, simt::KernelIsa::kAvx2}) {
      core::KernelOptions opts;
      opts.isa = isa;
      opts.math = core::KernelMath::kCompressed;
      const auto [y_comp, m_comp] = run_block(a, c, m, b, x_pad, opts);

      // DESIGN.md §13.4: |error| ≤ C·b·eps·Σ|terms|; with |x|,|a| ≤ 1 the
      // term sum per output element is ≤ 3b² and C is a small constant.
      const double bound = 64.0 * static_cast<double>(b * b) *
                           static_cast<double>(b) *
                           std::numeric_limits<double>::epsilon();
      ASSERT_EQ(y_comp.size(), y_seed.size());
      for (std::size_t i = 0; i < y_seed.size(); ++i) {
        EXPECT_NEAR(y_comp[i], y_seed[i], bound)
            << "compressed isa=" << simt::isa_name(isa) << " element " << i;
      }

      // Exact multiplication count of the compressed formulation:
      // bi·bj·bk squared-sum products plus 4 per face pair plus 3 per
      // axis correction (DESIGN.md §13.4).
      const std::size_t i_end = std::min(c.i * b + b, n);
      const std::size_t j_end = std::min(c.j * b + b, n);
      const std::size_t k_end = std::min(c.k * b + b, n);
      const std::uint64_t bi = i_end - c.i * b;
      const std::uint64_t bj = j_end - c.j * b;
      const std::uint64_t bk = k_end - c.k * b;
      EXPECT_EQ(m_comp, bi * bj * bk + 4 * (bi * bj + bi * bk + bj * bk) +
                            3 * (bi + bj + bk));
      EXPECT_EQ(m_seed, 3 * bi * bj * bk);
      // 2b³ saved vs ~12b² overhead: compressed wins from b ≈ 7 up.
      if (bi >= 8 && bj >= 8 && bk >= 8) {
        EXPECT_LT(m_comp, m_seed);
      }
    }
  }
}

TEST(CompressedMath, NonInteriorClassesFallBackToStandard) {
  const std::size_t m = 3, b = 8, n = m * b;
  Rng rng(23);
  const auto a = tensor::random_symmetric(n, rng);
  std::vector<double> x_pad(m * b, 0.0);
  for (std::size_t i = 0; i < n; ++i) x_pad[i] = rng.next_in(-1.0, 1.0);
  for (const auto& c : kClassBlocks) {
    if (c.i > c.j && c.j > c.k) continue;  // interior handled above
    core::KernelOptions comp;
    comp.math = core::KernelMath::kCompressed;
    const auto [y_comp, m_comp] = run_block(a, c, m, b, x_pad, comp);
    const auto [y_std, m_std] =
        run_block(a, c, m, b, x_pad, core::KernelOptions{});
    EXPECT_EQ(m_comp, m_std);
    expect_bitwise_equal(y_comp, y_std, "compressed fallback");
  }
}

// ---------------------------------------------------------------------------
// Panel kernels: lane-interleaved panels vs the single-vector kernels,
// both instantiations.
// ---------------------------------------------------------------------------

TEST(PanelSimd, MatchesCoreBitwisePerLaneBothIsas) {
  const std::size_t m = 3, b = 13, n = m * b - 2;  // padded tail
  Rng rng(31);
  const auto a = tensor::random_symmetric(n, rng);
  for (const std::size_t lanes :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{8}, std::size_t{11}}) {
    std::vector<double> x_pan(m * b * lanes, 0.0);
    for (std::size_t l = 0; l < n; ++l) {
      for (std::size_t v = 0; v < lanes; ++v) {
        x_pan[l * lanes + v] = rng.next_in(-1.0, 1.0);
      }
    }
    for (const auto& c : kClassBlocks) {
      for (const simt::KernelIsa isa :
           {simt::KernelIsa::kScalar, simt::KernelIsa::kAvx2}) {
        std::vector<double> y_pan(m * b * lanes, 0.0);
        batch::PanelBuffers pbuf;
        pbuf.x[0] = x_pan.data() + c.i * b * lanes;
        pbuf.x[1] = x_pan.data() + c.j * b * lanes;
        pbuf.x[2] = x_pan.data() + c.k * b * lanes;
        pbuf.y[0] = y_pan.data() + c.i * b * lanes;
        pbuf.y[1] = y_pan.data() + c.j * b * lanes;
        pbuf.y[2] = y_pan.data() + c.k * b * lanes;
        const std::uint64_t pm =
            batch::apply_block_panel_isa(a, c, b, lanes, pbuf, isa);

        // Per lane: deinterleave x, run the scalar single-vector kernel,
        // compare the lane's slice of the panel output bitwise.
        std::uint64_t sm = 0;
        for (std::size_t v = 0; v < lanes; ++v) {
          std::vector<double> x_pad(m * b, 0.0);
          for (std::size_t l = 0; l < m * b; ++l) {
            x_pad[l] = x_pan[l * lanes + v];
          }
          core::KernelOptions opts;
          opts.isa = simt::KernelIsa::kScalar;
          const auto [y_ref, mults] = run_block(a, c, m, b, x_pad, opts);
          sm += mults;
          std::vector<double> y_lane(m * b, 0.0);
          for (std::size_t l = 0; l < m * b; ++l) {
            y_lane[l] = y_pan[l * lanes + v];
          }
          expect_bitwise_equal(y_lane, y_ref, "panel lane vs core");
        }
        EXPECT_EQ(pm, sm);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Autotuner.
// ---------------------------------------------------------------------------

TEST(KernelAutotune, CalibratesWithoutChangingOptions) {
  const core::KernelOptions before = core::kernel_options();
  const auto cal = core::calibrate_kernel_shapes(12, 0.001);
  EXPECT_EQ(cal.b, 12u);
  EXPECT_EQ(cal.interior.size(), 3u);
  EXPECT_EQ(cal.face_ij.size(), 3u);
  for (const auto& s : cal.interior) EXPECT_GT(s.seconds, 0.0);
  const auto is_shape = [](std::uint8_t rj) {
    return rj == 1 || rj == 2 || rj == 4;
  };
  EXPECT_TRUE(is_shape(cal.rj_interior));
  EXPECT_TRUE(is_shape(cal.rj_face_ij));
  const core::KernelOptions after = core::kernel_options();
  EXPECT_EQ(before.rj_interior, after.rj_interior);
  EXPECT_EQ(before.rj_face_ij, after.rj_face_ij);
}

TEST(KernelAutotune, AutotuneInstallsWinnersAndPreservesSemantics) {
  const core::KernelOptions before = core::kernel_options();
  const auto cal = core::autotune_kernels(12);
  const core::KernelOptions tuned = core::kernel_options();
  EXPECT_EQ(tuned.rj_interior, cal.rj_interior);
  EXPECT_EQ(tuned.rj_face_ij, cal.rj_face_ij);
  EXPECT_EQ(tuned.isa, before.isa);
  EXPECT_EQ(tuned.math, before.math);

  // Tuned options still replay the scalar reference bitwise.
  const std::size_t m = 3, b = 12, n = m * b - 1;
  Rng rng(41);
  const auto a = tensor::random_symmetric(n, rng);
  std::vector<double> x_pad(m * b, 0.0);
  for (std::size_t i = 0; i < n; ++i) x_pad[i] = rng.next_in(-1.0, 1.0);
  for (const auto& c : kClassBlocks) {
    core::KernelOptions ref;
    ref.isa = simt::KernelIsa::kScalar;
    ref.rj_interior = 1;
    ref.rj_face_ij = 1;
    const auto [y_ref, m_ref] = run_block(a, c, m, b, x_pad, ref);
    const auto [y_tuned, m_tuned] = run_block(a, c, m, b, x_pad, tuned);
    EXPECT_EQ(m_ref, m_tuned);
    expect_bitwise_equal(y_tuned, y_ref, "tuned options");
  }
  core::set_kernel_options(before);  // leave process-wide state as found
}

}  // namespace
}  // namespace sttsv
