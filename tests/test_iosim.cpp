// Two-level memory model tests: LRU mechanics, and the sequential STTSV
// I/O schedules — correctness, compulsory-traffic accounting, tile-size
// scaling, and capacity monotonicity.

#include <gtest/gtest.h>

#include "core/sttsv_seq.hpp"
#include "iosim/fast_memory.hpp"
#include "iosim/sequential_io.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv::iosim {
namespace {

TEST(FastMemory, ColdReadLoadsOnceThenHits) {
  FastMemory mem(100);
  mem.read({0, 1}, 10);
  EXPECT_EQ(mem.stats().loads, 10u);
  EXPECT_EQ(mem.stats().hits, 0u);
  mem.read({0, 1}, 10);
  EXPECT_EQ(mem.stats().loads, 10u);
  EXPECT_EQ(mem.stats().hits, 1u);
}

TEST(FastMemory, LruEvictsOldest) {
  FastMemory mem(20);
  mem.read({0, 1}, 10);
  mem.read({0, 2}, 10);
  mem.read({0, 1}, 10);  // 1 now most recent
  mem.read({0, 3}, 10);  // evicts 2
  EXPECT_EQ(mem.stats().evictions, 1u);
  mem.read({0, 1}, 10);  // still resident
  EXPECT_EQ(mem.stats().loads, 30u);
  mem.read({0, 2}, 10);  // reloaded
  EXPECT_EQ(mem.stats().loads, 40u);
}

TEST(FastMemory, DirtyEvictionStores) {
  FastMemory mem(10);
  mem.write({1, 0}, 10);
  EXPECT_EQ(mem.stats().stores, 0u);
  mem.read({0, 0}, 10);  // evicts the dirty segment
  EXPECT_EQ(mem.stats().stores, 10u);
}

TEST(FastMemory, WriteNoAllocateSkipsLoad) {
  FastMemory mem(10);
  mem.write_no_allocate({1, 0}, 10);
  EXPECT_EQ(mem.stats().loads, 0u);
  mem.flush();
  EXPECT_EQ(mem.stats().stores, 10u);
}

TEST(FastMemory, FlushIdempotent) {
  FastMemory mem(10);
  mem.write({1, 0}, 5);
  mem.flush();
  mem.flush();
  EXPECT_EQ(mem.stats().stores, 5u);
}

TEST(FastMemory, OversizeSegmentRejected) {
  FastMemory mem(4);
  EXPECT_THROW(mem.read({0, 0}, 5), PreconditionError);
}

TEST(FastMemory, InconsistentSegmentSizeRejected) {
  FastMemory mem(100);
  mem.read({0, 0}, 4);
  EXPECT_THROW(mem.read({0, 0}, 5), PreconditionError);
}

class IoSchedules : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IoSchedules, BothProduceCorrectY) {
  const std::size_t n = GetParam();
  Rng rng(n);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  const auto y_ref = core::sttsv_packed(a, x);

  const auto blocked = blocked_sttsv_io(a, x, 4, 1024);
  const auto streaming = streaming_sttsv_io(a, x, 64);
  ASSERT_EQ(blocked.y.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(blocked.y[i], y_ref[i], 1e-11);
    EXPECT_NEAR(streaming.y[i], y_ref[i], 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IoSchedules,
                         ::testing::Values(5, 12, 17, 32));

TEST(BlockedIo, TensorStreamsExactlyOnce) {
  const std::size_t n = 24;
  Rng rng(1);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  const auto res = blocked_sttsv_io(a, x, 4, 512);
  EXPECT_EQ(res.tensor_words, a.packed_size());
  EXPECT_EQ(res.stats.traffic(), res.tensor_words + res.vector_traffic);
}

TEST(BlockedIo, VectorTrafficWithinColdTileBound) {
  const std::size_t n = 48;
  Rng rng(2);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  for (const std::size_t b : {2u, 4u, 8u}) {
    const auto res = blocked_sttsv_io(a, x, b, 6 * b);
    EXPECT_LE(static_cast<double>(res.vector_traffic),
              blocked_vector_traffic_bound(n, b) * 1.01)
        << "b=" << b;
  }
}

TEST(BlockedIo, TrafficFallsWithTileSize) {
  // Vector traffic ~ n³/b²: doubling b should cut it by ~4x (until the
  // whole vector fits, where it floors at ~2n).
  const std::size_t n = 64;
  Rng rng(3);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  std::uint64_t prev = UINT64_MAX;
  for (const std::size_t b : {1u, 2u, 4u, 8u, 16u}) {
    const auto res = blocked_sttsv_io(a, x, b, 6 * b);
    EXPECT_LT(res.vector_traffic, prev) << "b=" << b;
    prev = res.vector_traffic;
  }
}

TEST(BlockedIo, MoreCapacityNeverHurts) {
  const std::size_t n = 40;
  Rng rng(4);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  std::uint64_t prev = UINT64_MAX;
  for (const std::size_t cap : {24u, 48u, 96u, 192u, 384u}) {
    const auto res = blocked_sttsv_io(a, x, 4, cap);
    EXPECT_LE(res.vector_traffic, prev) << "cap=" << cap;
    prev = res.vector_traffic;
  }
}

TEST(StreamingIo, ThrashesWhenVectorExceedsCache) {
  const std::size_t n = 64;
  Rng rng(5);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  // Big cache: every x/y element loaded once -> vector traffic ~ 2n
  // loads + n stores.
  const auto roomy = streaming_sttsv_io(a, x, 4 * n);
  EXPECT_LE(roomy.vector_traffic, 4u * n);
  // Tiny cache: the k-sweeps evict continuously; traffic explodes.
  const auto tiny = streaming_sttsv_io(a, x, 8);
  EXPECT_GT(tiny.vector_traffic, 50u * n);
}

TEST(BlockedVsStreaming, BlockedWinsUnderSmallCache) {
  const std::size_t n = 64;
  Rng rng(6);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  const std::size_t cap = 64;  // much smaller than 2n = 128
  const auto blocked = blocked_sttsv_io(a, x, cap / 6, cap);
  const auto streaming = streaming_sttsv_io(a, x, cap);
  EXPECT_LT(blocked.vector_traffic, streaming.vector_traffic);
}

}  // namespace
}  // namespace sttsv::iosim
