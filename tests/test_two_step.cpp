// Two-step ("sequence", paper Section 8) STTSV tests: the intermediate
// M = A ×₂ x is symmetric and correct, the final y matches Algorithm 4,
// and the operation counts match the 2n³ + 2n² analysis.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sttsv_seq.hpp"
#include "core/two_step.hpp"
#include "support/rng.hpp"
#include "tensor/dense3.hpp"
#include "tensor/generators.hpp"

namespace sttsv::core {
namespace {

class TwoStepAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TwoStepAgreement, MatchesAlgorithm4) {
  const std::size_t n = GetParam();
  Rng rng(300 + n);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  const auto y_ref = sttsv_packed(a, x);
  const auto y = sttsv_two_step(a, x);
  ASSERT_EQ(y.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], y_ref[i], 1e-10) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoStepAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 25));

TEST(TtvMode2, MatchesDenseContraction) {
  const std::size_t n = 7;
  Rng rng(11);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  const auto dense = tensor::to_dense(a);
  const auto m = ttv_mode2(a, x);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      double expected = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        expected += dense(i, j, k) * x[j];
      }
      EXPECT_NEAR(m[i * n + k], expected, 1e-11)
          << "i=" << i << " k=" << k;
    }
  }
}

TEST(TtvMode2, IntermediateIsSymmetric) {
  const std::size_t n = 9;
  Rng rng(13);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  const auto m = ttv_mode2(a, x);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      EXPECT_NEAR(m[i * n + k], m[k * n + i], 1e-12);
    }
  }
}

TEST(TwoStepCounts, MatchSection8Analysis) {
  // Step 1 performs exactly n³ scalar multiply-adds (one per dense
  // (i,j,k)); step 2 adds n². Section 8's "2n³ + 2n² elementary
  // operations" counts multiply+add pairs: our op counter counts
  // multiply-adds, i.e. n³ + n² of them.
  for (const std::size_t n : {2u, 5u, 9u}) {
    Rng rng(n);
    const auto a = tensor::random_symmetric(n, rng);
    const auto x = rng.uniform_vector(n);
    TwoStepCount ops;
    (void)sttsv_two_step(a, x, &ops);
    EXPECT_EQ(ops.step1_ops, static_cast<std::uint64_t>(n) * n * n);
    EXPECT_EQ(ops.step2_ops, static_cast<std::uint64_t>(n) * n);
  }
}

TEST(TwoStep, ReusingIntermediateForPowerIteration) {
  // M = A ×₂ x reused: y = M x equals STTSV; z = M w equals
  // A ×₂ x ×₃ w (a mixed product), checked against the dense sum.
  const std::size_t n = 6;
  Rng rng(17);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  const auto w = rng.uniform_vector(n);
  const auto m = ttv_mode2(a, x);
  const auto dense = tensor::to_dense(a);
  for (std::size_t i = 0; i < n; ++i) {
    double z = 0.0;
    for (std::size_t k = 0; k < n; ++k) z += m[i * n + k] * w[k];
    double expected = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        expected += dense(i, j, k) * x[j] * w[k];
      }
    }
    EXPECT_NEAR(z, expected, 1e-10);
  }
}

}  // namespace
}  // namespace sttsv::core
