// Finite field tests: primes, prime fields, polynomials, and GF(p^k)
// table arithmetic, including the field-axiom properties the Steiner
// construction depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gf/field_table.hpp"
#include "gf/prime_field.hpp"
#include "gf/primes.hpp"
#include "support/check.hpp"

namespace sttsv::gf {
namespace {

TEST(Primes, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(Primes, PrimeFactors) {
  EXPECT_EQ(prime_factors(12), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(prime_factors(97), (std::vector<std::uint64_t>{97}));
  EXPECT_EQ(prime_factors(360), (std::vector<std::uint64_t>{2, 3, 5}));
  EXPECT_THROW(prime_factors(1), PreconditionError);
}

TEST(Primes, PrimePowerDetection) {
  std::uint64_t p = 0;
  unsigned k = 0;
  EXPECT_TRUE(is_prime_power(8, p, k));
  EXPECT_EQ(p, 2u);
  EXPECT_EQ(k, 3u);
  EXPECT_TRUE(is_prime_power(9, p, k));
  EXPECT_EQ(p, 3u);
  EXPECT_EQ(k, 2u);
  EXPECT_TRUE(is_prime_power(7, p, k));
  EXPECT_EQ(k, 1u);
  EXPECT_FALSE(is_prime_power(6, p, k));
  EXPECT_FALSE(is_prime_power(1, p, k));
}

TEST(Primes, PrimePowersInRange) {
  EXPECT_EQ(prime_powers_in(2, 11),
            (std::vector<std::uint64_t>{2, 3, 4, 5, 7, 8, 9, 11}));
}

TEST(Primes, CheckedPow) {
  EXPECT_EQ(checked_pow(2, 10), 1024u);
  EXPECT_EQ(checked_pow(7, 0), 1u);
  EXPECT_THROW(checked_pow(10, 20), PreconditionError);
}

TEST(PrimeField, BasicArithmetic) {
  const PrimeField F(7);
  EXPECT_EQ(F.add(3, 5), 1u);
  EXPECT_EQ(F.sub(3, 5), 5u);
  EXPECT_EQ(F.neg(0), 0u);
  EXPECT_EQ(F.neg(2), 5u);
  EXPECT_EQ(F.mul(3, 5), 1u);
  EXPECT_EQ(F.pow(3, 6), 1u);  // Fermat
}

TEST(PrimeField, InverseRoundTrips) {
  const PrimeField F(31);
  for (std::uint64_t a = 1; a < 31; ++a) {
    EXPECT_EQ(F.mul(a, F.inv(a)), 1u) << "a=" << a;
  }
  EXPECT_THROW(static_cast<void>(F.inv(0)), PreconditionError);
}

TEST(PrimeField, RejectsComposite) {
  EXPECT_THROW(PrimeField(6), PreconditionError);
}

TEST(Poly, MulAndMod) {
  const PrimeField F(5);
  // (x + 1)(x + 4) = x² + 5x + 4 = x² + 4 over GF(5).
  const Poly prod = poly_mul(F, Poly{1, 1}, Poly{4, 1});
  EXPECT_EQ(prod, (Poly{4, 0, 1}));
  // x² + 4 mod (x + 1): substitute x = -1 -> 1 + 4 = 0.
  EXPECT_TRUE(poly_mod(F, prod, Poly{1, 1}).empty());
}

TEST(Poly, IrreducibilityKnownCases) {
  const PrimeField F2(2);
  EXPECT_TRUE(poly_is_irreducible(F2, Poly{1, 1, 1}));        // x²+x+1
  EXPECT_FALSE(poly_is_irreducible(F2, Poly{1, 0, 1}));       // (x+1)²
  EXPECT_TRUE(poly_is_irreducible(F2, Poly{1, 1, 0, 1}));     // x³+x+1
  EXPECT_FALSE(poly_is_irreducible(F2, Poly{0, 1, 1, 1}));    // div by x
  const PrimeField F3(3);
  EXPECT_TRUE(poly_is_irreducible(F3, Poly{1, 0, 1}));   // x²+1 over GF(3)
  EXPECT_FALSE(poly_is_irreducible(F3, Poly{2, 0, 1}));  // x²-1=(x-1)(x+1)
}

TEST(Poly, FindPrimitiveIsIrreducibleAndPrimitive) {
  for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL}) {
    const PrimeField F(p);
    for (unsigned d = 1; d <= 3; ++d) {
      const Poly f = find_primitive_poly(F, d);
      EXPECT_EQ(poly_degree(f), static_cast<int>(d));
      EXPECT_TRUE(poly_is_primitive(F, f)) << "p=" << p << " d=" << d;
    }
  }
}

class FieldTableParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FieldTableParam, FieldAxiomsExhaustive) {
  const std::uint64_t q = GetParam();
  const FieldTable K = FieldTable::make_order(q);
  ASSERT_EQ(K.order(), q);

  for (std::uint64_t a = 0; a < q; ++a) {
    // Additive inverse and identity.
    EXPECT_EQ(K.add(a, K.zero()), a);
    EXPECT_EQ(K.add(a, K.neg(a)), K.zero());
    // Multiplicative identity.
    EXPECT_EQ(K.mul(a, K.one()), a);
    if (a != 0) {
      EXPECT_EQ(K.mul(a, K.inv(a)), K.one());
    }
    for (std::uint64_t b = 0; b < q; ++b) {
      // Commutativity.
      EXPECT_EQ(K.add(a, b), K.add(b, a));
      EXPECT_EQ(K.mul(a, b), K.mul(b, a));
    }
  }
}

TEST_P(FieldTableParam, AssociativityAndDistributivitySampled) {
  const std::uint64_t q = GetParam();
  const FieldTable K = FieldTable::make_order(q);
  // Exhaustive for small q, strided for larger.
  const std::uint64_t stride = q <= 9 ? 1 : q / 7;
  for (std::uint64_t a = 0; a < q; a += stride) {
    for (std::uint64_t b = 0; b < q; b += stride) {
      for (std::uint64_t c = 0; c < q; c += stride) {
        EXPECT_EQ(K.add(a, K.add(b, c)), K.add(K.add(a, b), c));
        EXPECT_EQ(K.mul(a, K.mul(b, c)), K.mul(K.mul(a, b), c));
        EXPECT_EQ(K.mul(a, K.add(b, c)), K.add(K.mul(a, b), K.mul(a, c)));
      }
    }
  }
}

TEST_P(FieldTableParam, GeneratorHasFullOrder) {
  const std::uint64_t q = GetParam();
  const FieldTable K = FieldTable::make_order(q);
  std::set<std::uint64_t> powers;
  std::uint64_t x = K.one();
  for (std::uint64_t e = 0; e < q - 1; ++e) {
    powers.insert(x);
    x = K.mul(x, K.generator());
  }
  EXPECT_EQ(powers.size(), q - 1);
  EXPECT_EQ(x, K.one());  // full cycle
}

TEST_P(FieldTableParam, FrobeniusIsAdditive) {
  const std::uint64_t q = GetParam();
  const FieldTable K = FieldTable::make_order(q);
  const std::uint64_t stride = q <= 16 ? 1 : q / 11;
  for (std::uint64_t a = 0; a < q; a += stride) {
    for (std::uint64_t b = 0; b < q; b += stride) {
      EXPECT_EQ(K.frobenius(K.add(a, b)),
                K.add(K.frobenius(a), K.frobenius(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, FieldTableParam,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 16, 25, 27));

TEST(FieldTable, SubfieldOfGF16) {
  const FieldTable K = FieldTable::make(2, 4);  // GF(16)
  const auto sub = K.subfield(4);               // GF(4) inside GF(16)
  ASSERT_EQ(sub.size(), 4u);
  // Closed under addition and multiplication.
  for (const auto a : sub) {
    for (const auto b : sub) {
      EXPECT_TRUE(std::binary_search(sub.begin(), sub.end(), K.add(a, b)));
      EXPECT_TRUE(std::binary_search(sub.begin(), sub.end(), K.mul(a, b)));
    }
  }
}

TEST(FieldTable, SubfieldOfGF81) {
  const FieldTable K = FieldTable::make(3, 4);  // GF(81)
  const auto sub = K.subfield(9);
  ASSERT_EQ(sub.size(), 9u);
  for (const auto a : sub) {
    EXPECT_EQ(K.pow(a, 9), a);
  }
}

TEST(FieldTable, SubfieldRejectsBadOrder) {
  const FieldTable K = FieldTable::make(2, 4);
  EXPECT_THROW(K.subfield(8), PreconditionError);  // 2³: 3 does not divide 4
  EXPECT_THROW(K.subfield(3), PreconditionError);  // wrong characteristic
}

TEST(FieldTable, PowMatchesRepeatedMul) {
  const FieldTable K = FieldTable::make_order(27);
  for (std::uint64_t a = 0; a < 27; ++a) {
    std::uint64_t acc = K.one();
    for (std::uint64_t e = 0; e <= 6; ++e) {
      EXPECT_EQ(K.pow(a, e), acc) << "a=" << a << " e=" << e;
      acc = K.mul(acc, a);
    }
  }
}

TEST(FieldTable, DivIsMulByInverse) {
  const FieldTable K = FieldTable::make_order(8);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 1; b < 8; ++b) {
      EXPECT_EQ(K.mul(K.div(a, b), b), a);
    }
  }
}

}  // namespace
}  // namespace sttsv::gf
