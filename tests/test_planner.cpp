// Planner facade tests: family selection against the budget, prediction
// consistency, and end-to-end runs through the one-call API.

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "core/planner.hpp"
#include "core/sttsv_seq.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv::core {
namespace {

TEST(Planner, MinimizesPredictedCommunication) {
  // Budget 35: trivial m=7 offers more processors (P=35) but its
  // replication λ₁ = 15 makes it costlier than spherical q=3 (P=30,
  // λ₁ = 12, predicted 220 words at n = 300): spherical must win.
  const Planner plan(35, 300);
  EXPECT_EQ(plan.summary().processors, 30u);
  EXPECT_EQ(plan.summary().family, "spherical");
  EXPECT_EQ(plan.summary().q, 3u);

  // Budget 100: spherical q=4 (P=68) beats trivial m=9 (P=84).
  const Planner plan100(100, 680);
  EXPECT_EQ(plan100.summary().family, "spherical");
  EXPECT_EQ(plan100.summary().q, 4u);
}

TEST(Planner, PrefersSphericalOnTies) {
  // Budget 10: spherical q=2 (P=10) vs trivial m=5 (P=10): spherical wins.
  const Planner plan(10, 100);
  EXPECT_EQ(plan.summary().processors, 10u);
  EXPECT_EQ(plan.summary().family, "spherical");
}

TEST(Planner, SmallBudgetsFallBackToTrivial) {
  const Planner plan(5, 50);  // only trivial m=4 (P=4) fits
  EXPECT_EQ(plan.summary().processors, 4u);
  EXPECT_EQ(plan.summary().family, "triples");
  EXPECT_THROW(Planner(3, 50), PreconditionError);
}

TEST(Planner, SummaryConsistent) {
  const std::size_t n = 480;
  const Planner plan(30, n);
  const auto& s = plan.summary();
  EXPECT_EQ(s.row_blocks, 10u);
  EXPECT_EQ(s.block_length, 48u);
  EXPECT_NEAR(s.predicted_words, optimal_algorithm_words(n, 3), 1e-9);
  EXPECT_NEAR(s.lower_bound_words, lower_bound_words(n, 30), 1e-9);
  EXPECT_GT(s.tensor_words_per_rank, 0u);
  EXPECT_EQ(s.vector_words_per_rank, n / 30);
}

TEST(Planner, EndToEndRunMatchesReference) {
  const std::size_t n = 120;
  Rng rng(1);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  for (const std::size_t budget : {10u, 14u, 30u, 40u}) {
    const Planner plan(budget, n);
    auto machine = plan.make_machine();
    const auto y = plan.run(machine, a, x);
    const auto y_ref = sttsv_packed(a, x);
    ASSERT_EQ(y.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], y_ref[i], 1e-9)
          << "budget=" << budget << " i=" << i;
    }
    EXPECT_LE(machine.num_ranks(), budget);
  }
}

TEST(Planner, PredictionMatchesMeasurementDivisible) {
  // Divisible spherical case: measured == predicted exactly.
  const std::size_t n = 10 * 12 * 3;  // m=10, |Q_i|=12 divisible
  Rng rng(2);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  const Planner plan(30, n);
  auto machine = plan.make_machine();
  (void)plan.run(machine, a, x);
  EXPECT_DOUBLE_EQ(static_cast<double>(machine.ledger().max_words_sent()),
                   plan.summary().predicted_words);
}

}  // namespace
}  // namespace sttsv::core
