// Closed-form cost tests: internal consistency of the paper's formulas
// (Theorem 5.2, Sections 7.1-7.2) and their asymptotic relationships.

#include <gtest/gtest.h>

#include <cmath>

#include "core/costs.hpp"

namespace sttsv::core {
namespace {

TEST(LowerBound, MatchesManualEvaluation) {
  // n=120, P=30: 2*(120*119*118/30)^{1/3} - 2*120/30.
  const double expected =
      2.0 * std::cbrt(120.0 * 119.0 * 118.0 / 30.0) - 8.0;
  EXPECT_NEAR(lower_bound_words(120, 30), expected, 1e-9);
}

TEST(LowerBound, DecreasesInP) {
  // Monotone decreasing once P is past the tiny-P regime where the
  // owned-data rebate 2n/P still dominates.
  const std::size_t n = 1000;
  double prev = lower_bound_words(n, 10);
  for (std::size_t P : {30u, 130u, 520u, 2210u}) {
    const double cur = lower_bound_words(n, P);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(OptimalAlgorithm, MatchesLowerBoundLeadingTerm) {
  // Section 7.2.2: the algorithm's cost 2(n(q+1)/(q²+1) - n/P) has the
  // same leading term 2n/P^{1/3} as the lower bound; the ratio tends to 1
  // as q grows (for n scaled with q so b stays fixed).
  double prev_ratio = 10.0;
  for (const std::size_t q : {2u, 3u, 4u, 5u, 7u, 9u, 13u}) {
    const std::size_t m = q * q + 1;
    const std::size_t n = m * q * (q + 1) * 8;  // divisible workload
    const std::size_t P = spherical_processor_count(q);
    const double ratio =
        optimal_algorithm_words(n, q) / lower_bound_words(n, P);
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, prev_ratio + 0.02);
    prev_ratio = ratio;
  }
  // At q=13 the ratio is within ~12% of 1 (driven by (q+1)/q ≈ P^{1/3}
  // approximation quality).
  EXPECT_LT(prev_ratio, 1.15);
}

TEST(AllToAll, AsymptoticallyTwiceTheOptimal) {
  // 4n/(q+1) vs 2n(q+1)/(q²+1): the ratio is 2(q²+1)/((q+1)² - (q²+1)/q)
  // -> 2 from below as q grows.
  double prev = 1.0;
  for (const std::size_t q : {4u, 8u, 16u, 64u, 256u}) {
    const std::size_t n = (q * q + 1) * q * (q + 1);
    const double ratio =
        all_to_all_words(n, q) / optimal_algorithm_words(n, q);
    EXPECT_GT(ratio, prev);
    EXPECT_LT(ratio, 2.0);
    prev = ratio;
  }
  EXPECT_NEAR(prev, 2.0, 0.02);  // within 2% at q = 256
}

TEST(Steps, FormulaAndComparisonToAllToAll) {
  EXPECT_EQ(p2p_steps_per_vector(2), 9u);     // 4+8-... 2³/2+3·4/2-1 = 9
  EXPECT_EQ(p2p_steps_per_vector(3), 26u);    // 27/2+27/2-1 = 26
  EXPECT_EQ(p2p_steps_per_vector(4), 55u);
  // Strictly fewer steps than All-to-All's P-1 for q >= 3 (equal at q=2).
  EXPECT_EQ(p2p_steps_per_vector(2), spherical_processor_count(2) - 1);
  for (const std::size_t q : {3u, 4u, 5u, 7u}) {
    EXPECT_LT(p2p_steps_per_vector(q), spherical_processor_count(q) - 1);
  }
}

TEST(TernaryCounts, Formulas) {
  EXPECT_EQ(naive_ternary_mults(10), 1000u);
  EXPECT_EQ(symmetric_ternary_mults(10), 550u);  // n²(n+1)/2
  EXPECT_EQ(symmetric_ternary_mults(1), 1u);
  // Symmetric is about half of naive.
  EXPECT_NEAR(static_cast<double>(symmetric_ternary_mults(100)) /
                  static_cast<double>(naive_ternary_mults(100)),
              0.5, 0.01);
}

TEST(PerRankBounds, SumApproximatesGlobalWork) {
  // P ranks at the per-rank ternary bound cover the global count
  // n²(n+1)/2 with small slack (not every rank holds a central block).
  for (const std::size_t q : {2u, 3u, 5u}) {
    const std::size_t b = q * (q + 1);
    const std::size_t n = b * (q * q + 1);
    const std::size_t P = spherical_processor_count(q);
    const double per_rank = static_cast<double>(per_rank_ternary_bound(q, b));
    const double global = static_cast<double>(symmetric_ternary_mults(n));
    EXPECT_GT(per_rank * static_cast<double>(P), global * 0.999);
    EXPECT_LT(per_rank, global / static_cast<double>(P) * 1.2);
  }
}

TEST(StorageBound, ApproximatesSixthOfCube) {
  for (const std::size_t q : {2u, 3u, 5u, 7u}) {
    const std::size_t b = 3 * q * (q + 1);
    const std::size_t n = b * (q * q + 1);
    const std::size_t P = spherical_processor_count(q);
    const double bound = static_cast<double>(per_rank_storage_bound(q, b));
    const double ideal = static_cast<double>(n) * static_cast<double>(n) *
                         static_cast<double>(n) / (6.0 * static_cast<double>(P));
    EXPECT_NEAR(bound / ideal, 1.0, 0.2);
  }
}

TEST(SphericalCounts, PaperValues) {
  EXPECT_EQ(spherical_processor_count(2), 10u);
  EXPECT_EQ(spherical_processor_count(3), 30u);   // Table 1
  EXPECT_EQ(spherical_row_blocks(3), 10u);        // m = 10
  EXPECT_EQ(spherical_processor_count(5), 130u);
}

}  // namespace
}  // namespace sttsv::core
