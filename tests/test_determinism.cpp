// Threaded superstep executor tests: running the per-rank compute phases
// on host threads must leave every observable — the output vector
// (bitwise), the per-rank op counts, and the full communication ledger —
// identical to the sequential rank-order schedule, for every workload
// that routes through simt::parallel_for.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/baselines.hpp"
#include "core/parallel_sttsv.hpp"
#include "core/two_step.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "simt/parallel_for.hpp"
#include "steiner/constructions.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv::core {
namespace {

void expect_same_ledger(const simt::CommLedger& a, const simt::CommLedger& b) {
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  EXPECT_EQ(a.rounds(), b.rounds());
  EXPECT_EQ(a.total_words(), b.total_words());
  EXPECT_EQ(a.total_messages(), b.total_messages());
  EXPECT_EQ(a.modeled_collective_words(), b.modeled_collective_words());
  EXPECT_EQ(a.active_pairs(), b.active_pairs());
  for (std::size_t p = 0; p < a.num_ranks(); ++p) {
    EXPECT_EQ(a.words_sent(p), b.words_sent(p)) << "p=" << p;
    EXPECT_EQ(a.words_received(p), b.words_received(p)) << "p=" << p;
    EXPECT_EQ(a.messages_sent(p), b.messages_sent(p)) << "p=" << p;
    EXPECT_EQ(a.messages_received(p), b.messages_received(p)) << "p=" << p;
    for (std::size_t q = 0; q < a.num_ranks(); ++q) {
      if (p != q) {
        EXPECT_EQ(a.pair_words(p, q), b.pair_words(p, q));
      }
    }
  }
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bitwise for non-NaN.
    EXPECT_EQ(got[i], want[i]) << "i=" << i;
  }
}

// The distribution references the partition, so both live behind
// unique_ptrs (same pattern as test_parallel_sttsv.cpp).
struct Workload {
  std::unique_ptr<partition::TetraPartition> part_ptr;
  std::unique_ptr<partition::VectorDistribution> dist_ptr;
  tensor::SymTensor3 a;
  std::vector<double> x;

  [[nodiscard]] const partition::TetraPartition& part() const {
    return *part_ptr;
  }
  [[nodiscard]] const partition::VectorDistribution& dist() const {
    return *dist_ptr;
  }
};

Workload make_workload(steiner::SteinerSystem sys, std::size_t n,
                       std::uint64_t seed) {
  auto part = std::make_unique<partition::TetraPartition>(
      partition::TetraPartition::build(std::move(sys)));
  auto dist = std::make_unique<partition::VectorDistribution>(*part, n);
  Rng rng(seed);
  auto a = tensor::random_symmetric(n, rng);
  auto x = rng.uniform_vector(n);
  return Workload{std::move(part), std::move(dist), std::move(a),
                  std::move(x)};
}

TEST(ThreadedExecutor, ParallelSttsvBitwiseIdenticalAcrossThreadCounts) {
  struct Case {
    std::size_t q;
    std::size_t n;
    simt::Transport transport;
  };
  const Case cases[] = {
      {2, 60, simt::Transport::kPointToPoint},   // divisible
      {2, 37, simt::Transport::kPointToPoint},   // padded shares
      {2, 60, simt::Transport::kAllToAll},       // collective transport
      {3, 120, simt::Transport::kPointToPoint},  // P = 30
  };
  for (const Case& c : cases) {
    Workload w = make_workload(steiner::spherical_system(c.q), c.n, 11 * c.n);
    ParallelRunResult r1;
    simt::Machine m1(w.part().num_processors());
    {
      simt::ConcurrencyGuard serial(1);
      r1 = parallel_sttsv(m1, w.part(), w.dist(), w.a, w.x, c.transport);
    }
    for (const std::size_t threads : {2u, 4u, 7u}) {
      simt::ConcurrencyGuard guard(threads);
      simt::Machine mt(w.part().num_processors());
      const auto rt =
          parallel_sttsv(mt, w.part(), w.dist(), w.a, w.x, c.transport);
      expect_bitwise_equal(rt.y, r1.y);
      EXPECT_EQ(rt.ternary_mults, r1.ternary_mults);
      EXPECT_EQ(rt.max_words_sent, r1.max_words_sent);
      expect_same_ledger(mt.ledger(), m1.ledger());
    }
  }
}

TEST(ThreadedExecutor, BooleanFamilyBitwiseIdentical) {
  Workload w = make_workload(steiner::boolean_quadruple_system(3), 56, 7);
  ParallelRunResult r1;
  simt::Machine m1(w.part().num_processors());
  {
    simt::ConcurrencyGuard serial(1);
    r1 = parallel_sttsv(m1, w.part(), w.dist(), w.a, w.x,
                        simt::Transport::kPointToPoint);
  }
  simt::ConcurrencyGuard guard(4);
  simt::Machine mt(w.part().num_processors());
  const auto rt = parallel_sttsv(mt, w.part(), w.dist(), w.a, w.x,
                                 simt::Transport::kPointToPoint);
  expect_bitwise_equal(rt.y, r1.y);
  expect_same_ledger(mt.ledger(), m1.ledger());
}

TEST(ThreadedExecutor, BaselinesBitwiseIdentical) {
  Rng rng(3);
  const std::size_t n = 48;
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);

  simt::ConcurrencyGuard serial(1);
  simt::Machine m1a(6), m1c(8);
  const auto atomic1 = baseline_1d_atomic(m1a, a, x);
  const auto cubic1 = baseline_cubic(m1c, a, x);

  simt::ConcurrencyGuard guard(5);
  simt::Machine mta(6), mtc(8);
  const auto atomict = baseline_1d_atomic(mta, a, x);
  const auto cubict = baseline_cubic(mtc, a, x);

  expect_bitwise_equal(atomict.y, atomic1.y);
  EXPECT_EQ(atomict.ternary_mults, atomic1.ternary_mults);
  expect_same_ledger(mta.ledger(), m1a.ledger());
  expect_bitwise_equal(cubict.y, cubic1.y);
  EXPECT_EQ(cubict.ternary_mults, cubic1.ternary_mults);
  expect_same_ledger(mtc.ledger(), m1c.ledger());
}

TEST(ThreadedExecutor, TwoStepBitwiseIdentical) {
  Rng rng(4);
  const std::size_t n = 40;
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  simt::ConcurrencyGuard serial(1);
  const auto y1 = sttsv_two_step(a, x);
  simt::ConcurrencyGuard guard(4);
  const auto yt = sttsv_two_step(a, x);
  expect_bitwise_equal(yt, y1);
}

// ---- parallel_for unit behaviour -----------------------------------------

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 9u}) {
    simt::ConcurrencyGuard guard(threads);
    for (const std::size_t count : {0u, 1u, 3u, 64u, 257u}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h.store(0);
      simt::parallel_for(count, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  for (const std::size_t threads : {1u, 4u}) {
    simt::ConcurrencyGuard guard(threads);
    EXPECT_THROW(
        simt::parallel_for(16,
                           [&](std::size_t i) {
                             if (i % 5 == 2) {
                               throw std::runtime_error("boom");
                             }
                           }),
        std::runtime_error);
    // The pool must stay usable after an exceptional job.
    std::atomic<int> total{0};
    simt::parallel_for(8, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 8);
  }
}

TEST(ParallelFor, ConcurrencyGuardRestores) {
  const std::size_t before = simt::host_concurrency();
  {
    simt::ConcurrencyGuard guard(3);
    EXPECT_EQ(simt::host_concurrency(), 3u);
    {
      simt::ConcurrencyGuard inner(1);
      EXPECT_EQ(simt::host_concurrency(), 1u);
    }
    EXPECT_EQ(simt::host_concurrency(), 3u);
  }
  EXPECT_EQ(simt::host_concurrency(), before);
}

}  // namespace
}  // namespace sttsv::core
