// Buffer pool and pipelined exchange tests (DESIGN.md §12): PooledBuffer
// semantics, slab recycling and exhaustion, zero-word messages through
// the pooled wire, the allocation guard's proof that warmed supersteps
// stay off the heap, and bitwise equality of the serialized vs
// double-buffered phase schedules (outputs and every ledger channel).

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "batch/batched_run.hpp"
#include "batch/plan.hpp"
#include "core/parallel_sttsv.hpp"
#include "obs/trace.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/buffer_pool.hpp"
#include "simt/machine.hpp"
#include "simt/pipeline.hpp"
#include "simt/reliable_exchange.hpp"
#include "steiner/constructions.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv {
namespace {

using simt::AllocationGuard;
using simt::BufferPool;
using simt::Delivery;
using simt::Envelope;
using simt::PipelineMode;
using simt::PooledBuffer;

TEST(PooledBuffer, UnpooledBasicsAndGrowth) {
  PooledBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  for (std::size_t i = 0; i < 100; ++i) {
    buf.push_back(static_cast<double>(i));
  }
  ASSERT_EQ(buf.size(), 100u);
  EXPECT_EQ(buf[0], 0.0);
  EXPECT_EQ(buf[99], 99.0);

  const PooledBuffer lit = {1.0, 2.0, 3.0};
  EXPECT_EQ(lit, (std::vector<double>{1.0, 2.0, 3.0}));

  const std::vector<double> v{4.0, 5.0};
  const PooledBuffer from_vec = v;  // implicit, the cold-site shim
  EXPECT_EQ(from_vec, v);

  const PooledBuffer filled(5, 7.5);
  EXPECT_EQ(filled, (std::vector<double>(5, 7.5)));
}

TEST(PooledBuffer, MoveTransfersStorage) {
  BufferPool pool(2);
  PooledBuffer a = pool.acquire(1, 10);
  a.append(std::vector<double>{1.0, 2.0, 3.0}.data(), 3);
  const double* storage = a.data();
  PooledBuffer b = std::move(a);
  EXPECT_EQ(b.data(), storage);
  EXPECT_EQ(b, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): reset state

  PooledBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), storage);
  EXPECT_EQ(c.size(), 3u);
}

TEST(PooledBuffer, ConsumeFrontIsZeroCopy) {
  BufferPool pool(1);
  PooledBuffer buf = pool.acquire(0, 8);
  for (std::size_t i = 0; i < 8; ++i) buf.push_back(static_cast<double>(i));
  const double* before = buf.data();
  buf.consume_front(3);
  EXPECT_EQ(buf.data(), before + 3);  // view advanced, nothing copied
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf[0], 3.0);
  EXPECT_THROW(buf.consume_front(6), PreconditionError);
}

TEST(PooledBuffer, CloneAndReleaseRecycleSlabs) {
  BufferPool pool(1);
  PooledBuffer a = pool.acquire(0, 4);
  a.push_back(42.0);
  PooledBuffer b = a.clone();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.data(), b.data());

  const auto live_before = pool.stats().slabs_live;
  a.release();
  b.release();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(pool.stats().slabs_live, live_before);  // cached, not freed
  // Both slabs are back on the free list: two fresh acquires reuse them.
  const auto allocs = pool.stats().slab_allocations;
  PooledBuffer c = pool.acquire(0, 4);
  PooledBuffer d = pool.acquire(0, 4);
  EXPECT_EQ(pool.stats().slab_allocations, allocs);
  (void)c;
  (void)d;
}

TEST(BufferPool, BucketCapacityRoundsUpInPowersOfTwo) {
  EXPECT_EQ(BufferPool::bucket_capacity(0), BufferPool::kMinSlabWords);
  EXPECT_EQ(BufferPool::bucket_capacity(1), BufferPool::kMinSlabWords);
  EXPECT_EQ(BufferPool::bucket_capacity(BufferPool::kMinSlabWords),
            BufferPool::kMinSlabWords);
  EXPECT_EQ(BufferPool::bucket_capacity(BufferPool::kMinSlabWords + 1),
            2 * BufferPool::kMinSlabWords);
  EXPECT_EQ(BufferPool::bucket_capacity(1000), 1024u);
}

TEST(BufferPool, SteadyStateRecyclesInsteadOfAllocating) {
  BufferPool pool(3);
  { PooledBuffer warm = pool.acquire(2, 100); }
  const auto allocs = pool.stats().slab_allocations;
  for (int round = 0; round < 50; ++round) {
    PooledBuffer buf = pool.acquire(2, 100);
    buf.resize(100);
  }
  EXPECT_EQ(pool.stats().slab_allocations, allocs);
  EXPECT_GE(pool.stats().reuses, 50u);
}

TEST(BufferPool, ExhaustionGrowsAndThenServesFromCache) {
  BufferPool pool(1);
  pool.reserve(0, 64, 2);
  const auto after_reserve = pool.stats().slab_allocations;
  EXPECT_EQ(after_reserve, 2u);

  // Demanding more simultaneous buffers than reserved must grow the pool,
  // not fail; the grown slabs then serve the next wave allocation-free.
  {
    std::vector<PooledBuffer> wave;
    for (int i = 0; i < 5; ++i) wave.push_back(pool.acquire(0, 64));
    EXPECT_EQ(pool.stats().slab_allocations, 5u);
  }
  {
    AllocationGuard guard(pool);
    std::vector<PooledBuffer> wave;
    for (int i = 0; i < 5; ++i) wave.push_back(pool.acquire(0, 64));
    EXPECT_EQ(guard.new_slab_allocations(), 0u);
  }
  // A pooled buffer outgrowing its slab trades up within its shard.
  PooledBuffer growing = pool.acquire(0, BufferPool::kMinSlabWords);
  for (std::size_t i = 0; i < 4 * BufferPool::kMinSlabWords; ++i) {
    growing.push_back(static_cast<double>(i));
  }
  EXPECT_EQ(growing.size(), 4 * BufferPool::kMinSlabWords);
  EXPECT_EQ(growing[BufferPool::kMinSlabWords], BufferPool::kMinSlabWords);
}

TEST(BufferPool, TrimFreesIdleSlabsOnly) {
  BufferPool pool(1);
  PooledBuffer held = pool.acquire(0, 32);
  { PooledBuffer idle = pool.acquire(0, 32); }
  EXPECT_EQ(pool.stats().slabs_live, 2u);
  pool.trim();
  EXPECT_EQ(pool.stats().slabs_live, 1u);  // the held slab survives
  held.push_back(1.0);
  EXPECT_EQ(held[0], 1.0);
}

TEST(Exchange, ZeroWordMessagesTravelThePooledPath) {
  // An empty message still occupies a round slot and produces an empty
  // delivery; it just carries no ledger words.
  simt::Machine machine(3);
  std::vector<std::vector<Envelope>> outboxes(3);
  outboxes[0].push_back(Envelope{1, machine.pool().acquire(0, 0)});
  outboxes[2].push_back(Envelope{1, machine.pool().acquire(2, 16)});
  auto in = machine.exchange(std::move(outboxes),
                             simt::Transport::kPointToPoint);
  ASSERT_EQ(in[1].size(), 2u);
  EXPECT_EQ(in[1][0].from, 0u);
  EXPECT_TRUE(in[1][0].data.empty());
  EXPECT_EQ(in[1][1].from, 2u);
  EXPECT_TRUE(in[1][1].data.empty());
  EXPECT_EQ(machine.ledger().total_words(), 0u);
  // König schedule: rank 1 receives twice, so the exchange takes 2 rounds.
  EXPECT_EQ(machine.ledger().rounds(), 2u);
  machine.ledger().verify_conservation();
}

TEST(Exchange, EmptyOutboxSessionLeavesLedgerUntouched) {
  simt::Machine machine(2);
  {
    auto session = machine.begin_session(simt::Transport::kAllToAll);
    auto in = session.part(std::vector<std::vector<Envelope>>(2));
    EXPECT_TRUE(in[0].empty() && in[1].empty());
    session.finish();
  }
  // A part did run (with nothing in it), so All-to-All still charges its
  // P-1 schedule slots; no words move on any channel.
  EXPECT_EQ(machine.ledger().total_words(), 0u);
  EXPECT_EQ(machine.ledger().total_overhead_words(), 0u);
  EXPECT_EQ(machine.ledger().modeled_collective_words(), 0u);
}

TEST(Exchange, AbandonedSessionChargesNothing) {
  simt::Machine machine(4);
  {
    auto session = machine.begin_session(simt::Transport::kPointToPoint);
    (void)session;  // destroyed without a single part
  }
  EXPECT_EQ(machine.ledger().rounds(), 0u);
  EXPECT_EQ(machine.ledger().total_words(), 0u);
}

// ---------------------------------------------------------------------------
// Pipeline equivalence and steady-state allocation behaviour on the real
// Algorithm-5 drivers.
// ---------------------------------------------------------------------------

struct RunSetup {
  std::unique_ptr<partition::TetraPartition> part;
  std::unique_ptr<partition::VectorDistribution> dist;
  tensor::SymTensor3 a;
  std::vector<double> x;
};

RunSetup make_setup(std::size_t n, std::uint64_t seed) {
  auto part = std::make_unique<partition::TetraPartition>(
      partition::TetraPartition::build(steiner::spherical_system(2)));
  auto dist = std::make_unique<partition::VectorDistribution>(*part, n);
  Rng rng(seed);
  auto a = tensor::random_symmetric(n, rng);
  auto x = rng.uniform_vector(n);
  return RunSetup{std::move(part), std::move(dist), std::move(a), std::move(x)};
}

void expect_ledgers_identical(const simt::CommLedger& lhs,
                              const simt::CommLedger& rhs) {
  ASSERT_EQ(lhs.num_ranks(), rhs.num_ranks());
  for (std::size_t p = 0; p < lhs.num_ranks(); ++p) {
    EXPECT_EQ(lhs.words_sent(p), rhs.words_sent(p)) << "p=" << p;
    EXPECT_EQ(lhs.words_received(p), rhs.words_received(p)) << "p=" << p;
    EXPECT_EQ(lhs.messages_sent(p), rhs.messages_sent(p)) << "p=" << p;
    EXPECT_EQ(lhs.messages_received(p), rhs.messages_received(p)) << "p=" << p;
    EXPECT_EQ(lhs.overhead_words_sent(p), rhs.overhead_words_sent(p));
    EXPECT_EQ(lhs.overhead_words_received(p), rhs.overhead_words_received(p));
  }
  EXPECT_EQ(lhs.total_messages(), rhs.total_messages());
  EXPECT_EQ(lhs.overhead_messages(), rhs.overhead_messages());
  EXPECT_EQ(lhs.rounds(), rhs.rounds());
  EXPECT_EQ(lhs.overhead_rounds(), rhs.overhead_rounds());
  EXPECT_EQ(lhs.modeled_collective_words(), rhs.modeled_collective_words());
}

TEST(Pipeline, SingleVectorBitwiseEqualAndLedgerInvariant) {
  for (const auto transport :
       {simt::Transport::kPointToPoint, simt::Transport::kAllToAll}) {
    for (const std::size_t n : {60u, 37u}) {
      const RunSetup s = make_setup(n, 7 + n);
      simt::Machine serial(s.part->num_processors());
      simt::Machine piped(s.part->num_processors());
      const auto r0 =
          core::parallel_sttsv(serial, *s.part, *s.dist, s.a, s.x, transport,
                               PipelineMode::kSerialized);
      const auto r1 =
          core::parallel_sttsv(piped, *s.part, *s.dist, s.a, s.x, transport,
                               PipelineMode::kDoubleBuffered);
      EXPECT_EQ(r0.y, r1.y);  // bitwise, not approximate
      EXPECT_EQ(r0.ternary_mults, r1.ternary_mults);
      expect_ledgers_identical(serial.ledger(), piped.ledger());
    }
  }
}

TEST(Pipeline, ResilientRunBitwiseEqualAcrossModes) {
  const RunSetup s = make_setup(60, 11);
  const std::size_t P = s.part->num_processors();
  std::vector<double> y[2];
  for (int mode = 0; mode < 2; ++mode) {
    simt::Machine machine(P);
    simt::ReliableExchange rex(machine);
    const auto r = core::parallel_sttsv(
        rex, *s.part, *s.dist, s.a, s.x, simt::Transport::kPointToPoint,
        mode == 0 ? PipelineMode::kSerialized : PipelineMode::kDoubleBuffered);
    y[mode] = r.y;
    if (mode == 1) {
      // Protocol cost must not depend on the schedule either.
      simt::Machine serial(P);
      simt::ReliableExchange rex0(serial);
      (void)core::parallel_sttsv(rex0, *s.part, *s.dist, s.a, s.x,
                                 simt::Transport::kPointToPoint,
                                 PipelineMode::kSerialized);
      expect_ledgers_identical(serial.ledger(), machine.ledger());
    }
  }
  EXPECT_EQ(y[0], y[1]);
}

TEST(Pipeline, BatchedRunBitwiseEqualAcrossModes) {
  const std::size_t n = 60;
  const auto key =
      batch::plan_key(n, batch::Family::kSpherical, 2,
                      simt::Transport::kPointToPoint);
  const auto plan = batch::Plan::build(key);
  Rng rng(21);
  const auto a = tensor::random_symmetric(n, rng);
  std::vector<std::vector<double>> x(3);
  for (auto& xv : x) xv = rng.uniform_vector(n);

  simt::Machine serial = plan->make_machine();
  simt::Machine piped = plan->make_machine();
  const auto r0 = batch::parallel_sttsv_batch(serial, *plan, a, x,
                                              PipelineMode::kSerialized);
  const auto r1 = batch::parallel_sttsv_batch(piped, *plan, a, x,
                                              PipelineMode::kDoubleBuffered);
  EXPECT_EQ(r0.y, r1.y);
  EXPECT_EQ(r0.ternary_mults, r1.ternary_mults);
  expect_ledgers_identical(serial.ledger(), piped.ledger());
}

TEST(Pipeline, EmitsPipelineSpansWhenTraced) {
  if (!obs::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const RunSetup s = make_setup(60, 3);
  simt::Machine machine(s.part->num_processors());
  obs::tracer().configure({.tracing = true});
  obs::tracer().clear();
  (void)core::parallel_sttsv(machine, *s.part, *s.dist, s.a, s.x,
                             simt::Transport::kPointToPoint,
                             PipelineMode::kDoubleBuffered);
  std::size_t pipeline_spans = 0;
  for (const auto& span : obs::tracer().snapshot()) {
    if (span.category == obs::Category::kPipeline) ++pipeline_spans;
  }
  obs::tracer().configure({.tracing = false});
  obs::tracer().clear();
  // Two pipelined phases, each with pack/post/wait/consume per chunk plus
  // a finish span: the exact count is schedule detail, presence is not.
  EXPECT_GE(pipeline_spans, 8u);
}

TEST(AllocationGuard, WarmedSingleVectorRunIsAllocationFree) {
  const RunSetup s = make_setup(60, 5);
  simt::Machine machine(s.part->num_processors());
  // Warm-up run sizes every pool bucket the schedule needs.
  (void)core::parallel_sttsv(machine, *s.part, *s.dist, s.a, s.x,
                             simt::Transport::kPointToPoint);
  const auto warm = core::parallel_sttsv(machine, *s.part, *s.dist, s.a, s.x,
                                         simt::Transport::kPointToPoint);
  AllocationGuard guard(machine.pool());
  const auto steady = core::parallel_sttsv(machine, *s.part, *s.dist, s.a,
                                           s.x, simt::Transport::kPointToPoint);
  EXPECT_EQ(guard.new_slab_allocations(), 0u);
  EXPECT_EQ(guard.new_unpooled_allocations(), 0u);
  guard.check();  // the Debug-build assertion path, explicitly
  EXPECT_EQ(steady.y, warm.y);
}

TEST(AllocationGuard, WarmedResilientRunIsAllocationFree) {
  const RunSetup s = make_setup(60, 6);
  simt::Machine machine(s.part->num_processors());
  simt::ReliableExchange rex(machine);
  (void)core::parallel_sttsv(rex, *s.part, *s.dist, s.a, s.x,
                             simt::Transport::kPointToPoint);
  AllocationGuard guard(machine.pool());
  (void)core::parallel_sttsv(rex, *s.part, *s.dist, s.a, s.x,
                             simt::Transport::kPointToPoint);
  EXPECT_EQ(guard.new_slab_allocations(), 0u);
  EXPECT_EQ(guard.new_unpooled_allocations(), 0u);
}

TEST(AllocationGuard, PrewarmedPlanMakesFirstBatchAllocationFree) {
  const std::size_t n = 60;
  const std::size_t B = 4;
  const auto plan = batch::Plan::build(batch::plan_key(
      n, batch::Family::kSpherical, 2, simt::Transport::kPointToPoint));
  Rng rng(9);
  const auto a = tensor::random_symmetric(n, rng);
  std::vector<std::vector<double>> x(B);
  for (auto& xv : x) xv = rng.uniform_vector(n);

  simt::Machine machine = plan->make_machine();
  plan->prewarm_pool(machine.pool(), B);
  AllocationGuard guard(machine.pool());
  (void)batch::parallel_sttsv_batch(machine, *plan, a, x);
  EXPECT_EQ(guard.new_slab_allocations(), 0u);
  EXPECT_EQ(guard.new_unpooled_allocations(), 0u);
}

TEST(AllocationGuard, ReportsNewSlabAllocations) {
  BufferPool pool(1);
  AllocationGuard guard(pool);
  guard.dismiss();  // this scope allocates on purpose
  { PooledBuffer buf = pool.acquire(0, 64); }
  EXPECT_EQ(guard.new_slab_allocations(), 1u);
#if defined(STTSV_DEBUG_CHECKS)
  EXPECT_THROW(guard.check(), InternalError);
#else
  guard.check();  // no-op outside Debug
#endif

  AllocationGuard unpooled_guard(pool);
  unpooled_guard.dismiss();
  PooledBuffer cold;
  cold.push_back(1.0);  // unpooled growth, tallied process-wide
  EXPECT_EQ(unpooled_guard.new_slab_allocations(), 0u);
  EXPECT_EQ(unpooled_guard.new_unpooled_allocations(), 1u);
#if defined(STTSV_DEBUG_CHECKS)
  EXPECT_THROW(unpooled_guard.check(), InternalError);
#endif
}

}  // namespace
}  // namespace sttsv
