// Tetrahedral block partition tests (paper Section 6): classification,
// TB₃ construction, full partition validity for both Steiner families,
// and the storage/compute bounds of Sections 6.1.3 and 7.1.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/costs.hpp"
#include "partition/blocks.hpp"
#include "partition/tetra_partition.hpp"
#include "steiner/constructions.hpp"
#include "support/check.hpp"

namespace sttsv::partition {
namespace {

TEST(Classify, AllThreeTypes) {
  EXPECT_EQ(classify({5, 3, 1}), BlockType::kOffDiagonal);
  EXPECT_EQ(classify({5, 5, 1}), BlockType::kNonCentralDiagonal);
  EXPECT_EQ(classify({5, 1, 1}), BlockType::kNonCentralDiagonal);
  EXPECT_EQ(classify({5, 5, 5}), BlockType::kCentralDiagonal);
  EXPECT_THROW(classify({1, 2, 3}), PreconditionError);
}

TEST(TetrahedralBlock, PaperExample) {
  // Paper Section 6: TB₃({1,4,6,8}) = {(6,4,1),(8,4,1),(8,6,1),(8,6,4)}.
  const auto tb = tetrahedral_block({1, 4, 6, 8});
  ASSERT_EQ(tb.size(), 4u);
  EXPECT_TRUE(std::find(tb.begin(), tb.end(), BlockCoord{6, 4, 1}) !=
              tb.end());
  EXPECT_TRUE(std::find(tb.begin(), tb.end(), BlockCoord{8, 4, 1}) !=
              tb.end());
  EXPECT_TRUE(std::find(tb.begin(), tb.end(), BlockCoord{8, 6, 1}) !=
              tb.end());
  EXPECT_TRUE(std::find(tb.begin(), tb.end(), BlockCoord{8, 6, 4}) !=
              tb.end());
}

TEST(BlockCounts, SumToLowerTetrahedron) {
  for (std::size_t m : {3u, 8u, 10u, 17u}) {
    EXPECT_EQ(num_off_diagonal_blocks(m) +
                  num_non_central_diagonal_blocks(m) +
                  num_central_diagonal_blocks(m),
              m * (m + 1) * (m + 2) / 6);
    EXPECT_EQ(all_lower_blocks(m).size(), m * (m + 1) * (m + 2) / 6);
  }
}

TEST(EntriesInBlock, SumOverTypesMatchesGlobalPacked) {
  // Tile an n = m*b tensor into blocks; entry counts must add up to
  // n(n+1)(n+2)/6.
  const std::size_t m = 5;
  const std::size_t b = 3;
  const std::size_t n = m * b;
  std::size_t total = 0;
  for (const auto& c : all_lower_blocks(m)) {
    total += entries_in_block(classify(c), b);
  }
  EXPECT_EQ(total, n * (n + 1) * (n + 2) / 6);
}

TEST(TernaryMultsInBlock, SumMatchesAlgorithm4Count) {
  // Section 3: Algorithm 4 performs n²(n+1)/2 ternary multiplications.
  const std::size_t m = 4;
  const std::size_t b = 5;
  const std::size_t n = m * b;
  std::uint64_t total = 0;
  for (const auto& c : all_lower_blocks(m)) {
    total += ternary_mults_in_block(classify(c), b);
  }
  EXPECT_EQ(total, core::symmetric_ternary_mults(n));
}

class PartitionFamilies
    : public ::testing::TestWithParam<steiner::SteinerSystem (*)()> {};

steiner::SteinerSystem make_spherical2() {
  return steiner::spherical_system(2);
}
steiner::SteinerSystem make_spherical3() {
  return steiner::spherical_system(3);
}
steiner::SteinerSystem make_spherical4() {
  return steiner::spherical_system(4);
}
steiner::SteinerSystem make_boolean3() {
  return steiner::boolean_quadruple_system(3);
}
steiner::SteinerSystem make_boolean4() {
  return steiner::boolean_quadruple_system(4);
}

TEST_P(PartitionFamilies, FullValidation) {
  const TetraPartition part = TetraPartition::build(GetParam()());
  part.validate();
}

TEST_P(PartitionFamilies, OwnedBlocksPartitionTheTetrahedron) {
  const TetraPartition part = TetraPartition::build(GetParam()());
  const std::size_t m = part.num_row_blocks();
  std::map<BlockCoord, std::size_t> seen;
  for (std::size_t p = 0; p < part.num_processors(); ++p) {
    for (const auto& c : part.owned_blocks(p)) {
      EXPECT_EQ(seen.count(c), 0u) << "block owned twice";
      seen[c] = p;
    }
  }
  EXPECT_EQ(seen.size(), m * (m + 1) * (m + 2) / 6);
  // owner() agrees with the per-processor lists.
  for (const auto& [coord, p] : seen) {
    EXPECT_EQ(part.owner(coord), p);
  }
}

TEST_P(PartitionFamilies, DiagonalCompatibility) {
  // The paper's key property: N_p and D_p blocks need no vector data
  // beyond the row blocks R_p already requires.
  const TetraPartition part = TetraPartition::build(GetParam()());
  for (std::size_t p = 0; p < part.num_processors(); ++p) {
    const auto& Rp = part.R(p);
    auto in_r = [&](std::size_t v) {
      return std::binary_search(Rp.begin(), Rp.end(), v);
    };
    for (const auto& c : part.N(p)) {
      EXPECT_TRUE(in_r(c.i) && in_r(c.k));
    }
    for (const auto& c : part.D(p)) {
      EXPECT_TRUE(in_r(c.i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, PartitionFamilies,
                         ::testing::Values(&make_spherical2, &make_spherical3,
                                           &make_spherical4, &make_boolean3,
                                           &make_boolean4));

TEST(SphericalPartition, QuotasExact) {
  // Spherical family: |N_p| == q for every p, |D_p| <= 1 with exactly
  // m = q²+1 central blocks assigned.
  for (const std::size_t q : {2u, 3u, 4u}) {
    const TetraPartition part =
        TetraPartition::build(steiner::spherical_system(q));
    std::size_t central = 0;
    for (std::size_t p = 0; p < part.num_processors(); ++p) {
      EXPECT_EQ(part.N(p).size(), q) << "q=" << q << " p=" << p;
      EXPECT_LE(part.D(p).size(), 1u);
      central += part.D(p).size();
    }
    EXPECT_EQ(central, q * q + 1);
  }
}

TEST(SphericalPartition, StorageBoundSection613) {
  // Per-processor stored entries equal the closed form and ≈ n³/(6P).
  const std::size_t q = 3;
  const TetraPartition part =
      TetraPartition::build(steiner::spherical_system(q));
  const std::size_t b = 12;  // any block edge
  const std::size_t n = b * part.num_row_blocks();
  for (std::size_t p = 0; p < part.num_processors(); ++p) {
    const std::size_t stored = part.stored_entries(p, b);
    if (part.D(p).size() == 1) {
      EXPECT_EQ(stored, core::per_rank_storage_bound(q, b));
    } else {
      EXPECT_LT(stored, core::per_rank_storage_bound(q, b));
    }
    const double ratio =
        static_cast<double>(stored) /
        (static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(n) /
         (6.0 * static_cast<double>(part.num_processors())));
    EXPECT_NEAR(ratio, 1.0, 0.25);  // ≈ n³/6P with lower-order slack
  }
}

TEST(TetraPartition, TotalTernaryMultsMatchAlgorithm4) {
  const TetraPartition part =
      TetraPartition::build(steiner::spherical_system(2));
  const std::size_t b = 7;
  const std::size_t n = b * part.num_row_blocks();
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < part.num_processors(); ++p) {
    total += part.ternary_mults(p, b);
  }
  EXPECT_EQ(total, core::symmetric_ternary_mults(n));
}

TEST(TetraPartition, OwnerRejectsBadCoords) {
  const TetraPartition part =
      TetraPartition::build(steiner::boolean_quadruple_system(3));
  EXPECT_THROW(static_cast<void>(part.owner({1, 2, 3})), PreconditionError);  // unsorted
  EXPECT_THROW(static_cast<void>(part.owner({99, 0, 0})), PreconditionError);
}

}  // namespace
}  // namespace sttsv::partition
