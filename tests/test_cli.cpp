// CLI argument parser tests.

#include <gtest/gtest.h>

#include <array>

#include "support/check.hpp"
#include "support/cli.hpp"

namespace sttsv {
namespace {

ArgParser make(std::initializer_list<const char*> argv) {
  static std::vector<const char*> storage;
  storage.assign(argv.begin(), argv.end());
  return ArgParser(static_cast<int>(storage.size()), storage.data());
}

TEST(ArgParser, PositionalAndOptions) {
  const auto args =
      make({"prog", "run", "--q", "3", "--transport", "a2a", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "extra");
  EXPECT_EQ(args.get("q"), "3");
  EXPECT_EQ(args.get_u64("q"), 3u);
  EXPECT_EQ(args.get("transport"), "a2a");
}

TEST(ArgParser, BareFlags) {
  const auto args = make({"prog", "--verbose", "--n", "5"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_THROW(args.get("verbose"), PreconditionError);
  EXPECT_EQ(args.get_u64("n"), 5u);
}

TEST(ArgParser, TrailingFlag) {
  const auto args = make({"prog", "cmd", "--dry-run"});
  EXPECT_TRUE(args.has("dry-run"));
}

TEST(ArgParser, Defaults) {
  const auto args = make({"prog"});
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_or("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_u64_or("missing", 9), 9u);
  EXPECT_THROW(args.get("missing"), PreconditionError);
}

TEST(ArgParser, ConsecutiveOptionsAreFlags) {
  const auto args = make({"prog", "--a", "--b", "value"});
  EXPECT_TRUE(args.has("a"));
  EXPECT_THROW(args.get("a"), PreconditionError);  // flag, no value
  EXPECT_EQ(args.get("b"), "value");
}

TEST(ArgParser, UnusedDetection) {
  const auto args = make({"prog", "--used", "1", "--typo", "2"});
  (void)args.get("used");
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ArgParser, BadNumbersThrow) {
  const auto args = make({"prog", "--n", "abc"});
  EXPECT_THROW(static_cast<void>(args.get_u64("n")), PreconditionError);
}

}  // namespace
}  // namespace sttsv
