// Projective line / PGL₂ action tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "projective/projective_line.hpp"
#include "support/check.hpp"

namespace sttsv::proj {
namespace {

TEST(ProjectiveLine, PointCount) {
  const auto line = ProjectiveLine::over_order(5);
  EXPECT_EQ(line.num_points(), 6u);
  EXPECT_EQ(line.infinity(), 5u);
  EXPECT_TRUE(line.is_infinity(5));
  EXPECT_FALSE(line.is_infinity(0));
}

TEST(ProjectiveLine, IdentityFixesEverything) {
  const auto line = ProjectiveLine::over_order(7);
  const Mobius id{};
  for (std::size_t pt = 0; pt < line.num_points(); ++pt) {
    EXPECT_EQ(line.apply(id, pt), pt);
  }
}

TEST(ProjectiveLine, InversionSwapsZeroAndInfinity) {
  const auto line = ProjectiveLine::over_order(4);
  const Mobius inv{0, 1, 1, 0};  // z -> 1/z
  EXPECT_EQ(line.apply(inv, 0), line.infinity());
  EXPECT_EQ(line.apply(inv, line.infinity()), 0u);
  EXPECT_EQ(line.apply(inv, 1), 1u);  // 1/1 == 1
}

TEST(ProjectiveLine, TranslationFixesInfinityOnly) {
  const auto line = ProjectiveLine::over_order(9);
  const Mobius t{1, 1, 0, 1};  // z -> z + 1
  EXPECT_EQ(line.apply(t, line.infinity()), line.infinity());
  std::size_t fixed = 0;
  for (std::size_t pt = 0; pt < line.num_points(); ++pt) {
    if (line.apply(t, pt) == pt) ++fixed;
  }
  EXPECT_EQ(fixed, 1u);
}

class GeneratorsBijective : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorsBijective, EveryGeneratorPermutesTheLine) {
  const auto line = ProjectiveLine::over_order(GetParam());
  for (const Mobius& g : line.standard_generators()) {
    std::set<std::size_t> image;
    for (std::size_t pt = 0; pt < line.num_points(); ++pt) {
      image.insert(line.apply(g, pt));
    }
    EXPECT_EQ(image.size(), line.num_points());
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GeneratorsBijective,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 16, 25));

TEST(ProjectiveLine, ComposeMatchesSequentialApplication) {
  const auto line = ProjectiveLine::over_order(8);
  const auto gens = line.standard_generators();
  for (const Mobius& g1 : gens) {
    for (const Mobius& g2 : gens) {
      const Mobius combo = line.compose(g1, g2);
      for (std::size_t pt = 0; pt < line.num_points(); ++pt) {
        EXPECT_EQ(line.apply(combo, pt), line.apply(g1, line.apply(g2, pt)));
      }
    }
  }
}

TEST(ProjectiveLine, InverseUndoesMap) {
  const auto line = ProjectiveLine::over_order(9);
  for (const Mobius& g : line.standard_generators()) {
    const Mobius ginv = line.inverse(g);
    for (std::size_t pt = 0; pt < line.num_points(); ++pt) {
      EXPECT_EQ(line.apply(ginv, line.apply(g, pt)), pt);
    }
  }
}

TEST(ProjectiveLine, NonInvertibleDetected) {
  const auto line = ProjectiveLine::over_order(5);
  const Mobius bad{2, 4, 1, 2};  // det = 4 - 4 = 0
  EXPECT_FALSE(line.is_invertible(bad));
  EXPECT_THROW(static_cast<void>(line.inverse(bad)), PreconditionError);
}

TEST(ProjectiveLine, SublineHasRightSizeAndInfinity) {
  // GF(9) inside GF(81): subline of PG(1, 81).
  const auto line = ProjectiveLine::over_order(81);
  const auto sub = line.subline(9);
  ASSERT_EQ(sub.size(), 10u);  // q + 1 points
  EXPECT_TRUE(std::binary_search(sub.begin(), sub.end(), line.infinity()));
  EXPECT_TRUE(std::binary_search(sub.begin(), sub.end(), std::size_t{0}));
  EXPECT_TRUE(std::binary_search(sub.begin(), sub.end(), std::size_t{1}));
}

TEST(ProjectiveLine, ApplyToBlockPreservesSize) {
  const auto line = ProjectiveLine::over_order(16);
  const auto sub = line.subline(4);
  for (const Mobius& g : line.standard_generators()) {
    const auto image = line.apply_to_block(g, sub);
    EXPECT_EQ(image.size(), sub.size());
    EXPECT_TRUE(std::is_sorted(image.begin(), image.end()));
  }
}

}  // namespace
}  // namespace sttsv::proj
