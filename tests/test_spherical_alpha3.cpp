// The wider spherical family S(q^α+1, q+1, 3) for α = 3 (paper Theorem
// 6.5 allows any α): these give additional admissible processor counts,
// e.g. S(28, 4, 3) with P = 819 for q = 3. Verifies the systems, builds
// their partitions, and runs a communication replay at the large P.

#include <gtest/gtest.h>

#include "core/comm_only.hpp"
#include "core/parallel_sttsv.hpp"
#include "core/sttsv_seq.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "steiner/constructions.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv::steiner {
namespace {

TEST(SphericalAlpha3, Q3System) {
  // S(28, 4, 3): 28 points, blocks of 4, P = 28·27·26/24 = 819.
  const auto sys = spherical_system(3, 3);
  EXPECT_EQ(sys.num_points(), 28u);
  EXPECT_EQ(sys.block_size(), 4u);
  EXPECT_EQ(sys.num_blocks(), 819u);
  EXPECT_EQ(sys.pair_replication(), 13u);   // (28-2)/2
  EXPECT_EQ(sys.point_replication(), 117u);  // 27·26/6
  sys.verify();
}

TEST(SphericalAlpha3, Q3PartitionValidates) {
  const auto part = partition::TetraPartition::build(spherical_system(3, 3));
  part.validate();
  EXPECT_EQ(part.num_processors(), 819u);
}

TEST(SphericalAlpha3, Q3CommunicationReplayBalanced) {
  const auto part = partition::TetraPartition::build(spherical_system(3, 3));
  // b divisible by λ₁ = 117 for even shares.
  const std::size_t n = 28 * 117;
  const partition::VectorDistribution dist(part, n);
  simt::Machine machine(part.num_processors());
  core::simulate_communication(machine, part, dist,
                               simt::Transport::kPointToPoint);
  machine.ledger().verify_conservation();
  const auto max_sent = machine.ledger().max_words_sent();
  EXPECT_GT(max_sent, 0u);
  for (std::size_t p = 0; p < part.num_processors(); ++p) {
    EXPECT_EQ(machine.ledger().words_sent(p), max_sent) << "p=" << p;
  }
}

TEST(SphericalAlpha3, Q2EqualsAllTriples) {
  // q = 2, α = 3: S(9, 3, 3) — necessarily all C(9,3) triples.
  const auto sys = spherical_system(2, 3);
  const auto trivial = trivial_triple_system(9);
  EXPECT_EQ(sys.blocks(), trivial.blocks());
}

TEST(SphericalAlpha3, SmallParallelRunCorrect) {
  // Full numeric run on the S(9,3,3) partition (P = 84).
  const auto part = partition::TetraPartition::build(spherical_system(2, 3));
  const std::size_t n = 54;
  const partition::VectorDistribution dist(part, n);
  Rng rng(33);
  const auto a = tensor::random_symmetric(n, rng);
  const auto x = rng.uniform_vector(n);
  simt::Machine machine(part.num_processors());
  const auto result = core::parallel_sttsv(
      machine, part, dist, a, x, simt::Transport::kPointToPoint);
  const auto y_ref = core::sttsv_packed(a, x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.y[i], y_ref[i], 1e-10);
  }
}

}  // namespace
}  // namespace sttsv::steiner
