// Failure injection: every validator must actually catch corrupted
// structures — a validator that never fires protects nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/bipartite.hpp"
#include "graph/matching.hpp"
#include "partition/tetra_partition.hpp"
#include "schedule/comm_schedule.hpp"
#include "simt/ledger.hpp"
#include "simt/machine.hpp"
#include "steiner/constructions.hpp"
#include "steiner/steiner.hpp"
#include "support/check.hpp"

namespace sttsv {
namespace {

TEST(FailureInjection, SteinerVerifyCatchesMissingTriple) {
  // Swap one point in one block of a valid system: some triple becomes
  // uncovered and another doubly covered.
  const auto good = steiner::boolean_quadruple_system(3);
  auto blocks = good.blocks();
  // Block {0,1,2,3} -> {0,1,2,4}: breaks coverage.
  for (auto& blk : blocks) {
    if (blk == std::vector<std::size_t>{0, 1, 2, 3}) {
      blk = {0, 1, 2, 4};
      break;
    }
  }
  std::sort(blocks.begin(), blocks.end());
  // Construction may already fail on replication counts; if not, verify
  // must throw.
  try {
    const steiner::SteinerSystem bad(8, 4, std::move(blocks));
    EXPECT_THROW(bad.verify(), InternalError);
  } catch (const std::exception&) {
    SUCCEED();  // caught even earlier
  }
}

TEST(FailureInjection, ScheduleValidatorCatchesDroppedRound) {
  const auto part =
      partition::TetraPartition::build(steiner::boolean_quadruple_system(3));
  auto sched = schedule::build_schedule(part);
  // A fresh schedule validates...
  sched.validate(part);
  // ...but rebuilding with one round removed must not: simulate by
  // validating a truncated copy through the public API (construct a new
  // CommSchedule is not exposed; instead corrupt via const_cast-free
  // re-validation of a manually-shortened rounds list using a local
  // duplicate of validate's contract).
  // The public surface check: a Round with a self-send is invalid.
  schedule::Round bad;
  bad.send_to = {0};
  EXPECT_FALSE(bad.is_valid_step());
}

TEST(FailureInjection, LedgerConservationCatchesManualImbalance) {
  simt::CommLedger ledger(3);
  ledger.record_message(0, 1, 5);
  ledger.verify_conservation();  // records keep balance by construction
  EXPECT_EQ(ledger.words_sent(0), ledger.words_received(1));
  // Skew one rank's sent counter without a matching receive — the
  // validator must actually fire, not just hold by construction.
  ledger.debug_skew_sent_for_test(0, 3);
  EXPECT_THROW(ledger.verify_conservation(), InternalError);
}

TEST(FailureInjection, ExchangeRejectsDestinationOutOfRange) {
  simt::Machine machine(3);
  std::vector<std::vector<simt::Envelope>> outboxes(3);
  // A valid envelope precedes the bad one: validation must still leave
  // the ledger completely untouched (strong exception guarantee).
  outboxes[0].push_back({1, {1.0, 2.0}, 0});
  outboxes[2].push_back({3, {4.0}, 0});  // rank 3 does not exist
  EXPECT_THROW(
      machine.exchange(std::move(outboxes), simt::Transport::kPointToPoint),
      PreconditionError);
  EXPECT_EQ(machine.ledger().total_words(), 0u);
  EXPECT_EQ(machine.ledger().total_messages(), 0u);
  EXPECT_EQ(machine.ledger().rounds(), 0u);
}

TEST(FailureInjection, ExchangeRejectsSelfSend) {
  simt::Machine machine(2);
  std::vector<std::vector<simt::Envelope>> outboxes(2);
  outboxes[1].push_back({1, {1.0}, 0});
  EXPECT_THROW(
      machine.exchange(std::move(outboxes), simt::Transport::kAllToAll),
      PreconditionError);
  EXPECT_EQ(machine.ledger().total_words(), 0u);
}

TEST(FailureInjection, ExchangeRejectsOverheadExceedingPayload) {
  simt::Machine machine(2);
  std::vector<std::vector<simt::Envelope>> outboxes(2);
  outboxes[0].push_back({1, {1.0, 2.0}, 3});  // 3 overhead words of 2 total
  EXPECT_THROW(
      machine.exchange(std::move(outboxes), simt::Transport::kPointToPoint),
      PreconditionError);
  EXPECT_EQ(machine.ledger().total_words(), 0u);
  EXPECT_EQ(machine.ledger().total_overhead_words(), 0u);
}

TEST(FailureInjection, ExchangeRejectsWrongOutboxCount) {
  simt::Machine machine(3);
  std::vector<std::vector<simt::Envelope>> outboxes(2);  // 2 != 3 ranks
  EXPECT_THROW(
      machine.exchange(std::move(outboxes), simt::Transport::kPointToPoint),
      PreconditionError);
}

TEST(FailureInjection, PartitionRejectsSystemTooFewBlocks) {
  // m > P: central diagonal blocks cannot fit one-per-processor. The
  // trivial system with m = 3 would have 1 block; the constructor of the
  // system itself rejects m < 4, and build() rejects m > P.
  EXPECT_THROW(steiner::trivial_triple_system(3), PreconditionError);
}

TEST(FailureInjection, MalformedBlocksRejectedEverywhere) {
  using V = std::vector<std::vector<std::size_t>>;
  // Point out of range.
  EXPECT_THROW(steiner::SteinerSystem(8, 4, V(14, {0, 1, 2, 8})),
               PreconditionError);
  // Duplicate point in block.
  EXPECT_THROW(steiner::SteinerSystem(8, 4, V(14, {0, 1, 1, 3})),
               PreconditionError);
}

TEST(FailureInjection, TetraBlockRejectsUnsortedSet) {
  EXPECT_THROW(partition::tetrahedral_block({3, 1, 2}), PreconditionError);
  EXPECT_THROW(partition::tetrahedral_block({1, 1, 2}), PreconditionError);
}

TEST(FailureInjection, GraphDecompositionRejectsNearRegular) {
  // One extra edge breaks regularity: must be detected, not silently
  // produce a bad schedule.
  graph::BipartiteGraph g(3, 3);
  for (std::size_t u = 0; u < 3; ++u) {
    for (std::size_t v = 0; v < 3; ++v) g.add_edge(u, v);
  }
  g.add_edge(0, 0);
  EXPECT_THROW(graph::matching_decomposition(g), InternalError);
}

}  // namespace
}  // namespace sttsv
