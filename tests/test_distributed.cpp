// Distributed-vector layer tests: scatter/gather round trips, counted
// BLAS-1 reductions, the persistent-distribution STTSV, the tree
// allreduce, and the fully distributed HOPM driver.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/hopm.hpp"
#include "apps/vec_ops.hpp"
#include "core/costs.hpp"
#include "core/distributed_vector.hpp"
#include "core/parallel_sttsv.hpp"
#include "core/sttsv_seq.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/collective.hpp"
#include "steiner/constructions.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv::core {
namespace {

TEST(Allreduce, SumsAcrossRanks) {
  for (const std::size_t P : {1u, 2u, 3u, 5u, 8u, 13u}) {
    simt::Machine machine(P);
    std::vector<std::vector<double>> contributions(P);
    double expected0 = 0.0;
    double expected1 = 0.0;
    for (std::size_t p = 0; p < P; ++p) {
      contributions[p] = {static_cast<double>(p + 1),
                          static_cast<double>(p * p)};
      expected0 += static_cast<double>(p + 1);
      expected1 += static_cast<double>(p * p);
    }
    const auto sum = simt::allreduce_sum(machine, contributions);
    ASSERT_EQ(sum.size(), 2u);
    EXPECT_DOUBLE_EQ(sum[0], expected0);
    EXPECT_DOUBLE_EQ(sum[1], expected1);
    machine.ledger().verify_conservation();
    if (P > 1) {
      // Tree pattern: 2(P-1) messages total (each non-root sends once in
      // the reduce and receives once in the broadcast).
      EXPECT_EQ(machine.ledger().total_messages(), 2 * (P - 1));
    }
  }
}

TEST(Allreduce, LogarithmicWordsPerRank) {
  const std::size_t P = 64;
  simt::Machine machine(P);
  std::vector<std::vector<double>> contributions(P,
                                                 std::vector<double>(1, 1.0));
  (void)simt::allreduce_sum(machine, contributions);
  // Max words any rank sends: <= 2 ceil(log2 P) single-word messages.
  EXPECT_LE(machine.ledger().max_words_sent(), 2 * 6);
}

TEST(Allreduce, DoesNotMutateContributions) {
  // The in-place tree reduction must accumulate into pool-backed copies,
  // never into the caller's contribution vectors: callers reuse them
  // (HOPM re-submits norms across iterations) and aliasing would fold
  // partial sums back into later rounds.
  for (const std::size_t P : {2u, 5u, 8u}) {
    simt::Machine machine(P);
    std::vector<std::vector<double>> contributions(P);
    for (std::size_t p = 0; p < P; ++p) {
      contributions[p] = {static_cast<double>(p) + 0.25, -1.0,
                          static_cast<double>(p * 3)};
    }
    const auto before = contributions;
    const auto once = simt::allreduce_sum(machine, contributions);
    EXPECT_EQ(contributions, before);
    // Re-running with the untouched inputs must reproduce the sum bitwise.
    const auto twice = simt::allreduce_sum(machine, contributions);
    EXPECT_EQ(once, twice);
    EXPECT_EQ(contributions, before);
  }
}

TEST(DistributedVector, ScatterGatherRoundTrip) {
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(2));
  for (const std::size_t n : {60u, 37u, 5u}) {
    const partition::VectorDistribution dist(part, n);
    Rng rng(n);
    const auto global = rng.uniform_vector(n);
    const auto dv = DistributedVector::scatter(dist, global);
    EXPECT_EQ(dv.gather(), global);
  }
}

TEST(DistributedVector, DotMatchesSequential) {
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(2));
  const std::size_t n = 60;
  const partition::VectorDistribution dist(part, n);
  Rng rng(3);
  const auto ga = rng.uniform_vector(n);
  const auto gb = rng.uniform_vector(n);
  const auto da = DistributedVector::scatter(dist, ga);
  const auto db = DistributedVector::scatter(dist, gb);
  simt::Machine machine(part.num_processors());
  const double d = DistributedVector::dot(machine, da, db);
  EXPECT_NEAR(d, apps::dot(ga, gb), 1e-10);
  EXPECT_GT(machine.ledger().total_words(), 0u);  // reduction was counted
}

TEST(DistributedVector, ScaleAndAxpy) {
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(2));
  const std::size_t n = 45;
  const partition::VectorDistribution dist(part, n);
  Rng rng(4);
  const auto ga = rng.uniform_vector(n);
  const auto gb = rng.uniform_vector(n);
  auto da = DistributedVector::scatter(dist, ga);
  const auto db = DistributedVector::scatter(dist, gb);
  da.scale(2.0);
  da.axpy(-0.5, db);
  const auto out = da.gather();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(out[i], 2.0 * ga[i] - 0.5 * gb[i], 1e-12);
  }
}

TEST(ParallelSttsvDist, MatchesGatherBasedRun) {
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(2));
  for (const std::size_t n : {60u, 41u}) {
    const partition::VectorDistribution dist(part, n);
    Rng rng(10 + n);
    const auto a = tensor::random_symmetric(n, rng);
    const auto x = rng.uniform_vector(n);

    simt::Machine m1(part.num_processors());
    const auto full = parallel_sttsv(m1, part, dist, a, x,
                                     simt::Transport::kPointToPoint);

    simt::Machine m2(part.num_processors());
    const auto dv_x = DistributedVector::scatter(dist, x);
    std::vector<std::uint64_t> ternary;
    const auto dv_y = parallel_sttsv_dist(
        m2, part, a, dv_x, simt::Transport::kPointToPoint, &ternary);
    const auto y = dv_y.gather();

    ASSERT_EQ(y.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], full.y[i], 1e-12);
    }
    // Identical communication (the persistent version IS Algorithm 5).
    EXPECT_EQ(m1.ledger().total_words(), m2.ledger().total_words());
    EXPECT_EQ(m1.ledger().total_messages(), m2.ledger().total_messages());
    EXPECT_EQ(ternary, full.ternary_mults);
  }
}

TEST(HopmFullyDistributed, AgreesWithSequential) {
  Rng rng(21);
  const std::size_t n = 60;
  const auto a = tensor::random_low_rank(n, {4.0, 1.0}, rng, nullptr);
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(2));
  const partition::VectorDistribution dist(part, n);

  apps::HopmOptions opts;
  opts.shift = 1.0;
  opts.max_iterations = 2000;
  const auto seq = apps::hopm(a, opts);

  simt::Machine machine(part.num_processors());
  const auto par = apps::hopm_fully_distributed(machine, part, dist, a, opts);
  EXPECT_TRUE(par.converged);
  EXPECT_NEAR(par.eigenvalue, seq.eigenvalue, 1e-7);
  EXPECT_LT(apps::sign_invariant_distance(par.eigenvector, seq.eigenvector),
            1e-5);
  EXPECT_LT(par.residual, 1e-7);
}

TEST(HopmFullyDistributed, ReductionOverheadIsLogarithmic) {
  // Per iteration: 1 STTSV exchange (dominant) + ~3 scalar allreduces.
  // The allreduce words are O(log P) per rank, tiny next to the STTSV's.
  Rng rng(22);
  const std::size_t n = 120;
  const auto a = tensor::random_low_rank(n, {5.0}, rng, nullptr);
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(2));
  const partition::VectorDistribution dist(part, n);

  apps::HopmOptions opts;
  opts.max_iterations = 50;
  opts.tolerance = 0.0;  // force exactly max_iterations STTSVs
  simt::Machine machine(part.num_processors());
  const auto res = apps::hopm_fully_distributed(machine, part, dist, a, opts);
  EXPECT_EQ(res.iterations, 50u);

  const double sttsv_words = core::optimal_algorithm_words(n, 2);
  const double total = static_cast<double>(machine.ledger().max_words_sent());
  // 51 STTSV exchanges (50 iterations + final eigenvalue pass) plus
  // reductions; reductions must be a small fraction.
  EXPECT_GT(total, 51.0 * sttsv_words);
  EXPECT_LT(total, 51.0 * sttsv_words * 1.25);
}

TEST(DistributedVector, ShareAccessValidation) {
  const auto part =
      partition::TetraPartition::build(steiner::spherical_system(2));
  const partition::VectorDistribution dist(part, 30);
  DistributedVector dv(dist);
  EXPECT_THROW(dv.share(99, 0), PreconditionError);
  // Rank 0 owns only blocks in R_0; find one it does not own.
  const auto& r0 = part.R(0);
  std::size_t missing = 0;
  while (std::binary_search(r0.begin(), r0.end(), missing)) ++missing;
  EXPECT_THROW(dv.share(0, missing), PreconditionError);
}

}  // namespace
}  // namespace sttsv::core
