// Graph algorithm tests: bipartite structures, Hopcroft-Karp, regular
// matching decomposition (Lemma 7.2.1), Dinic max-flow, quota assignment.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/bipartite.hpp"
#include "graph/matching.hpp"
#include "graph/max_flow.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace sttsv::graph {
namespace {

TEST(BipartiteGraph, DegreesAndAccessors) {
  BipartiteGraph g(3, 2);
  const auto e0 = g.add_edge(0, 1);
  g.add_edge(0, 0);
  g.add_edge(2, 1);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.left_degree(0), 2u);
  EXPECT_EQ(g.left_degree(1), 0u);
  EXPECT_EQ(g.right_degree(1), 2u);
  EXPECT_EQ(g.head(e0), 1u);
  EXPECT_EQ(g.tail(e0), 0u);
  EXPECT_THROW(g.add_edge(3, 0), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 2), PreconditionError);
}

TEST(BipartiteGraph, MultiEdgesCounted) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.left_degree(0), 2u);
  EXPECT_EQ(g.right_degree(0), 2u);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_FALSE(g.is_regular(1));
}

TEST(HopcroftKarp, PerfectMatchingOnCycle) {
  // 4-cycle as bipartite: L={0,1}, R={0,1}, edges 0-0, 0-1, 1-0, 1-1.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 2u);
  EXPECT_NE(m.right_of(g, 0), m.right_of(g, 1));
}

TEST(HopcroftKarp, MaximumNotPerfect) {
  // Two left vertices compete for one right vertex.
  BipartiteGraph g(2, 1);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 1u);
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g(3, 3);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 0u);
  for (std::size_t u = 0; u < 3; ++u) {
    EXPECT_EQ(m.left_edge[u], kNone);
  }
}

TEST(HopcroftKarp, DisabledEdgesExcluded) {
  BipartiteGraph g(1, 1);
  const auto e = g.add_edge(0, 0);
  std::vector<bool> disabled(g.num_edges(), false);
  disabled[e] = true;
  EXPECT_EQ(hopcroft_karp(g, disabled).size, 0u);
  EXPECT_EQ(hopcroft_karp(g).size, 1u);
}

TEST(HopcroftKarp, RandomGraphsMatchGreedyLowerBound) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5 + rng.next_below(15);
    BipartiteGraph g(n, n);
    for (std::size_t u = 0; u < n; ++u) {
      const std::size_t deg = 1 + rng.next_below(4);
      for (std::size_t d = 0; d < deg; ++d) {
        g.add_edge(u, rng.next_below(n));
      }
    }
    const Matching m = hopcroft_karp(g);
    // Greedy matching is a 1/2-approximation; HK must be at least as large.
    std::vector<bool> used(n, false);
    std::size_t greedy = 0;
    for (std::size_t u = 0; u < n; ++u) {
      for (const auto e : g.edges_of(u)) {
        if (!used[g.head(e)]) {
          used[g.head(e)] = true;
          ++greedy;
          break;
        }
      }
    }
    EXPECT_GE(m.size, greedy);
  }
}

TEST(MatchingDecomposition, CompleteBipartiteK33) {
  // K_{3,3} is 3-regular: decomposes into exactly 3 perfect matchings.
  BipartiteGraph g(3, 3);
  for (std::size_t u = 0; u < 3; ++u) {
    for (std::size_t v = 0; v < 3; ++v) g.add_edge(u, v);
  }
  const auto rounds = matching_decomposition(g);
  ASSERT_EQ(rounds.size(), 3u);
  std::set<std::size_t> edges_used;
  for (const auto& m : rounds) {
    EXPECT_EQ(m.size, 3u);
    for (std::size_t u = 0; u < 3; ++u) edges_used.insert(m.left_edge[u]);
  }
  EXPECT_EQ(edges_used.size(), 9u);
}

TEST(MatchingDecomposition, RegularMultigraph) {
  // 2 vertices each side, double edges: 2-regular multigraph.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 0);
  const auto rounds = matching_decomposition(g);
  ASSERT_EQ(rounds.size(), 2u);
  for (const auto& m : rounds) {
    EXPECT_EQ(m.right_of(g, 0), 1u);
    EXPECT_EQ(m.right_of(g, 1), 0u);
  }
}

TEST(MatchingDecomposition, RejectsIrregular) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // left degrees 2 and 1
  EXPECT_THROW(matching_decomposition(g), InternalError);
}

TEST(MatchingDecomposition, RandomRegularGraphs) {
  Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng.next_below(8);
    const std::size_t d = 1 + rng.next_below(4);
    // Build a d-regular bipartite multigraph as a union of d random
    // permutations — always decomposable.
    BipartiteGraph g(n, n);
    for (std::size_t round = 0; round < d; ++round) {
      std::vector<std::size_t> perm(n);
      for (std::size_t v = 0; v < n; ++v) perm[v] = v;
      rng.shuffle(perm);
      for (std::size_t u = 0; u < n; ++u) g.add_edge(u, perm[u]);
    }
    const auto rounds = matching_decomposition(g);
    EXPECT_EQ(rounds.size(), d);
    for (const auto& m : rounds) EXPECT_EQ(m.size, n);
  }
}

TEST(MaxFlow, SimplePath) {
  MaxFlow f(3);
  f.add_edge(0, 1, 5);
  f.add_edge(1, 2, 3);
  EXPECT_EQ(f.run(0, 2), 3);
}

TEST(MaxFlow, ParallelPathsAndFlowOn) {
  MaxFlow f(4);
  const auto top = f.add_edge(0, 1, 2);
  const auto bottom = f.add_edge(0, 2, 2);
  f.add_edge(1, 3, 2);
  f.add_edge(2, 3, 1);
  EXPECT_EQ(f.run(0, 3), 3);
  EXPECT_EQ(f.flow_on(top), 2);
  EXPECT_EQ(f.flow_on(bottom), 1);
}

TEST(MaxFlow, RunOnlyOnce) {
  MaxFlow f(2);
  f.add_edge(0, 1, 1);
  EXPECT_EQ(f.run(0, 1), 1);
  EXPECT_THROW(f.run(0, 1), PreconditionError);
}

TEST(AssignWithQuotas, BalancedAssignment) {
  // 2 bins, 4 items, all compatible, quota 2 each.
  BipartiteGraph g(2, 4);
  for (std::size_t u = 0; u < 2; ++u) {
    for (std::size_t v = 0; v < 4; ++v) g.add_edge(u, v);
  }
  const auto owners = assign_with_quotas(g, {2, 2});
  ASSERT_EQ(owners.size(), 4u);
  EXPECT_EQ(std::count(owners.begin(), owners.end(), 0u), 2);
  EXPECT_EQ(std::count(owners.begin(), owners.end(), 1u), 2);
}

TEST(AssignWithQuotas, RespectsCompatibility) {
  // Item 0 only fits bin 1.
  BipartiteGraph g(2, 2);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  const auto owners = assign_with_quotas(g, {1, 1});
  EXPECT_EQ(owners[0], 1u);
  EXPECT_EQ(owners[1], 0u);
}

TEST(AssignWithQuotas, InfeasibleThrows) {
  // 3 items, quotas sum to 2.
  BipartiteGraph g(2, 3);
  for (std::size_t u = 0; u < 2; ++u) {
    for (std::size_t v = 0; v < 3; ++v) g.add_edge(u, v);
  }
  EXPECT_THROW(assign_with_quotas(g, {1, 1}), InternalError);
}

}  // namespace
}  // namespace sttsv::graph
