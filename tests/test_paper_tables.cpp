// Direct checks against the paper's printed artifacts:
//  * Table 3's R_p column IS the Boolean quadruple system on 8 points
//    (after the paper's 1-based -> 0-based relabeling) — exact match.
//  * Table 1/2's structural content for the Steiner (10,4,3) partition
//    (m=10, P=30): all row/column invariants the tables display.
//  * Figure 1: 12 communication steps for the m=8, P=14 partition.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/bipartite.hpp"
#include "partition/tetra_partition.hpp"
#include "schedule/comm_schedule.hpp"
#include "steiner/constructions.hpp"

namespace sttsv {
namespace {

using steiner::boolean_quadruple_system;
using steiner::spherical_system;

TEST(PaperTable3, BlocksExactlyMatchPaper) {
  // Paper Table 3 R_p sets, 1-based.
  const std::vector<std::vector<std::size_t>> paper = {
      {1, 2, 3, 4}, {1, 2, 5, 6}, {1, 2, 7, 8}, {1, 3, 5, 7},
      {1, 3, 6, 8}, {1, 4, 5, 8}, {1, 4, 6, 7}, {2, 3, 5, 8},
      {2, 3, 6, 7}, {2, 4, 5, 7}, {2, 4, 6, 8}, {3, 4, 5, 6},
      {3, 4, 7, 8}, {5, 6, 7, 8}};
  std::set<std::vector<std::size_t>> paper_zero_based;
  for (auto blk : paper) {
    for (auto& v : blk) --v;
    paper_zero_based.insert(blk);
  }

  const auto sys = boolean_quadruple_system(3);
  std::set<std::vector<std::size_t>> ours(sys.blocks().begin(),
                                          sys.blocks().end());
  EXPECT_EQ(ours, paper_zero_based);
}

TEST(PaperTable3, QiColumnSizes) {
  // Table 3 right columns: every Q_i lists exactly 7 processors.
  const auto part =
      partition::TetraPartition::build(boolean_quadruple_system(3));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(part.Q(i).size(), 7u);
  }
}

TEST(PaperTable3, DiagonalAssignmentShape) {
  // Paper assigns 4 non-central diagonal blocks per processor and 8
  // central blocks total (to 8 of the 14 processors).
  const auto part =
      partition::TetraPartition::build(boolean_quadruple_system(3));
  std::size_t central_total = 0;
  for (std::size_t p = 0; p < 14; ++p) {
    EXPECT_EQ(part.N(p).size(), 4u) << "p=" << p;
    EXPECT_LE(part.D(p).size(), 1u);
    central_total += part.D(p).size();
  }
  EXPECT_EQ(central_total, 8u);
}

TEST(PaperTable1, StructuralInvariants) {
  // Table 1 displays, for m=10/P=30: |R_p| = 4 for all 30 processors,
  // |N_p| = 3 (q = 3 non-central diagonal blocks each), 10 central blocks
  // spread at most one per processor. S(10,4,3) is unique up to
  // relabeling, so these invariants pin the table's content.
  const auto part = partition::TetraPartition::build(spherical_system(3));
  ASSERT_EQ(part.num_processors(), 30u);
  ASSERT_EQ(part.num_row_blocks(), 10u);
  std::size_t central_total = 0;
  for (std::size_t p = 0; p < 30; ++p) {
    EXPECT_EQ(part.R(p).size(), 4u);
    EXPECT_EQ(part.N(p).size(), 3u);
    EXPECT_LE(part.D(p).size(), 1u);
    central_total += part.D(p).size();
    // Diagonal blocks only use indices from R_p (the compatibility that
    // makes Table 1 work).
    const auto& Rp = part.R(p);
    for (const auto& c : part.N(p)) {
      EXPECT_TRUE(std::binary_search(Rp.begin(), Rp.end(), c.i));
      EXPECT_TRUE(std::binary_search(Rp.begin(), Rp.end(), c.k));
    }
  }
  EXPECT_EQ(central_total, 10u);
}

TEST(PaperTable2, RowBlockSetsTwelveProcessorsEach) {
  // Table 2: every row block i is required by exactly 12 processors and
  // each processor appears in exactly 4 of the Q_i (|R_p| = 4).
  const auto part = partition::TetraPartition::build(spherical_system(3));
  std::vector<std::size_t> appearances(30, 0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(part.Q(i).size(), 12u) << "i=" << i;
    for (const auto p : part.Q(i)) ++appearances[p];
  }
  for (std::size_t p = 0; p < 30; ++p) {
    EXPECT_EQ(appearances[p], 4u);
  }
}

TEST(PaperFigure1, TwelveStepSchedule) {
  // Appendix A: all data transfers for the Table 3 partition complete in
  // 12 steps (< P-1 = 13), each processor sending and receiving exactly
  // one message per step.
  const auto part =
      partition::TetraPartition::build(boolean_quadruple_system(3));
  const auto sched = schedule::build_schedule(part);
  EXPECT_EQ(sched.num_rounds(), 12u);
  sched.validate(part);
  for (const auto& round : sched.rounds()) {
    std::size_t senders = 0;
    std::vector<bool> recv(14, false);
    for (std::size_t p = 0; p < 14; ++p) {
      if (round.send_to[p] == graph::kNone) continue;
      ++senders;
      EXPECT_FALSE(recv[round.send_to[p]]);
      recv[round.send_to[p]] = true;
    }
    EXPECT_EQ(senders, 14u);  // everyone active every step, as in Figure 1
  }
}

TEST(PaperSection6, BlockCountFormulas) {
  // Section 6.1: (q²+1)(q²+2)(q²+3)/6 lower-tetra blocks split into
  // (q²+1)q²(q²-1)/6 off-diagonal + q²(q²+1) non-central + (q²+1) central.
  for (const std::size_t q : {2u, 3u, 4u}) {
    const std::size_t m = q * q + 1;
    EXPECT_EQ(partition::num_off_diagonal_blocks(m),
              m * q * q * (q * q - 1) / 6);
    EXPECT_EQ(partition::num_non_central_diagonal_blocks(m), q * q * m);
    EXPECT_EQ(partition::num_central_diagonal_blocks(m), m);
    EXPECT_EQ(partition::num_off_diagonal_blocks(m) +
                  partition::num_non_central_diagonal_blocks(m) +
                  partition::num_central_diagonal_blocks(m),
              m * (m + 1) * (m + 2) / 6);
  }
}

}  // namespace
}  // namespace sttsv
