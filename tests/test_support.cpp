// Tests for the support layer: checks, RNG determinism/statistics, text
// tables, and string utilities.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace sttsv {
namespace {

TEST(Check, RequireThrowsPrecondition) {
  EXPECT_THROW(STTSV_REQUIRE(false, "boom"), PreconditionError);
  EXPECT_NO_THROW(STTSV_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsInternal) {
  EXPECT_THROW(STTSV_CHECK(false, "bug"), InternalError);
  EXPECT_NO_THROW(STTSV_CHECK(true, "fine"));
}

TEST(Check, MessageContainsContext) {
  try {
    STTSV_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("custom context"), std::string::npos);
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowHitsAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UnitIntervalBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMeanRoughlyZero) {
  Rng rng(17);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.next_normal();
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, UniformVectorRange) {
  Rng rng(9);
  const auto v = rng.uniform_vector(100, 2.0, 3.0);
  ASSERT_EQ(v.size(), 100u);
  for (const double x : v) {
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(TextTable, RendersAlignedCells) {
  TextTable t({"name", "value"}, {Align::kLeft, Align::kRight});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("|    22 |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, SeparatorRenders) {
  TextTable t({"h"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  // 5 horizontal lines: top, under header, separator, bottom... count '+'.
  const std::string out = t.render();
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 3), "2.000");
}

TEST(Text, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Text, TrimWhitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Text, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64(" 42 "), 42u);
  EXPECT_THROW(parse_u64("4x2"), PreconditionError);
  EXPECT_THROW(parse_u64(""), PreconditionError);
}

TEST(Text, BraceSetAndTriple) {
  EXPECT_EQ(brace_set({1, 4, 6, 8}), "{1,4,6,8}");
  EXPECT_EQ(brace_set({}), "{}");
  EXPECT_EQ(triple(6, 4, 1), "(6,4,1)");
}

}  // namespace
}  // namespace sttsv
