// Simulated machine tests: delivery semantics, ledger accounting,
// round/modeled-cost models for both transports.

#include <gtest/gtest.h>

#include "simt/machine.hpp"
#include "support/check.hpp"

namespace sttsv::simt {
namespace {

TEST(Machine, DeliversSortedBySender) {
  Machine m(3);
  std::vector<std::vector<Envelope>> out(3);
  out[2].push_back(Envelope{0, {1.0, 2.0}});
  out[1].push_back(Envelope{0, {3.0}});
  const auto in = m.exchange(std::move(out), Transport::kPointToPoint);
  ASSERT_EQ(in[0].size(), 2u);
  EXPECT_EQ(in[0][0].from, 1u);
  EXPECT_EQ(in[0][1].from, 2u);
  EXPECT_EQ(in[0][0].data, (std::vector<double>{3.0}));
  EXPECT_EQ(in[0][1].data, (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(in[1].empty());
  EXPECT_TRUE(in[2].empty());
}

TEST(Machine, LedgerCountsWordsAndMessages) {
  Machine m(4);
  std::vector<std::vector<Envelope>> out(4);
  out[0].push_back(Envelope{1, {1, 2, 3}});
  out[0].push_back(Envelope{2, {4}});
  out[3].push_back(Envelope{0, {5, 6}});
  (void)m.exchange(std::move(out), Transport::kPointToPoint);
  const auto& L = m.ledger();
  EXPECT_EQ(L.words_sent(0), 4u);
  EXPECT_EQ(L.words_received(1), 3u);
  EXPECT_EQ(L.words_received(2), 1u);
  EXPECT_EQ(L.words_sent(3), 2u);
  EXPECT_EQ(L.words_received(0), 2u);
  EXPECT_EQ(L.messages_sent(0), 2u);
  EXPECT_EQ(L.messages_received(0), 1u);
  EXPECT_EQ(L.total_words(), 6u);
  EXPECT_EQ(L.total_messages(), 3u);
  EXPECT_EQ(L.pair_words(0, 1), 3u);
  EXPECT_EQ(L.pair_words(1, 0), 0u);
  EXPECT_EQ(L.active_pairs(), 3u);
  L.verify_conservation();
}

TEST(Machine, SelfSendRejected) {
  Machine m(2);
  std::vector<std::vector<Envelope>> out(2);
  out[0].push_back(Envelope{0, {1.0}});
  EXPECT_THROW(m.exchange(std::move(out), Transport::kPointToPoint),
               PreconditionError);
}

TEST(Machine, PointToPointRoundsAreKoenigDelta) {
  // Rank 0 sends to 1, 2, 3 (out-degree 3); everyone else sends one.
  Machine m(4);
  std::vector<std::vector<Envelope>> out(4);
  for (std::size_t dest = 1; dest < 4; ++dest) {
    out[0].push_back(Envelope{dest, {0.0}});
  }
  out[1].push_back(Envelope{2, {0.0}});
  (void)m.exchange(std::move(out), Transport::kPointToPoint);
  // Δ = max(out-degree 3, in-degree 2) = 3.
  EXPECT_EQ(m.ledger().rounds(), 3u);
}

TEST(Machine, AllToAllRoundsArePMinus1) {
  Machine m(5);
  std::vector<std::vector<Envelope>> out(5);
  out[0].push_back(Envelope{1, {1.0, 2.0, 3.0}});  // max message = 3 words
  out[2].push_back(Envelope{3, {1.0}});
  (void)m.exchange(std::move(out), Transport::kAllToAll);
  EXPECT_EQ(m.ledger().rounds(), 4u);  // P - 1
  // Modeled cost: (P-1) * max pair message = 4 * 3 = 12 words.
  EXPECT_EQ(m.ledger().modeled_collective_words(), 12u);
}

TEST(Machine, ResetLedgerClears) {
  Machine m(2);
  std::vector<std::vector<Envelope>> out(2);
  out[0].push_back(Envelope{1, {1.0}});
  (void)m.exchange(std::move(out), Transport::kPointToPoint);
  EXPECT_GT(m.ledger().total_words(), 0u);
  m.reset_ledger();
  EXPECT_EQ(m.ledger().total_words(), 0u);
  EXPECT_EQ(m.ledger().rounds(), 0u);
}

TEST(Machine, EmptyExchangeIsFree) {
  Machine m(3);
  (void)m.exchange(std::vector<std::vector<Envelope>>(3),
                   Transport::kPointToPoint);
  EXPECT_EQ(m.ledger().total_words(), 0u);
  EXPECT_EQ(m.ledger().rounds(), 0u);
}

TEST(Ledger, RanksOutOfRangeRejected) {
  CommLedger L(2);
  EXPECT_THROW(L.record_message(0, 2, 1), PreconditionError);
  EXPECT_THROW(static_cast<void>(L.words_sent(5)), PreconditionError);
}

}  // namespace
}  // namespace sttsv::simt
