// Application tests: HOPM recovers known eigenpairs, CP gradient matches
// finite differences, CP decomposition recovers low-rank tensors, and the
// parallel drivers agree with the sequential ones.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/cp_decompose.hpp"
#include "apps/cp_gradient.hpp"
#include "apps/hopm.hpp"
#include "apps/vec_ops.hpp"
#include "core/sttsv_seq.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "simt/machine.hpp"
#include "steiner/constructions.hpp"
#include "support/rng.hpp"
#include "tensor/generators.hpp"

namespace sttsv::apps {
namespace {

TEST(VecOps, Basics) {
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  std::vector<double> v{0, 3, 4};
  EXPECT_DOUBLE_EQ(normalize(v), 5.0);
  EXPECT_NEAR(norm2(v), 1.0, 1e-15);
  EXPECT_EQ(axpy({1, 1}, 2.0, {1, 2}), (std::vector<double>{3, 5}));
}

TEST(VecOps, SignInvariantDistance) {
  const std::vector<double> a{1, 0};
  const std::vector<double> b{-1, 0};
  EXPECT_NEAR(sign_invariant_distance(a, b), 0.0, 1e-15);
  EXPECT_NEAR(sign_invariant_distance(a, {0, 1}), std::sqrt(2.0), 1e-12);
}

TEST(VecOps, HadamardSquaredGram) {
  const std::vector<std::vector<double>> cols{{1, 0}, {1, 1}};
  const auto g = hadamard_squared_gram(cols);
  EXPECT_DOUBLE_EQ(g[0][0], 1.0);   // (1)²
  EXPECT_DOUBLE_EQ(g[0][1], 1.0);   // (1)²
  EXPECT_DOUBLE_EQ(g[1][1], 4.0);   // (2)²
}

TEST(Hopm, SuperDiagonalDominantEigenpair) {
  // For the diagonal tensor a_iii = d_i, Z-eigenpairs include (e_i, d_i);
  // HOPM from a generic start converges to a robust eigenpair. Values of
  // λ must satisfy the eigen equation within tolerance.
  const auto a = tensor::super_diagonal({5.0, 1.0, 0.5});
  HopmOptions opts;
  opts.max_iterations = 2000;
  const auto res = hopm(a, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.residual, 1e-8);
}

TEST(Hopm, RankOneTensorRecoversFactor) {
  // A = λ v∘v∘v with unit v: HOPM fixed point is ±v with eigenvalue λ.
  Rng rng(123);
  const std::size_t n = 12;
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_normal();
  normalize(v);
  const auto a = tensor::low_rank_symmetric(n, {3.0}, {v});
  HopmOptions opts;
  opts.max_iterations = 500;
  const auto res = hopm(a, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.eigenvalue, 3.0, 1e-6);
  EXPECT_LT(sign_invariant_distance(res.eigenvector, v), 1e-6);
}

TEST(Hopm, ShiftedVariantConvergesOnHardTensor) {
  // Random tensors can make plain HOPM oscillate; SS-HOPM with a large
  // enough shift is monotone (Kolda-Mayo). Verify the shifted run meets
  // the eigen-equation residual.
  Rng rng(9);
  const auto a = tensor::random_symmetric(10, rng, -1.0, 1.0);
  HopmOptions opts;
  opts.shift = 8.0;  // > n·max|a| bound for monotonicity
  opts.max_iterations = 5000;
  opts.tolerance = 1e-13;
  const auto res = hopm(a, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.residual, 1e-7);
}

TEST(Hopm, ParallelMatchesSequential) {
  Rng rng(31);
  const std::size_t n = 60;
  const auto a = tensor::random_low_rank(n, {4.0, 1.0}, rng, nullptr);
  auto part = partition::TetraPartition::build(steiner::spherical_system(2));
  partition::VectorDistribution dist(part, n);
  simt::Machine machine(part.num_processors());

  HopmOptions opts;
  opts.shift = 2.0;
  opts.max_iterations = 800;
  const auto seq = hopm(a, opts);
  const auto par = hopm_parallel(machine, part, dist, a, opts);
  // Identical arithmetic (deterministic exchange order) -> identical runs
  // up to floating-point reassociation in the reduction; compare loosely.
  EXPECT_EQ(seq.converged, par.converged);
  EXPECT_NEAR(seq.eigenvalue, par.eigenvalue, 1e-8);
  EXPECT_LT(sign_invariant_distance(seq.eigenvector, par.eigenvector), 1e-6);
}

TEST(CpGradient, MatchesFiniteDifferences) {
  Rng rng(77);
  const std::size_t n = 6;
  const std::size_t r = 2;
  const auto a = tensor::random_symmetric(n, rng, -0.5, 0.5);
  std::vector<std::vector<double>> cols(r);
  for (auto& c : cols) c = rng.uniform_vector(n, -0.5, 0.5);

  const auto grad = cp_gradient(a, cols);
  const double h = 1e-6;
  for (std::size_t l = 0; l < r; ++l) {
    for (std::size_t i = 0; i < n; ++i) {
      auto plus = cols;
      auto minus = cols;
      plus[l][i] += h;
      minus[l][i] -= h;
      const double fd =
          (cp_objective(a, plus) - cp_objective(a, minus)) / (2.0 * h);
      EXPECT_NEAR(grad[l][i], fd, 1e-5)
          << "l=" << l << " i=" << i;
    }
  }
}

TEST(CpGradient, ZeroAtExactDecomposition) {
  // If A = Σ x∘x∘x exactly, the gradient at X is zero.
  Rng rng(13);
  const std::size_t n = 8;
  std::vector<std::vector<double>> cols(2);
  for (auto& c : cols) c = rng.uniform_vector(n, -1.0, 1.0);
  const auto a = tensor::low_rank_symmetric(n, {1.0, 1.0}, cols);
  const auto grad = cp_gradient(a, cols);
  for (const auto& g : grad) {
    for (const double v : g) EXPECT_NEAR(v, 0.0, 1e-10);
  }
  EXPECT_NEAR(cp_objective(a, cols), 0.0, 1e-10);
}

TEST(CpGradient, ParallelMatchesSequential) {
  Rng rng(5);
  const std::size_t n = 30;
  const auto a = tensor::random_symmetric(n, rng, -0.5, 0.5);
  std::vector<std::vector<double>> cols(3);
  for (auto& c : cols) c = rng.uniform_vector(n, -0.5, 0.5);

  auto part = partition::TetraPartition::build(steiner::spherical_system(2));
  partition::VectorDistribution dist(part, n);
  simt::Machine machine(part.num_processors());

  const auto g_seq = cp_gradient(a, cols);
  const auto g_par = cp_gradient_parallel(machine, part, dist, a, cols);
  ASSERT_EQ(g_seq.size(), g_par.size());
  for (std::size_t l = 0; l < g_seq.size(); ++l) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(g_seq[l][i], g_par[l][i], 1e-9);
    }
  }
}

TEST(CpDecompose, RecoversLowRankTensor) {
  Rng rng(21);
  const std::size_t n = 10;
  std::vector<std::vector<double>> truth(2);
  for (auto& c : truth) {
    c = rng.uniform_vector(n, -1.0, 1.0);
  }
  const auto a = tensor::low_rank_symmetric(n, {1.0, 1.0}, truth);

  CpOptions opts;
  opts.rank = 2;
  opts.max_iterations = 4000;
  opts.tolerance = 1e-14;
  opts.seed = 3;
  const auto res = cp_decompose(a, opts);
  EXPECT_LT(cp_relative_error(a, res.columns), 0.05);
  // Loss history is monotone nonincreasing by construction.
  for (std::size_t i = 1; i < res.loss_history.size(); ++i) {
    EXPECT_LE(res.loss_history[i], res.loss_history[i - 1] + 1e-12);
  }
}

}  // namespace
}  // namespace sttsv::apps
