// Vector distribution tests (Section 6.1.2): shares tile each row block,
// ownership lookups invert, per-rank totals equal n/P for divisible sizes.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bipartite.hpp"
#include "partition/tetra_partition.hpp"
#include "partition/vector_distribution.hpp"
#include "steiner/constructions.hpp"
#include "support/check.hpp"

namespace sttsv::partition {
namespace {

TetraPartition spherical_partition(std::uint64_t q) {
  return TetraPartition::build(steiner::spherical_system(q));
}

TEST(VectorDistribution, DivisibleCaseMatchesPaperShareSizes) {
  // q=2: m=5, P=10, |Q_i| = q(q+1) = 6. Choose b divisible by 6.
  const auto part = spherical_partition(2);
  const std::size_t b = 12;
  const VectorDistribution dist(part, b * part.num_row_blocks());
  EXPECT_EQ(dist.block_length_b(), b);
  EXPECT_EQ(dist.padded_n(), dist.logical_n());
  dist.validate();
  // Every share is exactly b/(q(q+1)) = 2 words.
  for (std::size_t i = 0; i < part.num_row_blocks(); ++i) {
    for (const std::size_t p : part.Q(i)) {
      EXPECT_EQ(dist.share(i, p).length, 2u);
    }
  }
  // Each processor holds n/P elements of each vector (Section 6.1.2).
  for (std::size_t p = 0; p < part.num_processors(); ++p) {
    EXPECT_EQ(dist.local_elements(p),
              dist.padded_n() / part.num_processors());
  }
}

TEST(VectorDistribution, PaddingRoundsUp) {
  const auto part = spherical_partition(2);  // m = 5
  const VectorDistribution dist(part, 23);   // not divisible by 5
  EXPECT_EQ(dist.block_length_b(), 5u);      // ceil(23/5)
  EXPECT_EQ(dist.padded_n(), 25u);
  dist.validate();
}

TEST(VectorDistribution, UnevenSharesStillTile) {
  const auto part = spherical_partition(2);  // |Q_i| = 6
  // b = 7 not divisible by 6: shares are 2,1,1,1,1,1.
  const VectorDistribution dist(part, 7 * part.num_row_blocks());
  dist.validate();
  for (std::size_t i = 0; i < part.num_row_blocks(); ++i) {
    std::size_t total = 0;
    std::size_t longest = 0;
    for (const std::size_t p : part.Q(i)) {
      const auto s = dist.share(i, p);
      total += s.length;
      longest = std::max(longest, s.length);
    }
    EXPECT_EQ(total, 7u);
    EXPECT_EQ(longest, 2u);
  }
}

TEST(VectorDistribution, TinyVectorsZeroLengthShares) {
  // b < |Q_i|: some processors own nothing from a block; still consistent.
  const auto part = spherical_partition(2);
  const VectorDistribution dist(part, 2 * part.num_row_blocks());
  dist.validate();
}

TEST(VectorDistribution, OwnerLookupInvertsShares) {
  const auto part = spherical_partition(3);
  const VectorDistribution dist(part, 24 * part.num_row_blocks());
  dist.validate();
  for (std::size_t g = 0; g < dist.padded_n(); g += 7) {
    const std::size_t p = dist.owner_of(g);
    const std::size_t i = g / dist.block_length_b();
    const auto s = dist.share(i, p);
    const std::size_t off = g % dist.block_length_b();
    EXPECT_GE(off, s.offset);
    EXPECT_LT(off, s.offset + s.length);
  }
}

TEST(VectorDistribution, RankInBlockRejectsOutsiders) {
  const auto part = spherical_partition(2);
  const VectorDistribution dist(part, 30);
  // Find a processor not in Q_0.
  std::size_t outsider = graph::kNone;
  for (std::size_t p = 0; p < part.num_processors(); ++p) {
    const auto& Q0 = part.Q(0);
    if (!std::binary_search(Q0.begin(), Q0.end(), p)) {
      outsider = p;
      break;
    }
  }
  ASSERT_NE(outsider, graph::kNone);
  EXPECT_THROW(static_cast<void>(dist.rank_in_block(0, outsider)), PreconditionError);
}

TEST(VectorDistribution, BooleanFamilyWorksToo) {
  const auto part =
      TetraPartition::build(steiner::boolean_quadruple_system(3));
  // |Q_i| = 7; pick b = 14.
  const VectorDistribution dist(part, 14 * part.num_row_blocks());
  dist.validate();
  for (std::size_t p = 0; p < part.num_processors(); ++p) {
    EXPECT_EQ(dist.local_elements(p), 4u * 2u);  // 4 blocks × b/7
  }
}

}  // namespace
}  // namespace sttsv::partition
